"""Unit tests: fault-plan data model, validation and the text format."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    ALWAYS_PROTECTED,
    FaultPlan,
    MessagePolicy,
    PECrash,
    TaskKill,
    dumps,
    load,
    loads,
    save,
)
from repro.faults.plan import PLAN_HEADER

FULL = FaultPlan(
    seed=42,
    crashes=(PECrash(at=120_000, pe=7), PECrash(at=5_000, pe=3)),
    kills=(TaskKill(at=50_000, tasktype="JWORKER", nth=2),),
    messages=MessagePolicy(drop=0.02, duplicate=0.01, delay=0.05,
                           corrupt=0.01, delay_ticks=800,
                           protected=("ROWS", "SWEPT")),
    strict_sends=True,
    name="full")


class TestRoundTrip:
    def test_full_plan_survives_dumps_loads(self):
        assert loads(dumps(FULL)) == FULL

    def test_default_plan_survives(self):
        assert loads(dumps(FaultPlan())) == FaultPlan()

    def test_dumps_starts_with_the_header(self):
        assert dumps(FULL).startswith(PLAN_HEADER)

    def test_save_and_load_file(self, tmp_path):
        p = save(FULL, tmp_path / "chaos.pfault")
        assert load(p) == FULL

    def test_comments_and_blank_lines_ignored(self):
        plan = loads("""
        # a comment
        seed 9

        crash pe 4 at 100   # trailing comment
        """)
        assert plan.seed == 9
        assert plan.crashes == (PECrash(at=100, pe=4),)

    def test_kill_nth_defaults_to_one(self):
        plan = loads("kill WORKER at 500")
        assert plan.kills == (TaskKill(at=500, tasktype="WORKER", nth=1),)


class TestParseErrors:
    def test_unknown_directive_names_the_line(self):
        with pytest.raises(ConfigurationError, match="line 2"):
            loads("seed 1\nfrobnicate everything\n")

    def test_non_integer_seed_rejected(self):
        with pytest.raises(ConfigurationError):
            loads("seed banana")

    def test_crash_missing_field_rejected(self):
        with pytest.raises(ConfigurationError):
            loads("crash pe 4")

    def test_out_of_range_probability_rejected_at_parse(self):
        with pytest.raises(ConfigurationError, match="outside"):
            loads("messages drop 1.5")


class TestMessagePolicyValidation:
    def test_negative_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            MessagePolicy(drop=-0.1)

    def test_probabilities_summing_over_one_rejected(self):
        with pytest.raises(ConfigurationError, match="more than 1"):
            MessagePolicy(drop=0.6, delay=0.6)

    def test_negative_delay_ticks_rejected(self):
        with pytest.raises(ConfigurationError):
            MessagePolicy(delay=0.1, delay_ticks=-1)

    def test_any_faults(self):
        assert not MessagePolicy().any_faults
        assert MessagePolicy(corrupt=0.01).any_faults


class TestPlanSemantics:
    def test_timed_events_ordered_by_time_then_declaration(self):
        evs = FULL.timed_events()
        assert [e.at for e in evs] == [5_000, 50_000, 120_000]
        assert isinstance(evs[1], TaskKill)

    def test_default_plan_is_empty(self):
        assert FaultPlan().empty

    def test_zero_probability_messages_still_empty(self):
        assert FaultPlan(messages=MessagePolicy()).empty

    def test_strict_sends_alone_is_not_empty(self):
        # A strict-sends-only plan must still install the injector.
        assert not FaultPlan(strict_sends=True).empty

    def test_any_timed_fault_is_not_empty(self):
        assert not FaultPlan(crashes=(PECrash(at=1, pe=3),)).empty
        assert not FaultPlan(kills=(TaskKill(at=1, tasktype="W"),)).empty

    def test_with_seed_replaces_only_the_seed(self):
        p = FULL.with_seed(7)
        assert p.seed == 7 and p.crashes == FULL.crashes

    def test_task_died_is_always_protected(self):
        assert "TASK_DIED" in ALWAYS_PROTECTED
