"""Unit tests: the fault injector's determinism contract and recording."""

import json

import pytest

from repro.faults import (
    CORRUPTION_MARKER,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    MessagePolicy,
    PECrash,
    TaskKill,
    corrupt_args,
    plan_scope,
)


def message_injector(seed=0, **policy_kw):
    """An injector for pure message-fault decisions (no VM needed)."""
    plan = FaultPlan(seed=seed, messages=MessagePolicy(**policy_kw))
    return FaultInjector(object(), plan)


LOSSY = dict(drop=0.1, duplicate=0.1, delay=0.1, corrupt=0.1)


class TestMessageFaultStream:
    def test_same_seed_same_decision_stream(self):
        a = message_injector(seed=123, **LOSSY)
        b = message_injector(seed=123, **LOSSY)
        stream_a = [a.on_message("DATA") for _ in range(500)]
        stream_b = [b.on_message("DATA") for _ in range(500)]
        assert stream_a == stream_b
        assert set(stream_a) > {None}      # something actually fired

    def test_different_seeds_differ(self):
        a = [message_injector(seed=1, **LOSSY).on_message("DATA")
             for _ in range(100)]
        # Re-drive with another seed over the same delivery sequence.
        inj = message_injector(seed=2, **LOSSY)
        b = [inj.on_message("DATA") for _ in range(100)]
        assert a != b

    def test_ineligible_types_consume_no_randomness(self):
        plain = message_injector(seed=7, **LOSSY)
        mixed = message_injector(seed=7, drop=0.1, duplicate=0.1, delay=0.1,
                                 corrupt=0.1, protected=("PROT",))
        plain_stream = [plain.on_message("DATA") for _ in range(100)]
        mixed_stream = []
        for _ in range(100):
            # System, failure-notification and protected types interleave
            # freely without perturbing the eligible stream.
            assert mixed.on_message("@SYSTEM") is None
            assert mixed.on_message("TASK_DIED") is None
            assert mixed.on_message("PROT") is None
            mixed_stream.append(mixed.on_message("DATA"))
        assert mixed_stream == plain_stream

    def test_certain_drop_always_drops(self):
        inj = message_injector(seed=3, drop=1.0)
        assert all(inj.on_message("DATA") == "drop" for _ in range(20))

    def test_single_class_policy_only_emits_that_class(self):
        inj = message_injector(seed=5, corrupt=0.5)
        actions = {inj.on_message("DATA") for _ in range(200)}
        assert actions == {None, "corrupt"}

    def test_eligibility(self):
        inj = message_injector(seed=0, drop=0.5, protected=("ROWS",))
        assert inj.message_eligible("DATA")
        assert not inj.message_eligible("@ACK")
        assert not inj.message_eligible("TASK_DIED")
        assert not inj.message_eligible("ROWS")

    def test_checksums_only_when_corruption_possible(self):
        assert message_injector(corrupt=0.01).checksums
        assert not message_injector(drop=0.5).checksums

    def test_delay_ticks_exposed(self):
        assert message_injector(delay=0.1, delay_ticks=777).delay_ticks == 777


class TestCorruptArgs:
    def test_marker_replaces_first_element(self):
        assert corrupt_args((1, 2, 3)) == (CORRUPTION_MARKER, 2, 3)

    def test_empty_payload_still_marked(self):
        assert corrupt_args(()) == (CORRUPTION_MARKER,)


class TestFaultEvent:
    def test_line_is_stable_sorted_json(self):
        ev = FaultEvent(at=12, seq=3, kind="drop", detail="type=X")
        assert json.loads(ev.line()) == {"at": 12, "seq": 3, "kind": "drop",
                                         "detail": "type=X"}
        assert ev.line().index('"at"') < ev.line().index('"kind"')


class TestRecordingAgainstAVM:
    @pytest.fixture
    def vm(self, make_vm, registry):
        # A far-future crash keeps the plan non-empty without firing.
        plan = FaultPlan(seed=1, crashes=(PECrash(at=10**9, pe=4),))
        with plan_scope(plan):
            return make_vm(registry=registry, trace_events=("FAULT",))

    def test_injected_events_count_and_trace(self, vm):
        inj = vm.faults
        assert inj is not None
        inj.record("drop", "type=X from=1.1.1 to=2.1.1")
        inj.record("restart", "task=2.1.1", injected=False)
        assert vm.stats.faults_injected == 1     # semantics events excluded
        kinds = [e.info.split(":")[0] for e in vm.tracer.events]
        assert kinds == ["drop", "restart"]

    def test_export_and_write_jsonl(self, vm, tmp_path):
        vm.faults.record("drop", "a")
        vm.faults.record("delay", "b")
        text = vm.faults.export_jsonl()
        lines = text.splitlines()
        assert [json.loads(l)["kind"] for l in lines] == ["drop", "delay"]
        assert [json.loads(l)["seq"] for l in lines] == [0, 1]
        p = vm.faults.write_jsonl(tmp_path / "faults.jsonl")
        assert p.read_text() == text + "\n"


class TestTimedFaultPump:
    def test_pump_fires_in_time_order_up_to_the_slice(self, make_vm,
                                                      registry):
        plan = FaultPlan(seed=1,
                         crashes=(PECrash(at=200, pe=4),),
                         kills=(TaskKill(at=100, tasktype="W"),))
        with plan_scope(plan):
            vm = make_vm(registry=registry)
        inj = vm.faults
        assert inj.pump(150)       # fires only the t=100 kill (a miss)
        assert [e.kind for e in inj.events] == ["task_kill_miss"]
        assert not vm.machine.pes[4].failed
        assert inj.pump(300)       # now the crash
        assert vm.machine.pes[4].failed
        assert vm.clusters[2].failed

    def test_pump_none_fires_exactly_the_earliest(self, make_vm, registry):
        plan = FaultPlan(seed=1, kills=(TaskKill(at=100, tasktype="W"),
                                        TaskKill(at=200, tasktype="W")))
        with plan_scope(plan):
            vm = make_vm(registry=registry)
        assert vm.faults.pump(None)
        assert len(vm.faults.events) == 1
        assert vm.faults.pump(None)
        assert len(vm.faults.events) == 2
        assert not vm.faults.pump(None)    # heap drained

    def test_empty_plan_installs_no_injector(self, make_vm, registry):
        vm = make_vm(registry=registry)
        assert vm.faults is None
        assert vm.engine._fault_pump is None
