"""plan_scope isolation: concurrent scopes must not leak across runs.

Regression for the run service: ``_ambient_plan`` was a module global,
so two runs in one process (the service's worker pool) could steal
each other's fault plans.  It is now a ContextVar -- each thread's
scope is invisible to every other thread.
"""

import threading

from repro.faults import FaultPlan, TaskKill, ambient_plan, plan_scope


def test_nested_scopes_restore_outer():
    a = FaultPlan(seed=1, kills=(TaskKill(at=10, tasktype="X"),))
    b = FaultPlan(seed=2, kills=(TaskKill(at=20, tasktype="Y"),))
    assert ambient_plan() is None
    with plan_scope(a):
        assert ambient_plan() is a
        with plan_scope(b):
            assert ambient_plan() is b
        assert ambient_plan() is a
    assert ambient_plan() is None


def test_concurrent_scopes_are_isolated():
    """Two threads hold different scopes simultaneously; each sees only
    its own plan, and the main thread sees none."""
    n = 2
    plans = [FaultPlan(seed=i + 1,
                       kills=(TaskKill(at=100 * (i + 1), tasktype="W"),))
             for i in range(n)]
    barrier = threading.Barrier(n)
    seen = [None] * n
    errors = []

    def worker(i):
        try:
            with plan_scope(plans[i]):
                barrier.wait(timeout=10)      # both scopes live at once
                seen[i] = ambient_plan()
                barrier.wait(timeout=10)
        except Exception as e:                # pragma: no cover
            errors.append(e)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert seen[0] is plans[0] and seen[1] is plans[1]
    assert ambient_plan() is None             # nothing leaked out


def test_concurrent_vms_get_their_own_plan():
    """The real seam: VMs constructed concurrently inside different
    scopes install their own injector, not a leaked one."""
    from repro.config.configuration import simple_configuration
    from repro.core.task import TaskRegistry
    from repro.core.vm import PiscesVM

    plans = [FaultPlan(seed=11, kills=(TaskKill(at=50, tasktype="A"),)),
             FaultPlan(seed=22, kills=(TaskKill(at=60, tasktype="B"),))]
    barrier = threading.Barrier(2)
    got = [None, None]
    errors = []

    def build(i):
        try:
            reg = TaskRegistry()

            @reg.tasktype("NOOP")
            def noop(ctx):
                return None

            with plan_scope(plans[i]):
                barrier.wait(timeout=10)
                vm = PiscesVM(simple_configuration(n_clusters=1, slots=2,
                                                   name=f"iso-{i}"),
                              registry=reg, autoboot=False)
                got[i] = vm.faults.plan if vm.faults else None
        except Exception as e:                # pragma: no cover
            errors.append(e)

    threads = [threading.Thread(target=build, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert got[0] is plans[0] and got[1] is plans[1]
