"""The reusable happens-before edge stream (repro.correctness.hb).

The race detector's HB knowledge -- spawn, wake, send->accept,
barrier generations, lock hand-offs, self-scheduling fetches -- can be
recorded as an explicit edge stream (``detector.record_edges()``) for
downstream consumers like the causal profiler's documentation and
offline tooling.  These tests pin the stream's shape and the
``iter_hb_edges`` adapter.
"""

import pytest

from repro.api import make_vm
from repro.correctness.hb import EDGE_KINDS, HBEdge, HBEdgeLog, iter_hb_edges

from .programs import barrier_guarded_registry, critical_guarded_registry


def _run_with_edges(build, ttype, cap=1_000_000, **kw):
    vm = make_vm(registry=build(), detect_races="record",
                 n_clusters=1, force_pes_per_cluster=3, **kw)
    log = vm.race_detector.record_edges(cap)
    r = vm.run(ttype)
    return vm, log, r


class TestEdgeLog:
    def test_barrier_program_emits_expected_kinds(self):
        vm, log, _ = _run_with_edges(barrier_guarded_registry, "GUARDED")
        counts = log.counts_by_kind()
        assert counts.get("spawn", 0) > 0
        assert counts.get("barrier-arrive", 0) > 0
        assert counts.get("barrier-body", 0) > 0
        for e in log:
            assert isinstance(e, HBEdge)
            assert e.kind in EDGE_KINDS
            assert e.at >= 0
        vm.shutdown()

    def test_lock_program_emits_lock_edges(self):
        vm, log, _ = _run_with_edges(critical_guarded_registry, "LOCKED")
        counts = log.counts_by_kind()
        assert counts.get("lock", 0) > 0
        # A lock edge is a hand-off: it always names the releaser (the
        # first acquisition has no predecessor and emits no edge).
        lock_edges = [e for e in log if e.kind == "lock"]
        assert all(e.src >= 0 for e in lock_edges)
        assert all(e.detail for e in lock_edges), "edge carries lock name"
        vm.shutdown()

    def test_selfsched_fetches_emit_counter_edges(self):
        import numpy as np

        from repro.core.task import TaskRegistry

        reg = TaskRegistry()

        def region(m):
            blk = m.common("V")
            for i in m.selfsched(8):
                blk.x[i] = float(i)
            m.barrier()
            return float(np.asarray(blk.x[:]).sum())

        @reg.tasktype("SS", shared={"V": {"x": ("f8", (8,))}})
        def ss(ctx):
            ctx.forcesplit(region)
            return float(np.asarray(ctx.common("V").x[:]).sum())

        vm, log, r = _run_with_edges(lambda: reg, "SS")
        counts = log.counts_by_kind()
        assert counts.get("selfsched", 0) > 0
        # Fetch i>0 chains to the previous fetcher's pid.
        ss_edges = [e for e in log if e.kind == "selfsched"]
        assert any(e.src >= 0 for e in ss_edges[1:]) or len(ss_edges) == 1
        vm.shutdown()

    def test_barrier_edges_route_through_generation_clock(self):
        vm, log, _ = _run_with_edges(barrier_guarded_registry, "GUARDED")
        arrives = [e for e in log if e.kind == "barrier-arrive"]
        bodies = [e for e in log if e.kind == "barrier-body"]
        assert all(e.dst == -1 for e in arrives)
        assert all(e.src == -1 for e in bodies)
        vm.shutdown()

    def test_cap_counts_dropped_edges(self):
        vm, log, _ = _run_with_edges(barrier_guarded_registry, "GUARDED",
                                     cap=5)
        assert len(log) == 5
        assert log.dropped > 0
        assert "dropped" in log.describe()
        vm.shutdown()

    def test_record_edges_is_idempotent(self):
        vm = make_vm(registry=barrier_guarded_registry(),
                     detect_races="record", n_clusters=1,
                     force_pes_per_cluster=3)
        log1 = vm.race_detector.record_edges()
        log2 = vm.race_detector.record_edges()
        assert log1 is log2
        vm.shutdown()


class TestIterHbEdges:
    def test_accepts_log_detector_and_iterable(self):
        vm, log, _ = _run_with_edges(barrier_guarded_registry, "GUARDED")
        from_log = list(iter_hb_edges(log))
        from_det = list(iter_hb_edges(vm.race_detector))
        from_iter = list(iter_hb_edges(list(log)))
        assert from_log == from_det == from_iter
        assert from_log, "expected a non-empty edge stream"
        vm.shutdown()

    def test_detector_without_recording_raises(self):
        vm = make_vm(registry=barrier_guarded_registry(),
                     detect_races="record", n_clusters=1,
                     force_pes_per_cluster=3)
        with pytest.raises(ValueError):
            iter_hb_edges(vm.race_detector)
        vm.shutdown()

    def test_edge_stream_is_deterministic(self):
        """Same program, same stream -- edge `at` ticks are per-PE
        virtual clocks, so the stream's only global order is derivation
        order, and that order must be reproducible."""
        def normalize(edges):
            # Kernel pids are process-global; rename by first appearance
            # so two VMs in one test process compare equal.
            names = {-1: -1}
            out = []
            for e in edges:
                for pid in (e.src, e.dst):
                    names.setdefault(pid, len(names))
                out.append((e.kind, names[e.src], names[e.dst], e.at,
                            e.detail))
            return out

        streams = []
        for _ in range(2):
            vm, log, _ = _run_with_edges(critical_guarded_registry, "LOCKED")
            streams.append(normalize(log))
            vm.shutdown()
        assert streams[0] == streams[1]
