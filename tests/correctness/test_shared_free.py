"""FREE COMMON: shared-common heap storage is reclaimed, not leaked.

Every byte tagged ``shared_common`` must be back on the heap once its
block is freed -- explicitly via ``ctx.free_common`` (which also makes
the name declarable again, the pattern the Jacobi force solver uses for
argument-dependent shapes) or implicitly at task exit.
"""

import numpy as np
import pytest

from repro import run_app
from repro.apps.jacobi import run_jacobi_force
from repro.core.task import TaskRegistry
from repro.errors import RuntimeLibraryError


def _shared_bytes(vm) -> int:
    return vm.storage_report()["shared_common_bytes"]


class TestExplicitFree:
    def test_free_common_releases_storage_immediately(self):
        reg = TaskRegistry()
        sizes = {}

        @reg.tasktype("T", shared={"B": {"x": ("f8", (256,))}})
        def t(ctx):
            sizes["before"] = _shared_bytes(ctx.vm)
            ctx.free_common("B")
            sizes["after"] = _shared_bytes(ctx.vm)

        run_app("T", registry=reg)
        assert sizes["before"] >= 256 * 8
        assert sizes["after"] == 0

    def test_freed_name_is_redeclarable_with_a_new_shape(self):
        reg = TaskRegistry()

        @reg.tasktype("T", shared={"B": {"x": ("f8", (8,))}})
        def t(ctx):
            ctx.free_common("B")
            blk = ctx.declare_common("B", {"x": ("f8", (32,))})
            blk.x[...] = 1.0
            return float(np.asarray(blk.x).sum())

        assert run_app("T", registry=reg).value == 32.0

    def test_block_knows_it_was_freed(self):
        reg = TaskRegistry()
        seen = {}

        @reg.tasktype("T", shared={"B": {"x": ("f8", (8,))}})
        def t(ctx):
            blk = ctx.common("B")
            seen["before"] = blk.freed
            ctx.free_common("B")
            seen["after"] = blk.freed

        run_app("T", registry=reg)
        assert seen == {"before": False, "after": True}

    def test_freeing_an_unknown_block_is_an_error(self):
        reg = TaskRegistry()

        @reg.tasktype("T")
        def t(ctx):
            ctx.free_common("NOPE")

        with pytest.raises(RuntimeLibraryError):
            run_app("T", registry=reg)


class TestNoLeaks:
    def test_task_exit_releases_shared_common(self):
        reg = TaskRegistry()

        @reg.tasktype("T", shared={"B": {"x": ("f8", (512,)),
                                         "y": ("i8", (64, 4))}})
        def t(ctx):
            ctx.common("B").x[0] = 1.0

        r = run_app("T", registry=reg)
        assert _shared_bytes(r.vm) == 0

    def test_force_app_with_redeclare_leaks_nothing(self):
        r = run_jacobi_force(n=10, sweeps=2, force_pes=3)
        assert _shared_bytes(r.vm) == 0
        r.vm.shutdown()

    def test_detector_tracked_blocks_release_too(self):
        """TrackedArray wrapping must not pin the allocation."""
        from repro import check_races
        from .programs import barrier_guarded_registry
        chk = check_races("GUARDED", registry=barrier_guarded_registry(),
                          n_clusters=1, force_pes_per_cluster=3)
        assert _shared_bytes(chk.result.vm) == 0
