"""Force programs with known race status, shared by the detector tests,
the hypothesis properties and the race-debugging example checks.

Each builder returns a registry with one tasktype.  The racy variants
contain a *genuine* data race under the PISCES memory model (an access
to SHARED COMMON unordered with another member's write); the guarded
variants are the same programs with the missing BARRIER / CRITICAL
added, and must never be flagged.
"""

from __future__ import annotations

import numpy as np

from repro.core.task import TaskRegistry
from repro.core.taskid import PARENT

VEC_N = 12


def racy_presched_registry(n: int = VEC_N) -> TaskRegistry:
    """Members write disjoint PRESCHED slices then read the whole vector
    with no intervening barrier: the read races every other member's
    writes."""
    reg = TaskRegistry()

    def region(m):
        blk = m.common("VEC")
        x = blk.x
        for i in m.presched(n):
            x[i] = float(i + m.member)
        return float(np.asarray(x[:]).sum())    # BUG: unordered read

    @reg.tasktype("RACY", shared={"VEC": {"x": ("f8", (n,))}})
    def racy(ctx):
        ctx.forcesplit(region)
        return float(np.asarray(ctx.common("VEC").x[:]).sum())

    return reg


def barrier_guarded_registry(n: int = VEC_N) -> TaskRegistry:
    """The racy program with the missing BARRIER: every member's read is
    ordered after every write through the barrier generation."""
    reg = TaskRegistry()

    def region(m):
        blk = m.common("VEC")
        x = blk.x
        for i in m.presched(n):
            x[i] = float(i + m.member)
        m.barrier()
        return float(np.asarray(x[:]).sum())

    @reg.tasktype("GUARDED", shared={"VEC": {"x": ("f8", (n,))}})
    def guarded(ctx):
        ctx.forcesplit(region)
        return float(np.asarray(ctx.common("VEC").x[:]).sum())

    return reg


def critical_guarded_registry(rounds: int = 3) -> TaskRegistry:
    """Members all read-modify-write the same cell, every access inside
    the same CRITICAL section: common locksets, never a race."""
    reg = TaskRegistry()

    def region(m):
        blk = m.common("ACC")
        for _ in range(rounds):
            with m.critical("L"):
                blk.total[0] = float(blk.total[0]) + 1.0
        return None

    @reg.tasktype("LOCKED", shared={"ACC": {"total": ("f8", (1,))}})
    def locked(ctx):
        ctx.forcesplit(region)
        return float(ctx.common("ACC").total[0])

    return reg


def window_conflict_registry(n: int = 8, write_write: bool = True
                             ) -> TaskRegistry:
    """Two workers given the *same* window region with no ordering edge
    between them.  ``write_write=True``: both write (a race);
    ``False``: one reads while the other writes (data-plane transfers
    serialize at the owner, so this downgrades to a warning)."""
    reg = TaskRegistry()

    @reg.tasktype("WWORKER")
    def wworker(ctx, do_write):
        ctx.send(PARENT, "READY")
        res = ctx.accept("WIN")
        w = res.args[0]
        if do_write:
            ctx.window_write(w, np.full((n, n), 7.0))
        else:
            ctx.window_read(w)
        ctx.send(PARENT, "DONE")

    @reg.tasktype("WMASTER")
    def wmaster(ctx):
        full = ctx.export_array("G", np.zeros((n, n)))
        ctx.initiate("WWORKER", True, on=1)
        ctx.initiate("WWORKER", write_write, on=2)
        res = ctx.accept("READY", count=2)
        for m in res.messages:
            ctx.send(m.sender, "WIN", full)
        ctx.accept("DONE", count=2)
        return None

    return reg
