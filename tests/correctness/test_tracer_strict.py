"""Tracer strict-overflow mode: ring-buffer saturation fails loudly.

``record_run``/``replay_run`` compare trace streams line for line, so a
silently truncated stream would fake a replay mismatch (or worse, hide
one).  ``strict_overflow`` turns the ring-buffer drop into a
:class:`~repro.errors.TraceOverflow`; the drop is also counted in the
``trace_overflow_dropped`` metric either way.
"""

import pytest

from repro.core.taskid import TaskId
from repro.core.tracing import TraceEvent, TraceEventType, Tracer
from repro.errors import TraceOverflow
from repro.obs.metrics import MetricsRegistry


def _event(i: int) -> TraceEvent:
    return TraceEvent(etype=TraceEventType.MSG_SEND,
                      task=TaskId.parse("1.1.1"), pe=1, ticks=i)


def _full_tracer(**kw) -> Tracer:
    tr = Tracer(max_events=4, **kw)
    tr.enable_all()
    for i in range(4):
        tr.emit(_event(i))
    return tr


class TestStrictOverflow:
    def test_default_mode_drops_and_counts(self):
        tr = _full_tracer()
        tr.emit(_event(99))
        assert tr.overflow_dropped == 1
        assert len(tr.events) == 4

    def test_strict_mode_raises(self):
        tr = _full_tracer(strict_overflow=True)
        with pytest.raises(TraceOverflow, match="strict_overflow"):
            tr.emit(_event(99))
        assert tr.overflow_dropped == 1

    def test_overflow_bumps_the_metric(self):
        tr = _full_tracer()
        reg = MetricsRegistry(enabled=True)
        tr.metrics = reg
        tr.emit(_event(99))
        tr.emit(_event(100))
        assert reg.counter_total("trace_overflow_dropped") == 2

    def test_vm_wires_tracer_to_its_registry(self):
        from repro import make_vm
        vm = make_vm()
        try:
            assert vm.tracer.metrics is vm.metrics
        finally:
            vm.shutdown()

    def test_record_run_sets_strict_overflow(self):
        from repro import record_run
        from repro.apps.jacobi import build_windows_registry
        rec = record_run("JMASTER", registry=build_windows_registry(8, 2, 2))
        assert rec.result.vm.tracer.strict_overflow
