"""Record/replay: ``.psched`` artifacts and bit-identical re-execution.

The replay contract is total: same elapsed virtual time, same trace
stream line for line, same RunStats, same result value -- for every
shipped communication style (windows, force, task-parallel, pipeline)
and for the fault-tolerant solver under an actively lossy fault plan.
"""

import os

import pytest

from repro import record_run, replay_run, run_app
from repro.apps.chaos_jacobi import build_chaos_registry
from repro.apps.jacobi import build_force_registry, build_windows_registry
from repro.apps.matmul import build_tasks_registry
from repro.apps.pipeline import build_pipeline_registry
from repro.correctness import Schedule, ScheduleRecorder
from repro.errors import ReplayDivergence, ScheduleFormatError
from repro.faults import FaultPlan, MessagePolicy

#: Lossy-but-healable transport for the chaos replay case: drops and
#: duplicates force the solver down its retry paths, and the replay
#: must retrace every one of them.
CHAOS_PLAN = FaultPlan(
    seed=11, name="replay-chaos",
    messages=MessagePolicy(drop=0.05, duplicate=0.04, delay=0.08,
                           delay_ticks=600))


def _chaos_registry():
    return build_chaos_registry(10, 2, 2, None, "reassign",
                                8_000, 60_000, 200)


#: (id, tasktype, args, registry builder, make_vm kwargs)
APPS = [
    ("jacobi-windows", "JMASTER", (),
     lambda: build_windows_registry(10, 2, 3), {}),
    ("jacobi-force", "JFORCE", (10, 2),
     lambda: build_force_registry(10, 2),
     dict(n_clusters=1, force_pes_per_cluster=3)),
    ("matmul-tasks", "MMASTER", (),
     lambda: build_tasks_registry(8, 3), {}),
    ("pipeline", "COORD", (),
     lambda: build_pipeline_registry(3, list(range(8))), {}),
    ("chaos-jacobi", "CMASTER", (),
     _chaos_registry, dict(fault_plan=CHAOS_PLAN)),
]


@pytest.mark.parametrize("name,ttype,args,build,kw", APPS,
                         ids=[a[0] for a in APPS])
def test_replay_is_bit_identical(name, ttype, args, build, kw):
    rec = record_run(ttype, *args, registry=build(), **kw)
    rep = replay_run(ttype, *args, schedule=rec, registry=build(), **kw)
    assert rep.elapsed == rec.elapsed
    assert [e.line() for e in rep.vm.tracer.events] == rec.trace_lines
    assert rep.stats == rec.result.stats
    assert type(rep.value) is type(rec.result.value)


class TestPschedFormat:
    def test_dumps_parse_round_trip(self):
        rec = ScheduleRecorder(meta={"app": "unit"})
        rec.on_spawn(0, "root")
        rec.on_spawn(1, "worker:1")
        rec.on_dispatch(0, 0, "root")
        rec.on_dispatch(1, 120, "worker:1")
        rec.on_selfsched(2, 7)
        rec.on_lock_grant(0, "RED")
        rec.on_accept_match("1.1.2", "1.1.1", "WIN:rows")
        text = rec.dumps()
        s = Schedule.parse(text)
        assert s.name_of(1) == "worker:1"
        assert s.peek_dispatch() == (0, 0)
        # Feeding the same stream back through the verify hooks must
        # consume the whole schedule without divergence.
        s.on_spawn(0, "root")
        s.on_spawn(1, "worker:1")
        s.on_dispatch(0, 0, "root")
        s.on_dispatch(1, 120, "worker:1")
        s.on_selfsched(2, 7)
        s.on_lock_grant(0, "RED")
        s.on_accept_match("1.1.2", "1.1.1", "WIN:rows")
        s.check_complete()

    def test_artifact_file_round_trips(self, tmp_path):
        p = tmp_path / "jacobi.psched"
        rec = record_run("JMASTER", registry=build_windows_registry(8, 2, 2),
                         path=p)
        assert rec.psched_path == p and p.exists()
        head = p.read_text().splitlines()[0]
        assert head == "#psched 1"
        loaded = Schedule.load(p)
        rep = replay_run("JMASTER", schedule=loaded,
                         registry=build_windows_registry(8, 2, 2))
        assert rep.elapsed == rec.elapsed

    def test_parse_rejects_garbage(self):
        with pytest.raises(ScheduleFormatError):
            Schedule.parse("not a schedule\n")

    def test_tampered_schedule_diverges(self, tmp_path):
        p = tmp_path / "t.psched"
        record_run("JMASTER", registry=build_windows_registry(8, 2, 2),
                   path=p)
        # Point a mid-stream dispatch record at a spawn ordinal the run
        # never creates: the replay dispatcher must refuse to invent it.
        # (Swapping two same-instant records would merely be a different
        # *feasible* schedule, which replay executes happily -- only
        # decisions that cannot be honoured diverge.)
        lines = p.read_text().splitlines()
        for i, line in enumerate(lines):
            if not line.startswith("D "):
                continue
            toks = line.split()
            _, _, start = toks[len(toks) // 2].partition(":")
            toks[len(toks) // 2] = f"999:{start}"
            lines[i] = " ".join(toks)
            break
        p.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReplayDivergence):
            replay_run("JMASTER", schedule=p,
                       registry=build_windows_registry(8, 2, 2))

    def test_incomplete_consumption_is_an_error(self):
        """Replaying a *different* (smaller) program against a longer
        recording either diverges or leaves the schedule unconsumed --
        never silently passes."""
        rec = record_run("JMASTER", registry=build_windows_registry(10, 3, 3))
        with pytest.raises(ReplayDivergence):
            replay_run("JMASTER", schedule=rec,
                       registry=build_windows_registry(10, 1, 3))


class TestEnvWiring:
    def test_record_env_autosaves_on_shutdown(self, tmp_path, monkeypatch):
        p = tmp_path / "env.psched"
        monkeypatch.setenv("PISCES_RECORD_SCHEDULE", str(p))
        r = run_app("JMASTER", registry=build_windows_registry(8, 2, 2))
        assert p.exists()
        monkeypatch.delenv("PISCES_RECORD_SCHEDULE")
        monkeypatch.setenv("PISCES_DISPATCHER", "replay")
        monkeypatch.setenv("PISCES_REPLAY_SCHEDULE", str(p))
        r2 = run_app("JMASTER", registry=build_windows_registry(8, 2, 2))
        assert r2.elapsed == r.elapsed
        assert r2.stats == r.stats

    def test_replay_dispatcher_without_schedule_is_an_error(self, monkeypatch):
        monkeypatch.setenv("PISCES_DISPATCHER", "replay")
        monkeypatch.delenv("PISCES_REPLAY_SCHEDULE", raising=False)
        with pytest.raises(ValueError):
            run_app("JMASTER", registry=build_windows_registry(8, 2, 2))
