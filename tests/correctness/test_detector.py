"""Behavioral tests: the happens-before race detector.

The contract under test: a genuinely racy program is always flagged
with usable evidence; the same program correctly synchronized (BARRIER
or CRITICAL) is never flagged; window conflicts grade W-W as races and
R-W as warnings; and the three reporting modes (record / warn / raise)
deliver reports through their respective channels.
"""

import json

import pytest

from repro import check_races
from repro.correctness import RaceDetector, RaceReport
from repro.correctness.detector import extents_overlap
from repro.errors import RaceError, RaceWarning

from .programs import (VEC_N, barrier_guarded_registry,
                       critical_guarded_registry, racy_presched_registry,
                       window_conflict_registry)

FORCE_KW = dict(n_clusters=1, force_pes_per_cluster=3)


class TestSharedCommonRaces:
    def test_racy_presched_read_is_flagged(self):
        chk = check_races("RACY", registry=racy_presched_registry(),
                          **FORCE_KW)
        assert not chk.clean
        r = chk.reports[0]
        assert isinstance(r, RaceReport)
        assert r.kind == "shared_common"
        assert r.severity == "race"
        assert r.variable == "VEC.x"
        # Evidence: two different processes, overlapping extents, at
        # least one side a write, and a human-readable HB explanation.
        assert r.a.pid != r.b.pid
        assert r.a.write or r.b.write
        assert extents_overlap(r.a.bounds, r.b.bounds)
        assert "happens-before" in r.hb_note
        assert "VEC.x" in chk.report_text()

    def test_barrier_guarded_is_clean(self):
        chk = check_races("GUARDED", registry=barrier_guarded_registry(),
                          **FORCE_KW)
        assert chk.clean and not chk.warnings
        # The detector actually looked at the program's accesses.
        assert chk.detector.accesses_checked > VEC_N

    def test_critical_guarded_is_clean(self):
        chk = check_races("LOCKED", registry=critical_guarded_registry(),
                          **FORCE_KW)
        assert chk.clean and not chk.warnings
        assert chk.detector.accesses_checked > 0

    def test_racy_run_result_is_still_produced(self):
        """record mode observes, it does not perturb: the racy program
        finishes and returns a value as if undetected."""
        chk = check_races("RACY", registry=racy_presched_registry(),
                          **FORCE_KW)
        assert isinstance(chk.result.value, float)
        assert chk.result.value > 0


class TestWindowConflicts:
    def test_write_write_overlap_is_a_race(self):
        chk = check_races("WMASTER",
                          registry=window_conflict_registry(write_write=True))
        assert not chk.clean
        r = chk.reports[0]
        assert r.kind == "window"
        assert r.a.write and r.b.write

    def test_read_write_overlap_is_a_warning(self):
        chk = check_races("WMASTER",
                          registry=window_conflict_registry(write_write=False))
        assert chk.clean              # no hard race...
        assert chk.warnings           # ...but the R-W overlap is surfaced
        assert chk.warnings[0].severity == "warning"


class TestModes:
    def test_warn_mode_emits_race_warning(self):
        with pytest.warns(RaceWarning):
            check_races("RACY", registry=racy_presched_registry(),
                        mode="warn", **FORCE_KW)

    def test_raise_mode_stops_at_first_race(self):
        with pytest.raises(RaceError) as ei:
            check_races("RACY", registry=racy_presched_registry(),
                        mode="raise", **FORCE_KW)
        assert ei.value.report.severity == "race"

    def test_guarded_program_is_silent_in_every_mode(self):
        for mode in ("record", "warn", "raise"):
            chk = check_races("GUARDED", registry=barrier_guarded_registry(),
                              mode=mode, **FORCE_KW)
            assert chk.clean


class TestReporting:
    def test_export_jsonl_round_trips_the_evidence(self, tmp_path):
        chk = check_races("RACY", registry=racy_presched_registry(),
                          **FORCE_KW)
        p = tmp_path / "races.jsonl"
        n = chk.detector.export_jsonl(p)
        lines = [json.loads(l) for l in p.read_text().splitlines()]
        assert n == len(lines) == len(chk.reports) + len(chk.warnings)
        d = lines[0]
        assert d["variable"] == "VEC.x" and d["severity"] == "race"
        assert d["first"]["proc"] and d["second"]["proc"]
        assert isinstance(d["first"]["bounds"], list)

    def test_dedup_bounds_report_volume(self):
        """Repeated identical conflicts collapse: the racy program's
        report count stays proportional to distinct (pair, direction)
        combinations, not to iteration count."""
        chk = check_races("RACY", registry=racy_presched_registry(n=64),
                          **FORCE_KW)
        assert 0 < len(chk.reports) <= 32

    def test_detector_counts_races_into_run_stats(self):
        chk = check_races("RACY", registry=racy_presched_registry(),
                          **FORCE_KW)
        assert chk.result.stats.races_detected == len(chk.reports)


class TestZeroCost:
    def test_detection_charges_no_virtual_time(self):
        from repro import run_app
        base = run_app("GUARDED", registry=barrier_guarded_registry(),
                       **FORCE_KW)
        chk = check_races("GUARDED", registry=barrier_guarded_registry(),
                          **FORCE_KW)
        assert chk.result.elapsed == base.elapsed
        assert (chk.result.vm.engine.dispatch_count
                == base.vm.engine.dispatch_count)

    def test_off_by_default(self):
        from repro import run_app
        r = run_app("GUARDED", registry=barrier_guarded_registry(),
                    **FORCE_KW)
        assert r.vm.race_detector is None

    def test_paused_detector_records_nothing(self):
        from repro import make_vm
        vm = make_vm(registry=racy_presched_registry(), **FORCE_KW)
        det = vm.enable_race_detection()
        det.enabled = False
        vm.run("RACY")
        assert not det.reports and det.accesses_checked == 0
