"""Shared fixtures: VM construction with guaranteed thread teardown."""

from __future__ import annotations

import pytest

from repro import PiscesVM, TaskRegistry
from repro.config.configuration import ClusterSpec, Configuration
from repro.flex.presets import small_flex


@pytest.fixture
def registry() -> TaskRegistry:
    return TaskRegistry()


@pytest.fixture
def make_vm():
    """Factory creating VMs on a small test machine; every VM created is
    shut down at test teardown so controller threads never leak."""
    vms = []

    def factory(config=None, registry=None, machine=None, n_pes=10,
                **cfg_kw):
        if config is None:
            config = Configuration(
                clusters=(ClusterSpec(1, 3, 4), ClusterSpec(2, 4, 4)),
                name="test", **cfg_kw)
        vm = PiscesVM(config, registry=registry,
                      machine=machine or small_flex(n_pes))
        vms.append(vm)
        return vm

    yield factory
    for vm in vms:
        vm.shutdown()


@pytest.fixture
def two_cluster_config() -> Configuration:
    return Configuration(clusters=(ClusterSpec(1, 3, 4),
                                   ClusterSpec(2, 4, 4)), name="2c")


@pytest.fixture
def force_config() -> Configuration:
    """One cluster whose forces have 4 members (3 secondary PEs)."""
    return Configuration(
        clusters=(ClusterSpec(1, 3, 2, secondary_pes=(4, 5, 6)),),
        name="force4")
