"""The app catalog: every entry builds deterministically from params."""

import pytest

from repro.errors import InvalidRunSpec
from repro.service import catalog
from repro.service.spec import RunSpec

FORTRAN_SOURCE = """\
      TASK HELLO
      INTEGER N
      N = 2 + 3
      END TASK
"""


class TestBuild:

    @pytest.mark.parametrize("app", catalog.app_names())
    def test_every_app_builds_with_defaults(self, app):
        if app == "fortran":
            spec = RunSpec(app=app, params={"source": FORTRAN_SOURCE})
        else:
            spec = RunSpec(app=app)
        plan = catalog.build(spec)
        assert plan.tasktype in plan.registry.names()
        assert plan.config.cluster_numbers()

    def test_unknown_app_refused(self):
        with pytest.raises(InvalidRunSpec, match="unknown app"):
            catalog.build(RunSpec(app="fluid_dynamics"))

    def test_unknown_param_refused(self):
        with pytest.raises(InvalidRunSpec, match="does not take"):
            catalog.build(RunSpec(app="jacobi", params={"grid_size": 9}))

    def test_build_is_pure_in_params(self):
        spec = RunSpec(app="matmul", params={"n": 8, "n_workers": 2})
        a, b = catalog.build(spec), catalog.build(spec)
        assert a.config == b.config
        assert a.tasktype == b.tasktype and a.args == b.args
        assert a.registry.names() == b.registry.names()

    def test_pe_cost_positive_for_all_apps(self):
        for app in catalog.app_names():
            if app == "fortran":
                spec = RunSpec(app=app, params={"source": FORTRAN_SOURCE})
            else:
                spec = RunSpec(app=app)
            assert catalog.pe_cost(spec) >= 1

    def test_force_apps_cost_their_secondaries(self):
        assert catalog.pe_cost(RunSpec(app="jacobi_force",
                                       params={"force_pes": 3})) \
            > catalog.pe_cost(RunSpec(app="spin"))


class TestFortran:

    def test_source_builds_registry(self):
        plan = catalog.build(RunSpec(app="fortran",
                                     params={"source": FORTRAN_SOURCE}))
        assert plan.tasktype == "HELLO"

    def test_empty_source_refused(self):
        with pytest.raises(InvalidRunSpec, match="params.source"):
            catalog.build(RunSpec(app="fortran"))

    def test_garbage_source_refused(self):
        with pytest.raises(InvalidRunSpec, match="did not preprocess"):
            catalog.build(RunSpec(app="fortran",
                                  params={"source": "*** not fortran ((("}))

    def test_unknown_tasktype_refused(self):
        with pytest.raises(InvalidRunSpec, match="not defined"):
            catalog.build(RunSpec(app="fortran",
                                  params={"source": FORTRAN_SOURCE,
                                          "tasktype": "MAIN"}))


class TestChaosParams:

    def test_supervision_strings(self):
        plan = catalog.build(RunSpec(app="chaos_jacobi",
                                     params={"supervision": "restart"}))
        assert plan.tasktype == "CMASTER"

    def test_bad_supervision_refused(self):
        with pytest.raises(InvalidRunSpec):
            catalog.build(RunSpec(app="chaos_jacobi",
                                  params={"supervision": "resurrect"}))

    def test_bad_on_death_refused(self):
        with pytest.raises(InvalidRunSpec):
            catalog.build(RunSpec(app="chaos_jacobi",
                                  params={"on_death": "panic"}))


def test_spin_runs_and_charges_virtual_time():
    from repro.core.vm import PiscesVM
    plan = catalog.build(RunSpec(app="spin",
                                 params={"rounds": 10,
                                         "ticks_per_round": 7}))
    vm = PiscesVM(plan.config, registry=plan.registry)
    r = vm.run(plan.tasktype, *plan.args)
    assert r.value == 10
    assert r.elapsed >= 70
