"""Acceptance soak: 3 tenants x 12 mixed-zoo runs on a 4-worker pool.

The load-bearing assertion is **bit-identity**: every run executed by
the service (concurrently, with tracing, metrics, the kill hook and --
for one run -- a fault plan and periodic checkpoints all active) has
exactly the virtual time and trace stream of the same spec executed
standalone and serially.  Multi-tenancy costs no determinism.

Also asserted here: over-quota submits refused (the 429 path), kill of
a live run, and fair-share execution ordering under a single worker.
"""

import json
import time

import pytest

from repro.errors import QuotaExceeded
from repro.faults import FaultPlan, TaskKill, dumps as dump_plan
from repro.obs.export import event_to_dict
from repro.service import (DONE, KILLED, RUNNING, RunService, TenantQuota)
from repro.service.executor import standalone_run
from repro.service.spec import RunSpec

FORTRAN_SOURCE = """\
      TASK ADDUP
      INTEGER I
      INTEGER S
      S = 0
      DO 10 I = 1, 50
      S = S + I
10    CONTINUE
      END TASK
"""

#: One fault-plan run rides in the zoo: a worker kill mid-solve with
#: reassignment, exercised through the service's fault-plan plumbing.
CHAOS_PLAN = dump_plan(FaultPlan(
    seed=7, kills=(TaskKill(at=5_000, tasktype="CWORKER"),)))

#: The mixed zoo: 12 specs across the app catalog, both exec cores,
#: one fault-plan run, one checkpointing run, one Fortran-source run.
ZOO = [
    {"app": "jacobi", "params": {"n": 12, "sweeps": 2, "n_workers": 2}},
    {"app": "matmul", "params": {"n": 8, "n_workers": 2}},
    {"app": "integrate",
     "params": {"pieces": 8, "points_per_piece": 4, "n_workers": 2}},
    {"app": "pipeline", "params": {"n_stages": 3, "n_items": 6}},
    {"app": "fem", "params": {"n_elements": 8}},
    {"app": "truss", "params": {"n_panels": 3}},
    {"app": "jacobi_force", "params": {"n": 10, "sweeps": 2}},
    {"app": "chaos_jacobi",
     "params": {"n": 10, "sweeps": 2, "n_workers": 2,
                "on_death": "reassign"},
     "fault_plan": CHAOS_PLAN},
    {"app": "spin", "params": {"rounds": 50, "ticks_per_round": 20},
     "checkpoint_every": 200},
    {"app": "fortran", "params": {"source": FORTRAN_SOURCE}},
    {"app": "jacobi", "params": {"n": 10, "sweeps": 2, "n_workers": 2},
     "exec_core": "coop"},
    {"app": "matmul", "params": {"n": 8, "n_workers": 2},
     "exec_core": "coop"},
]

TENANTS = ("alice", "bob", "carol")


def wait_all(svc, run_ids, timeout=300.0):
    deadline = time.monotonic() + timeout
    pending = set(run_ids)
    while pending and time.monotonic() < deadline:
        for rid in list(pending):
            if not svc.get_run(rid).is_live:
                pending.discard(rid)
        time.sleep(0.05)
    assert not pending, f"runs never finished: {sorted(pending)}"


@pytest.mark.slow
def test_soak_three_tenants_twelve_runs_bit_identical(tmp_path):
    svc = RunService(
        tmp_path / "store", n_workers=4,
        quotas={"dave": TenantQuota(max_running=1, max_queued=1)},
        default_quota=TenantQuota(max_running=4, max_queued=16,
                                  pe_budget=32)).start()
    try:
        # --- submit the zoo round-robin across three tenants ----------
        submitted = []          # (run_id, spec_dict)
        for i, spec in enumerate(ZOO):
            rec = svc.submit(TENANTS[i % len(TENANTS)], spec)
            submitted.append((rec.run_id, spec))
        assert len(submitted) == 12

        # --- over-quota tenant is refused with QuotaExceeded ----------
        slow = {"app": "spin", "params": {"rounds": 500000}}
        dave_rec = svc.submit("dave", slow)
        with pytest.raises(QuotaExceeded):
            svc.submit("dave", slow)

        # --- kill endpoint terminates dave's live run cleanly ---------
        deadline = time.monotonic() + 120
        while svc.get_run(dave_rec.run_id).state != RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        svc.kill(dave_rec.run_id)

        wait_all(svc, [rid for rid, _ in submitted] + [dave_rec.run_id])

        killed = svc.get_run(dave_rec.run_id)
        assert killed.state == KILLED
        assert killed.exit["outcome"] == "killed"

        # --- every zoo run: DONE, bit-identical to standalone ---------
        for rid, spec_dict in submitted:
            rec = svc.get_run(rid)
            assert rec.state == DONE, (rid, spec_dict, rec.exit)

            ref = standalone_run(RunSpec.from_dict(spec_dict))
            assert rec.exit["elapsed_ticks"] == ref.elapsed, \
                (spec_dict, rec.exit["elapsed_ticks"], ref.elapsed)

            with svc.store.artifact_path(rid, "run.events.jsonl").open() as f:
                service_events = [json.loads(l) for l in f if l.strip()]
            ref_events = [event_to_dict(e) for e in ref.vm.tracer.events]
            assert service_events == ref_events, spec_dict

        # the checkpointing spin run actually checkpointed
        ckpt_rid = [rid for rid, s in submitted if s.get("checkpoint_every")]
        assert list(svc.store.checkpoint_dir(ckpt_rid[0]).glob("*.pckpt"))

        # the fault-plan run archived its fault events
        chaos_rid = [rid for rid, s in submitted if s.get("fault_plan")][0]
        assert "run.faults.jsonl" in svc.store.list_artifacts(chaos_rid)
    finally:
        svc.stop(timeout=15.0, kill_live=True)


@pytest.mark.slow
def test_soak_fair_share_execution_order(tmp_path):
    """One worker, tenant a floods 6 runs before b submits 3: the
    execution order must interleave (DRR), not drain a's burst."""
    quick = {"app": "spin", "params": {"rounds": 5, "ticks_per_round": 10}}
    svc = RunService(tmp_path / "store", n_workers=1,
                     default_quota=TenantQuota(max_running=4, max_queued=16))
    try:
        a_ids = [svc.submit("a", quick).run_id for _ in range(6)]
        b_ids = [svc.submit("b", quick).run_id for _ in range(3)]
        svc.start()                       # workers see the full backlog
        wait_all(svc, a_ids + b_ids)

        recs = sorted((svc.get_run(r) for r in a_ids + b_ids),
                      key=lambda r: r.started_at)
        order = [r.tenant for r in recs]
        assert order == ["a", "b", "a", "b", "a", "b", "a", "a", "a"], order
    finally:
        svc.stop(timeout=10.0, kill_live=True)
