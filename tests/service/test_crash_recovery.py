"""kill -9 the service mid-run; restart; the store recovers and the
interrupted run completes by checkpoint-resume.

This is the one service property that cannot be tested in-process
(worker threads can't be SIGKILLed), so the service runs as a real
``python -m repro.service`` subprocess over HTTP.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient

#: Long enough to survive until the SIGKILL, checkpointing often.
CHECKPOINTED_SPIN = {
    "app": "spin",
    "params": {"rounds": 60_000, "ticks_per_round": 50},
    "checkpoint_every": 100_000,
}
#: A plain run interrupted alongside: recovered by re-queue + rerun.
PLAIN_SPIN = {"app": "spin", "params": {"rounds": 60_000,
                                        "ticks_per_round": 50}}


def boot_service(root: Path) -> "tuple[subprocess.Popen, dict]":
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service", "--root", str(root),
         "--workers", "2"],
        stdout=subprocess.PIPE, env=env)
    line = proc.stdout.readline()
    assert line, "service printed no boot line"
    return proc, json.loads(line)


@pytest.mark.slow
def test_sigkill_restart_checkpoint_resume(tmp_path):
    root = tmp_path / "store"
    proc, info = boot_service(root)
    try:
        client = ServiceClient(info["url"], tenant="alice")
        ck = client.submit(CHECKPOINTED_SPIN)
        plain = client.submit(PLAIN_SPIN)

        # Wait until the checkpointed run has actually checkpointed.
        ck_dir = root / "runs" / ck["run_id"] / "checkpoints"
        deadline = time.monotonic() + 120
        while not list(ck_dir.glob("*.pckpt")):
            assert time.monotonic() < deadline, "no checkpoint appeared"
            assert proc.poll() is None
            time.sleep(0.05)
        assert client.get_run(ck["run_id"])["state"] == "RUNNING"

        # The crash: no shutdown hooks, no flush, nothing.
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        # Restart over the same store.
        proc, info = boot_service(root)
        assert set(info["recovered"]) >= {ck["run_id"], plain["run_id"]}
        client = ServiceClient(info["url"], tenant="alice")

        done_ck = client.wait(ck["run_id"], timeout=240)
        done_plain = client.wait(plain["run_id"], timeout=240)

        # Both interrupted runs completed after the restart...
        assert done_ck["state"] == "DONE"
        assert done_plain["state"] == "DONE"
        assert done_ck["recovered"] == 1
        # ... the checkpointing one by resuming its .pckpt, not rerunning
        assert done_ck["exit"]["resumed_from"], done_ck["exit"]
        # ... and the resumed run's virtual time is the uninterrupted
        # run's: 60k rounds x 50 ticks + boot overhead, same as the
        # plain rerun's total.
        assert done_ck["exit"]["elapsed_ticks"] \
            == done_plain["exit"]["elapsed_ticks"]
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
