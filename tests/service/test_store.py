"""The run store: state machine, atomicity, crash rescan."""

import json

import pytest

from repro.errors import ServiceError, UnknownRun
from repro.service.spec import RunSpec
from repro.service.store import (ADMITTED, DONE, KILLED, QUEUED, RUNNING,
                                 RunStore)

SPEC = RunSpec(app="spin", params={"rounds": 3})


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestLifecycle:

    def test_create_starts_queued(self, store):
        rec = store.create("alice", SPEC)
        assert rec.state == QUEUED and rec.tenant == "alice"
        assert rec.run_id == "r000001" and rec.seq == 1

    def test_run_ids_are_sequential(self, store):
        ids = [store.create("t", SPEC).run_id for _ in range(3)]
        assert ids == ["r000001", "r000002", "r000003"]

    def test_happy_path_transitions(self, store):
        rec = store.create("t", SPEC)
        store.transition(rec.run_id, ADMITTED)
        store.transition(rec.run_id, RUNNING)
        final = store.transition(rec.run_id, DONE,
                                 exit={"outcome": "done"})
        assert final.state == DONE and final.exit["outcome"] == "done"

    def test_illegal_transition_refused(self, store):
        rec = store.create("t", SPEC)
        with pytest.raises(ServiceError, match="illegal transition"):
            store.transition(rec.run_id, RUNNING)   # skips ADMITTED

    def test_terminal_states_are_final(self, store):
        rec = store.create("t", SPEC)
        store.transition(rec.run_id, KILLED)
        with pytest.raises(ServiceError):
            store.transition(rec.run_id, ADMITTED)

    def test_unknown_run(self, store):
        with pytest.raises(UnknownRun):
            store.get("r999999")


class TestPersistence:

    def test_record_is_on_disk_json(self, store):
        rec = store.create("alice", SPEC)
        with store.record_path(rec.run_id).open() as f:
            on_disk = json.load(f)
        assert on_disk["tenant"] == "alice"
        assert on_disk["spec"]["app"] == "spin"

    def test_no_tmp_leftover_after_write(self, store):
        rec = store.create("t", SPEC)
        store.transition(rec.run_id, ADMITTED)
        leftovers = list(store.run_dir(rec.run_id).glob("*.tmp"))
        assert leftovers == []

    def test_reopen_sees_all_runs_and_continues_seq(self, store):
        store.create("a", SPEC)
        store.create("b", SPEC)
        reopened = RunStore(store.root)
        assert [r.run_id for r in reopened.list()] == ["r000001", "r000002"]
        assert reopened.create("c", SPEC).run_id == "r000003"

    def test_torn_record_is_skipped_not_fatal(self, store):
        rec = store.create("a", SPEC)
        other = store.create("b", SPEC)
        store.record_path(rec.run_id).write_text("{ torn json")
        reopened = RunStore(store.root)
        assert [r.run_id for r in reopened.list()] == [other.run_id]


class TestRecover:

    def test_interrupted_runs_requeued_with_bump(self, store):
        rec = store.create("t", SPEC)
        store.transition(rec.run_id, ADMITTED)
        store.transition(rec.run_id, RUNNING, started_at=123.0)
        reopened = RunStore(store.root)
        recovered = reopened.recover()
        assert [r.run_id for r in recovered] == [rec.run_id]
        got = reopened.get(rec.run_id)
        assert got.state == QUEUED and got.recovered == 1
        assert got.started_at is None

    def test_queued_and_terminal_untouched(self, store):
        q = store.create("t", SPEC)
        d = store.create("t", SPEC)
        store.transition(d.run_id, ADMITTED)
        store.transition(d.run_id, RUNNING)
        store.transition(d.run_id, DONE)
        reopened = RunStore(store.root)
        assert reopened.recover() == []
        assert reopened.get(q.run_id).state == QUEUED
        assert reopened.get(q.run_id).recovered == 0
        assert reopened.get(d.run_id).state == DONE


class TestQueriesAndArtifacts:

    def test_list_filters(self, store):
        a = store.create("alice", SPEC)
        store.create("bob", SPEC)
        store.transition(a.run_id, ADMITTED)
        assert len(store.list()) == 2
        assert [r.tenant for r in store.list(tenant="bob")] == ["bob"]
        assert [r.run_id for r in store.list(state=ADMITTED)] == [a.run_id]
        assert store.tenants() == ["alice", "bob"]

    def test_artifacts_listing_and_fetch(self, store):
        rec = store.create("t", SPEC)
        (store.artifacts_dir(rec.run_id) / "run.events.jsonl").write_text(
            '{"etype": "x"}\n')
        assert store.list_artifacts(rec.run_id) == ["run.events.jsonl"]
        p = store.artifact_path(rec.run_id, "run.events.jsonl")
        assert p.read_text().startswith('{"etype"')

    def test_artifact_path_escape_refused(self, store):
        rec = store.create("t", SPEC)
        with pytest.raises(UnknownRun):
            store.artifact_path(rec.run_id, "../record.json")

    def test_missing_artifact_refused(self, store):
        rec = store.create("t", SPEC)
        with pytest.raises(UnknownRun):
            store.artifact_path(rec.run_id, "nope.bin")
