"""The REST control plane end to end over a real HTTP socket."""

import json
import urllib.request

import pytest

from repro.errors import InvalidRunSpec, QuotaExceeded, UnknownRun
from repro.service import RunService, TenantQuota, serve
from repro.service.client import ServiceClient

QUICK = {"app": "spin", "params": {"rounds": 5, "ticks_per_round": 10}}
SLOW = {"app": "spin", "params": {"rounds": 400000, "ticks_per_round": 10}}


@pytest.fixture
def stack(tmp_path):
    svc = RunService(tmp_path / "store", n_workers=2,
                     quotas={"bob": TenantQuota(max_queued=1)}).start()
    server, thread = serve(svc)
    yield svc, server
    server.shutdown()
    svc.stop(timeout=10.0, kill_live=True)


@pytest.fixture
def client(stack):
    _, server = stack
    return ServiceClient(server.url, tenant="alice")


class TestEndpoints:

    def test_health_and_apps(self, client):
        h = client.health()
        assert h["status"] == "ok"
        assert "jacobi" in client.apps()

    def test_submit_wait_fetch(self, client, tmp_path):
        rec = client.submit(QUICK)
        assert rec["state"] == "QUEUED" and rec["tenant"] == "alice"
        done = client.wait(rec["run_id"])
        assert done["state"] == "DONE"
        names = client.artifacts(rec["run_id"])
        assert "run.events.jsonl" in names
        data = client.fetch_artifact(rec["run_id"], "run.events.jsonl")
        assert data and b"etype" in data
        path = client.fetch_artifact(rec["run_id"], "manifest.json",
                                     tmp_path / "m.json")
        manifest = json.loads(path.read_text())
        assert "task_bodies" in manifest

    def test_list_runs_filters(self, client):
        rec = client.submit(QUICK)
        client.wait(rec["run_id"])
        assert any(r["run_id"] == rec["run_id"]
                   for r in client.list_runs(tenant="alice"))
        assert client.list_runs(tenant="nobody") == []
        assert [r["state"] for r in client.list_runs(state="DONE")]

    def test_kill_over_http(self, client):
        rec = client.submit(SLOW)
        import time
        for _ in range(200):
            if client.get_run(rec["run_id"])["state"] == "RUNNING":
                break
            time.sleep(0.02)
        client.kill(rec["run_id"])
        final = client.wait(rec["run_id"], timeout=30)
        assert final["state"] == "KILLED"

    def test_trace_spans_metrics_status(self, client):
        rec = client.submit(QUICK)
        client.wait(rec["run_id"])
        events = client.trace(rec["run_id"])
        assert events and client.trace(rec["run_id"], limit=2) == events[-2:]
        spans = client.spans(rec["run_id"])
        assert spans and all("duration" in s for s in spans)
        m = client.metrics(rec["run_id"])
        assert m["live"] is False and "metrics" in m
        text = client.status_text(rec["run_id"])
        assert rec["run_id"] in text

    def test_usage_and_tenants(self, client):
        rec = client.submit(QUICK)
        client.wait(rec["run_id"])
        u = client.usage()
        assert u["max_running"] >= 1
        assert "alice" in client.tenants()


class TestErrorMapping:

    def test_400_bad_spec(self, client):
        with pytest.raises(InvalidRunSpec):
            client.submit({"app": "no_such_app"})
        with pytest.raises(InvalidRunSpec):
            client.submit({"app": "jacobi", "bogus_field": 1})

    def test_404_unknown_run(self, client):
        with pytest.raises(UnknownRun):
            client.get_run("r999999")
        with pytest.raises(UnknownRun):
            client.fetch_artifact("r999999", "x.bin")

    def test_429_over_quota(self, stack):
        _, server = stack
        bob = ServiceClient(server.url, tenant="bob")
        bob.submit(SLOW)
        with pytest.raises(QuotaExceeded):
            bob.submit(SLOW)

    def test_403_cross_tenant_kill(self, stack, client):
        svc, server = stack
        rec = client.submit(SLOW)
        mallory = ServiceClient(server.url, tenant="mallory")
        from repro.service.client import ServiceClientError
        with pytest.raises(ServiceClientError) as ei:
            mallory.kill(rec["run_id"])
        assert ei.value.status == 403
        client.kill(rec["run_id"])      # the owner still can
        client.wait(rec["run_id"], timeout=30)

    def test_404_unknown_route(self, stack):
        _, server = stack
        req = urllib.request.Request(server.url + "/frobnicate")
        with pytest.raises(urllib.error.HTTPError) as ei:
            urllib.request.urlopen(req)
        assert ei.value.code == 404

    def test_error_envelope_shape(self, stack):
        _, server = stack
        try:
            urllib.request.urlopen(server.url + "/runs/r999999")
        except urllib.error.HTTPError as e:
            body = json.loads(e.read())
            assert body["error"] == "UnknownRun" and body["detail"]
        else:
            raise AssertionError("expected 404")
