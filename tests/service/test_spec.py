"""RunSpec: validation and JSON round-trip."""

import pytest

from repro.errors import InvalidRunSpec
from repro.service.spec import RunSpec


class TestRoundTrip:

    def test_defaults_round_trip(self):
        s = RunSpec(app="jacobi")
        assert RunSpec.from_dict(s.to_dict()) == s

    def test_full_round_trip(self):
        s = RunSpec(app="chaos_jacobi", params={"n": 16, "sweeps": 2},
                    fault_plan="pisces-fault-plan v1\n", trace=True,
                    checkpoint_every=5000, exec_core="coop",
                    window_path="batched", task_bodies="callable",
                    run_seed=42)
        assert RunSpec.from_dict(s.to_dict()) == s

    def test_dict_is_json_stable(self):
        import json
        s = RunSpec(app="spin", params={"rounds": 5})
        assert json.loads(json.dumps(s.to_dict())) == s.to_dict()


class TestValidation:

    def test_missing_app_refused(self):
        with pytest.raises(InvalidRunSpec):
            RunSpec(app="")

    def test_unknown_field_refused(self):
        with pytest.raises(InvalidRunSpec, match="unknown spec field"):
            RunSpec.from_dict({"app": "jacobi", "sweeps": 3})

    def test_bad_exec_core_refused(self):
        with pytest.raises(InvalidRunSpec, match="exec_core"):
            RunSpec(app="jacobi", exec_core="quantum")

    def test_bad_window_path_refused(self):
        with pytest.raises(InvalidRunSpec, match="window_path"):
            RunSpec(app="jacobi", window_path="slow")

    def test_bad_task_bodies_refused(self):
        with pytest.raises(InvalidRunSpec, match="task_bodies"):
            RunSpec(app="jacobi", task_bodies="threads")

    def test_negative_checkpoint_refused(self):
        with pytest.raises(InvalidRunSpec):
            RunSpec(app="jacobi", checkpoint_every=-1)

    def test_params_must_be_object(self):
        with pytest.raises(InvalidRunSpec):
            RunSpec(app="jacobi", params=[1, 2])

    def test_non_dict_refused(self):
        with pytest.raises(InvalidRunSpec):
            RunSpec.from_dict(["jacobi"])


def test_fingerprint_elides_source():
    s = RunSpec(app="fortran", params={"source": "X" * 999, "slots": 2})
    app, params = s.fingerprint()
    assert app == "fortran"
    assert "999" not in params and "slots=2" in params
