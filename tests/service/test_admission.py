"""Admission: quotas at submit and run time, DRR fair share."""

import pytest

from repro.errors import QuotaExceeded
from repro.service.admission import AdmissionScheduler, TenantQuota
from repro.service.spec import RunSpec
from repro.service.store import ADMITTED, QUEUED, RunStore

SPIN = RunSpec(app="spin", params={"rounds": 3})           # 1 PE
FORCE = RunSpec(app="jacobi_force", params={"force_pes": 3})  # 4 PEs

GENEROUS = TenantQuota(max_running=99, max_queued=99, pe_budget=999)


@pytest.fixture
def store(tmp_path):
    return RunStore(tmp_path / "store")


class TestSubmitQuota:

    def test_under_quota_passes(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_queued=2))
        store.create("t", SPIN)
        sched.check_submit("t")

    def test_max_queued_refused(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_queued=2))
        store.create("t", SPIN)
        store.create("t", SPIN)
        with pytest.raises(QuotaExceeded, match="max_queued"):
            sched.check_submit("t")

    def test_admitted_counts_as_waiting(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_queued=2))
        a = store.create("t", SPIN)
        store.create("t", SPIN)
        store.transition(a.run_id, ADMITTED)
        with pytest.raises(QuotaExceeded):
            sched.check_submit("t")

    def test_quotas_are_per_tenant(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_queued=1))
        store.create("a", SPIN)
        with pytest.raises(QuotaExceeded):
            sched.check_submit("a")
        sched.check_submit("b")


class TestRunQuotas:

    def test_max_running_gates_selection(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_running=1, max_queued=99))
        store.create("t", SPIN)
        store.create("t", SPIN)
        assert sched.select() is not None       # first admitted
        assert sched.select() is None           # second gated

    def test_pe_budget_gates_selection(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_running=99, max_queued=99,
                                             pe_budget=5))
        store.create("t", FORCE)                # 4 PEs
        store.create("t", FORCE)                # would be 8 > 5
        assert sched.select() is not None
        assert sched.select() is None

    def test_one_tenant_blocked_does_not_block_others(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_running=1, max_queued=99))
        store.create("a", SPIN)
        store.create("a", SPIN)
        store.create("b", SPIN)
        first = sched.select()
        second = sched.select()
        assert {first.tenant, second.tenant} == {"a", "b"}
        assert sched.select() is None


class TestFairShare:

    def test_drr_interleaves_tenants_despite_burst(self, store):
        """Tenant a floods 4 runs before b submits 2; selection must
        alternate, not drain a's burst first."""
        sched = AdmissionScheduler(store, default_quota=GENEROUS)
        for _ in range(4):
            store.create("a", SPIN)
        for _ in range(2):
            store.create("b", SPIN)
        order = [sched.select().tenant for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "a"]

    def test_three_tenants_round_robin(self, store):
        sched = AdmissionScheduler(store, default_quota=GENEROUS)
        for t in ("c", "c", "a", "a", "b", "b"):
            store.create(t, SPIN)
        order = [sched.select().tenant for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_expensive_runs_admitted_less_often(self, store):
        """DRR with a quantum below the expensive run's cost: tenant a
        (1-PE runs) gets several runs per visit-cycle while tenant b
        (4-PE runs) must bank deficit across rotations."""
        sched = AdmissionScheduler(store, default_quota=GENEROUS, quantum=2)
        for _ in range(4):
            store.create("a", SPIN)
        for _ in range(2):
            store.create("b", FORCE)
        order = []
        for _ in range(10):
            rec = sched.select()
            if rec is None:
                break
            order.append(rec.tenant)
        # b's first 4-PE run needs two quanta (2 x 2 >= 4): admitted on
        # b's second visit, after a has already had two turns.
        assert order.index("b") >= 2
        assert order.count("a") == 4 and order.count("b") == 2

    def test_selection_marks_admitted(self, store):
        sched = AdmissionScheduler(store, default_quota=GENEROUS)
        rec = store.create("t", SPIN)
        got = sched.select()
        assert got.run_id == rec.run_id and got.state == ADMITTED
        assert store.get(rec.run_id).state == ADMITTED
        assert store.list(state=QUEUED) == []

    def test_empty_queue_selects_none(self, store):
        sched = AdmissionScheduler(store, default_quota=GENEROUS)
        assert sched.select() is None


class TestUsage:

    def test_usage_reflects_states_and_cost(self, store):
        sched = AdmissionScheduler(
            store, default_quota=TenantQuota(max_running=2, max_queued=8,
                                             pe_budget=16))
        store.create("t", FORCE)
        store.create("t", SPIN)
        assert sched.usage("t")["queued"] == 2
        sched.select()                           # admits the FORCE run
        u = sched.usage("t")
        assert u["running"] == 1 and u["queued"] == 1
        assert u["pes_in_use"] == 4
        assert u["pe_budget"] == 16
