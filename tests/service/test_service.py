"""RunService in-process: lifecycle, kill, recovery, live queries."""

import time

import pytest

from repro.errors import InvalidRunSpec, QuotaExceeded, UnknownRun
from repro.service import (DONE, KILLED, QUEUED, RUNNING, RunService,
                           TenantQuota)
from repro.service.spec import RunSpec
from repro.service.store import ADMITTED, RunStore

QUICK = {"app": "spin", "params": {"rounds": 5, "ticks_per_round": 10}}
SLOW = {"app": "spin", "params": {"rounds": 400000, "ticks_per_round": 10}}


def wait_state(svc, run_id, *states, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        rec = svc.get_run(run_id)
        if rec.state in states:
            return rec
        time.sleep(0.02)
    raise AssertionError(
        f"run {run_id} stuck in {svc.get_run(run_id).state}, "
        f"wanted {states}")


@pytest.fixture
def svc(tmp_path):
    s = RunService(tmp_path / "store", n_workers=2).start()
    yield s
    s.stop(timeout=10.0, kill_live=True)


class TestSubmitAndRun:

    def test_run_completes_with_artifacts(self, svc):
        rec = svc.submit("alice", QUICK)
        assert rec.state == QUEUED
        final = wait_state(svc, rec.run_id, DONE)
        assert final.exit["outcome"] == "done"
        assert final.exit["elapsed_ticks"] > 0
        assert "run.events.jsonl" in final.artifacts
        assert "manifest.json" in final.artifacts

    def test_record_carries_task_bodies_provenance(self, svc):
        """The service run record surfaces the full reproduction axes
        (including the task_bodies axis the manifest now records)."""
        rec = svc.submit("alice", QUICK)
        final = wait_state(svc, rec.run_id, DONE)
        assert final.provenance["task_bodies"] in ("auto", "callable")
        assert final.provenance["exec_core"] in ("threaded", "coop")
        assert final.provenance["dispatcher"]
        assert final.provenance["window_path"]

    def test_bad_tenant_refused(self, svc):
        with pytest.raises(InvalidRunSpec, match="tenant"):
            svc.submit("", QUICK)
        with pytest.raises(InvalidRunSpec, match="tenant"):
            svc.submit("no/slashes", QUICK)

    def test_bad_spec_refused_before_queueing(self, svc):
        with pytest.raises(InvalidRunSpec):
            svc.submit("alice", {"app": "nope"})
        assert svc.list_runs(tenant="alice") == []

    def test_over_quota_submit_refused(self, tmp_path):
        svc = RunService(tmp_path / "q", n_workers=1,
                         default_quota=TenantQuota(max_queued=1))
        try:
            svc.submit("a", SLOW)
            with pytest.raises(QuotaExceeded):
                svc.submit("a", SLOW)
        finally:
            svc.stop(kill_live=True)

    def test_failed_run_records_error(self, svc):
        # chaos_jacobi with on_death=abort and max_rounds too small to
        # converge returns normally; instead force a failure with a
        # spec whose app builds but whose run raises: kill the master
        # via a fault plan with strict sends... simplest determinate
        # failure: fortran source whose task divides by zero.
        src = ("      TASK BOOM\n"
               "      INTEGER N\n"
               "      N = 1 / 0\n"
               "      END TASK\n")
        rec = svc.submit("alice", {"app": "fortran",
                                   "params": {"source": src}})
        final = wait_state(svc, rec.run_id, DONE, "FAILED")
        assert final.state == "FAILED"
        assert "error" in final.exit


class TestKill:

    def test_kill_running_run(self, svc):
        rec = svc.submit("alice", SLOW)
        wait_state(svc, rec.run_id, RUNNING)
        svc.kill(rec.run_id)
        final = wait_state(svc, rec.run_id, KILLED, timeout=30.0)
        assert final.exit["outcome"] == "killed"

    def test_kill_queued_run_is_immediate(self, tmp_path):
        svc = RunService(tmp_path / "k", n_workers=1)
        try:
            # not started: stays QUEUED
            rec = svc.submit("alice", QUICK)
            out = svc.kill(rec.run_id)
            assert out.state == KILLED
        finally:
            svc.stop(kill_live=True)

    def test_kill_terminal_run_is_idempotent(self, svc):
        rec = svc.submit("alice", QUICK)
        wait_state(svc, rec.run_id, DONE)
        assert svc.kill(rec.run_id).state == DONE

    def test_kill_unknown_run(self, svc):
        with pytest.raises(UnknownRun):
            svc.kill("r424242")

    def test_killed_run_frees_the_worker(self, tmp_path):
        svc = RunService(tmp_path / "f", n_workers=1).start()
        try:
            blocker = svc.submit("a", SLOW)
            follower = svc.submit("a", QUICK)
            wait_state(svc, blocker.run_id, RUNNING)
            svc.kill(blocker.run_id)
            final = wait_state(svc, follower.run_id, DONE, timeout=60.0)
            assert final.state == DONE
        finally:
            svc.stop(kill_live=True)


class TestRecovery:

    def test_boot_requeues_interrupted_runs(self, tmp_path):
        root = tmp_path / "r"
        store = RunStore(root)
        rec = store.create("alice", RunSpec.from_dict(QUICK))
        store.transition(rec.run_id, ADMITTED)
        store.transition(rec.run_id, RUNNING, started_at=1.0)

        svc = RunService(root, n_workers=1)
        try:
            assert [r.run_id for r in svc.recovered] == [rec.run_id]
            svc.start()
            final = wait_state(svc, rec.run_id, DONE)
            assert final.recovered == 1
            assert final.exit["outcome"] == "done"
        finally:
            svc.stop(kill_live=True)


class TestLiveQueries:

    def test_live_metrics_and_trace_and_status(self, svc):
        rec = svc.submit("alice", SLOW)
        wait_state(svc, rec.run_id, RUNNING)
        m = svc.metrics(rec.run_id)
        assert m["live"] is True and isinstance(m["metrics"], dict)
        status = svc.status_text(rec.run_id)
        assert "PE" in status or "TASK" in status.upper()
        svc.kill(rec.run_id)
        wait_state(svc, rec.run_id, KILLED, timeout=30.0)

    def test_archived_trace_and_spans(self, svc):
        rec = svc.submit("alice", QUICK)
        wait_state(svc, rec.run_id, DONE)
        events = svc.trace_events(rec.run_id)
        assert events and all("etype" in e for e in events)
        tail = svc.trace_events(rec.run_id, limit=3)
        assert tail == events[-3:]
        spans = svc.trace_spans(rec.run_id)
        assert spans and all(s["end"] >= s["start"] for s in spans)

    def test_health(self, svc):
        h = svc.health()
        assert h["status"] == "ok" and h["workers"] == 2
        assert "spin" in h["apps"]
