"""Unit tests: monospace table formatting."""

import pytest

from repro.util.tables import format_table


class TestFormatTable:
    def test_alignment_numeric_right_text_left(self):
        out = format_table(["name", "n"], [["a", 1], ["bbb", 100]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        # numeric column right-aligned: 1 under the 0 of 100
        assert lines[2].endswith("  1".rstrip()) or "  1" in lines[2]
        assert "100" in lines[3]

    def test_title_line(self):
        out = format_table(["a"], [[1]], title="TITLE")
        assert out.splitlines()[0] == "TITLE"

    def test_float_formatting(self):
        out = format_table(["x"], [[3.14159265]])
        assert "3.142" in out

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_column_width_grows_with_content(self):
        out = format_table(["h"], [["wide-content-here"]])
        header, rule, row = out.splitlines()
        assert len(rule) >= len("wide-content-here")
