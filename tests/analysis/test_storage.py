"""Unit tests: the section-13 storage measurement helpers."""

import pytest

from repro.analysis.storage import (
    PAPER_LOCAL_BOUND,
    PAPER_SHARED_TABLE_BOUND,
    measure,
    storage_table,
)
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32


@pytest.fixture
def nasa_vm(registry):
    """The paper's own machine with the section-9 example configuration."""
    cfg = Configuration(
        clusters=(ClusterSpec(1, 3, 4),
                  ClusterSpec(2, 4, 4, tuple(range(16, 21))),
                  ClusterSpec(3, 5, 4, tuple(range(7, 16))),
                  ClusterSpec(4, 6, 4, tuple(range(7, 16)))),
        name="section9")
    vm = PiscesVM(cfg, registry=registry, machine=nasa_langley_flex32())
    yield vm
    vm.shutdown()


class TestPaperBounds:
    def test_local_overhead_under_2_5_percent(self, nasa_vm):
        m = measure(nasa_vm)
        assert m.local_fraction_max < PAPER_LOCAL_BOUND
        assert m.meets_local_bound

    def test_shared_tables_under_0_3_percent(self, nasa_vm):
        m = measure(nasa_vm)
        assert 0 < m.shared_table_fraction < PAPER_SHARED_TABLE_BOUND
        assert m.meets_shared_bound

    def test_table_render(self, nasa_vm):
        m = measure(nasa_vm)
        txt = storage_table([m])
        assert "SECTION 13" in txt and "OK" in txt
        assert "section9" in txt

    def test_run_report_combines_sections(self, nasa_vm, registry):
        from repro.analysis.report import run_report

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.compute(100)

        nasa_vm.tracer.enable_all()
        nasa_vm.run("MAIN", shutdown=False)
        rep = run_report(nasa_vm)
        assert "RUN METRICS" in rep and "SECTION 13" in rep and "#" in rep


class TestEnrichedReport:
    def test_report_includes_traffic_and_pe_occupancy(self, nasa_vm,
                                                      registry):
        from repro.analysis.report import run_report
        from repro.core.taskid import SELF

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "NOTE")
            ctx.accept("NOTE")
            ctx.compute(200)

        nasa_vm.tracer.enable_all()
        nasa_vm.engine.record_slices = True
        nasa_vm.run("MAIN", shutdown=False)
        rep = run_report(nasa_vm)
        assert "MESSAGE TRAFFIC" in rep
        assert "PE  3" in rep          # per-PE occupancy chart
