"""Behavioral tests: the configuration-tuning sweep helpers."""

import pytest

from repro.analysis.tuning import force_size_sweep, sweep
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.task import TaskRegistry
from repro.flex.presets import small_flex


@pytest.fixture
def force_program():
    reg = TaskRegistry()

    def region(m):
        for _ in m.presched(range(16)):
            m.compute(400)

    @reg.tasktype("WORK")
    def work(ctx):
        ctx.forcesplit(region)
        return "done"

    return reg


class TestForceSizeSweep:
    def test_sweep_finds_larger_forces_faster(self, force_program):
        res = force_size_sweep("WORK", force_program,
                               lambda: small_flex(12), sizes=(1, 2, 4))
        elapsed = [t.elapsed for t in res.trials]
        assert elapsed[0] > elapsed[1] > elapsed[2]
        assert res.best.label == "force of 4"

    def test_values_preserved(self, force_program):
        res = force_size_sweep("WORK", force_program,
                               lambda: small_flex(12), sizes=(1, 2))
        assert all(t.value == "done" for t in res.trials)

    def test_table_marks_best(self, force_program):
        res = force_size_sweep("WORK", force_program,
                               lambda: small_flex(12), sizes=(1, 4))
        txt = res.table()
        assert "CONFIGURATION TUNING" in txt and "<-- best" in txt


class TestGenericSweep:
    def test_custom_configuration_family(self, force_program):
        configs = [
            ("1 slot", Configuration(clusters=(ClusterSpec(1, 3, 1),),
                                     name="a")),
            ("4 slots", Configuration(clusters=(ClusterSpec(1, 3, 4),),
                                      name="b")),
        ]
        res = sweep("WORK", force_program, configs,
                    lambda: small_flex(12))
        assert len(res.trials) == 2
        assert {t.label for t in res.trials} == {"1 slot", "4 slots"}
