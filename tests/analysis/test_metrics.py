"""Unit tests: run metrics, speedup tables, load balance."""

import pytest

from repro.analysis.metrics import (
    ScalingPoint,
    collect_metrics,
    load_balance,
    lock_contention,
    speedup_table,
)
from repro.core.taskid import SELF


class TestCollectMetrics:
    def test_metrics_reflect_run(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.compute(500)
            ctx.send(SELF, "X")
            ctx.accept("X")

        vm = make_vm(registry=registry)
        vm.run("MAIN")
        m = collect_metrics(vm)
        assert m.elapsed >= 500
        assert m.messages_sent >= 1
        assert m.accepts == 1
        assert m.tasks_started == 1
        assert 0.0 < m.mean_utilization <= 1.0
        assert "RUN METRICS" in m.table()

    def test_lock_contention_listing(self, make_vm, registry):
        def region(mm):
            with mm.critical("L"):
                mm.compute(50)

        @registry.tasktype("T", locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)

        from repro.config.configuration import ClusterSpec, Configuration
        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(4, 5)),))
        vm = make_vm(config=cfg, registry=registry)
        vm.run("T")
        rows = lock_contention(vm)
        assert len(rows) == 1
        name, acq, contended = rows[0]
        assert acq == 3 and name.endswith("/L")


class TestSpeedupTable:
    def test_relative_to_first_point(self):
        pts = [ScalingPoint("serial", 1, 1000),
               ScalingPoint("force4", 4, 300)]
        tbl = speedup_table(pts)
        assert "3.33x" in tbl and "83%" in tbl

    def test_empty(self):
        assert "no scaling points" in speedup_table([])


class TestLoadBalance:
    def test_perfect_balance_is_one(self):
        assert load_balance({0: 5, 1: 5, 2: 5}) == pytest.approx(1.0)

    def test_imbalance_grows(self):
        assert load_balance({0: 10, 1: 0}) == pytest.approx(2.0)

    def test_empty_map(self):
        assert load_balance({}) == 1.0


class TestTrafficMatrix:
    def test_counts_flows_by_tasktype(self, make_vm, registry):
        from repro.analysis.metrics import traffic_matrix, traffic_table
        from repro.core.taskid import PARENT, SAME, USER

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "A")
            ctx.send(PARENT, "B")
            ctx.send(USER, "NOTE")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            ctx.accept("A")
            ctx.accept("B")

        vm = make_vm(registry=registry)
        vm.tracer.enable_all()
        vm.run("MAIN")
        m = traffic_matrix(vm)
        assert m[("CHILD", "MAIN")] == 2
        assert m[("CHILD", "<ucontr>")] == 1
        txt = traffic_table(vm)
        assert "CHILD" in txt and "messages" in txt

    def test_without_tracing_reports_empty(self, make_vm, registry):
        from repro.analysis.metrics import traffic_table

        @registry.tasktype("MAIN")
        def main(ctx):
            pass

        vm = make_vm(registry=registry)
        vm.run("MAIN")
        assert "no MSG_SEND" in traffic_table(vm)
