"""Unit tests: off-line timeline reconstruction and rendering."""

import io

import pytest

from repro.analysis.timeline import Timeline
from repro.core.taskid import PARENT, SAME


@pytest.fixture
def traced_run(make_vm, registry):
    @registry.tasktype("CHILD")
    def child(ctx, k):
        ctx.compute(200)
        ctx.send(PARENT, "DONE", k)

    @registry.tasktype("MAIN")
    def main(ctx):
        for k in range(3):
            ctx.initiate("CHILD", k, on=SAME)
        ctx.accept("DONE", count=3)

    vm = make_vm(registry=registry)
    vm.tracer.enable_all()
    vm.run("MAIN")
    return vm


class TestReconstruction:
    def test_spans_have_start_end_and_type(self, traced_run):
        tl = Timeline.from_events(traced_run.tracer.events)
        spans = tl.completed_spans()
        assert len(spans) == 4    # MAIN + 3 children
        for s in spans:
            assert s.end > s.start >= 0
        types = sorted(s.tasktype for s in spans)
        assert types == ["CHILD", "CHILD", "CHILD", "MAIN"]

    def test_counters_accumulate(self, traced_run):
        tl = Timeline.from_events(traced_run.tracer.events)
        main = [s for s in tl.spans.values() if s.tasktype == "MAIN"][0]
        assert main.accepts == 3
        child = [s for s in tl.spans.values() if s.tasktype == "CHILD"][0]
        assert child.sends >= 1

    def test_message_edges_extracted(self, traced_run):
        tl = Timeline.from_events(traced_run.tracer.events)
        done_edges = [e for e in tl.edges if e.mtype == "DONE"]
        assert len(done_edges) == 3

    def test_file_roundtrip(self, traced_run):
        buf = io.StringIO()
        for e in traced_run.tracer.events:
            buf.write(e.line() + "\n")
        buf.seek(0)
        tl = Timeline.from_file(buf)
        assert len(tl.completed_spans()) == 4

    def test_gantt_renders_all_tasks(self, traced_run):
        tl = Timeline.from_events(traced_run.tracer.events)
        g = tl.gantt(width=40)
        assert g.count("#") > 0
        assert "MAIN" in g and "CHILD" in g

    def test_gantt_empty_trace(self):
        assert "no completed task spans" in Timeline().gantt()

    def test_concurrency_profile_peaks_during_children(self, traced_run):
        tl = Timeline.from_events(traced_run.tracer.events)
        prof = tl.concurrency_profile(buckets=20)
        assert max(prof) >= 2
