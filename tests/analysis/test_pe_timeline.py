"""Unit tests: per-PE timelines from recorded engine slices."""

import pytest

from repro.analysis.pe_timeline import activities, idle_report, pe_gantt


SLICES = [
    (3, 0, 100, "a"),
    (3, 150, 200, "b"),
    (4, 0, 200, "c"),
]


class TestActivities:
    def test_busy_and_utilization(self):
        acts = activities(SLICES)
        assert acts[3].busy == 150
        assert acts[4].busy == 200
        assert acts[4].utilization == pytest.approx(1.0)
        assert acts[3].utilization == pytest.approx(0.75)

    def test_largest_gap(self):
        acts = activities(SLICES)
        assert acts[3].largest_gap() == 50
        assert acts[4].largest_gap() == 0

    def test_idle_report_rows(self):
        rows = idle_report(SLICES)
        assert [r[0] for r in rows] == [3, 4]

    def test_empty(self):
        assert activities([]) == {}
        assert "no slices recorded" in pe_gantt([])


class TestGantt:
    def test_renders_rows_per_pe(self):
        g = pe_gantt(SLICES, width=40)
        assert "PE  3" in g and "PE  4" in g
        assert g.count("#") > 0

    def test_live_recording_from_vm(self, make_vm, registry):
        from repro.core.taskid import ANY, PARENT

        @registry.tasktype("W")
        def w(ctx, k):
            ctx.compute(300)
            ctx.send(PARENT, "DONE")

        @registry.tasktype("MAIN")
        def main(ctx):
            for k in range(2):
                ctx.initiate("W", k, on=ANY)
            ctx.accept("DONE", count=2)

        vm = make_vm(registry=registry)
        vm.engine.record_slices = True
        vm.run("MAIN")
        pes = {s[0] for s in vm.engine.slices}
        assert {3, 4} <= pes
        g = pe_gantt(vm.engine.slices)
        assert "PE  3" in g
        # both worker PEs show real utilization
        rows = {pe: u for pe, u, _ in idle_report(vm.engine.slices)}
        assert rows[4] > 0
