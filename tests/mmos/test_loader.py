"""Unit tests: loadfile building and downloading."""

import pytest

from repro.errors import BadPE
from repro.flex.presets import small_flex
from repro.mmos.loader import (
    CAT_MMOS_KERNEL,
    CAT_PISCES_CODE,
    CAT_USER_CODE,
    Loadfile,
)


class TestLoadfile:
    def test_sections_accumulate(self):
        lf = Loadfile().add(CAT_USER_CODE, 100).add(CAT_USER_CODE, 50)
        assert lf.sections[CAT_USER_CODE] == 150
        assert lf.total_bytes() == 150

    def test_negative_section_rejected(self):
        with pytest.raises(ValueError):
            Loadfile().add(CAT_USER_CODE, -1)

    def test_load_onto_makes_bytes_resident_on_each_pe(self):
        m = small_flex(6)
        lf = Loadfile().add(CAT_MMOS_KERNEL, 1000).add(CAT_PISCES_CODE, 200)
        loaded = lf.load_onto(m, [3, 4])
        assert loaded == [3, 4]
        for pe in (3, 4):
            assert m.pe(pe).local.resident_bytes() == 1200
            assert m.pe(pe).booted
        assert m.pe(5).local.resident_bytes() == 0

    def test_load_onto_unix_pe_rejected(self):
        m = small_flex(6)
        lf = Loadfile().add(CAT_MMOS_KERNEL, 10)
        with pytest.raises(BadPE):
            lf.load_onto(m, [1])

    def test_reload_replaces_previous_image(self):
        # PEs are rebooted after each user program (section 11), so a
        # second download must not stack on the first.
        m = small_flex(6)
        Loadfile().add(CAT_MMOS_KERNEL, 500).load_onto(m, [3])
        Loadfile().add(CAT_MMOS_KERNEL, 700).load_onto(m, [3])
        assert m.pe(3).local.resident_bytes() == 700

    def test_describe_lists_sections(self):
        lf = Loadfile().add(CAT_MMOS_KERNEL, 5).add(CAT_USER_CODE, 7)
        d = lf.describe()
        assert "12 bytes" in d and CAT_USER_CODE in d
