"""Unit tests for the coop (single-threaded discrete-event) core.

Covers the execution-strategy split of the coroutine-core tentpole:
core selection (factory + env), coroutine and callable bodies on both
cores, the KernelOp protocol (charge/preempt/block yields, wake-info
resume values, timeout observation), kill/exit semantics parity with
the threaded oracle, deadlock parity, and the shutdown contract
(``leaked_threads`` / ``drained_accept_waiters``) for a core where
coroutine processes have no OS thread to leak.
"""

import threading

import pytest

from repro.errors import DeadlockError, EngineShutdown, ProcessKilled
from repro.flex.presets import small_flex
from repro.mmos.coop import CoopEngine
from repro.mmos.process import (
    ProcState,
    co_block,
    co_charge,
    co_preempt,
)
from repro.mmos.scheduler import (
    EXEC_CORES,
    Engine,
    create_engine,
    default_exec_core,
)

BOTH_CORES = pytest.mark.parametrize("core", ["threaded", "coop"])


def make_engine(core="coop", **kw):
    return create_engine(small_flex(8), exec_core=core, **kw)


class TestCoreSelection:
    def test_factory_returns_the_right_class(self):
        assert type(make_engine("threaded")) is Engine
        assert type(make_engine("coop")) is CoopEngine
        assert make_engine("threaded").exec_core == "threaded"
        assert make_engine("coop").exec_core == "coop"

    def test_bad_core_rejected(self):
        with pytest.raises(ValueError, match="exec_core"):
            make_engine("fibers")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.delenv("PISCES_EXEC_CORE", raising=False)
        assert default_exec_core() == "threaded"
        monkeypatch.setenv("PISCES_EXEC_CORE", "coop")
        assert default_exec_core() == "coop"
        assert type(create_engine(small_flex(8))) is CoopEngine
        monkeypatch.setenv("PISCES_EXEC_CORE", "nope")
        with pytest.raises(ValueError, match="PISCES_EXEC_CORE"):
            default_exec_core()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("PISCES_EXEC_CORE", "coop")
        assert type(create_engine(small_flex(8),
                                  exec_core="threaded")) is Engine

    def test_exec_cores_constant(self):
        assert EXEC_CORES == ("threaded", "coop")


class TestCoroutineBodies:
    @BOTH_CORES
    def test_basic_charge_preempt_block(self, core):
        eng = make_engine(core)

        def body():
            yield co_charge(10)
            yield co_preempt(2)
            yield co_block("nap", deadline=eng.now() + 5, cost=1)
            return "done"

        p = eng.spawn("w", 3, body)
        eng.run()
        assert p.state is ProcState.DONE
        assert p.result == "done"
        eng.shutdown()

    @BOTH_CORES
    def test_no_thread_for_coroutines_on_coop(self, core):
        eng = make_engine(core)
        p = eng.spawn("w", 3, lambda: iter(()))  # not a genfunc: callable
        q = None

        def body():
            yield co_charge(1)

        q = eng.spawn("g", 4, body)
        eng.run()
        if core == "coop":
            assert q.thread is None, "coroutine body must not get a thread"
        else:
            assert q.thread is not None
        eng.shutdown()

    @BOTH_CORES
    def test_wake_info_is_the_yield_value(self, core):
        eng = make_engine(core)
        got = []

        def waiter():
            info = yield co_block("mailbox")
            got.append(info)

        w = eng.spawn("waiter", 3, waiter)

        def waker():
            yield co_charge(3)
            eng.wake(w, info={"payload": 7})
            yield co_preempt(1)

        eng.spawn("waker", 4, waker)
        eng.run()
        assert got == [{"payload": 7}]
        eng.shutdown()

    @BOTH_CORES
    def test_deadline_timeout_observable(self, core):
        eng = make_engine(core)
        seen = []

        def body():
            yield co_block("accept(X)", deadline=eng.now() + 50)
            seen.append(eng.current().timed_out)

        eng.spawn("w", 3, body)
        eng.run()
        assert seen == [True]
        eng.shutdown()

    @BOTH_CORES
    def test_now_and_charge_allowed_inside_gen_body(self, core):
        eng = make_engine(core)
        stamps = []

        def body():
            stamps.append(eng.now())
            eng.charge(25)            # plain call, allowed on both cores
            yield co_preempt(0)
            stamps.append(eng.now())

        eng.spawn("w", 3, body)
        eng.run()
        assert stamps[1] - stamps[0] == 25
        eng.shutdown()

    def test_blocking_kernel_call_from_gen_body_rejected_on_coop(self):
        eng = make_engine("coop")

        def body():
            eng.preempt(1)            # must yield co_preempt instead
            yield co_charge(1)

        eng.spawn("w", 3, body)
        with pytest.raises(RuntimeError, match="co_preempt"):
            eng.run()
        eng.shutdown()

    @BOTH_CORES
    def test_non_kernelop_yield_rejected(self, core):
        eng = make_engine(core)

        def body():
            yield 42

        eng.spawn("w", 3, body)
        with pytest.raises(RuntimeError, match="KernelOp"):
            eng.run()
        eng.shutdown()

    @BOTH_CORES
    def test_body_exception_surfaces(self, core):
        eng = make_engine(core)

        def body():
            yield co_charge(1)
            raise ValueError("boom")

        eng.spawn("w", 3, body)
        with pytest.raises(ValueError, match="boom"):
            eng.run()
        eng.shutdown()


class TestKillSemantics:
    @BOTH_CORES
    def test_killed_coroutine_sees_generator_exit_not_processkilled(
            self, core):
        """Parity contract: the threaded trampoline raises ProcessKilled
        *outside* the generator, so a body can only ever observe
        GeneratorExit (via close) -- the coop core must match."""
        eng = make_engine(core)
        observed = []

        def victim():
            try:
                yield co_block("forever")
            except GeneratorExit:
                observed.append("generator-exit")
                raise
            except ProcessKilled:      # pragma: no cover - would be a bug
                observed.append("process-killed")

        v = eng.spawn("victim", 3, victim)

        def killer():
            yield co_charge(5)
            eng.kill(v)
            yield co_preempt(1)

        eng.spawn("killer", 4, killer)
        eng.run()
        assert observed == ["generator-exit"]
        assert v.state is ProcState.DONE
        assert v.result is None
        eng.shutdown()

    @BOTH_CORES
    def test_on_exit_runs_for_killed_coroutine(self, core):
        eng = make_engine(core)
        log = []

        def victim():
            yield co_block("forever")

        v = eng.spawn("victim", 3, victim)
        v.on_exit = lambda proc: log.append("exited")

        def killer():
            yield co_charge(5)
            eng.kill(v)
            yield co_preempt(1)

        eng.spawn("killer", 4, killer)
        eng.run()
        assert log == ["exited"]
        eng.shutdown()


class TestDeterminismParity:
    def _mixed_run(self, core):
        eng = make_engine(core)
        eng.record_slices = True
        order = []

        def gen_body(tag, rounds):
            def body():
                for i in range(rounds):
                    order.append((tag, i, eng.now()))
                    yield co_charge(3)
                    yield co_preempt(2)
            return body

        def fn_body(tag, rounds):
            def body():
                for i in range(rounds):
                    order.append((tag, i, eng.now()))
                    eng.charge(3)
                    eng.preempt(2)
            return body

        for k in range(4):
            eng.spawn(f"g{k}", 3 + (k % 4), gen_body(f"g{k}", 5))
            eng.spawn(f"f{k}", 3 + (k % 4), fn_body(f"f{k}", 5))
        eng.run()
        out = (order, list(eng.slices), eng.machine.clocks.snapshot(),
               eng.dispatch_count)
        eng.shutdown()
        return out

    def test_mixed_body_population_identical_across_cores(self):
        assert self._mixed_run("coop") == self._mixed_run("threaded")

    @BOTH_CORES
    def test_deadlock_detected_for_parked_coroutines(self, core):
        eng = make_engine(core)

        def body():
            yield co_block("park")

        eng.spawn("p1", 3, body)
        eng.spawn("p2", 4, body)
        with pytest.raises(DeadlockError):
            eng.run()
        eng.shutdown()


class TestCoopShutdown:
    def test_gen_only_run_never_leaks_threads(self):
        eng = make_engine("coop")

        def parked():
            yield co_block("park")

        def acceptor():
            yield co_block("accept(RESULT)")

        eng.spawn("parked", 3, parked, daemon=True)
        eng.spawn("acceptor", 4, acceptor, daemon=True)
        assert eng.step() and eng.step()
        eng.shutdown()
        assert eng.leaked_threads == []
        assert eng.drained_accept_waiters == ["acceptor"]

    def test_coroutine_finally_runs_at_shutdown_drain(self):
        eng = make_engine("coop")
        log = []

        def parked():
            try:
                yield co_block("park")
            finally:
                log.append("cleanup")

        eng.spawn("parked", 3, parked, daemon=True)
        assert eng.step()
        eng.shutdown()
        assert log == ["cleanup"]
        assert eng.leaked_threads == []

    def test_no_user_threads_exist_in_a_gen_only_run(self):
        eng = make_engine("coop")
        before = threading.active_count()

        def body():
            for _ in range(3):
                yield co_charge(2)
                yield co_preempt(1)

        for k in range(8):
            eng.spawn(f"w{k}", 3 + (k % 4), body)
        assert threading.active_count() == before, \
            "spawning coroutine processes must not create threads"
        eng.run()
        eng.shutdown()
        assert eng.leaked_threads == []

    def test_stuck_callable_body_reported_like_threaded_core(self):
        eng = make_engine("coop")
        release = threading.Event()

        def stubborn():
            try:
                eng.block("forever")
            except ProcessKilled:
                # Swallows the kill and parks outside any kernel point.
                release.wait()

        eng.spawn("stuck", 3, stubborn, daemon=True)
        assert eng.step()
        with pytest.warns(RuntimeWarning, match="leaked 1 thread"):
            eng.shutdown(join_timeout=0.1)
        assert eng.leaked_threads == ["stuck"]
        release.set()

    def test_accept_waiter_callable_unwinds_with_engine_shutdown(self):
        eng = make_engine("coop")
        seen = []

        def waiter():
            try:
                eng.block("accept(RESULT)")
            except EngineShutdown as e:
                seen.append(str(e))
                raise

        eng.spawn("waiter", 3, waiter, daemon=True)
        assert eng.step()
        eng.shutdown()
        assert eng.drained_accept_waiters == ["waiter"]
        assert len(seen) == 1 and "shut down" in seen[0]
        assert eng.leaked_threads == []
