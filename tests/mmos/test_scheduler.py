"""Unit tests: the deterministic discrete-event engine."""

import pytest

from repro.errors import (
    DeadlockError,
    NotInProcess,
    ProcessKilled,
    TimeLimitExceeded,
)
from repro.flex.presets import small_flex
from repro.mmos.process import ProcState
from repro.mmos.scheduler import Engine


def make_engine(n_pes=8, **kw):
    return Engine(small_flex(n_pes), **kw)


class TestBasicExecution:
    def test_single_process_runs_to_completion(self):
        eng = make_engine()
        p = eng.spawn("t", 3, lambda: 42)
        eng.run()
        assert p.result == 42
        assert p.state is ProcState.DONE

    def test_charge_advances_pe_clock(self):
        eng = make_engine()

        def body():
            eng.charge(123)

        eng.spawn("t", 3, body)
        eng.run()
        assert eng.machine.clocks[3].ticks == 123

    def test_processes_on_different_pes_overlap_in_virtual_time(self):
        eng = make_engine()

        def body():
            eng.charge(100)

        eng.spawn("a", 3, body)
        eng.spawn("b", 4, body)
        eng.run()
        assert eng.machine.elapsed() == 100   # parallel, not 200

    def test_processes_on_same_pe_serialize(self):
        eng = make_engine()

        def body():
            eng.charge(100)

        eng.spawn("a", 3, body)
        eng.spawn("b", 3, body)
        eng.run()
        assert eng.machine.elapsed() == 200

    def test_round_robin_between_same_pe_processes(self):
        eng = make_engine()
        order = []

        def body(name):
            def run():
                for i in range(3):
                    eng.charge(10)
                    eng.preempt(0)
                    order.append(name)
            return run

        eng.spawn("a", 3, body("a"))
        eng.spawn("b", 3, body("b"))
        eng.run()
        assert order[:4] == ["a", "b", "a", "b"]

    def test_exception_in_process_propagates_to_run(self):
        eng = make_engine()

        def bad():
            raise ValueError("boom")

        eng.spawn("t", 3, bad)
        with pytest.raises(ValueError, match="boom"):
            eng.run()

    def test_spawn_on_unknown_pe_rejected(self):
        eng = make_engine(4)
        with pytest.raises(ValueError):
            eng.spawn("t", 99, lambda: None)


class TestBlockingAndWake:
    def test_wake_passes_info(self):
        eng = make_engine()
        got = {}

        def consumer():
            got["v"] = eng.block("waiting")

        def producer():
            eng.charge(50)
            eng.preempt(0)
            assert eng.wake(pc, info="payload")

        pc = eng.spawn("c", 3, consumer)
        eng.spawn("p", 4, producer)
        eng.run()
        assert got["v"] == "payload"

    def test_wake_time_is_respected(self):
        eng = make_engine()
        times = {}

        def consumer():
            eng.block("waiting")
            times["resumed"] = eng.now()

        def producer():
            eng.charge(10)
            eng.preempt(0)
            eng.wake(pc, at_time=500)   # event happens "later"

        pc = eng.spawn("c", 3, consumer)
        eng.spawn("p", 4, producer)
        eng.run()
        assert times["resumed"] >= 500

    def test_wake_of_non_blocked_process_returns_false(self):
        eng = make_engine()

        def a():
            eng.preempt(0)

        pa = eng.spawn("a", 3, a)

        def b():
            # pa is READY (or RUNNING), not BLOCKED
            assert not eng.wake(pa)

        eng.spawn("b", 4, b)
        eng.run()

    def test_timeout_fires_at_deadline(self):
        eng = make_engine()
        out = {}

        def body():
            eng.block("sleep", deadline=777)
            p = eng.current()
            out["timed_out"] = p.timed_out
            out["t"] = eng.now()

        eng.spawn("t", 3, body)
        eng.run()
        assert out["timed_out"] is True
        assert out["t"] == 777

    def test_wake_before_deadline_cancels_timeout(self):
        eng = make_engine()
        out = {}

        def sleeper():
            v = eng.block("sleep", deadline=10_000)
            out["timed_out"] = eng.current().timed_out
            out["v"] = v

        def waker():
            eng.charge(100)
            eng.preempt(0)
            eng.wake(ps, info="early")

        ps = eng.spawn("s", 3, sleeper)
        eng.spawn("w", 4, waker)
        eng.run()
        assert out["timed_out"] is False
        assert out["v"] == "early"


class TestDeadlockAndLimits:
    def test_deadlock_detected_with_dump(self):
        eng = make_engine()
        eng.spawn("stuck", 3, lambda: eng.block("never"))
        with pytest.raises(DeadlockError) as ei:
            eng.run()
        assert "never" in str(ei.value)

    def test_blocked_daemons_do_not_deadlock(self):
        eng = make_engine()
        eng.spawn("ctrl", 3, lambda: eng.block("serve"), daemon=True)
        eng.spawn("user", 4, lambda: 1)
        eng.run()   # returns normally

    def test_time_limit_enforced(self):
        eng = make_engine(time_limit=100)

        def body():
            for _ in range(100):
                eng.charge(50)
                eng.preempt(0)

        eng.spawn("t", 3, body)
        with pytest.raises(TimeLimitExceeded):
            eng.run()

    def test_kill_unwinds_blocked_process(self):
        eng = make_engine()
        cleaned = {}

        def victim():
            try:
                eng.block("forever")
            finally:
                cleaned["yes"] = True

        pv = eng.spawn("v", 3, victim)

        def killer():
            eng.charge(10)
            eng.preempt(0)
            eng.kill(pv)

        eng.spawn("k", 4, killer)
        eng.run()
        assert cleaned.get("yes")
        assert pv.state is ProcState.DONE

    def test_kill_is_idempotent_on_done_process(self):
        eng = make_engine()
        p = eng.spawn("t", 3, lambda: None)
        eng.run()
        eng.kill(p)   # no-op, no error
        assert p.state is ProcState.DONE


class TestEngineInterface:
    def test_kernel_calls_outside_process_rejected(self):
        eng = make_engine()
        with pytest.raises(NotInProcess):
            eng.charge(1)
        with pytest.raises(NotInProcess):
            eng.preempt()

    def test_now_outside_process_is_elapsed(self):
        eng = make_engine()
        eng.spawn("t", 3, lambda: eng.charge(99))
        eng.run()
        assert eng.now() == 99

    def test_negative_charge_rejected(self):
        eng = make_engine()

        def body():
            with pytest.raises(ValueError):
                eng.charge(-1)

        eng.spawn("t", 3, body)
        eng.run()

    def test_run_while_stops_on_predicate(self):
        eng = make_engine()
        count = {"n": 0}

        def body():
            for _ in range(10):
                count["n"] += 1
                eng.preempt(0)

        eng.spawn("t", 3, body)
        eng.run_while(lambda: count["n"] < 3)
        assert count["n"] == 3
        eng.shutdown()

    def test_state_dump_lists_live_processes(self):
        eng = make_engine()
        eng.spawn("alpha", 3, lambda: eng.block("zzz"))
        eng.step()
        dump = eng.state_dump()
        assert "alpha" in dump and "zzz" in dump
        eng.shutdown()

    def test_shutdown_reaps_all_threads(self):
        eng = make_engine()
        procs = [eng.spawn(f"p{i}", 3, lambda: eng.block("x"))
                 for i in range(4)]
        for _ in range(4):
            eng.step()
        eng.shutdown()
        for p in procs:
            assert p.state is ProcState.DONE
            assert not p.thread.is_alive()


class TestDeterminism:
    def test_identical_runs_produce_identical_schedules(self):
        def run_once():
            eng = make_engine()
            log = []

            def body(name, pe):
                def run():
                    for i in range(4):
                        eng.charge(7 * (1 + len(name)))
                        eng.preempt(0)
                        log.append((name, eng.now()))
                return run

            for i, pe in [(0, 3), (1, 4), (2, 3), (3, 5)]:
                eng.spawn(f"p{i}", pe, body(f"p{i}", pe))
            eng.run()
            return log

        assert run_once() == run_once()
