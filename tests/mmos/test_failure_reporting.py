"""Behavioral tests: deadlock report enrichment and shutdown draining.

A hang must be diagnosable from the error alone: the DeadlockError
carries every blocked process's name, wait reason and deadline, and its
dump distinguishes a crashed-PE hang from a true deadlock.  Shutdown
must fail-fast pending ACCEPT waiters with EngineShutdown rather than
abandoning them.
"""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import SAME
from repro.errors import DeadlockError, EngineShutdown, ProcessKilled
from repro.faults import FaultPlan, PECrash, plan_scope
from repro.flex.presets import small_flex
from repro.mmos.scheduler import Engine, create_engine


class TestDeadlockReport:
    def deadlock(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.vm.engine.block("waiting-forever")

        vm = make_vm(registry=registry)
        with pytest.raises(DeadlockError) as ei:
            vm.run("MAIN")
        return ei.value

    def test_blocked_processes_are_structured(self, make_vm, registry):
        err = self.deadlock(make_vm, registry)
        assert err.blocked, "DeadlockError.blocked must list the waiters"
        names = [name for name, _, _ in err.blocked]
        assert any("MAIN" in n for n in names)
        for name, blocked_on, deadline in err.blocked:
            assert isinstance(name, str) and blocked_on == "waiting-forever"
            assert deadline is None

    def test_message_names_each_waiter_and_reason(self, make_vm, registry):
        err = self.deadlock(make_vm, registry)
        s = str(err)
        assert "waiting-forever" in s
        assert "live processes" in s

    def test_true_deadlock_reports_no_failed_pes(self, make_vm, registry):
        assert "failed PEs" not in str(self.deadlock(make_vm, registry))

    def test_crashed_pe_hang_is_distinguishable(self, make_vm, registry):
        """A parent hung on a child that died with its PE must produce a
        dump naming the failed PE -- tellable apart from a true deadlock
        by the message alone."""

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.vm.engine.block("child-parked")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=2)
            ctx.vm.engine.block("hung-on-dead-child")

        plan = FaultPlan(seed=1, crashes=(PECrash(at=2_000, pe=4),))
        with plan_scope(plan):
            vm = make_vm(registry=registry)
        with pytest.raises(DeadlockError) as ei:
            vm.run("MAIN")
        s = str(ei.value)
        assert "failed PEs: [4]" in s
        assert "hung-on-dead-child" in s


class TestShutdownDrainsAcceptWaiters:
    @pytest.mark.parametrize("core", ["threaded", "coop"])
    def test_accept_waiter_unwinds_with_engine_shutdown(self, core):
        eng = create_engine(small_flex(8), exec_core=core)
        seen = []

        def waiter():
            try:
                eng.block("accept(RESULT)")
            except EngineShutdown as e:
                seen.append(str(e))
                raise

        eng.spawn("waiter", 3, waiter, daemon=True)
        assert eng.step()            # drive it into the accept block
        eng.shutdown()
        assert eng.drained_accept_waiters == ["waiter"]
        assert len(seen) == 1 and "shut down" in seen[0]
        assert eng.leaked_threads == []

    def test_engine_shutdown_is_a_process_kill(self):
        # Existing unwind handling (force exit hooks, lock hand-off)
        # treats shutdown like any other kill.
        assert issubclass(EngineShutdown, ProcessKilled)

    @pytest.mark.parametrize("core", ["threaded", "coop"])
    def test_non_accept_blockers_are_not_listed_as_drained(self, core):
        eng = create_engine(small_flex(8), exec_core=core)
        eng.spawn("parked", 3, lambda: eng.block("just-parked"),
                  daemon=True)
        assert eng.step()
        eng.shutdown()
        assert eng.drained_accept_waiters == []

    def test_task_parked_in_accept_is_drained_not_abandoned(self, make_vm,
                                                            registry):
        """A run aborted mid-ACCEPT (here: time limit) records exactly
        which tasks were still waiting on messages at shutdown."""
        from repro.errors import TimeLimitExceeded

        @registry.tasktype("SPINNER")
        def spinner(ctx):
            while True:
                ctx.compute(10_000)   # trips the time limit

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("SPINNER", on=SAME)
            ctx.accept("NEVER", delay=900_000)

        vm = make_vm(registry=registry, time_limit=50_000)
        with pytest.raises(TimeLimitExceeded):
            vm.run("MAIN")
        assert any("MAIN" in name
                   for name in vm.engine.drained_accept_waiters)
        assert vm.engine.leaked_threads == []
