"""Unit tests: engine on_exit hooks, slice recording, step horizon,
dispatcher selection and shutdown leak reporting."""

import threading

import pytest

from repro.errors import ProcessKilled
from repro.flex.presets import small_flex
from repro.mmos.process import ProcState
from repro.mmos.scheduler import Engine, create_engine


def make_engine(**kw):
    return create_engine(small_flex(8), **kw)


class TestOnExit:
    def test_on_exit_runs_after_normal_return(self):
        eng = make_engine()
        log = []
        p = eng.spawn("t", 3, lambda: 42)
        p.on_exit = lambda proc: log.append(("exit", proc.result))
        eng.run()
        assert log == [("exit", 42)]

    def test_on_exit_runs_when_killed_before_first_slice(self):
        eng = make_engine()
        log = []
        p = eng.spawn("victim", 3, lambda: log.append("ran"))
        p.on_exit = lambda proc: log.append("exited")
        eng.kill(p)
        eng.run()
        assert log == ["exited"]       # target never ran, hook did

    def test_on_exit_runs_on_exception(self):
        eng = make_engine()
        log = []

        def bad():
            raise ValueError("x")

        p = eng.spawn("t", 3, bad)
        p.on_exit = lambda proc: log.append("cleanup")
        with pytest.raises(ValueError):
            eng.run()
        assert log == ["cleanup"]

    def test_on_exit_exception_surfaces_if_no_prior_error(self):
        eng = make_engine()
        p = eng.spawn("t", 3, lambda: None)

        def bad_hook(proc):
            raise RuntimeError("hook boom")

        p.on_exit = bad_hook
        with pytest.raises(RuntimeError, match="hook boom"):
            eng.run()


class TestSliceRecording:
    def test_slices_cover_charged_work_exactly(self):
        eng = make_engine()
        eng.record_slices = True

        def body():
            eng.charge(100)
            eng.preempt(0)
            eng.charge(50)

        eng.spawn("t", 3, body)
        eng.run()
        total = sum(end - start for _, start, end, _ in eng.slices)
        assert total == 150
        assert total == eng.machine.clocks[3].busy_ticks

    def test_slices_do_not_overlap_per_pe(self):
        eng = make_engine()
        eng.record_slices = True

        def body():
            for _ in range(5):
                eng.charge(10)
                eng.preempt(0)

        eng.spawn("a", 3, body)
        eng.spawn("b", 3, body)
        eng.run()
        pe3 = sorted((s, e) for pe, s, e, _ in eng.slices if pe == 3)
        for (s1, e1), (s2, e2) in zip(pe3, pe3[1:]):
            assert e1 <= s2

    def test_no_ghost_slices_after_shutdown(self):
        eng = make_engine()
        eng.record_slices = True
        eng.spawn("stuck", 3, lambda: eng.block("zzz"), daemon=True)
        eng.spawn("t", 4, lambda: eng.charge(30))
        eng.run()
        eng.shutdown()
        # the killed daemon contributed no bogus slice
        assert all(name != "stuck" or end - start > 0
                   for _, start, end, name in eng.slices)
        total3 = sum(e - s for pe, s, e, _ in eng.slices if pe == 3)
        assert total3 == eng.machine.clocks[3].busy_ticks

    def test_recording_off_by_default(self):
        eng = make_engine()
        eng.spawn("t", 3, lambda: eng.charge(10))
        eng.run()
        assert eng.slices == []


class TestStepHorizon:
    def test_step_refuses_slices_beyond_horizon(self):
        eng = make_engine()

        def body():
            eng.block("sleep", deadline=10_000)

        eng.spawn("t", 3, body)
        assert eng.step(horizon=100)            # initial dispatch at t=0
        # now it is blocked until 10_000: refused within horizon
        assert not eng.step(horizon=100)
        # allowed when the horizon covers the deadline
        assert eng.step(horizon=20_000)
        eng.shutdown()

    def test_refused_slice_is_not_lost(self):
        # The indexed dispatcher pops the heap entry to inspect it; a
        # horizon refusal must push it back, or the process starves.
        eng = make_engine(dispatcher="indexed")
        eng.spawn("t", 3, lambda: eng.block("z", deadline=5_000))
        assert eng.step(horizon=100)
        assert not eng.step(horizon=100)
        assert not eng.step(horizon=100)    # repeated refusals are stable
        assert eng.step()                   # no horizon: deadline fires
        eng.run()
        eng.shutdown()


class TestDispatcherSelection:
    def test_bad_dispatcher_rejected(self):
        with pytest.raises(ValueError, match="dispatcher"):
            make_engine(dispatcher="bogus")

    def test_env_var_sets_default(self, monkeypatch):
        monkeypatch.setenv("PISCES_DISPATCHER", "scan")
        assert make_engine().dispatcher == "scan"
        monkeypatch.setenv("PISCES_DISPATCHER", "nope")
        with pytest.raises(ValueError, match="PISCES_DISPATCHER"):
            make_engine()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("PISCES_DISPATCHER", "scan")
        assert make_engine(dispatcher="indexed").dispatcher == "indexed"


class TestShutdownLeakReporting:
    @pytest.mark.parametrize("core", ["threaded", "coop"])
    def test_clean_shutdown_reports_no_leaks(self, core):
        eng = make_engine(exec_core=core)
        eng.spawn("d", 3, lambda: eng.block("parked"), daemon=True)
        eng.spawn("t", 4, lambda: eng.charge(10))
        eng.run()
        eng.shutdown()
        assert eng.leaked_threads == []

    @pytest.mark.parametrize("core", ["threaded", "coop"])
    def test_stuck_thread_is_counted_and_warned(self, core):
        eng = make_engine(exec_core=core)
        release = threading.Event()

        def stubborn():
            try:
                eng.block("forever")
            except ProcessKilled:
                # Swallows the kill and parks outside any kernel point:
                # exactly the hang shutdown must make diagnosable.
                release.wait()

        eng.spawn("stuck", 3, stubborn, daemon=True)
        assert eng.step()     # drive it into the block
        with pytest.warns(RuntimeWarning, match="leaked 1 thread"):
            eng.shutdown(join_timeout=0.1)
        assert eng.leaked_threads == ["stuck"]
        release.set()         # let the OS thread unwind
