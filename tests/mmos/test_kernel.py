"""Unit tests: the MMOS syscall facade."""

import pytest

from repro.flex.presets import small_flex
from repro.mmos.kernel import COST_PROCESS_CREATE, COST_TERMINAL_IO, MMOSKernel


def make_kernel():
    return MMOSKernel(small_flex(8))


class TestTerminalIO:
    def test_console_records_time_pid_text(self):
        k = make_kernel()

        def body():
            k.engine.charge(40)
            k.write_terminal("hello")

        p = k.engine.spawn("t", 3, body)
        k.engine.run()
        assert len(k.console) == 1
        t, pid, text = k.console[0]
        assert text == "hello"
        assert pid == p.pid
        assert t >= 40

    def test_console_sink_called_live(self):
        k = make_kernel()
        seen = []
        k.console_sink = lambda t, pid, text: seen.append(text)
        k.engine.spawn("t", 3, lambda: k.write_terminal("x"))
        k.engine.run()
        assert seen == ["x"]

    def test_write_from_outside_process_uses_pid_zero(self):
        k = make_kernel()
        k.write_terminal("external")
        assert k.console[0][1] == 0

    def test_console_text_joins_lines(self):
        k = make_kernel()
        k.write_terminal("a")
        k.write_terminal("b")
        assert k.console_text() == "a\nb"


class TestCompute:
    def test_compute_charges_and_preempts(self):
        k = make_kernel()
        order = []

        def a():
            k.compute(100)
            order.append(("a", k.engine.now()))

        def b():
            k.compute(10)
            order.append(("b", k.engine.now()))

        k.engine.spawn("a", 3, a)
        k.engine.spawn("b", 3, b)   # same PE: b slots in after a's slice
        k.engine.run()
        assert k.engine.machine.clocks[3].ticks == 110


class TestProcessCreation:
    def test_create_charges_parent_process(self):
        k = make_kernel()

        def parent():
            k.create_process("child", 4, lambda: None)

        k.engine.spawn("p", 3, parent)
        k.engine.run()
        assert k.engine.machine.clocks[3].ticks >= COST_PROCESS_CREATE

    def test_create_from_outside_process_works(self):
        k = make_kernel()
        p = k.create_process("c", 3, lambda: 7)
        k.engine.run()
        assert p.result == 7
