"""Tests: the library of complete Pisces Fortran programs."""

import pytest

from repro.apps import fortran_programs as fp
from repro.flex.presets import small_flex


class TestLibrary:
    def test_names_listed(self):
        assert set(fp.names()) == {"pi_by_force", "master_worker",
                                   "ring_token", "window_sum"}

    def test_load_returns_preprocessed_program(self):
        prog = fp.load("master_worker")
        assert "MAIN" in prog.task_names()
        assert "_task_MAIN" in prog.python_source

    def test_pi_by_force(self):
        r = fp.run("pi_by_force", machine=small_flex(12))
        r.vm.shutdown()
        line = [l for l in r.result.console.splitlines() if "PI" in l][0]
        assert abs(float(line.rsplit(" ", 1)[1]) - 3.14159265) < 1e-4
        assert r.vm.stats.forcesplits == 1

    def test_master_worker(self):
        r = fp.run("master_worker", machine=small_flex(12))
        r.vm.shutdown()
        assert "ALL 6 WORKERS DONE" in r.result.console
        assert r.vm.stats.tasks_started == 7

    def test_ring_token_full_circle(self):
        """The token increments at every hop: 4 nodes -> comes back 4.
        Exercises the handler-writes-SHARED-COMMON pattern."""
        r = fp.run("ring_token", machine=small_flex(12))
        r.vm.shutdown()
        assert "TOKEN CAME BACK AS 4" in r.result.console

    def test_window_sum(self):
        r = fp.run("window_sum", machine=small_flex(12))
        r.vm.shutdown()
        assert "HALFSUM 21.0" in r.result.console   # 1+..+6
        assert r.vm.stats.window_bytes_read == 6 * 8

    def test_all_programs_deterministic(self):
        for name in fp.names():
            a = fp.run(name, machine=small_flex(12))
            a.vm.shutdown()
            b = fp.run(name, machine=small_flex(12))
            b.vm.shutdown()
            assert a.result.console == b.result.console
            assert a.result.elapsed == b.result.elapsed
