"""Behavioral tests: the 2-D truss structural analysis."""

import numpy as np
import pytest

from repro.apps.truss import TrussProblem, pratt_truss, run_truss
from repro.flex.presets import small_flex


class TestProblemAssembly:
    def test_pratt_geometry(self):
        p = pratt_truss(4)
        assert len(p.nodes) == 5 + 3          # 5 bottom, 3 top
        assert p.supports == [0, 4]
        assert len(p.loads) == 3              # interior bottom joints

    def test_stiffness_symmetric_positive_semidefinite(self):
        p = pratt_truss(3)
        K = p.stiffness()
        assert np.allclose(K, K.T)
        Kff, _, _ = p.reduced_system()
        eig = np.linalg.eigvalsh(Kff)
        assert eig.min() > 0                   # supported => nonsingular

    def test_zero_length_element_rejected(self):
        p = TrussProblem(nodes=[(0, 0), (0, 0)],
                         elements=[(0, 1, 1.0)], supports=[0])
        with pytest.raises(ValueError):
            p.stiffness()

    def test_too_few_panels_rejected(self):
        with pytest.raises(ValueError):
            pratt_truss(1)

    def test_direct_solution_satisfies_equilibrium(self):
        p = pratt_truss(4)
        Kff, ff, free = p.reduced_system()
        u = p.direct_solution()
        assert np.allclose(Kff @ u[free], ff)


class TestForceSolve:
    def test_matches_direct_solution(self):
        p = pratt_truss(4)
        r = run_truss(problem=p, force_pes=3, machine=small_flex(10))
        r.vm.shutdown()
        assert np.allclose(r.displacements, p.direct_solution(),
                           atol=1e-7)
        assert r.residual < 1e-8

    def test_downward_deflection_under_gravity(self):
        r = run_truss(n_panels=4, force_pes=2, machine=small_flex(10))
        r.vm.shutdown()
        assert r.midspan_deflection < 0

    def test_force_size_does_not_change_the_answer(self):
        p = pratt_truss(3)
        sols = []
        for pes in (0, 3):
            r = run_truss(problem=p, force_pes=pes,
                          machine=small_flex(10))
            r.vm.shutdown()
            sols.append(r.displacements)
        assert np.allclose(sols[0], sols[1], atol=1e-9)

    def test_stiffer_truss_deflects_less(self):
        soft = run_truss(problem=pratt_truss(3, ea=1e4), force_pes=1,
                         machine=small_flex(10))
        soft.vm.shutdown()
        stiff = run_truss(problem=pratt_truss(3, ea=1e5), force_pes=1,
                          machine=small_flex(10))
        stiff.vm.shutdown()
        assert abs(stiff.midspan_deflection) < abs(soft.midspan_deflection)

    def test_bigger_force_is_faster_on_big_truss(self):
        p = pratt_truss(8)
        r1 = run_truss(problem=p, force_pes=0, machine=small_flex(10))
        r1.vm.shutdown()
        r4 = run_truss(problem=p, force_pes=3, machine=small_flex(10))
        r4.vm.shutdown()
        assert r4.elapsed < r1.elapsed
