"""Behavioral tests: the four application workloads."""

import numpy as np
import pytest

from repro.apps import (
    FEMProblem,
    reference_solution,
    run_fem,
    run_integrate,
    run_jacobi_force,
    run_jacobi_windows,
    run_pipeline,
)
from repro.flex.presets import small_flex


class TestJacobi:
    def test_windows_variant_matches_serial_reference(self):
        r = run_jacobi_windows(n=16, sweeps=3, n_workers=2,
                               machine=small_flex(10))
        r.vm.shutdown()
        assert np.allclose(r.grid, reference_solution(16, 3))
        assert r.stats_window_bytes > 0

    def test_force_variant_matches_serial_reference(self):
        r = run_jacobi_force(n=16, sweeps=3, force_pes=3,
                             machine=small_flex(10))
        r.vm.shutdown()
        assert np.allclose(r.grid, reference_solution(16, 3))

    def test_both_variants_agree(self):
        rw = run_jacobi_windows(n=12, sweeps=2, n_workers=3,
                                machine=small_flex(10))
        rw.vm.shutdown()
        rf = run_jacobi_force(n=12, sweeps=2, force_pes=2,
                              machine=small_flex(10))
        rf.vm.shutdown()
        assert np.allclose(rw.grid, rf.grid)

    def test_force_scaling_reduces_elapsed(self):
        e1 = run_jacobi_force(n=24, sweeps=2, force_pes=0,
                              machine=small_flex(12))
        e1.vm.shutdown()
        e4 = run_jacobi_force(n=24, sweeps=2, force_pes=3,
                              machine=small_flex(12))
        e4.vm.shutdown()
        assert e4.elapsed < e1.elapsed


class TestFEM:
    def test_solution_matches_direct_solver(self):
        r = run_fem(n_elements=10, force_pes=2, machine=small_flex(10))
        r.vm.shutdown()
        prob = FEMProblem(10)
        exact = np.linalg.solve(prob.stiffness(), prob.load_vector())
        assert np.allclose(r.displacements, exact, atol=1e-8)

    def test_tip_displacement_matches_analytic(self):
        prob = FEMProblem(8, youngs_modulus=2.0e3, area=0.5, load=4.0)
        r = run_fem(n_elements=8, force_pes=3, machine=small_flex(10),
                    problem=prob)
        r.vm.shutdown()
        assert r.tip_displacement == pytest.approx(
            prob.exact_tip_displacement(), rel=1e-6)

    def test_residual_is_small(self):
        r = run_fem(n_elements=6, force_pes=1, machine=small_flex(10))
        r.vm.shutdown()
        assert r.residual < 1e-6

    def test_force_size_does_not_change_answer(self):
        sols = []
        for pes in (0, 3):
            r = run_fem(n_elements=6, force_pes=pes,
                        machine=small_flex(10))
            r.vm.shutdown()
            sols.append(r.displacements)
        assert np.allclose(sols[0], sols[1], atol=1e-9)


class TestPipeline:
    def test_each_stage_increments(self):
        r = run_pipeline(n_stages=4, items=[0, 5, 9],
                         machine=small_flex(10))
        r.vm.shutdown()
        assert r.outputs == [4, 9, 13]

    def test_item_order_preserved(self):
        r = run_pipeline(n_stages=2, items=list(range(8)),
                         machine=small_flex(10))
        r.vm.shutdown()
        assert r.outputs == [i + 2 for i in range(8)]

    def test_empty_stream(self):
        r = run_pipeline(n_stages=2, items=[], machine=small_flex(10))
        r.vm.shutdown()
        assert r.outputs == []


class TestIntegrate:
    def test_value_close_to_reference(self):
        r = run_integrate(pieces=16, points_per_piece=8, n_workers=3,
                          machine=small_flex(10))
        r.vm.shutdown()
        assert r.value == pytest.approx(r.exact, rel=0.02)

    def test_all_pieces_completed(self):
        r = run_integrate(pieces=10, points_per_piece=4, n_workers=4,
                          machine=small_flex(10))
        r.vm.shutdown()
        assert sum(r.per_worker.values()) == 10

    def test_dynamic_distribution_uses_multiple_workers(self):
        r = run_integrate(pieces=20, points_per_piece=6, n_workers=4,
                          machine=small_flex(10))
        r.vm.shutdown()
        busy = [k for k, n in r.per_worker.items() if n > 0]
        assert len(busy) >= 2
