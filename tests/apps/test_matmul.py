"""Behavioral tests: the three-grain matrix multiply."""

import numpy as np
import pytest

from repro.apps.matmul import (
    make_inputs,
    run_matmul_force,
    run_matmul_hybrid,
    run_matmul_tasks,
)
from repro.flex.presets import nasa_langley_flex32, small_flex


@pytest.fixture(scope="module")
def expected():
    A, B = make_inputs(16)
    return A @ B


class TestCorrectness:
    def test_task_grain(self, expected):
        r = run_matmul_tasks(n=16, n_workers=4, machine=small_flex(12))
        r.vm.shutdown()
        assert np.allclose(r.C, expected)
        assert r.vm.stats.window_bytes_read > 0   # data moved by windows

    def test_force_grain(self, expected):
        r = run_matmul_force(n=16, force_pes=3, machine=small_flex(12))
        r.vm.shutdown()
        assert np.allclose(r.C, expected)
        assert r.vm.stats.window_bytes_read == 0  # SHARED COMMON only

    def test_hybrid_grain(self, expected):
        r = run_matmul_hybrid(n=16, n_clusters=2,
                              force_pes_per_cluster=2,
                              machine=nasa_langley_flex32())
        r.vm.shutdown()
        assert np.allclose(r.C, expected)
        assert r.vm.stats.forcesplits == 2        # one per worker task

    def test_all_grains_agree_exactly(self, expected):
        rs = [run_matmul_tasks(n=16, n_workers=2, machine=small_flex(12)),
              run_matmul_force(n=16, force_pes=1, machine=small_flex(12))]
        for r in rs:
            r.vm.shutdown()
        assert np.array_equal(rs[0].C, rs[1].C)


class TestScaling:
    def test_more_workers_reduce_task_grain_elapsed(self):
        # Large enough that compute dwarfs the task-grain overheads.
        r1 = run_matmul_tasks(n=32, n_workers=1, machine=small_flex(12))
        r1.vm.shutdown()
        r4 = run_matmul_tasks(n=32, n_workers=4, machine=small_flex(12))
        r4.vm.shutdown()
        assert r4.elapsed < r1.elapsed

    def test_bigger_force_reduces_force_grain_elapsed(self):
        r1 = run_matmul_force(n=16, force_pes=0, machine=small_flex(12))
        r1.vm.shutdown()
        r4 = run_matmul_force(n=16, force_pes=3, machine=small_flex(12))
        r4.vm.shutdown()
        assert r4.elapsed < r1.elapsed
