"""Unit tests: display renderers, including the Figure 1 regeneration."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.exec_env.display import render_vm_figure
from repro.exec_env.monitor import Monitor


class TestFigure1:
    def test_figure_shows_clusters_slots_and_network(self, make_vm,
                                                     registry):
        cfg = Configuration(clusters=(ClusterSpec(1, 3, 3),
                                      ClusterSpec(2, 4, 2),
                                      ClusterSpec(3, 5, 2)),
                            name="fig1")
        vm = make_vm(config=cfg, registry=registry)
        fig = render_vm_figure(vm)
        assert "PISCES 2 VIRTUAL MACHINE ORGANIZATION" in fig
        for c in (1, 2, 3):
            assert f"CLUSTER {c}" in fig
        assert fig.count("Task controller") == 3
        assert fig.count("User controller") == 1     # terminal cluster only
        assert fig.count("File controller") == 1
        assert fig.count("<not in use>") == 3 + 2 + 2
        assert "Message-passing network" in fig
        assert "Intra-" in fig          # intra-cluster network label

    def test_figure_shows_running_tasks_in_slots(self, make_vm, registry):
        @registry.tasktype("WORKER")
        def worker(ctx):
            ctx.accept("STOP", delay=100_000, timeout_ok=True)

        vm = make_vm(registry=registry)
        m = Monitor(vm)
        m.initiate_task("WORKER")
        m.pump()
        fig = render_vm_figure(vm)
        assert "User task WORKER" in fig
        m.terminate_run()

    def test_figure_mentions_force_pes(self, make_vm, registry):
        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(7, 8)),))
        vm = make_vm(config=cfg, registry=registry)
        assert "force PEs 7,8" in render_vm_figure(vm)
