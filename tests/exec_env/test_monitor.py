"""Behavioral tests: the 10-option execution-environment monitor."""

import pytest

from repro.core.taskid import PARENT, TaskId
from repro.exec_env.monitor import EXTENDED_MENU, MENU, Monitor


@pytest.fixture
def vm_with_sleeper(make_vm, registry):
    """A VM with a SLEEPER tasktype that waits for a STOP message."""

    @registry.tasktype("SLEEPER")
    def sleeper(ctx, tag=0):
        res = ctx.accept("STOP", delay=500_000, timeout_ok=True)
        return tag

    @registry.tasktype("ECHO")
    def echo(ctx):
        res = ctx.accept("PING")
        ctx.send(ctx.sender, "PONG", *res.args)

    return make_vm(registry=registry)


class TestMenu:
    def test_menu_lists_the_papers_ten_options(self):
        labels = [label for _, label in MENU]
        assert labels == [
            "TERMINATE THE RUN", "INITIATE A TASK", "KILL A TASK",
            "SEND A MESSAGE", "DELETE MESSAGES", "DISPLAY RUNNING TASKS",
            "DISPLAY MESSAGE QUEUE", "DUMP SYSTEM STATE",
            "DISPLAY PE LOADING", "CHANGE TRACE OPTIONS"]

    def test_extended_menu_adds_observability_options(self):
        labels = [label for _, label in EXTENDED_MENU]
        assert labels == ["DISPLAY METRICS", "CHANGE METRIC OPTIONS",
                          "EXPORT TRACE", "DETECT RACES", "PROFILE"]


class TestOperations:
    def test_initiate_and_display_running(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        req = m.initiate_task("SLEEPER", 1)
        m.pump()
        tid = vm_with_sleeper.initiations[req]
        shown = m.display_running_tasks()
        assert str(tid) in shown and "SLEEPER" in shown

    def test_kill_task(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        req = m.initiate_task("SLEEPER")
        m.pump()
        tid = vm_with_sleeper.initiations[req]
        out = m.kill_task(str(tid))
        assert "killed" in out
        m.pump()
        assert not vm_with_sleeper.tasks[tid].alive
        assert "no user tasks running" in m.display_running_tasks()

    def test_kill_unknown_task(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        assert "not running" in m.kill_task("1.1.77")

    def test_send_message_from_user(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        req = m.initiate_task("SLEEPER", 7)
        m.pump()
        tid = vm_with_sleeper.initiations[req]
        out = m.send_message(tid, "STOP")
        assert "sent STOP" in out
        m.pump()
        assert vm_with_sleeper.tasks[tid].result == 7

    def test_display_and_delete_message_queue(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        req = m.initiate_task("SLEEPER")
        m.pump()
        tid = vm_with_sleeper.initiations[req]
        m.send_message(tid, "JUNK", 1)
        m.send_message(tid, "JUNK", 2)
        m.send_message(tid, "OTHER")
        shown = m.display_message_queue(tid)
        assert "JUNK" in shown and "3 messages" in shown
        out = m.delete_messages(tid, "JUNK")
        assert "deleted 2" in out
        assert "1 messages" in m.display_message_queue(tid)
        m.kill_task(tid)
        m.pump()

    def test_dump_system_state(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.initiate_task("SLEEPER")
        m.pump()
        dump = m.dump_system_state()
        assert "SYSTEM STATE DUMP" in dump
        assert "cluster 1" in dump
        assert "shared:" in dump

    def test_display_pe_loading(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.initiate_task("SLEEPER")
        m.pump()
        out = m.display_pe_loading()
        assert "PE LOADING" in out and "primary c1" in out

    def test_change_trace_options(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.change_trace_options(enable=("MSG_SEND", "TASK_INIT"))
        assert "MSG_SEND" in out
        m.change_trace_options(disable=("MSG_SEND",))
        from repro.core.tracing import TraceEventType
        assert (TraceEventType.MSG_SEND
                not in vm_with_sleeper.tracer.enabled_types)

    def test_terminate_run(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.initiate_task("SLEEPER")
        m.pump()
        out = m.terminate_run()
        assert "terminated" in out and m.terminated
        assert all(not p.live for p in vm_with_sleeper.engine.processes())

    def test_display_metrics_and_metric_options(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.display_metrics()
        assert "metrics: disabled" in out
        out = m.change_metric_options(enable=True)
        assert "metrics: enabled" in out
        m.initiate_task("SLEEPER")
        m.pump()
        shown = m.display_metrics()
        assert "METRICS SNAPSHOT" in shown and "tasks_started" in shown
        m.change_metric_options(enable=False, reset=True)
        assert vm_with_sleeper.metrics.families() == []

    def test_export_trace(self, vm_with_sleeper, tmp_path):
        m = Monitor(vm_with_sleeper)
        m.change_metric_options(enable=True)
        m.change_trace_options(enable=("TASK_INIT", "TASK_TERM",
                                       "MSG_SEND", "MSG_ACCEPT"))
        m.initiate_task("SLEEPER")
        m.pump()
        out = m.export_trace(str(tmp_path), prefix="sess")
        assert "sess.chrome.json" in out
        assert (tmp_path / "sess.events.jsonl").exists()
        assert (tmp_path / "sess.metrics.json").exists()

    def test_menu_text_lists_all_options(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        txt = m.menu_text()
        assert "9   CHANGE TRACE OPTIONS" in txt
        assert "12   EXPORT TRACE" in txt

    def test_full_interactive_session(self, vm_with_sleeper):
        """A whole session: initiate, message, inspect, kill, terminate."""
        m = Monitor(vm_with_sleeper)
        r1 = m.initiate_task("ECHO")
        m.pump()
        tid = vm_with_sleeper.initiations[r1]
        m.send_message(tid, "PING", "payload")
        m.pump()
        # the PONG went back to USER (the terminal initiated ECHO)
        assert any(mt == "PONG" and args == ("payload",)
                   for mt, args, _, _ in vm_with_sleeper.user_messages)
        m.terminate_run()


class TestDetectRaces:
    def test_option_13_enables_and_renders(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.detect_races(True)
        assert vm_with_sleeper.race_detector is not None
        assert vm_with_sleeper.race_detector.mode == "record"
        assert "race detection: on" in out

    def test_status_query_keeps_the_chosen_mode(self, vm_with_sleeper):
        # Regression: a no-arg status call must not reset warn/raise
        # back to the record default.
        m = Monitor(vm_with_sleeper)
        m.detect_races(True, mode="warn")
        out = m.detect_races()
        assert vm_with_sleeper.race_detector.mode == "warn"
        assert "mode warn" in out

    def test_off_pauses_but_keeps_evidence_displayable(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.detect_races(True, mode="warn")
        out = m.detect_races(False)
        det = vm_with_sleeper.race_detector
        assert det is not None and not det.enabled
        assert det.mode == "warn"
        assert "race" in out.lower()


class TestStatusQueriesNeverMutate:
    """Extended-menu contract: asking (options 10-14 with no arguments)
    never changes collection state.  Regression guard for the bug where
    a bare ``detect_races()`` silently ENABLED the detector."""

    def test_detect_races_query_does_not_enable(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.detect_races()
        assert vm_with_sleeper.race_detector is None
        assert "race detection: off" in out

    def test_detect_races_query_does_not_resume_paused(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.detect_races(True)
        m.detect_races(False)
        m.detect_races()
        assert vm_with_sleeper.race_detector.enabled is False

    def test_profile_query_does_not_enable(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.profile()
        assert vm_with_sleeper.profiler is None
        assert "profiling: off" in out

    def test_display_metrics_does_not_enable(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        enabled_before = vm_with_sleeper.metrics.enabled
        m.display_metrics()
        assert vm_with_sleeper.metrics.enabled == enabled_before

    def test_change_metric_options_bare_call_is_a_query(self,
                                                        vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        enabled_before = vm_with_sleeper.metrics.enabled
        m.change_metric_options()
        assert vm_with_sleeper.metrics.enabled == enabled_before


class TestProfileOption:
    def test_option_14_enables_and_renders(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        out = m.profile(True)
        assert vm_with_sleeper.profiler is not None
        assert "profiling: on" in out

    def test_profile_panel_after_work(self, vm_with_sleeper):
        m = Monitor(vm_with_sleeper)
        m.profile(True)
        req = m.initiate_task("ECHO")
        m.pump()
        tid = vm_with_sleeper.initiations[req]
        m.send_message(tid, "PING", "x")
        m.pump()
        out = m.profile()
        assert "profiling: on" in out
        assert "CAUSAL PROFILE" in out

    def test_profile_export_dir_writes_bundle(self, vm_with_sleeper,
                                              tmp_path):
        m = Monitor(vm_with_sleeper)
        m.profile(True)
        m.initiate_task("ECHO")
        m.pump()
        out = m.profile(export_dir=str(tmp_path))
        assert "wrote folded:" in out
        assert (tmp_path / "profile.chrome.json").exists()
