"""Behavioral tests: the scriptable execution-environment CLI."""

import pytest

from repro.exec_env.cli import ExecutionCLI


@pytest.fixture
def cli_vm(make_vm, registry):
    @registry.tasktype("SLEEPER")
    def sleeper(ctx):
        ctx.accept("STOP", delay=500_000, timeout_ok=True)
        return "stopped"

    return make_vm(registry=registry)


def run_session(vm, lines):
    out = []
    cli = ExecutionCLI(vm, inputs=iter(lines), output=out.append)
    cli.run()
    return "\n".join(out), cli


class TestSessions:
    def test_menu_shown_first(self, cli_vm):
        text, _ = run_session(cli_vm, ["0"])
        assert "INITIATE A TASK" in text
        assert "run terminated" in text

    def test_initiate_display_kill(self, cli_vm):
        text, cli = run_session(cli_vm, [
            "1 SLEEPER",
            "5",
            "2 1.1.1",
            "5",
            "0",
        ])
        assert "initiated SLEEPER: 1.1.1" in text
        assert "SLEEPER" in text
        assert "killed" in text
        assert "no user tasks running" in text

    def test_send_and_queue_inspection(self, cli_vm):
        text, cli = run_session(cli_vm, [
            "1 SLEEPER",
            "3 1.1.1 JUNK 42",       # queued, not accepted by SLEEPER
            "6 1.1.1",
            "4 1.1.1 JUNK",
            "6 1.1.1",
            "0",
        ])
        assert "JUNK" in text
        assert "deleted 1 JUNK messages" in text

    def test_stop_message_completes_task(self, cli_vm):
        text, cli = run_session(cli_vm, [
            "1 SLEEPER",
            "3 1.1.1 STOP",
            "p",
            "0",
        ])
        tid = list(cli.monitor.vm.tasks)[0]
        assert cli.monitor.vm.tasks[tid].result == "stopped"

    def test_trace_options_and_dump(self, cli_vm):
        text, _ = run_session(cli_vm, [
            "9 +MSG_SEND +TASK_INIT -MSG_SEND",
            "7",
            "8",
            "0",
        ])
        assert "TASK_INIT" in text
        assert "SYSTEM STATE DUMP" in text
        assert "PE LOADING" in text

    def test_errors_are_reported_not_fatal(self, cli_vm):
        text, _ = run_session(cli_vm, [
            "1 NOSUCHTYPE",
            "6 9.9.9",
            "zz",
            "0",
        ])
        assert "error:" in text
        assert "no such option" in text

    def test_profile_option_14(self, cli_vm, tmp_path):
        text, cli = run_session(cli_vm, [
            "14",                        # bare: status query, no enable
            "14 on",
            "1 SLEEPER",
            "3 1.1.1 STOP",
            "p",
            "14",
            f"14 export {tmp_path}",
            "0",
        ])
        assert "profiling: off" in text          # the bare query
        assert cli.monitor.vm.profiler is not None
        assert "CAUSAL PROFILE" in text
        assert "wrote folded:" in text
        assert (tmp_path / "profile.chrome.json").exists()

    def test_comments_and_blanks_ignored(self, cli_vm):
        text, _ = run_session(cli_vm, [
            "# a comment",
            "",
            "0",
        ])
        assert "run terminated" in text
