"""Unit tests: configuration file save/load (section 9)."""

import pytest

from repro.config import files
from repro.config.configuration import ClusterSpec, Configuration
from repro.errors import ConfigurationError


def sample():
    return Configuration(
        clusters=(ClusterSpec(1, 3, 4, (7, 8, 9)),
                  ClusterSpec(2, 4, 2)),
        time_limit=500_000,
        trace_events=("MSG_SEND", "MSG_ACCEPT"),
        user_cluster=1,
        file_cluster=2,
        default_accept_delay=123_456,
        name="quadcluster")


class TestRoundTrip:
    def test_dumps_loads_identity(self):
        c = sample()
        assert files.loads(files.dumps(c)) == c

    def test_save_load_file(self, tmp_path):
        c = sample()
        p = files.save(c, tmp_path / "run.pcfg")
        assert files.load(p) == c

    def test_defaults_omitted_from_text(self):
        c = Configuration(clusters=(ClusterSpec(1, 3, 4),), name="bare")
        text = files.dumps(c)
        assert "time_limit" not in text
        assert "trace" not in text
        assert "accept_delay" not in text

    def test_format_is_readable(self):
        text = files.dumps(sample())
        assert "cluster 1 primary 3 slots 4 force 7,8,9" in text
        assert "cluster 2 primary 4 slots 2 force -" in text


class TestParsing:
    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        name x

        cluster 1 primary 3 slots 2 force -   # trailing comment
        """
        c = files.loads(text)
        assert c.name == "x" and c.cluster(1).slots == 2

    def test_slots_default_to_four(self):
        c = files.loads("cluster 1 primary 3 force -")
        assert c.cluster(1).slots == 4

    def test_missing_primary_rejected(self):
        with pytest.raises(ConfigurationError):
            files.loads("cluster 1 slots 2 force -")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ConfigurationError):
            files.loads("cluster 1 primary 3\nbogus 4")

    def test_no_clusters_rejected(self):
        with pytest.raises(ConfigurationError):
            files.loads("name only")

    def test_bad_number_reports_line(self):
        with pytest.raises(ConfigurationError) as ei:
            files.loads("cluster 1 primary x")
        assert "line 1" in str(ei.value)
