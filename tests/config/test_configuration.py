"""Unit tests: configuration validation and the mapping rules."""

import pytest

from repro.config.configuration import (
    ClusterSpec,
    Configuration,
    MAX_SLOTS,
    simple_configuration,
)
from repro.errors import ConfigurationError
from repro.flex.machine import MachineSpec

NASA = MachineSpec()   # 20 PEs, 1-2 Unix


def cfg(*clusters, **kw):
    return Configuration(clusters=tuple(clusters), **kw)


class TestClusterSpec:
    def test_valid_cluster_passes(self):
        ClusterSpec(1, 3, 4, (7, 8)).validate(NASA)

    def test_primary_must_be_mmos_pe(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 1, 4).validate(NASA)   # PE 1 runs Unix
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 21, 4).validate(NASA)

    def test_slot_bounds(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 3, 0).validate(NASA)
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 3, MAX_SLOTS + 1).validate(NASA)

    def test_secondary_pe_rules(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 3, 4, (2,)).validate(NASA)    # Unix PE
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 3, 4, (7, 7)).validate(NASA)  # duplicate
        with pytest.raises(ConfigurationError):
            ClusterSpec(1, 3, 4, (3,)).validate(NASA)    # own primary

    def test_cluster_number_positive(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(0, 3, 4).validate(NASA)


class TestConfigurationValidation:
    def test_paper_limit_1_to_18_clusters(self):
        """Section 5: 'between 1 and 18 clusters' on the NASA machine."""
        specs = tuple(ClusterSpec(i, 2 + i, 1) for i in range(1, 19))
        cfg(*specs).validate(NASA)   # 18 clusters on PEs 3..20 is legal
        too_many = specs + (ClusterSpec(19, 3, 1),)
        with pytest.raises(ConfigurationError):
            cfg(*too_many).validate(NASA)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            cfg().validate(NASA)

    def test_duplicate_cluster_numbers_rejected(self):
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2), ClusterSpec(1, 4, 2)).validate(NASA)

    def test_duplicate_primaries_rejected(self):
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2), ClusterSpec(2, 3, 2)).validate(NASA)

    def test_secondary_pes_may_be_shared_between_clusters(self):
        # Section 9 example: PEs 7-15 run forces for clusters 3 AND 4.
        cfg(ClusterSpec(1, 3, 2, (7, 8)),
            ClusterSpec(2, 4, 2, (7, 8))).validate(NASA)

    def test_user_file_cluster_must_exist(self):
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2), user_cluster=9).validate(NASA)
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2), file_cluster=9).validate(NASA)

    def test_time_limit_and_delay_positive(self):
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2), time_limit=0).validate(NASA)
        with pytest.raises(ConfigurationError):
            cfg(ClusterSpec(1, 3, 2),
                default_accept_delay=0).validate(NASA)


class TestDerivedProperties:
    def test_used_pes(self):
        c = cfg(ClusterSpec(1, 3, 2, (7, 8)), ClusterSpec(2, 4, 2, (8, 9)))
        assert c.used_pes() == [3, 4, 7, 8, 9]

    def test_force_size_is_one_plus_secondaries(self):
        from repro.core.cluster import ClusterRuntime
        cr = ClusterRuntime(1, 3, (7, 8, 9), 4)
        assert cr.force_size == 4
        cr0 = ClusterRuntime(1, 3, (), 4)
        assert cr0.force_size == 1

    def test_max_multiprogramming_sums_serving_clusters(self):
        """Section 9: a PE secondary for clusters with 4 slots each can
        host up to 4+4=8 simultaneous tasks."""
        c = cfg(ClusterSpec(3, 5, 4, (7,)), ClusterSpec(4, 6, 4, (7,)))
        assert c.max_multiprogramming(7) == 8
        assert c.max_multiprogramming(5) == 4
        assert c.max_multiprogramming(19) == 0

    def test_effective_user_and_file_cluster_default_to_lowest(self):
        c = cfg(ClusterSpec(4, 6, 2), ClusterSpec(2, 4, 2))
        assert c.effective_user_cluster() == 2
        assert c.effective_file_cluster() == 2

    def test_cluster_lookup(self):
        c = cfg(ClusterSpec(1, 3, 2))
        assert c.cluster(1).primary_pe == 3
        with pytest.raises(ConfigurationError):
            c.cluster(9)


class TestEditing:
    def test_with_cluster_adds_or_replaces(self):
        c = cfg(ClusterSpec(1, 3, 2))
        c2 = c.with_cluster(ClusterSpec(2, 4, 2))
        assert c2.cluster_numbers() == [1, 2]
        c3 = c2.with_cluster(ClusterSpec(1, 5, 8))
        assert c3.cluster(1).slots == 8
        assert c.cluster_numbers() == [1]   # original untouched (frozen)

    def test_without_cluster(self):
        c = cfg(ClusterSpec(1, 3, 2), ClusterSpec(2, 4, 2))
        assert c.without_cluster(2).cluster_numbers() == [1]

    def test_describe_mentions_mapping(self):
        c = cfg(ClusterSpec(1, 3, 4, (7, 8)), time_limit=1000, name="demo")
        d = c.describe()
        assert "demo" in d and "primary PE 3" in d and "force size 3" in d
        assert "time limit" in d


class TestSimpleConfiguration:
    def test_shape(self):
        c = simple_configuration(n_clusters=3, slots=2,
                                 force_pes_per_cluster=2)
        c.validate(NASA)
        assert c.cluster_numbers() == [1, 2, 3]
        assert [s.primary_pe for s in sorted(c.clusters,
                                             key=lambda s: s.number)] == [3, 4, 5]
        assert all(len(s.secondary_pes) == 2 for s in c.clusters)


class TestEnvVarRegistry:
    """The PISCES_* surface: one registry, one manual table, in sync."""

    def test_unregistered_name_rejected(self):
        from repro.config.configuration import env_value
        with pytest.raises(ConfigurationError, match="unregistered"):
            env_value("PISCES_NO_SUCH_KNOB")

    def test_registry_matches_users_manual_table(self):
        """Every recognized variable appears in the users_manual
        environment table, and the table invents none."""
        import re
        from pathlib import Path
        from repro.config.configuration import ENV_VARS
        manual = (Path(__file__).resolve().parents[2]
                  / "docs" / "users_manual.md").read_text()
        rows = set(re.findall(r"^\| `(PISCES_[A-Z_]+)` \|", manual,
                              flags=re.MULTILINE))
        assert rows == set(ENV_VARS)

    def test_every_reader_goes_through_the_registry(self):
        """No module reads os.environ["PISCES_*"] directly; the
        resolution helpers in configuration.py are the only door."""
        import re
        from pathlib import Path
        src = Path(__file__).resolve().parents[2] / "src" / "repro"
        offenders = []
        for p in src.rglob("*.py"):
            if p.name == "configuration.py":
                continue
            for i, line in enumerate(p.read_text().splitlines(), 1):
                if re.search(r"(os\.environ|os\.getenv)[.(\[].*PISCES_",
                             line):
                    offenders.append(f"{p.name}:{i}: {line.strip()}")
        assert not offenders, offenders
