"""Behavioral tests: the scriptable configuration menu dialogue."""

import pytest

from repro.config.configuration import Configuration
from repro.config.menus import ConfigurationMenu
from repro.errors import ConfigurationError


def run_menu(inputs, machine=None):
    menu = ConfigurationMenu(machine=machine, inputs=iter(inputs))
    return menu.run(), menu


class TestDialogue:
    def test_build_two_cluster_configuration(self):
        cfg, menu = run_menu([
            "1", "demo",                       # new configuration
            "2", "1", "3", "4", "7,8",         # cluster 1: PE3, 4 slots
            "2", "2", "4", "2", "-",           # cluster 2: PE4, 2 slots
            "4", "100000",                     # time limit
            "0",                               # done
        ])
        assert cfg.name == "demo"
        assert cfg.cluster(1).secondary_pes == (7, 8)
        assert cfg.cluster(2).slots == 2
        assert cfg.time_limit == 100000

    def test_invalid_pe_reported_and_retryable(self):
        cfg, menu = run_menu([
            "2", "1", "3", "4", "2",    # secondary PE 2 runs Unix -> error
            "2", "1", "3", "4", "-",    # corrected
            "0",
        ])
        assert cfg.cluster(1).primary_pe == 3
        assert cfg.cluster(1).secondary_pes == ()
        assert any("error" in t for t in menu.transcript)

    def test_non_numeric_answer_reprompts(self):
        cfg, menu = run_menu([
            "2", "x", "1", "3", "4", "-",
            "0",
        ])
        assert cfg.cluster(1).primary_pe == 3
        assert any("not a number" in t for t in menu.transcript)

    def test_trace_options(self):
        cfg, _ = run_menu([
            "2", "1", "3", "4", "-",
            "5", "MSG_SEND LOCK",
            "0",
        ])
        assert cfg.trace_events == ("MSG_SEND", "LOCK")

    def test_trace_all(self):
        from repro.core.tracing import ALL_EVENT_TYPES
        cfg, _ = run_menu([
            "2", "1", "3", "4", "-",
            "5", "ALL",
            "0",
        ])
        # Every event type, including the FAULT extension.
        assert len(cfg.trace_events) == len(ALL_EVENT_TYPES)

    def test_remove_cluster(self):
        cfg, _ = run_menu([
            "2", "1", "3", "4", "-",
            "2", "2", "4", "4", "-",
            "3", "2",
            "0",
        ])
        assert cfg.cluster_numbers() == [1]

    def test_save_and_load_via_menu(self, tmp_path):
        path = str(tmp_path / "saved.pcfg")
        run_menu([
            "2", "1", "3", "4", "7",
            "7", path,        # save
            "0",
        ])
        cfg, _ = run_menu(["8", path, "0"])
        assert cfg.cluster(1).secondary_pes == (7,)

    def test_done_with_invalid_config_reports_error(self):
        # No clusters yet -> validation fails; menu surfaces it and the
        # caller sees the exhausted-input error.
        with pytest.raises(ConfigurationError):
            run_menu(["0"])

    def test_unknown_option_handled(self):
        cfg, menu = run_menu([
            "z",
            "2", "1", "3", "4", "-",
            "0",
        ])
        assert any("no such option" in t for t in menu.transcript)

    def test_loadfile_description(self):
        cfg, menu = run_menu([
            "2", "1", "3", "4", "-",
            "9",
            "0",
        ])
        assert any("loadfile" in t for t in menu.transcript)
