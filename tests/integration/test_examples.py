"""Every shipped example must run clean end to end.

Examples are executable documentation; this keeps them from rotting.
Each is executed in-process via runpy (their __main__ blocks contain
their own assertions).
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"


def test_all_shipped_examples_present():
    names = {p.stem for p in EXAMPLES}
    assert names == {
        "quickstart", "jacobi_heat", "fem_structural", "fortran_program",
        "monitor_session", "dynamic_pipeline", "tune_mapping",
        "parallel_io", "chaos_jacobi", "race_debugging", "profile_jacobi",
        "coop_core", "checkpoint_restore", "run_service",
    }
