"""Crash-recovery soak: checkpoint, ``kill -9``, restore, resume.

For each (execution core, fault scenario): a victim subprocess runs
the fault-tolerant Jacobi solver with periodic checkpointing and a
:class:`~repro.faults.HostKill` in its plan -- the process is SIGKILLed
mid-run.  A fresh subprocess restores the latest valid bundle and
resumes.  Its final trace stream, fault-event stream, virtual elapsed
time and result grid must be byte-identical to an uninterrupted
reference run.  See ``tests/integration/_ckpt_runner.py`` for the
three subprocess modes.
"""

import json
import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
RUNNER = ROOT / "tests" / "integration" / "_ckpt_runner.py"


def run_mode(*args, expect: int = 0):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    # The runner's behaviour must come from its argv alone.
    for var in ("PISCES_CHECKPOINT", "PISCES_CHECKPOINT_DIR",
                "PISCES_EXEC_CORE", "PISCES_DISPATCHER"):
        env.pop(var, None)
    proc = subprocess.run([sys.executable, str(RUNNER), *args],
                          env=env, cwd=ROOT, capture_output=True,
                          text=True, timeout=480)
    assert proc.returncode == expect, (
        f"runner {args} exited {proc.returncode} (wanted {expect}):\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    return proc


@pytest.mark.parametrize("core", ["threaded", "coop"])
@pytest.mark.parametrize("scenario", ["plain", "faulty"])
def test_kill9_restore_is_bit_identical(core, scenario, tmp_path):
    ckpt_dir = tmp_path / "ckpts"
    ckpt_dir.mkdir()
    ref_out = tmp_path / "reference.json"
    res_out = tmp_path / "restored.json"

    run_mode("reference", str(ref_out), core, scenario)

    # The victim must die by SIGKILL, not finish, and must have left at
    # least one valid bundle behind.
    run_mode("victim", str(ckpt_dir), core, scenario,
             expect=-signal.SIGKILL)
    bundles = list(ckpt_dir.glob("*.pckpt"))
    assert bundles, "victim died before writing any checkpoint"

    run_mode("restore", str(ckpt_dir), str(res_out))

    ref = json.loads(ref_out.read_text())
    res = json.loads(res_out.read_text())
    assert res["elapsed"] == ref["elapsed"]
    assert res["grid_sha"] == ref["grid_sha"] is not None
    assert res["rounds"] == ref["rounds"]
    assert res["trace"] == ref["trace"]
    assert res["faults"] == ref["faults"]
    if scenario == "faulty":
        assert ref["faults"], "faulty scenario injected nothing"
