"""Failure-injection tests: kills mid-protocol, exhaustion, deadlock."""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import PARENT, SAME, SELF
from repro.errors import AcceptTimeout, DeadlockError, OutOfMemory
from repro.flex.presets import small_flex


class TestKillMidProtocol:
    def test_parent_times_out_when_child_killed(self, make_vm, registry):
        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER", delay=900_000, timeout_ok=True)
            ctx.send(PARENT, "RESULT", 1)   # unreachable if killed

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            tid = ctx.accept("IAM").args[0]
            ctx.vm.kill_task(tid)
            res = ctx.accept("RESULT", delay=3000, timeout_ok=True)
            return res.timed_out

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value is True

    def test_replies_to_killed_task_are_dropped_not_fatal(self, make_vm,
                                                          registry):
        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER", delay=900_000, timeout_ok=True)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            tid = ctx.accept("IAM").args[0]
            ctx.vm.kill_task(tid)
            ctx.accept("X", delay=1000, timeout_ok=True)
            ctx.send(tid, "LATE_REPLY")
            return "ok"

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert r.value == "ok"
        assert r.stats.messages_to_dead == 1

    def test_killed_force_task_does_not_hang_the_run(self, make_vm,
                                                     registry):
        def region(m):
            m.barrier()            # member 0 killed before arriving
            return "unreached"

        @registry.tasktype("VICTIM")
        def victim(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("GO")       # killed while waiting here
            ctx.forcesplit(region)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("VICTIM", on=SAME)
            tid = ctx.accept("IAM").args[0]
            ctx.vm.kill_task(tid)
            ctx.accept("X", delay=1000, timeout_ok=True)
            return "done"

        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 3, secondary_pes=(4, 5)),))
        vm = make_vm(config=cfg, registry=registry)
        assert vm.run("MAIN").value == "done"


class TestResourceExhaustion:
    def test_unaccepted_messages_exhaust_shared_memory(self, make_vm,
                                                       registry):
        """Section 13's warned failure mode, made concrete."""

        @registry.tasktype("MAIN")
        def main(ctx):
            while True:
                ctx.send(SELF, "PILEUP", np.zeros(256))

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),))
        vm = make_vm(config=cfg, registry=registry,
                     machine=small_flex(6, shared_kb=48))
        with pytest.raises(OutOfMemory):
            vm.run("MAIN")

    def test_draining_the_queue_recovers_the_storage(self, make_vm,
                                                     registry):
        from repro.core.accept import ALL_RECEIVED

        @registry.tasktype("MAIN")
        def main(ctx):
            heap = ctx.vm.machine.shared
            for _ in range(20):
                ctx.send(SELF, "BURST", np.zeros(64))
            piled = heap.live_bytes_by_tag().get("message", 0)
            ctx.accept(("BURST", ALL_RECEIVED))
            ctx.accept(("BURST", 0))   # no-op, just a scheduling point
            drained = heap.live_bytes_by_tag().get("message", 0)
            return piled, drained

        vm = make_vm(registry=registry)
        piled, drained = vm.run("MAIN").value
        assert piled > 10_000 and drained < piled / 10

    def test_slot_starvation_is_a_detectable_deadlock(self, make_vm,
                                                      registry):
        """Tasks that never terminate while initiates are held: the
        held task never runs, the parent waits forever -> deadlock
        detection fires instead of hanging the suite."""

        @registry.tasktype("FOREVER")
        def forever(ctx):
            ctx.vm.engine.block("forever")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("FOREVER", on=SAME)   # takes the last slot
            ctx.initiate("FOREVER", on=SAME)   # held forever
            ctx.vm.engine.block("waiting-forever")

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),))
        vm = make_vm(config=cfg, registry=registry)
        with pytest.raises(DeadlockError) as ei:
            vm.run("MAIN")
        assert "forever" in str(ei.value)


class TestTimeoutPaths:
    def test_nested_timeout_recovery_protocol(self, make_vm, registry):
        """A parent retries with a backup worker after a timeout."""

        @registry.tasktype("SLOW")
        def slow(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER", delay=800_000, timeout_ok=True)

        @registry.tasktype("FAST")
        def fast(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.send(PARENT, "RESULT", "fast answer")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("SLOW", on=SAME)
            ctx.accept("IAM")
            res = ctx.accept("RESULT", delay=2000, timeout_ok=True)
            if res.timed_out:
                ctx.initiate("FAST", on=SAME)
                ctx.accept("IAM")
                res = ctx.accept("RESULT", delay=50_000)
            return res.args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == "fast answer"
