"""Whole-VM determinism: identical programs produce identical runs.

The engine's contract (and the foundation of this test-suite): same
program + same configuration => the same dispatch schedule, message
arrival order, timeouts and clock readings, bit for bit.
"""

import numpy as np
import pytest

from repro.apps.integrate import run_integrate
from repro.apps.jacobi import run_jacobi_force
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import ANY, PARENT
from repro.core.vm import PiscesVM
from repro.flex.presets import small_flex


def build_registry():
    from repro.core.task import TaskRegistry
    reg = TaskRegistry()

    @reg.tasktype("W")
    def w(ctx, k):
        ctx.compute(37 * (k + 1))
        ctx.send(PARENT, "DONE", k, ctx.now())

    @reg.tasktype("MAIN")
    def main(ctx):
        for k in range(6):
            ctx.initiate("W", k, on=ANY)
        res = ctx.accept(("DONE", 6))
        return [(m.args[0], m.args[1], m.arrival_time)
                for m in res.messages]

    return reg


def one_traced_run():
    cfg = Configuration(clusters=(ClusterSpec(1, 3, 3),
                                  ClusterSpec(2, 4, 3)), name="det")
    vm = PiscesVM(cfg, registry=build_registry(),
                  machine=small_flex(8))
    vm.tracer.enable_all()
    r = vm.run("MAIN")
    trace = [e.line() for e in vm.tracer.events]
    return r.value, r.elapsed, trace, vm.machine.clocks.snapshot()


class TestDeterminism:
    def test_identical_runs_bit_for_bit(self):
        a = one_traced_run()
        b = one_traced_run()
        assert a[0] == b[0]          # results incl. message timestamps
        assert a[1] == b[1]          # elapsed
        assert a[2] == b[2]          # the full trace, line for line
        assert a[3] == b[3]          # every PE clock

    def test_jacobi_force_deterministic(self):
        r1 = run_jacobi_force(n=12, sweeps=2, force_pes=3,
                              machine=small_flex(10))
        r1.vm.shutdown()
        r2 = run_jacobi_force(n=12, sweeps=2, force_pes=3,
                              machine=small_flex(10))
        r2.vm.shutdown()
        assert r1.elapsed == r2.elapsed
        assert np.array_equal(r1.grid, r2.grid)

    def test_dynamic_scheduling_still_deterministic(self):
        """Even the 'dynamic' master/worker distribution replays
        identically -- dynamism here means data-dependent, not random."""
        r1 = run_integrate(pieces=12, points_per_piece=4, n_workers=3,
                           machine=small_flex(10))
        r1.vm.shutdown()
        r2 = run_integrate(pieces=12, points_per_piece=4, n_workers=3,
                           machine=small_flex(10))
        r2.vm.shutdown()
        assert r1.per_worker == r2.per_worker
        assert r1.elapsed == r2.elapsed
        assert r1.value == r2.value
