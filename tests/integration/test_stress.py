"""Stress tests: many processes, heavy churn, windows inside forces."""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import ANY, PARENT
from repro.core.vm import PiscesVM
from repro.flex.machine import FlexMachine, MachineSpec
from repro.flex.presets import nasa_langley_flex32, small_flex
from repro.mmos.scheduler import Engine


class TestEngineStress:
    def test_two_hundred_processes(self):
        """The one-runner thread handshake holds up at scale and the
        virtual-time accounting stays exact."""
        m = FlexMachine(MachineSpec(n_pes=20, unix_pes=(1, 2),
                                    disk_pes=(1, 2)))
        eng = Engine(m)
        N = 200
        done = []

        def body(i):
            def run():
                for _ in range(3):
                    eng.charge(10)
                    eng.preempt(0)
                done.append(i)
            return run

        for i in range(N):
            eng.spawn(f"p{i}", 3 + (i % 18), body(i))
        eng.run()
        assert len(done) == N
        # exact accounting: total busy == total charged
        total_busy = sum(m.clocks[pe].busy_ticks for pe in range(1, 21))
        assert total_busy == N * 30

    def test_on_idle_check_hook_fires(self):
        eng = Engine(small_flex(6))
        count = {"n": 0}
        eng.on_idle_check = lambda: count.__setitem__("n", count["n"] + 1)
        eng.spawn("t", 3, lambda: eng.preempt(0))
        eng.run()
        assert count["n"] >= 2      # one per dispatched slice


class TestChurn:
    def test_slot_churn_five_waves(self, registry):
        """Five waves of tasks through two single-slot clusters: unique
        numbers climb, storage stays clean."""

        @registry.tasktype("BLIP")
        def blip(ctx, k):
            ctx.compute(10)
            ctx.send(PARENT, "BYE", k)

        @registry.tasktype("MAIN")
        def main(ctx):
            got = []
            for wave in range(5):
                for k in range(4):
                    ctx.initiate("BLIP", (wave, k), on=ANY)
                res = ctx.accept(("BYE", 4), delay=2_000_000)
                got.extend(m.args[0] for m in res.messages)
            return got

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),
                                      ClusterSpec(2, 4, 1)), name="churn")
        vm = PiscesVM(cfg, registry=registry, machine=small_flex(8))
        r = vm.run("MAIN")
        assert len(r.value) == 20
        assert r.stats.tasks_started == 21
        # slot 1 of cluster 2 was reused many times: uniques climbed
        uniques = [t.unique for t in vm.tasks if t == t]  # all taskids
        assert max(t.unique for t in vm.tasks) >= 5
        assert vm.storage_report()["message_bytes_live"] == 0


class TestWindowsInsideForces:
    def test_force_members_read_windows_concurrently(self, registry):
        """Each force member window-reads its own block of a remote
        task's array -- the two mechanisms compose."""

        @registry.tasktype("OWNER")
        def owner(ctx):
            a = np.arange(64.0).reshape(8, 8)
            ctx.export_array("A", a)
            w = ctx.accept("WANT").args and None  # never: just export
            return None

        # simpler: owner is the parent itself
        @registry.tasktype("FTASK")
        def ftask(ctx):
            a = np.arange(64.0).reshape(8, 8)
            full = ctx.export_array("A", a)

            def region(m, w):
                mine = w.split(m.force_size, axis=0)[m.member]
                data = m.window_read(mine)
                return float(data.sum())

            parts = ctx.forcesplit(region, full)
            return sum(parts)

        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(4, 5, 6)),), name="wf")
        vm = PiscesVM(cfg, registry=registry, machine=small_flex(8))
        r = vm.run("FTASK")
        assert r.value == float(np.arange(64.0).sum())
        assert r.stats.window_reads == 4
