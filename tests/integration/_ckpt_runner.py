"""Subprocess driver for the checkpoint kill -9 soak.

Three modes, one fixed chaos-jacobi scenario per (scenario, core):

* ``reference <out.json> <core> <scenario>`` -- run uninterrupted with
  checkpointing OFF and no host kill; dump the final artifacts.
* ``victim <dir> <core> <scenario>`` -- run with periodic checkpoints
  into ``<dir>`` and a :class:`~repro.faults.HostKill` in the plan: the
  process dies by ``kill -9`` mid-run (exit code -9 as seen by the
  parent).  Exits 3 if the run somehow completes.
* ``restore <dir> <out.json>`` -- in a fresh process: find the latest
  valid bundle in ``<dir>``, rebuild the (closure-based) chaos registry,
  restore, resume to completion, dump the same artifact shape.

The soak asserts the reference and restore dumps are byte-identical:
same virtual elapsed, same grid, same trace stream, same fault events.
"""

import hashlib
import json
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

from repro.apps.chaos_jacobi import build_chaos_registry, run_chaos_jacobi
from repro.checkpoint import find_latest_checkpoint, restore_vm
from repro.config.configuration import ClusterSpec, Configuration
from repro.faults import RESTART, FaultPlan, HostKill, MessagePolicy, PECrash

# One fixed problem; small enough to soak in CI, long enough in virtual
# time to cross several checkpoint marks before the kill fires.
N, SWEEPS, N_WORKERS = 10, 2, 3
SUPERVISION = RESTART(3, backoff_ticks=500)
ON_DEATH = "reassign"
RESEND_DELAY, IDLE_TIMEOUT, MAX_ROUNDS = 8_000, 60_000, 200
CHECKPOINT_EVERY = 500
KILL_AT = 5_000
TRACE = ("FAULT", "MSG_SEND", "MSG_ACCEPT")


def plan(scenario: str, host_kill: bool) -> FaultPlan:
    """The seeded plan for a scenario, with or without the host kill."""
    kills = (HostKill(at=KILL_AT),) if host_kill else ()
    if scenario == "faulty":
        return FaultPlan(seed=3, crashes=(PECrash(at=4_000, pe=4),),
                         messages=MessagePolicy(drop=0.05, delay=0.1,
                                                delay_ticks=700),
                         host_kills=kills, name="soak-faulty")
    return FaultPlan(seed=3, host_kills=kills, name="soak-plain")


def config(core: str, ckpt_dir: str = "") -> Configuration:
    return Configuration(
        clusters=(ClusterSpec(1, 3, 4), ClusterSpec(2, 4, 4)),
        name="ckpt-soak", trace_events=TRACE, exec_core=core,
        checkpoint_every=CHECKPOINT_EVERY if ckpt_dir else 0,
        checkpoint_dir=ckpt_dir, checkpoint_keep=3, run_seed=11)


def registry():
    return build_chaos_registry(N, SWEEPS, N_WORKERS, SUPERVISION, ON_DEATH,
                                RESEND_DELAY, IDLE_TIMEOUT, MAX_ROUNDS)


def dump(out_path: str, vm, value, elapsed: int) -> None:
    grid, reason, rounds = value
    record = {
        "elapsed": int(elapsed),
        "reason": reason,
        "rounds": int(rounds),
        "grid_sha": (None if grid is None else hashlib.sha256(
            np.ascontiguousarray(grid).tobytes()).hexdigest()),
        "trace": [e.line() for e in vm.tracer.events],
        "faults": vm.faults.export_jsonl() if vm.faults is not None else "",
    }
    Path(out_path).write_text(json.dumps(record, indent=1), encoding="utf-8")


def main(argv) -> int:
    mode = argv[0]
    if mode == "reference":
        out, core, scenario = argv[1], argv[2], argv[3]
        r = run_chaos_jacobi(n=N, sweeps=SWEEPS, n_workers=N_WORKERS,
                             supervision=SUPERVISION, on_death=ON_DEATH,
                             resend_delay=RESEND_DELAY,
                             idle_timeout=IDLE_TIMEOUT, max_rounds=MAX_ROUNDS,
                             config=config(core),
                             fault_plan=plan(scenario, host_kill=False))
        r.vm.shutdown()
        dump(out, r.vm, (r.grid, r.reason, r.rounds), r.elapsed)
        return 0
    if mode == "victim":
        ckpt_dir, core, scenario = argv[1], argv[2], argv[3]
        run_chaos_jacobi(n=N, sweeps=SWEEPS, n_workers=N_WORKERS,
                         supervision=SUPERVISION, on_death=ON_DEATH,
                         resend_delay=RESEND_DELAY,
                         idle_timeout=IDLE_TIMEOUT, max_rounds=MAX_ROUNDS,
                         config=config(core, ckpt_dir=ckpt_dir),
                         fault_plan=plan(scenario, host_kill=True))
        # The HostKill should have SIGKILLed us mid-run.
        return 3
    if mode == "restore":
        ckpt_dir, out = argv[1], argv[2]
        latest = find_latest_checkpoint(ckpt_dir)
        if latest is None:
            print("no valid checkpoint found", file=sys.stderr)
            return 4
        rr = restore_vm(latest, registry=registry())
        res = rr.resume()
        dump(out, rr.vm, res.value, res.elapsed)
        return 0
    print(f"unknown mode {mode!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
