"""The indexed dispatcher must replay the scan dispatcher bit-for-bit.

The scheduler docstring's determinism contract is load-bearing for the
whole suite: swapping the O(n) reference scan for the lazy-deletion
heap (and broadcast wakeups for per-process grants) must not move a
single virtual timestamp.  Each app here runs once per dispatcher and
the full observable history -- elapsed virtual time, dispatch count,
per-PE clock readings and run stats -- must match exactly.
"""

import os

import pytest

from repro.apps.fem import run_fem
from repro.apps.integrate import run_integrate
from repro.apps.jacobi import run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline


def _fingerprint(r):
    vm = r.vm
    clocks = vm.machine.clocks.snapshot()
    stats = vm.stats
    fp = {
        "elapsed": int(r.elapsed),
        "dispatches": vm.engine.dispatch_count,
        "clocks": {pe: int(t) for pe, t in clocks.items()},
        "messages_sent": stats.messages_sent,
        "messages_accepted": stats.messages_accepted,
        "tasks_started": stats.tasks_started,
    }
    vm.shutdown()
    return fp


def _run_both(fn):
    out = {}
    for dispatcher in ("indexed", "scan"):
        os.environ["PISCES_DISPATCHER"] = dispatcher
        try:
            out[dispatcher] = _fingerprint(fn())
        finally:
            os.environ.pop("PISCES_DISPATCHER", None)
    return out


APPS = [
    ("jacobi", lambda: run_jacobi_windows(n=12, sweeps=2, n_workers=3)),
    ("matmul", lambda: run_matmul_tasks(n=8, n_workers=3)),
    ("fem", lambda: run_fem(n_elements=8)),
    ("pipeline", lambda: run_pipeline(n_stages=3, items=list(range(8)))),
    ("integrate", lambda: run_integrate(pieces=12, points_per_piece=4)),
]


@pytest.mark.parametrize("name,fn", APPS, ids=[a[0] for a in APPS])
def test_app_virtual_history_is_dispatcher_independent(name, fn):
    got = _run_both(fn)
    assert got["indexed"] == got["scan"], (
        f"{name}: virtual history diverged between dispatchers")


@pytest.mark.parametrize("name,fn", APPS, ids=[a[0] for a in APPS])
def test_replay_dispatcher_retraces_recorded_history(name, fn, tmp_path,
                                                     monkeypatch):
    """Third leg of the matrix: record each app under the indexed
    dispatcher (PISCES_RECORD_SCHEDULE autosaves the .psched at
    shutdown), then re-run under PISCES_DISPATCHER=replay and the full
    observable history must again match bit for bit."""
    psched = tmp_path / f"{name}.psched"
    monkeypatch.setenv("PISCES_DISPATCHER", "indexed")
    monkeypatch.setenv("PISCES_RECORD_SCHEDULE", str(psched))
    recorded = _fingerprint(fn())
    monkeypatch.delenv("PISCES_RECORD_SCHEDULE")
    assert psched.exists(), "recorder did not autosave at shutdown"
    monkeypatch.setenv("PISCES_DISPATCHER", "replay")
    monkeypatch.setenv("PISCES_REPLAY_SCHEDULE", str(psched))
    replayed = _fingerprint(fn())
    assert replayed == recorded, (
        f"{name}: replay diverged from its own recording")
