"""Every (execution core x dispatcher) leg must replay bit-for-bit.

The scheduler docstring's determinism contract is load-bearing for the
whole suite: swapping the O(n) reference scan for the two-level heap
picker (and broadcast wakeups for per-process grants), or swapping the
thread-per-process core for the coop discrete-event core, must not
move a single virtual timestamp.  Each app here runs once per leg of
the core x dispatcher matrix and the full observable history --
elapsed virtual time, dispatch count, per-PE clock readings and run
stats -- must match exactly; the replay tests additionally re-execute
a threaded-core recording on the coop core, and the chaos test holds
both cores to the same history under a seeded fault plan.
"""

import os

import pytest

from repro.apps.chaos_jacobi import run_chaos_jacobi
from repro.apps.fem import run_fem
from repro.apps.integrate import run_integrate
from repro.apps.jacobi import build_windows_registry, run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline
from repro.faults import RESTART, FaultPlan, PECrash

#: The full matrix of satellite 4: both cores against both live
#: dispatchers (replay legs are exercised separately below).
LEGS = [
    ("threaded", "indexed"),
    ("threaded", "scan"),
    ("coop", "indexed"),
    ("coop", "scan"),
]


def _fingerprint(r):
    vm = r.vm
    clocks = vm.machine.clocks.snapshot()
    stats = vm.stats
    fp = {
        "elapsed": int(r.elapsed),
        "dispatches": vm.engine.dispatch_count,
        "clocks": {pe: int(t) for pe, t in clocks.items()},
        "messages_sent": stats.messages_sent,
        "messages_accepted": stats.messages_accepted,
        "tasks_started": stats.tasks_started,
    }
    vm.shutdown()
    return fp


def _run_leg(fn, core, dispatcher):
    os.environ["PISCES_DISPATCHER"] = dispatcher
    os.environ["PISCES_EXEC_CORE"] = core
    try:
        return _fingerprint(fn())
    finally:
        os.environ.pop("PISCES_DISPATCHER", None)
        os.environ.pop("PISCES_EXEC_CORE", None)


APPS = [
    ("jacobi", lambda: run_jacobi_windows(n=12, sweeps=2, n_workers=3)),
    ("matmul", lambda: run_matmul_tasks(n=8, n_workers=3)),
    ("fem", lambda: run_fem(n_elements=8)),
    ("pipeline", lambda: run_pipeline(n_stages=3, items=list(range(8)))),
    ("integrate", lambda: run_integrate(pieces=12, points_per_piece=4)),
]


@pytest.mark.parametrize("name,fn", APPS, ids=[a[0] for a in APPS])
def test_app_virtual_history_is_leg_independent(name, fn):
    got = {leg: _run_leg(fn, *leg) for leg in LEGS}
    ref = got[LEGS[0]]
    for leg, fp in got.items():
        assert fp == ref, (
            f"{name}: virtual history diverged on {leg[0]}x{leg[1]} "
            f"vs {LEGS[0][0]}x{LEGS[0][1]}")


@pytest.mark.parametrize("name,fn", APPS, ids=[a[0] for a in APPS])
def test_replay_dispatcher_retraces_recorded_history(name, fn, tmp_path,
                                                     monkeypatch):
    """Replay legs of the matrix: record each app under the threaded
    core + indexed dispatcher (PISCES_RECORD_SCHEDULE autosaves the
    .psched at shutdown), then re-run under PISCES_DISPATCHER=replay on
    *both* cores -- a threaded-core recording must drive the coop core
    to the identical history."""
    psched = tmp_path / f"{name}.psched"
    monkeypatch.setenv("PISCES_DISPATCHER", "indexed")
    monkeypatch.setenv("PISCES_EXEC_CORE", "threaded")
    monkeypatch.setenv("PISCES_RECORD_SCHEDULE", str(psched))
    recorded = _fingerprint(fn())
    monkeypatch.delenv("PISCES_RECORD_SCHEDULE")
    assert psched.exists(), "recorder did not autosave at shutdown"
    monkeypatch.setenv("PISCES_DISPATCHER", "replay")
    monkeypatch.setenv("PISCES_REPLAY_SCHEDULE", str(psched))
    for core in ("threaded", "coop"):
        monkeypatch.setenv("PISCES_EXEC_CORE", core)
        replayed = _fingerprint(fn())
        assert replayed == recorded, (
            f"{name}: replay on the {core} core diverged from the "
            f"threaded-core recording")


def test_trace_stream_identical_across_cores(monkeypatch):
    """The full trace stream -- not just the summary fingerprint -- is
    part of the determinism contract between cores."""
    from repro.api import record_run

    runs = {}
    for core in ("threaded", "coop"):
        monkeypatch.setenv("PISCES_EXEC_CORE", core)
        rec = record_run("JMASTER", registry=build_windows_registry(12, 2, 3))
        rec.result.vm.shutdown()
        runs[core] = rec
    assert runs["coop"].elapsed == runs["threaded"].elapsed
    assert runs["coop"].trace_lines == runs["threaded"].trace_lines, \
        "trace stream diverged between execution cores"


CRASH_PLAN = FaultPlan(seed=11, crashes=(PECrash(at=4_000, pe=4),),
                       name="identity-crash-pe4")


def test_chaos_jacobi_fault_plan_identical_across_cores():
    """Fault injection points are virtual-time events, so a seeded plan
    must produce the same crash/restart/recovery history on both
    cores."""
    got = {}
    for core in ("threaded", "coop"):
        os.environ["PISCES_EXEC_CORE"] = core
        try:
            r = run_chaos_jacobi(n=12, sweeps=2, n_workers=3,
                                 supervision=RESTART(3, backoff_ticks=500),
                                 on_death="reassign",
                                 fault_plan=CRASH_PLAN)
        finally:
            os.environ.pop("PISCES_EXEC_CORE", None)
        fault_kinds = [e.kind for e in r.vm.faults.events]
        restarted = r.vm.stats.tasks_restarted
        got[core] = (_fingerprint(r), r.completed, r.rounds, fault_kinds,
                     restarted)
    assert got["coop"] == got["threaded"], (
        "chaos_jacobi under the seeded fault plan diverged between cores")
    assert got["threaded"][1], "crash plan should still converge"
    assert "pe_crash" in got["threaded"][3]
