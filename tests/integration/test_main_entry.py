"""Tests: the ``python -m repro`` interactive environment (section 11)."""

import pytest

from repro.__main__ import main


HELLO_PF = """
TASK HELLOW(K)
INTEGER K
PRINT *, 'HELLO FROM PISCES', K
TO USER SEND GREETING(K)
END TASK
"""


@pytest.fixture
def hello_source(tmp_path):
    p = tmp_path / "hello.pf"
    p.write_text(HELLO_PF)
    return str(p)


def drive(monkeypatch, capsys, argv, stdin_lines):
    import io
    import sys
    monkeypatch.setattr(sys, "stdin", io.StringIO("\n".join(stdin_lines)
                                                  + "\n"))
    rc = main(argv)
    return rc, capsys.readouterr()


class TestMainEntry:
    def test_full_session(self, hello_source, monkeypatch, capsys):
        rc, cap = drive(monkeypatch, capsys, [hello_source], [
            "2", "1", "3", "4", "-",     # one cluster on PE 3
            "0",                          # configuration done
            "1 HELLOW 1 42",              # initiate the Fortran task
            "5",                          # display running tasks
            "0",                          # terminate the run
        ])
        assert rc == 0
        assert "loaded" in cap.out and "HELLOW" in cap.out
        assert "control transfers to the PISCES execution environment" \
            in cap.out
        assert "initiated HELLOW: 1.1.1" in cap.out
        assert "run terminated" in cap.out

    def test_bad_source_reports_error(self, tmp_path, monkeypatch, capsys):
        bad = tmp_path / "bad.pf"
        bad.write_text("GOTO 10\n")
        rc, cap = drive(monkeypatch, capsys, [str(bad)], [])
        assert rc == 1
        assert "error preprocessing" in cap.err

    def test_missing_file_reports_error(self, monkeypatch, capsys):
        rc, cap = drive(monkeypatch, capsys, ["/nonexistent.pf"], [])
        assert rc == 1

    def test_no_sources_still_runs(self, monkeypatch, capsys):
        rc, cap = drive(monkeypatch, capsys, [], [
            "2", "1", "3", "2", "-",
            "0",
            "0",
        ])
        assert rc == 0
        assert "no Pisces Fortran sources" in cap.out
