"""Chaos/soak suite: the example apps under injected faults.

Three fixed seeds x the five example workloads run under a
delay-only message plan (reordering is the one fault class the paper's
non-fault-tolerant apps tolerate by construction -- nothing is lost or
altered, only late).  Loss, duplication, corruption, PE crashes and
supervision-driven recovery are exercised against the purpose-built
fault-tolerant solver in :mod:`repro.apps.chaos_jacobi`.

``CHAOS_SMOKE=1`` shrinks problem sizes (the CI chaos-smoke job); the
suite also writes ``CHAOS_fault_events.jsonl`` at the repo root so CI
can upload the fault-event stream as an artifact.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.apps.chaos_jacobi import run_chaos_jacobi
from repro.apps.fem import run_fem
from repro.apps.integrate import run_integrate
from repro.apps.jacobi import reference_solution, run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline
from repro.config.configuration import ClusterSpec, Configuration
from repro.faults import RESTART, FaultPlan, MessagePolicy, PECrash, plan_scope
from repro.flex.presets import small_flex

SMOKE = bool(os.environ.get("CHAOS_SMOKE"))
SEEDS = (1, 7, 42)

#: Reordering-only transport: eligible deliveries may be late, never
#: lost, duplicated or altered.  The paper's apps assume FIFO transport,
#: so each app exempts the message types whose *order* carries meaning
#: (a late WIN makes a halo read race with neighbour writes; a late
#: ITEM/EOS reorders or truncates the pipeline stream) and the soak
#: reorders everything else.
def delay_policy(protected=()):
    return MessagePolicy(delay=0.35, delay_ticks=1_500,
                         protected=tuple(protected))

#: Everything at once, for the fault-tolerant solver.
LOSSY = MessagePolicy(drop=0.08, duplicate=0.05, delay=0.08, corrupt=0.05,
                      delay_ticks=900)

ARTIFACT = Path(__file__).resolve().parents[2] / "CHAOS_fault_events.jsonl"

# Reduced sizes under CHAOS_SMOKE.
N_JACOBI = 10 if SMOKE else 16
N_MATMUL = 8 if SMOKE else 16
N_FEM = 5 if SMOKE else 10
N_PIECES = 8 if SMOKE else 16


def delay_plan(seed, protected=()):
    return FaultPlan(seed=seed, messages=delay_policy(protected),
                     name=f"delay-only-{seed}")


class TestFiveAppSoak:
    """Each example app computes its exact fault-free answer under a
    reordering transport, for every seed."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_jacobi(self, seed):
        with plan_scope(delay_plan(seed, protected=("WIN",))):
            r = run_jacobi_windows(n=N_JACOBI, sweeps=2, n_workers=2,
                                   machine=small_flex(10))
        r.vm.shutdown()
        assert r.vm.stats.messages_delayed > 0
        assert np.allclose(r.grid, reference_solution(N_JACOBI, 2))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matmul(self, seed):
        with plan_scope(delay_plan(seed)):
            r = run_matmul_tasks(n=N_MATMUL, n_workers=3,
                                 machine=small_flex(10))
        r.vm.shutdown()
        A = np.asarray(r.C)
        assert A.shape == (N_MATMUL, N_MATMUL)
        assert r.vm.stats.messages_delayed > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fem(self, seed):
        from repro.apps.fem import FEMProblem
        with plan_scope(delay_plan(seed)):
            r = run_fem(n_elements=N_FEM, force_pes=2,
                        machine=small_flex(10))
        r.vm.shutdown()
        prob = FEMProblem(N_FEM)
        exact = np.linalg.solve(prob.stiffness(), prob.load_vector())
        assert np.allclose(r.displacements, exact, atol=1e-8)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pipeline(self, seed):
        items = list(range(6 if SMOKE else 10))
        with plan_scope(delay_plan(seed, protected=("ITEM", "EOS"))):
            r = run_pipeline(n_stages=3, items=items,
                             machine=small_flex(10))
        r.vm.shutdown()
        assert r.outputs == [i + 3 for i in items]
        assert r.vm.faults is not None

    @pytest.mark.parametrize("seed", SEEDS)
    def test_integrate(self, seed):
        with plan_scope(delay_plan(seed)):
            r = run_integrate(pieces=N_PIECES, points_per_piece=6,
                              n_workers=3, machine=small_flex(10))
        r.vm.shutdown()
        assert r.value == pytest.approx(r.exact, rel=0.02)


def chaos_config(trace=(), exec_core=""):
    return Configuration(clusters=(ClusterSpec(1, 3, 4),
                                   ClusterSpec(2, 4, 4)),
                         name="chaos-jacobi", trace_events=tuple(trace),
                         exec_core=exec_core)


CRASH_PLAN = FaultPlan(seed=1, crashes=(PECrash(at=4_000, pe=4),),
                       name="crash-pe4")

#: Supervision recovery is core-independent: both execution cores must
#: produce the same restart behaviour (and, in TestDeterminism, the
#: same bits).
BOTH_CORES = pytest.mark.parametrize("core", ["threaded", "coop"])


@BOTH_CORES
class TestRecovery:
    """PE crash mid-run against the fault-tolerant Jacobi solver, on
    both execution cores."""

    def test_crash_under_restart_converges_to_exact_answer(self, core):
        r = run_chaos_jacobi(n=N_JACOBI, sweeps=2, n_workers=3,
                             supervision=RESTART(3, backoff_ticks=500),
                             on_death="reassign",
                             fault_plan=CRASH_PLAN,
                             config=chaos_config(exec_core=core))
        r.vm.shutdown()
        assert r.completed
        assert np.array_equal(r.grid, reference_solution(N_JACOBI, 2))
        assert r.vm.stats.tasks_restarted >= 1
        assert r.vm.stats.tasks_died >= 1
        assert r.vm.engine.leaked_threads == []
        kinds = [e.kind for e in r.vm.faults.events]
        assert "pe_crash" in kinds and "restart" in kinds

    def test_crash_without_supervision_aborts_cleanly(self, core):
        r = run_chaos_jacobi(n=N_JACOBI, sweeps=2, n_workers=3,
                             supervision=None, on_death="abort",
                             fault_plan=CRASH_PLAN,
                             config=chaos_config(exec_core=core))
        r.vm.shutdown()
        # The parent observed TASK_DIED, terminated cleanly, and left
        # no threads behind.
        assert not r.completed
        assert "died" in r.reason
        assert r.vm.engine.leaked_threads == []
        assert all(p.thread is None or not p.thread.is_alive()
                   for p in r.vm.engine.processes())

    def test_crash_with_reassignment_still_exact(self, core):
        r = run_chaos_jacobi(n=N_JACOBI, sweeps=2, n_workers=3,
                             supervision=None, on_death="reassign",
                             fault_plan=CRASH_PLAN,
                             config=chaos_config(exec_core=core))
        r.vm.shutdown()
        assert r.completed
        assert np.array_equal(r.grid, reference_solution(N_JACOBI, 2))

    def test_lossy_transport_heals_to_exact_answer(self, core):
        plan = FaultPlan(seed=7, messages=LOSSY, name="lossy")
        r = run_chaos_jacobi(n=N_JACOBI, sweeps=2, n_workers=3,
                             fault_plan=plan,
                             config=chaos_config(exec_core=core))
        r.vm.shutdown()
        assert r.completed
        assert np.array_equal(r.grid, reference_solution(N_JACOBI, 2))
        s = r.vm.stats
        assert s.faults_injected > 0
        assert (s.messages_dropped + s.messages_duplicated
                + s.messages_delayed + s.messages_corrupted) > 0

    def test_restart_backoff_jitter_is_seeded_deterministic(self, core):
        """RESTART backoff jitter draws from the seeded run RNG: two
        runs with the same run_seed restart at identical ticks (the
        whole fault stream is bit-identical), and jitter != 0 changes
        nothing else about convergence."""
        from dataclasses import replace as _rep

        def once():
            cfg = _rep(chaos_config(exec_core=core), run_seed=11)
            r = run_chaos_jacobi(
                n=N_JACOBI, sweeps=2, n_workers=3,
                supervision=RESTART(3, backoff_ticks=500, jitter=0.5),
                on_death="reassign", fault_plan=CRASH_PLAN, config=cfg)
            faults = r.vm.faults.export_jsonl()
            out = (r.completed, np.asarray(r.grid).copy(), r.elapsed, faults)
            r.vm.shutdown()
            return out

        c1, g1, e1, f1 = once()
        c2, g2, e2, f2 = once()
        assert c1 and c2
        assert np.array_equal(g1, reference_solution(N_JACOBI, 2))
        assert e1 == e2
        assert f1 == f2


@BOTH_CORES
class TestDeterminism:
    """Same seed + same plan => bit-identical fault and trace streams,
    on both execution cores."""

    def run_once(self, core):
        plan = FaultPlan(seed=3, crashes=(PECrash(at=4_000, pe=4),),
                         messages=MessagePolicy(drop=0.05, delay=0.1,
                                                delay_ticks=700),
                         name="determinism")
        r = run_chaos_jacobi(
            n=N_JACOBI, sweeps=2, n_workers=3,
            supervision=RESTART(3, backoff_ticks=500),
            on_death="reassign", fault_plan=plan,
            config=chaos_config(trace=("FAULT", "MSG_SEND", "MSG_ACCEPT"),
                                exec_core=core))
        faults = r.vm.faults.export_jsonl()
        traces = [e.line() for e in r.vm.tracer.events]
        grid, elapsed = r.grid, r.elapsed
        r.vm.shutdown()
        return faults, traces, grid, elapsed

    def test_two_runs_bit_identical(self, core):
        f1, t1, g1, e1 = self.run_once(core)
        f2, t2, g2, e2 = self.run_once(core)
        assert f1 == f2
        assert t1 == t2
        assert e1 == e2
        assert np.array_equal(g1, g2)
        # Every fault line is valid JSON in injection order.
        seqs = [json.loads(l)["seq"] for l in f1.splitlines()]
        assert seqs == sorted(seqs)
        # The CI artifact: the canonical fault-event stream of this run.
        ARTIFACT.write_text(f1 + "\n" if f1 else "")
