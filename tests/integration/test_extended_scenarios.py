"""Extended integration scenarios: controller protocols, soak, Fortran."""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.controllers import MSG_KILL
from repro.core.taskid import ANY, PARENT, TContr
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32
from repro.fortran import preprocess


class TestControllerKillProtocol:
    def test_kill_via_tcontr_message(self, make_vm, registry):
        """Tasks can ask a task controller to kill a task by message --
        the same mechanism the monitor uses (section 5/11)."""

        @registry.tasktype("HOG")
        def hog(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER", delay=900_000, timeout_ok=True)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("HOG", on=1)
            tid = ctx.accept("IAM").args[0]
            ctx.send(TContr(tid.cluster), MSG_KILL, tid)
            ctx.accept("X", delay=2000, timeout_ok=True)
            return tid

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert not vm.tasks[r.value].alive
        assert r.stats.tasks_killed == 1


class TestSoak:
    def test_many_tasks_across_many_clusters(self, registry):
        """A 60-task fan-out over 10 clusters on the full NASA machine:
        every task replies, all slots recycle, heap drains clean."""

        @registry.tasktype("W")
        def w(ctx, k):
            ctx.compute(20 + (k % 7) * 15)
            ctx.send(PARENT, "DONE", k)

        @registry.tasktype("MAIN")
        def main(ctx):
            n = 60
            for k in range(n):
                ctx.initiate("W", k, on=ANY)
            res = ctx.accept(("DONE", 60), delay=5_000_000)
            return sorted(m.args[0] for m in res.messages)

        cfg = Configuration(
            clusters=tuple(ClusterSpec(i, 2 + i, 3) for i in range(1, 11)),
            name="soak")
        vm = PiscesVM(cfg, registry=registry,
                      machine=nasa_langley_flex32())
        r = vm.run("MAIN")
        assert r.value == list(range(60))
        assert r.stats.tasks_started == 61
        # held requests happened (60 tasks >> 30 slots) and drained
        assert r.stats.initiates_held > 0
        # every slot was recycled and all message storage recovered
        assert vm.storage_report()["message_bytes_live"] == 0
        for cr in vm.clusters.values():
            assert all(s.free for s in cr.slots)

    def test_deep_task_chain(self, make_vm, registry):
        """Recursion through INITIATE: a chain of 12 tasks, each the
        parent of the next; the result flows back up the tree."""

        @registry.tasktype("LINK")
        def link(ctx, depth):
            if depth == 0:
                ctx.send(PARENT, "VALUE", 1)
                return
            ctx.initiate("LINK", depth - 1, on=ANY)
            v = ctx.accept("VALUE").args[0]
            ctx.send(PARENT, "VALUE", v + 1)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("LINK", 11, on=ANY)
            return ctx.accept("VALUE", delay=5_000_000).args[0]

        cfg = Configuration(
            clusters=(ClusterSpec(1, 3, 8), ClusterSpec(2, 4, 8)),
            name="chain")
        vm = make_vm(config=cfg, registry=registry)
        assert vm.run("MAIN").value == 12


class TestFortranIntegration:
    def test_pi_force_program(self, make_vm):
        """The examples' pi-by-force program, as a regression test."""
        src = """
        TASK MAIN
        HANDLER ANSWER
        ON CLUSTER 1 INITIATE PIFORCE(128)
        ACCEPT 1 OF ANSWER
        END TASK

        HANDLER ANSWER(PI)
        REAL PI
        PRINT *, 'PI', PI
        END HANDLER

        TASK PIFORCE(N)
        INTEGER N, I
        REAL H, X
        SHARED COMMON /ACC/ TOTAL
        REAL TOTAL
        LOCK L
        H = 1.0 / N
        FORCESPLIT
        PRESCHED DO 10 I = 1, N
          X = H * (I - 0.5)
          COMPUTE 8
          CRITICAL L
            TOTAL = TOTAL + 4.0 / (1.0 + X * X)
          END CRITICAL
        10 CONTINUE
        BARRIER
          TO PARENT SEND ANSWER(TOTAL * H)
        END BARRIER
        END TASK
        """
        prog = preprocess(src)
        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 4, secondary_pes=(4, 5, 6)),))
        vm = make_vm(config=cfg, registry=prog.registry)
        r = vm.run("MAIN")
        line = [l for l in r.console.splitlines() if "PI" in l][0]
        pi = float(line.rsplit(" ", 1)[1])
        assert abs(pi - 3.14159265) < 1e-3

    def test_fortran_task_using_windows_via_python_owner(self, make_vm):
        """Mixed program: a Python owner task exports an array; a
        Fortran task receives the window value and a Python helper task
        reads it -- window values round-trip through Fortran TASKID/
        WINDOW variables."""
        from repro.core.task import TaskRegistry

        src = """
        TASK RELAY
        WINDOW W
        ACCEPT 1 OF WIN
        W = LASTWIN
        TO PARENT SEND FWD(W)
        END TASK
        """
        # LASTWIN is not part of the language; use a handler instead.
        src = """
        TASK RELAY
        HANDLER WIN
        ACCEPT 1 OF WIN
        END TASK

        HANDLER WIN(W)
        WINDOW W
        TO PARENT SEND FWD(W)
        END HANDLER
        """
        prog = preprocess(src)
        reg = prog.registry

        @reg.tasktype("OWNER")
        def owner(ctx):
            a = np.arange(10.0)
            ctx.export_array("A", a)
            ctx.initiate("RELAY", on=1)
            ctx.accept("X", delay=1000, timeout_ok=True)
            ctx.broadcast("WIN", ctx.window("A"), cluster=1)
            w = ctx.accept("FWD").args[0]
            return float(ctx.window_read(w).sum())

        vm = make_vm(registry=reg)
        assert vm.run("OWNER").value == 45.0
