"""Integration tests reproducing the paper's worked scenarios."""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import ANY, Cluster, PARENT, SENDER
from repro.core.vm import PiscesVM
from repro.flex.presets import nasa_langley_flex32


def section9_configuration() -> Configuration:
    """The exact 18-PE mapping example of section 9:

    a. four clusters, numbered 1-4;
    b. clusters 1-4 on PEs 3-6, 4 slots each;
    c. PEs 7-15 run forces for BOTH clusters 3 and 4;
    d. PEs 16-20 run forces for cluster 2;
    e. no force PEs for cluster 1.
    """
    return Configuration(
        clusters=(
            ClusterSpec(1, 3, 4),
            ClusterSpec(2, 4, 4, tuple(range(16, 21))),
            ClusterSpec(3, 5, 4, tuple(range(7, 16))),
            ClusterSpec(4, 6, 4, tuple(range(7, 16))),
        ),
        name="section9-example")


class TestSection9MappingExample:
    """Every property the paper states about the example mapping."""

    def test_configuration_is_valid_on_the_nasa_machine(self):
        cfg = section9_configuration()
        cfg.validate(nasa_langley_flex32().spec)

    def test_uses_all_18_mmos_pes(self):
        assert section9_configuration().used_pes() == list(range(3, 21))

    def test_force_sizes(self, registry):
        cfg = section9_configuration()
        vm = PiscesVM(cfg, registry=registry,
                      machine=nasa_langley_flex32())
        try:
            # cluster 1: no splitting; cluster 2: 1+5; clusters 3,4: 1+9
            assert vm.clusters[1].force_size == 1
            assert vm.clusters[2].force_size == 6
            assert vm.clusters[3].force_size == 10
            assert vm.clusters[4].force_size == 10
        finally:
            vm.shutdown()

    def test_max_multiprogramming_on_shared_force_pe_is_8(self):
        """'The maximum number of simultaneous tasks that might be
        running on one of these PE's is ... 4+4=8 here.'"""
        cfg = section9_configuration()
        for pe in range(7, 16):
            assert cfg.max_multiprogramming(pe) == 8
        for pe in range(16, 21):
            assert cfg.max_multiprogramming(pe) == 4
        for pe in (3, 4, 5, 6):
            assert cfg.max_multiprogramming(pe) == 4

    def test_cluster1_forcesplit_causes_no_parallel_splitting(self,
                                                              registry):
        """Example item e, verbatim behaviour."""

        def region(m):
            return (m.member, m.force_size)

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = PiscesVM(section9_configuration(), registry=registry,
                      machine=nasa_langley_flex32())
        try:
            r = vm.run("T", on=Cluster(1), shutdown=False)
            assert r.value == [(0, 1)]
        finally:
            vm.shutdown()

    def test_forces_from_clusters_3_and_4_share_pes_7_to_15(self,
                                                            registry):
        seen_pes = {}

        def region(m):
            return m.vm.engine.current().pe

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("T", on=Cluster(3))
            ctx.initiate("T", on=Cluster(4))
            ctx.accept("X", delay=1_000_000, timeout_ok=True)

        vm = PiscesVM(section9_configuration(), registry=registry,
                      machine=nasa_langley_flex32())
        try:
            vm.run("MAIN", on=Cluster(1), shutdown=False)
            results = [t.result for t in vm.tasks.values()
                       if t.ttype.name == "T"]
            for pes in results:
                assert pes[0] in (5, 6)                   # primary PE
                assert set(pes[1:]) == set(range(7, 16))  # shared force PEs
        finally:
            vm.shutdown()


class TestSection6TopologyIdiom:
    def test_taskid_exchange_builds_arbitrary_topology(self, make_vm,
                                                       registry):
        """Section 6: initial tree topology, then taskids flow in
        messages to wire a ring: main -> w0 -> w1 -> w2 -> main."""

        @registry.tasktype("RINGNODE")
        def ringnode(ctx, k):
            ctx.send(PARENT, "HELLO", k)
            nxt = ctx.accept("NEXT").args[0]
            res = ctx.accept("TOKEN")
            ctx.send(nxt, "TOKEN", res.args[0] + 1)

        @registry.tasktype("MAIN")
        def main(ctx):
            n = 3
            for k in range(n):
                ctx.initiate("RINGNODE", k, on=ANY)
            nodes = {}
            for _ in range(n):
                res = ctx.accept("HELLO")
                nodes[res.args[0]] = res.sender
            for k in range(n - 1):
                ctx.send(nodes[k], "NEXT", nodes[k + 1])
            ctx.send(nodes[n - 1], "NEXT", ctx.self_id)
            ctx.send(nodes[0], "TOKEN", 0)
            return ctx.accept("TOKEN").args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 3   # incremented at each hop


class TestTracedTimingAnalysis:
    def test_trace_to_file_then_offline_analysis(self, make_vm, registry,
                                                 tmp_path):
        """Section 12's workflow: trace to a file, analyze off-line."""
        from repro.analysis.timeline import Timeline

        @registry.tasktype("WORKER")
        def worker(ctx, k):
            ctx.compute(300)
            ctx.send(PARENT, "DONE")

        @registry.tasktype("MAIN")
        def main(ctx):
            for k in range(2):
                ctx.initiate("WORKER", k, on=ANY)
            ctx.accept("DONE", count=2)

        vm = make_vm(registry=registry)
        vm.tracer.enable_all()
        trace_path = tmp_path / "run.trace"
        with open(trace_path, "w") as f:
            vm.tracer.to_file(f)
            vm.run("MAIN")
        with open(trace_path) as f:
            tl = Timeline.from_file(f)
        spans = tl.completed_spans()
        assert len(spans) == 3
        workers = [s for s in spans if s.tasktype == "WORKER"]
        # both workers overlap with each other (parallel clusters)
        a, b = workers
        assert a.start < b.end and b.start < a.end
