"""The repro.api facade: make_vm / run_app / open_window / export_run."""

import numpy as np
import pytest

from repro import PiscesVM, TaskRegistry, api
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import PARENT, SAME
from repro.errors import ConfigurationError, PiscesError, WindowError


def _sq_registry():
    reg = TaskRegistry()

    @reg.tasktype("SQ")
    def sq(ctx, n):
        ctx.compute(10)
        return n * n

    return reg


def test_run_app_builds_vm_and_runs():
    r = api.run_app("SQ", 7, registry=_sq_registry(),
                    n_clusters=1, slots=2, name="facade")
    assert r.value == 49
    assert r.elapsed > 0


def test_run_app_on_existing_vm(make_vm):
    vm = api.make_vm(n_clusters=1, slots=2, registry=_sq_registry())
    try:
        r = api.run_app("SQ", 3, vm=vm, shutdown=False)
        assert r.value == 9
        r2 = api.run_app("SQ", 4, vm=vm, shutdown=False)
        assert r2.value == 16
    finally:
        vm.shutdown()


def test_run_app_rejects_vm_plus_construction_kwargs():
    vm = api.make_vm(n_clusters=1, slots=2, registry=_sq_registry())
    try:
        with pytest.raises(ConfigurationError):
            api.run_app("SQ", 1, vm=vm, n_clusters=2)
        with pytest.raises(ConfigurationError):
            api.run_app("SQ", 1, vm=vm, registry=_sq_registry())
    finally:
        vm.shutdown()


def test_make_vm_applies_toggles():
    vm = api.make_vm(n_clusters=2, slots=3, metrics=True,
                     window_path="reference", time_limit=10**8,
                     trace_events=("MSG_SEND",))
    try:
        assert vm.metrics.enabled
        assert vm.window_path == "reference"
        assert vm.config.time_limit == 10**8
        assert len(vm.clusters) == 2
    finally:
        vm.shutdown()


def test_make_vm_explicit_config_wins():
    cfg = Configuration(clusters=(ClusterSpec(1, 3, 5),), name="mine")
    vm = api.make_vm(n_clusters=4, config=cfg)
    try:
        assert isinstance(vm, PiscesVM)
        assert list(vm.clusters) == [1]
        assert vm.config.name == "mine"
    finally:
        vm.shutdown()


def test_open_window_on_file_store():
    reg = TaskRegistry()

    @reg.tasktype("NOOP")
    def noop(ctx):
        return None

    vm = api.make_vm(n_clusters=1, slots=2, registry=reg)
    try:
        vm.export_file("M", np.arange(36.0).reshape(6, 6))
        w = api.open_window(vm, "M", rows=(0, 3))
        assert w.shape == (3, 6)
        w2 = api.open_window(vm, "M")
        assert w2.shape == (6, 6)
    finally:
        vm.shutdown()


def test_open_window_errors_are_pisces_errors():
    vm = api.make_vm(n_clusters=1, slots=2)
    try:
        with pytest.raises(PiscesError):
            api.open_window(vm, "NOT-EXPORTED")
        fc, vm.file_controller = vm.file_controller, None
        try:
            with pytest.raises(WindowError):
                api.open_window(vm, "M")
        finally:
            vm.file_controller = fc
    finally:
        vm.shutdown()


def test_export_run_via_facade(tmp_path):
    reg = TaskRegistry()

    @reg.tasktype("PING")
    def ping(ctx):
        ctx.initiate("PONG", on=SAME)
        return ctx.accept("HI").args[0]

    @reg.tasktype("PONG")
    def pong(ctx):
        ctx.send(PARENT, "HI", 42)

    r = api.run_app("PING", registry=reg, n_clusters=1, slots=3,
                    metrics=True, trace_events=("MSG_SEND", "MSG_ACCEPT"))
    assert r.value == 42
    paths = api.export_run(r.vm, tmp_path, prefix="facade")
    assert paths
    for p in paths.values():
        assert p.exists()


def test_facade_names_reexported_from_package_root():
    import repro

    for name in ("make_vm", "run_app", "open_window", "plan_scope",
                 "export_run", "api"):
        assert hasattr(repro, name)
        assert name in repro.__all__
    assert repro.make_vm is api.make_vm
