"""Unit tests: the Pisces Fortran parser."""

import pytest

from repro.errors import ParseError
from repro.fortran.ast_nodes import (
    AcceptStmt, Assign, BarrierStmt, BinOp, CriticalStmt, DoLoop,
    ForceSplitStmt, IfBlock, InitiateStmt, LogicalIf, Num, ParsegStmt,
    PrintStmt, SendStmt, Var, WhileLoop,
)
from repro.fortran.parser import parse_source


def body_of(src, name="T"):
    prog = parse_source(src)
    return prog.unit(name).body


def wrap(stmts):
    return f"TASK T\n{stmts}\nEND TASK"


class TestUnits:
    def test_task_with_params(self):
        prog = parse_source("TASK W(A, B)\nEND TASK")
        u = prog.unit("W")
        assert u.kind == "TASK" and u.params == ["A", "B"]

    def test_multiple_units(self):
        prog = parse_source(
            "TASK A\nEND TASK\nSUBROUTINE S(X)\nEND\n"
            "HANDLER H(V)\nEND HANDLER")
        assert [u.kind for u in prog.units] == ["TASK", "SUBROUTINE",
                                                "HANDLER"]

    def test_garbage_at_top_level_rejected(self):
        with pytest.raises(ParseError):
            parse_source("X = 1")

    def test_empty_program_rejected(self):
        with pytest.raises(ParseError):
            parse_source("C only a comment\n")

    def test_missing_end_rejected(self):
        with pytest.raises(ParseError):
            parse_source("TASK T\nX = 1")


class TestDeclarations:
    def test_types_collected(self):
        prog = parse_source(wrap(
            "INTEGER I, A(10)\nREAL X\nDOUBLE PRECISION D\n"
            "LOGICAL F\nTASKID TID\nWINDOW W"))
        u = prog.unit("T")
        types = {e.name: d.ftype for d in u.decls for e in d.entities}
        assert types == {"I": "INTEGER", "A": "INTEGER", "X": "REAL",
                         "D": "DOUBLEPRECISION", "F": "LOGICAL",
                         "TID": "TASKID", "W": "WINDOW"}

    def test_shared_common_and_locks_and_msg_decls(self):
        prog = parse_source(wrap(
            "SHARED COMMON /G/ U(4,4), N\nLOCK L1, L2\n"
            "SIGNAL GO\nHANDLER RES"))
        u = prog.unit("T")
        assert u.shared[0].block == "G"
        assert [e.name for e in u.shared[0].entities] == ["U", "N"]
        assert u.locks == ["L1", "L2"]
        assert u.signal_types == ["GO"]
        assert u.handler_types == ["RES"]

    def test_malformed_shared_common_rejected(self):
        with pytest.raises(ParseError):
            parse_source(wrap("SHARED COMMON G X"))


class TestPiscesStatements:
    def test_initiate_forms(self):
        body = body_of(wrap(
            "ON ANY INITIATE W(1)\nON CLUSTER 3 INITIATE W\n"
            "ON SAME INITIATE W\nON OTHER INITIATE W"))
        kinds = [s.placement for s in body]
        assert kinds[0] == "ANY"
        assert isinstance(kinds[1], Num)
        assert kinds[2:] == ["SAME", "OTHER"]

    def test_send_forms(self):
        body = body_of(wrap(
            "TO PARENT SEND A(1)\nTO SENDER SEND B\nTO USER SEND C\n"
            "TO TCONTR 2 SEND D\nTO ALL SEND E\nTO ALL CLUSTER 1 SEND F\n"
            "TO TID SEND G\nTO KIDS(I) SEND H"))
        kinds = [s.dest_kind for s in body]
        assert kinds == ["PARENT", "SENDER", "USER", "TCONTR", "ALL",
                         "ALL", "VAR", "VAR"]
        assert body[5].dest_expr is not None    # ALL CLUSTER 1

    def test_accept_single_line_total(self):
        (s,) = body_of(wrap("ACCEPT N OF A, B"))
        assert isinstance(s, AcceptStmt)
        assert isinstance(s.total, Var)
        assert [i.mtype for i in s.items] == ["A", "B"]

    def test_accept_plain_types(self):
        (s,) = body_of(wrap("ACCEPT A"))
        assert s.total is None and s.items[0].mtype == "A"

    def test_accept_block_with_delay(self):
        (s,) = body_of(wrap(
            "ACCEPT OF\n2 OF A\nALL OF B\nDELAY 500 THEN\nPRINT *, 'T'\n"
            "END ACCEPT"))
        assert [(i.mtype, i.count if isinstance(i.count, str) else "N")
                for i in s.items] == [("A", "N"), ("B", "ALL")]
        assert s.delay is not None
        assert len(s.delay_body) == 1

    def test_accept_block_without_delay(self):
        (s,) = body_of(wrap("ACCEPT OF\n1 OF A\nEND ACCEPT"))
        assert s.delay is None

    def test_forcesplit_captures_rest(self):
        body = body_of(wrap("X = 1\nFORCESPLIT\nY = 2\nZ = 3"))
        assert isinstance(body[1], ForceSplitStmt)
        assert len(body) == 2             # rest folded into forcesplit
        assert len(body[1].rest) == 2

    def test_barrier_and_critical_blocks(self):
        body = body_of(wrap(
            "BARRIER\nX = 1\nEND BARRIER\nCRITICAL L\nY = 2\nEND CRITICAL"))
        assert isinstance(body[0], BarrierStmt) and len(body[0].body) == 1
        assert isinstance(body[1], CriticalStmt) and body[1].lock == "L"

    def test_parseg(self):
        (s,) = body_of(wrap("PARSEG\nX = 1\nNEXTSEG\nY = 2\nENDSEG"))
        assert isinstance(s, ParsegStmt) and len(s.segments) == 2

    def test_presched_selfsched(self):
        body = body_of(wrap(
            "PRESCHED DO 10 I = 1, N\n10 CONTINUE\n"
            "SELFSCHED DO J = 1, 5\nEND DO"))
        assert body[0].sched == "PRESCHED" and body[0].label == 10
        assert body[1].sched == "SELFSCHED" and body[1].label is None

    def test_presched_requires_do(self):
        with pytest.raises(ParseError):
            parse_source(wrap("PRESCHED I = 1, 5"))


class TestFortranStatements:
    def test_block_if_elseif_else(self):
        (s,) = body_of(wrap(
            "IF (A .GT. 1) THEN\nX = 1\nELSE IF (A .GT. 0) THEN\nX = 2\n"
            "ELSE\nX = 3\nEND IF"))
        assert isinstance(s, IfBlock)
        assert len(s.conditions) == 2 and len(s.arms) == 2
        assert len(s.else_arm) == 1

    def test_logical_if(self):
        (s,) = body_of(wrap("IF (A .EQ. 0) X = 5"))
        assert isinstance(s, LogicalIf)
        assert isinstance(s.stmt, Assign)

    def test_do_with_label_and_step(self):
        (s,) = body_of(wrap("DO 10 I = 1, 9, 2\nX = I\n10 CONTINUE"))
        assert isinstance(s, DoLoop)
        assert s.step is not None and len(s.body) == 2

    def test_do_while(self):
        (s,) = body_of(wrap("DO WHILE (X .LT. 4)\nX = X + 1\nEND DO"))
        assert isinstance(s, WhileLoop)

    def test_goto_rejected_with_hint(self):
        with pytest.raises(ParseError, match="GOTO"):
            parse_source(wrap("GOTO 10"))

    def test_print_list(self):
        (s,) = body_of(wrap("PRINT *, 'X IS', X"))
        assert isinstance(s, PrintStmt) and len(s.items) == 2

    def test_assignment_operator_precedence(self):
        (s,) = body_of(wrap("X = 1 + 2 * 3 ** 2"))
        assert isinstance(s.value, BinOp) and s.value.op == "+"
        rhs = s.value.right
        assert rhs.op == "*" and rhs.right.op == "**"

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_source(wrap("X = 1 2"))

    def test_array_element_assignment(self):
        (s,) = body_of(wrap("A(I, J+1) = 0"))
        assert s.target.name == "A" and len(s.target.args) == 2
