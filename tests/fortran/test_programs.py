"""End-to-end tests: preprocessed Pisces Fortran programs on the VM."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.vm import PiscesVM
from repro.flex.presets import small_flex
from repro.fortran import preprocess


@pytest.fixture
def run_fortran(make_vm):
    def runner(src, task, *args, config=None):
        prog = preprocess(src)
        vm = make_vm(config=config, registry=prog.registry)
        return vm.run(task, *args), vm
    return runner


class TestSequentialPrograms:
    def test_arithmetic_and_loops(self, run_fortran):
        src = """
        TASK T
        INTEGER I, S
        S = 0
        DO 10 I = 1, 10
          S = S + I * I
        10 CONTINUE
        PRINT *, 'S=', S
        END TASK
        """
        r, _ = run_fortran(src, "T")
        assert "S= 385" in r.console

    def test_if_elseif_else_chain(self, run_fortran):
        src = """
        TASK T(N)
        INTEGER N
        IF (N .GT. 10) THEN
          PRINT *, 'BIG'
        ELSE IF (N .GT. 5) THEN
          PRINT *, 'MID'
        ELSE
          PRINT *, 'SMALL'
        END IF
        END TASK
        """
        for n, word in ((20, "BIG"), (7, "MID"), (1, "SMALL")):
            r, _ = run_fortran(src, "T", n)
            assert word in r.console

    def test_do_while_and_logical_if(self, run_fortran):
        src = """
        TASK T
        INTEGER X
        X = 0
        DO WHILE (X .LT. 5)
          X = X + 1
          IF (X .EQ. 3) PRINT *, 'THREE'
        END DO
        PRINT *, 'X=', X
        END TASK
        """
        r, _ = run_fortran(src, "T")
        assert "THREE" in r.console and "X= 5" in r.console

    def test_arrays_are_one_based(self, run_fortran):
        src = """
        TASK T
        INTEGER A(3), I
        DO 10 I = 1, 3
          A(I) = I * 10
        10 CONTINUE
        PRINT *, A(1), A(3)
        END TASK
        """
        r, _ = run_fortran(src, "T")
        assert "10 30" in r.console

    def test_subroutine_call(self, run_fortran):
        src = """
        TASK T
        CALL GREET('WORLD')
        END TASK

        SUBROUTINE GREET(WHO)
        PRINT *, 'HELLO', WHO
        END
        """
        r, _ = run_fortran(src, "T")
        assert "HELLO WORLD" in r.console

    def test_stop_ends_task(self, run_fortran):
        src = """
        TASK T
        PRINT *, 'BEFORE'
        STOP
        PRINT *, 'AFTER'
        END TASK
        """
        r, _ = run_fortran(src, "T")
        assert "BEFORE" in r.console and "AFTER" not in r.console


class TestMessagePrograms:
    def test_master_worker_with_taskid_array(self, run_fortran):
        src = """
        TASK MAIN
        INTEGER I, N
        TASKID KIDS(4)
        SIGNAL HELLO, DONE
        N = 4
        DO 10 I = 1, N
          ON ANY INITIATE WORKER(I)
        10 CONTINUE
        DO 20 I = 1, N
          ACCEPT 1 OF HELLO
          KIDS(I) = SENDER
        20 CONTINUE
        DO 30 I = 1, N
          TO KIDS(I) SEND GO(I)
        30 CONTINUE
        ACCEPT N OF DONE
        PRINT *, 'FINISHED'
        END TASK

        TASK WORKER(K)
        INTEGER K
        SIGNAL GO
        TO PARENT SEND HELLO(K)
        ACCEPT 1 OF GO
        COMPUTE 50 * K
        TO PARENT SEND DONE(K)
        END TASK
        """
        r, vm = run_fortran(src, "MAIN")
        assert "FINISHED" in r.console
        assert vm.stats.tasks_started == 5

    def test_handler_subroutine_same_name_as_type(self, run_fortran):
        src = """
        TASK MAIN
        HANDLER RESULT
        ON SAME INITIATE CHILD
        ACCEPT 1 OF RESULT
        END TASK

        TASK CHILD
        TO PARENT SEND RESULT(6, 7)
        END TASK

        HANDLER RESULT(A, B)
        INTEGER A, B
        PRINT *, 'PRODUCT', A * B
        END HANDLER
        """
        r, _ = run_fortran(src, "MAIN")
        assert "PRODUCT 42" in r.console

    def test_delay_clause_runs_on_timeout(self, run_fortran):
        src = """
        TASK T
        ACCEPT OF
          1 OF NEVER
        DELAY 200 THEN
          PRINT *, 'GAVE UP'
        END ACCEPT
        END TASK
        """
        r, _ = run_fortran(src, "T")
        assert "GAVE UP" in r.console

    def test_user_destination(self, run_fortran):
        src = """
        TASK T
        TO USER SEND STATUS('OK', 99)
        END TASK
        """
        r, vm = run_fortran(src, "T")
        assert vm.user_messages[0][0] == "STATUS"
        assert vm.user_messages[0][1] == ("OK", 99)


class TestForcePrograms:
    FORCE_CFG = Configuration(clusters=(
        ClusterSpec(1, 3, 2, secondary_pes=(4, 5, 6)),))

    def test_force_sum_with_critical(self, run_fortran):
        src = """
        TASK FSUM(N)
        INTEGER N, I
        SHARED COMMON /ACC/ TOTAL
        REAL TOTAL
        LOCK L
        FORCESPLIT
        PRESCHED DO 10 I = 1, N
          COMPUTE 10
          CRITICAL L
            TOTAL = TOTAL + I
          END CRITICAL
        10 CONTINUE
        BARRIER
          PRINT *, 'SUM', TOTAL
        END BARRIER
        END TASK
        """
        r, _ = run_fortran(src, "FSUM", 100, config=self.FORCE_CFG)
        assert "SUM 5050.0" in r.console

    def test_selfsched_covers_all(self, run_fortran):
        src = """
        TASK T(N)
        INTEGER N, I
        SHARED COMMON /S/ HITS(64)
        INTEGER HITS
        FORCESPLIT
        SELFSCHED DO 10 I = 1, N
          COMPUTE 5 * I
          HITS(I) = HITS(I) + 1
        10 CONTINUE
        BARRIER
          PRINT *, 'COVERED', HITS(1) + HITS(N)
        END BARRIER
        END TASK
        """
        r, _ = run_fortran(src, "T", 64, config=self.FORCE_CFG)
        assert "COVERED 2" in r.console

    def test_parseg_segments(self, run_fortran):
        src = """
        TASK T
        SHARED COMMON /S/ A, B, C
        INTEGER A, B, C
        FORCESPLIT
        PARSEG
          A = 1
        NEXTSEG
          B = 2
        NEXTSEG
          C = 3
        ENDSEG
        BARRIER
          PRINT *, 'SUM', A + B + C
        END BARRIER
        END TASK
        """
        r, _ = run_fortran(src, "T", config=self.FORCE_CFG)
        assert "SUM 6" in r.console

    def test_member_and_forcesize_specials(self, run_fortran):
        src = """
        TASK T
        SHARED COMMON /S/ SEEN(8)
        INTEGER SEEN
        FORCESPLIT
        SEEN(MEMBER) = FORCESIZE
        BARRIER
          PRINT *, 'M1', SEEN(1), 'M4', SEEN(4)
        END BARRIER
        END TASK
        """
        r, _ = run_fortran(src, "T", config=self.FORCE_CFG)
        assert "M1 4 M4 4" in r.console

    def test_locals_are_per_member_after_split(self, run_fortran):
        src = """
        TASK T
        INTEGER X
        SHARED COMMON /S/ TOT
        INTEGER TOT
        LOCK L
        X = 100
        FORCESPLIT
        X = X + MEMBER
        CRITICAL L
          TOT = TOT + X
        END CRITICAL
        BARRIER
          PRINT *, 'TOT', TOT
        END BARRIER
        END TASK
        """
        # members get copies of X=100; X+m for m=1..4 -> 101+102+103+104
        r, _ = run_fortran(src, "T", config=self.FORCE_CFG)
        assert "TOT 410" in r.console
