"""Unit tests: expression/statement translation and runtime shims."""

import pytest

from repro.errors import TranslationError
from repro.fortran.preprocessor import generate_python, preprocess
from repro.fortran.runtime import FArray, Namespace, div, frange


def gen(stmts, decls=""):
    src = f"TASK T\n{decls}\n{stmts}\nEND TASK"
    py, _ = generate_python(src)
    return py


class TestExpressionTranslation:
    def test_fortran_division_semantics(self):
        assert div(7, 2) == 3
        assert div(-7, 2) == -3          # truncation toward zero
        assert div(7, -2) == -3
        assert div(7.0, 2) == 3.5

    def test_division_routed_through_helper(self):
        assert "_rt.div(" in gen("X = A / B")

    def test_relational_and_logical_ops(self):
        py = gen("F = A .GE. B .AND. .NOT. C")
        assert ">=" in py and " and " in py and "not " in py

    def test_power_right_associative(self):
        py = gen("X = 2 ** 3 ** 2")
        assert "(2 ** (3 ** 2))" in py

    def test_intrinsics(self):
        py = gen("X = SQRT(ABS(Y))")
        assert "_rt.intrinsic('SQRT')" in py
        assert "_rt.intrinsic('ABS')" in py

    def test_unknown_function_rejected(self):
        with pytest.raises(TranslationError, match="MYFUNC"):
            gen("X = MYFUNC(1)")

    def test_special_vars_translate_to_context(self):
        py = gen("T = SENDER\nP = PARENT\nM = MEMBER")
        assert "ctx.sender" in py and "ctx.parent" in py
        assert "(ctx.member + 1)" in py

    def test_declared_name_shadows_special_var(self):
        py = gen("SENDER = 1", decls="INTEGER SENDER")
        assert "V.SENDER = 1" in py

    def test_string_concat(self):
        py = gen("S = 'A' // 'B'")
        assert "('A' + 'B')" in py


class TestStatementTranslation:
    def test_call_of_undefined_subroutine_rejected(self):
        with pytest.raises(TranslationError, match="NOSUB"):
            gen("CALL NOSUB(1)")

    def test_handler_decl_without_unit_rejected(self):
        with pytest.raises(TranslationError, match="RESULT"):
            preprocess("TASK T\nHANDLER RESULT\nEND TASK")

    def test_array_dims_must_be_constant(self):
        with pytest.raises(TranslationError):
            gen("X = 1", decls="SHARED COMMON /G/ A(N)")

    def test_compute_translates_to_ctx(self):
        assert "ctx.compute(int(" in gen("COMPUTE 100")

    def test_shared_scalar_uses_zero_d_access(self):
        py = gen("N = N + 1", decls="SHARED COMMON /G/ N\nINTEGER N")
        assert "V.N[()] = (V.N[()] + 1)" in py


class TestRuntimeShims:
    def test_frange_inclusive(self):
        assert list(frange(1, 5)) == [1, 2, 3, 4, 5]
        assert list(frange(1, 10, 3)) == [1, 4, 7, 10]
        assert list(frange(5, 1, -2)) == [5, 3, 1]
        assert list(frange(5, 1)) == []

    def test_frange_zero_step_rejected(self):
        with pytest.raises(ValueError):
            frange(1, 5, 0)

    def test_farray_one_based(self):
        a = FArray("REAL", (3, 2))
        a[1, 1] = 5.0
        a[3, 2] = 7.0
        assert a.data[0, 0] == 5.0 and a.data[2, 1] == 7.0
        assert a[3, 2] == 7.0

    def test_farray_object_dtype_for_taskid(self):
        a = FArray("TASKID", (2,))
        a[1] = "anything"
        assert a[1] == "anything"

    def test_namespace_copy_duplicates_locals_keeps_shared(self):
        import numpy as np
        ns = Namespace()
        ns.local_arr = FArray("REAL", (2,))
        ns.shared_arr = FArray.wrap(np.zeros(2))
        ns.scalar = 5
        ns2 = ns.copy()
        ns2.local_arr[1] = 9.0
        ns2.shared_arr[1] = 9.0
        assert ns.local_arr[1] == 0.0          # copied
        assert ns.shared_arr[1] == 9.0         # same storage
        assert ns2.scalar == 5
