"""End-to-end tests: the window built-ins from Pisces Fortran."""

import numpy as np
import pytest

from repro.errors import TranslationError
from repro.fortran import generate_python, preprocess


@pytest.fixture
def run_fortran(make_vm):
    def runner(src, task, *args, setup=None):
        prog = preprocess(src)
        vm = make_vm(registry=prog.registry)
        if setup:
            setup(vm)
        return vm.run(task, *args), vm
    return runner


class TestWindowBuiltins:
    def test_export_create_read_between_tasks(self, run_fortran):
        """Owner exports and sends a window; reader WREADs it."""
        src = """
        TASK OWNER
        REAL A(8)
        INTEGER I
        DO 10 I = 1, 8
          A(I) = I * 1.0
        10 CONTINUE
        CALL WEXPORT('DATA', A)
        WINDOW W
        CALL WCREATE(W, 'DATA')
        ON SAME INITIATE READER
        ACCEPT 1 OF HELLO
        TO SENDER SEND WIN(W)
        ACCEPT 1 OF SUM
        END TASK

        TASK READER
        REAL B(8)
        REAL S
        INTEGER I
        HANDLER WIN
        TO PARENT SEND HELLO
        ACCEPT 1 OF WIN
        END TASK

        HANDLER WIN(W)
        WINDOW W
        REAL B(8)
        REAL S
        INTEGER I
        CALL WREAD(B, W)
        S = 0.0
        DO 20 I = 1, 8
          S = S + B(I)
        20 CONTINUE
        PRINT *, 'SUM', S
        TO SENDER SEND SUM(S)
        END HANDLER
        """
        (r, vm) = run_fortran(src, "OWNER")
        assert "SUM 36.0" in r.console
        assert vm.stats.window_bytes_read == 8 * 8

    def test_shrink_and_write(self, run_fortran):
        src = """
        TASK T
        REAL A(10)
        REAL B(4)
        INTEGER I
        WINDOW W, W2
        DO 10 I = 1, 10
          A(I) = 0.0
        10 CONTINUE
        DO 20 I = 1, 4
          B(I) = 9.0
        20 CONTINUE
        CALL WEXPORT('A', A)
        CALL WCREATE(W, 'A')
        CALL WSHRINK(W2, W, 3, 6)
        CALL WWRITE(W2, B)
        PRINT *, A(2), A(3), A(6), A(7)
        END TASK
        """
        (r, vm) = run_fortran(src, "T")
        assert "0.0 9.0 9.0 0.0" in r.console

    def test_file_window(self, run_fortran):
        src = """
        TASK T
        REAL B(6)
        WINDOW W
        CALL WFILE(W, 'INPUT')
        CALL WREAD(B, W)
        PRINT *, B(1), B(6)
        END TASK
        """
        (r, vm) = run_fortran(
            src, "T",
            setup=lambda vm: vm.export_file(
                "INPUT", np.arange(1.0, 7.0)))
        assert "1.0 6.0" in r.console

    def test_wexport_requires_declared_array(self):
        with pytest.raises(TranslationError):
            generate_python("TASK T\nCALL WEXPORT('A', X)\nEND TASK")

    def test_wshrink_requires_pairs(self):
        with pytest.raises(TranslationError):
            generate_python(
                "TASK T\nWINDOW W, W2\nCALL WSHRINK(W2, W, 1)\nEND TASK")

    def test_user_subroutine_still_callable(self, run_fortran):
        # Window built-ins must not shadow user subroutines of other names.
        src = """
        TASK T
        CALL HELPER(3)
        END TASK

        SUBROUTINE HELPER(K)
        INTEGER K
        PRINT *, 'K', K
        END
        """
        (r, _) = run_fortran(src, "T")
        assert "K 3" in r.console
