"""Unit tests: the Pisces Fortran tokenizer."""

import pytest

from repro.errors import LexError
from repro.fortran.lexer import (
    LogicalLine,
    TokKind,
    logical_lines,
    strip_comment,
    tokenize_line,
)


def toks(text):
    return [(t.kind, t.text) for t in tokenize_line(text, 1)]


class TestTokens:
    def test_names_uppercased(self):
        assert toks("foo Bar") == [(TokKind.NAME, "FOO"),
                                   (TokKind.NAME, "BAR")]

    def test_integers_and_reals(self):
        assert toks("42") == [(TokKind.INT, "42")]
        assert toks("3.14") == [(TokKind.REAL, "3.14")]
        assert toks("1E3") == [(TokKind.REAL, "1E3")]
        assert toks("2.5D-2") == [(TokKind.REAL, "2.5E-2")]
        assert toks(".5") == [(TokKind.REAL, ".5")]

    def test_strings_with_escape(self):
        assert toks("'it''s'") == [(TokKind.STRING, "it's")]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize_line("'oops", 1)

    def test_dotted_operators(self):
        got = toks("A .EQ. B .AND. .NOT. C")
        ops = [t for k, t in got if k is TokKind.OP]
        assert ops == [".EQ.", ".AND.", ".NOT."]

    def test_logical_constants(self):
        assert toks(".TRUE.")[0] == (TokKind.OP, ".TRUE.")

    def test_power_and_concat(self):
        assert (TokKind.OP, "**") in toks("A ** 2")
        assert (TokKind.OP, "//") in toks("A // B")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize_line("a @ b", 1)


class TestComments:
    def test_column_one_c_comment(self):
        assert strip_comment("C this is a comment") == ""
        assert strip_comment("c lower too") == ""
        assert strip_comment("C") == ""

    def test_star_comment(self):
        assert strip_comment("* anything") == ""

    def test_call_not_a_comment(self):
        assert strip_comment("CALL SUB(X)") == "CALL SUB(X)"
        assert strip_comment("CONTINUE") == "CONTINUE"

    def test_bang_comment_respects_strings(self):
        assert strip_comment("X = 'a!b' ! trailing") == "X = 'a!b' "


class TestLogicalLines:
    def test_labels_extracted(self):
        lines = list(logical_lines("10 CONTINUE"))
        assert lines[0].label == 10
        assert lines[0].tokens[0].text == "CONTINUE"

    def test_continuation_joining(self):
        lines = list(logical_lines("X = 1 + &\n    2 + &\n    3"))
        assert len(lines) == 1
        assert lines[0].text.count("+") == 2

    def test_blank_and_comment_lines_skipped(self):
        src = "\nC comment\n\nX = 1\n"
        lines = list(logical_lines(src))
        assert len(lines) == 1
        assert lines[0].line == 4    # original line number preserved
