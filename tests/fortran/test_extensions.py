"""Tests: WRITE(*,*), PARAMETER and DATA statement support."""

import pytest

from repro.errors import ParseError
from repro.fortran import preprocess
from repro.fortran.parser import parse_source


@pytest.fixture
def run_fortran(make_vm):
    def runner(src, task, *args):
        prog = preprocess(src)
        vm = make_vm(registry=prog.registry)
        return vm.run(task, *args)
    return runner


class TestWrite:
    def test_write_star_star_is_print(self, run_fortran):
        src = """
        TASK T
        INTEGER X
        X = 7
        WRITE (*, *) 'X IS', X
        END TASK
        """
        r = run_fortran(src, "T")
        assert "X IS 7" in r.console

    def test_write_with_no_items(self, run_fortran):
        src = "TASK T\nWRITE (*, *)\nEND TASK"
        r = run_fortran(src, "T")
        assert r.value is None

    def test_write_to_unit_number_rejected(self):
        with pytest.raises(ParseError, match="WRITE"):
            parse_source("TASK T\nWRITE (6, *) X\nEND TASK")


class TestParameter:
    def test_single_parameter(self, run_fortran):
        src = """
        TASK T
        INTEGER N
        PARAMETER (N = 12)
        PRINT *, 'N=', N
        END TASK
        """
        assert "N= 12" in run_fortran(src, "T").console

    def test_multiple_parameters(self, run_fortran):
        src = """
        TASK T
        PARAMETER (A = 2, B = 3, C = A)
        PRINT *, A * B, C
        END TASK
        """
        assert "6 2" in run_fortran(src, "T").console

    def test_parameter_expression(self, run_fortran):
        src = """
        TASK T
        PARAMETER (N = 4 * 8 + 1)
        PRINT *, N
        END TASK
        """
        assert "33" in run_fortran(src, "T").console

    def test_malformed_parameter_rejected(self):
        with pytest.raises(ParseError):
            parse_source("TASK T\nPARAMETER N = 3\nEND TASK")


class TestData:
    def test_data_initialization(self, run_fortran):
        src = """
        TASK T
        REAL X
        INTEGER K
        DATA X /2.5/, K /7/
        PRINT *, X, K
        END TASK
        """
        assert "2.5 7" in run_fortran(src, "T").console

    def test_data_single(self, run_fortran):
        src = "TASK T\nDATA Z /9/\nPRINT *, Z\nEND TASK"
        assert "9" in run_fortran(src, "T").console

    def test_data_missing_slash_rejected(self):
        with pytest.raises(ParseError):
            parse_source("TASK T\nDATA X 3\nEND TASK")

    def test_data_used_as_loop_bound(self, run_fortran):
        src = """
        TASK T
        INTEGER N, I, S
        DATA N /5/, S /0/
        DO 10 I = 1, N
          S = S + I
        10 CONTINUE
        PRINT *, S
        END TASK
        """
        assert "15" in run_fortran(src, "T").console
