"""Unit + integration tests: the observability metrics registry."""

import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
)


class TestCounter:
    def test_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_same_labels_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("x", pe=1, op="read")
        b = reg.counter("x", op="read", pe=1)   # label order irrelevant
        assert a is b
        assert a is not reg.counter("x", pe=2, op="read")

    def test_numpy_scalars_coerced(self):
        np = pytest.importorskip("numpy")
        c = MetricsRegistry().counter("x")
        c.inc(np.int64(3))
        assert type(c.value) is int and c.value == 3


class TestGauge:
    def test_set_and_high_water(self):
        g = MetricsRegistry().gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2 and g.high_water == 7

    def test_inc_dec(self):
        g = MetricsRegistry().gauge("depth")
        g.inc(4)
        g.dec()
        assert g.value == 3 and g.high_water == 4


class TestHistogram:
    def test_bucket_counts_sum_to_count(self):
        h = MetricsRegistry().histogram("lat")
        for v in (0, 1, 3, 10, 999, 10**7):
            h.observe(v)
        assert sum(h.bucket_counts) == h.count == 6
        assert len(h.bucket_counts) == len(DEFAULT_BUCKETS) + 1

    def test_sum_min_max_mean(self):
        h = MetricsRegistry().histogram("lat")
        for v in (10, 20, 30):
            h.observe(v)
        assert (h.total, h.min, h.max) == (60, 10, 30)
        assert h.mean == pytest.approx(20.0)

    def test_values_above_last_bound_land_in_inf_bucket(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(DEFAULT_BUCKETS[-1] + 1)
        assert h.bucket_counts[-1] == 1

    def test_quantile_is_bucketed_upper_bound(self):
        h = MetricsRegistry().histogram("lat")
        for _ in range(99):
            h.observe(3)      # bucket bound 5
        h.observe(40_000)     # bucket bound 50_000
        assert h.quantile(0.5) == 5.0
        assert h.quantile(1.0) == 50_000.0

    def test_empty_quantile_none(self):
        assert MetricsRegistry().histogram("lat").quantile(0.9) is None

    def test_as_dict_only_nonempty_buckets(self):
        h = MetricsRegistry().histogram("lat")
        h.observe(3)
        d = h.as_dict()
        assert d["buckets"] == {"5": 1}
        assert d["count"] == 1 and d["sum"] == 3


class TestRegistry:
    def test_families_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.gauge("aa")
        reg.histogram("mm")
        assert reg.families() == ["aa", "mm", "zz"]

    def test_counter_total_across_labels(self):
        reg = MetricsRegistry()
        reg.counter("msgs", pe=1).inc(2)
        reg.counter("msgs", pe=2).inc(3)
        assert reg.counter_total("msgs") == 5

    def test_histogram_merged(self):
        reg = MetricsRegistry()
        reg.histogram("lat", pe=1).observe(10)
        reg.histogram("lat", pe=2).observe(30)
        m = reg.histogram_merged("lat")
        assert m.count == 2 and m.total == 40
        assert (m.min, m.max) == (10, 30)
        assert reg.histogram_merged("nothing") is None

    def test_snapshot_deterministic_and_json(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b", x=2).inc()
            reg.counter("b", x=1).inc()
            reg.gauge("a").set(4)
            reg.histogram("c", op="w").observe(9)
            return json.dumps(reg.snapshot(), sort_keys=True)

        assert build() == build()

    def test_snapshot_text_renders(self):
        reg = MetricsRegistry()
        reg.counter("msgs", pe=1).inc(7)
        txt = reg.snapshot_text()
        assert "METRICS SNAPSHOT" in txt and "msgs{pe=1}" in txt

    def test_snapshot_text_empty(self):
        assert "(no metrics recorded)" in MetricsRegistry().snapshot_text()

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.reset()
        assert reg.families() == []

    def test_null_registry_disabled(self):
        assert NULL_REGISTRY.enabled is False


class TestVMIntegration:
    def _program(self, registry):
        from repro.core.taskid import PARENT, SAME

        @registry.tasktype("CHILD")
        def child(ctx, n):
            ctx.compute(50)
            ctx.send(PARENT, "DONE", n)

        @registry.tasktype("MAIN")
        def main(ctx):
            for i in range(3):
                ctx.initiate("CHILD", i, on=SAME)
            res = ctx.accept("DONE", count=3)
            return res.count

    def test_disabled_run_collects_nothing(self, make_vm, registry):
        self._program(registry)
        vm = make_vm(registry=registry)
        assert not vm.config.metrics_enabled
        vm.run("MAIN")
        assert vm.metrics.families() == []

    def test_enabled_run_matches_stats(self, make_vm, registry):
        self._program(registry)
        vm = make_vm(registry=registry, metrics_enabled=True)
        vm.run("MAIN")
        reg = vm.metrics
        assert reg.counter_total("tasks_started") == vm.stats.tasks_started
        assert (reg.counter_total("messages_sent")
                == vm.stats.messages_sent)
        assert reg.counter_total("messages_accepted") == 3
        lat = reg.histogram_merged("send_accept_latency_ticks")
        assert lat is not None and lat.count == 3 and lat.min >= 0
        assert reg.counter_total("dispatches") > 0

    def test_metrics_do_not_perturb_virtual_time(self, make_vm, registry):
        self._program(registry)
        vm_off = make_vm(registry=registry)
        r_off = vm_off.run("MAIN")
        reg2 = type(registry)()
        self._program(reg2)
        vm_on = make_vm(registry=reg2, metrics_enabled=True)
        r_on = vm_on.run("MAIN")
        assert r_off.elapsed == r_on.elapsed

    def test_two_metered_runs_identical_snapshots(self, make_vm, registry):
        self._program(registry)
        vm1 = make_vm(registry=registry, metrics_enabled=True)
        vm1.run("MAIN")
        reg2 = type(registry)()
        self._program(reg2)
        vm2 = make_vm(registry=reg2, metrics_enabled=True)
        vm2.run("MAIN")
        assert (json.dumps(vm1.metrics.snapshot(), sort_keys=True)
                == json.dumps(vm2.metrics.snapshot(), sort_keys=True))

    def test_slot_occupancy_gauge_high_water(self, make_vm, registry):
        self._program(registry)
        vm = make_vm(registry=registry, metrics_enabled=True)
        vm.run("MAIN")
        gauges = [g for key, g in vm.metrics._gauges.items()
                  if key[0] == "slot_occupancy"]
        assert gauges and max(g.high_water for g in gauges) >= 2
