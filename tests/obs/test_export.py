"""Unit + integration tests: JSONL, Chrome trace and export_run."""

import io
import json

import pytest

from repro.core.taskid import TaskId
from repro.core.tracing import TraceEvent, TraceEventType
from repro.obs.export import (
    chrome_trace_events,
    event_from_dict,
    event_to_dict,
    export_run,
    load_chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
    write_metrics_snapshot,
)
from repro.obs.metrics import MetricsRegistry

A = TaskId(1, 1, 1)
B = TaskId(2, 1, 1)

EVENTS = [
    TraceEvent(TraceEventType.TASK_INIT, A, 3, 0, "type=W"),
    TraceEvent(TraceEventType.MSG_SEND, A, 3, 10, "type=GO bytes=8", B),
    TraceEvent(TraceEventType.MSG_ACCEPT, B, 4, 55, "type=GO", A),
    TraceEvent(TraceEventType.TASK_TERM, A, 3, 100, ""),
]


class TestJsonl:
    def test_dict_roundtrip(self):
        for e in EVENTS:
            assert event_from_dict(event_to_dict(e)) == e

    def test_file_roundtrip(self):
        buf = io.StringIO()
        assert write_jsonl(EVENTS, buf) == len(EVENTS)
        buf.seek(0)
        assert read_jsonl(buf) == EVENTS

    def test_lines_are_plain_json(self):
        buf = io.StringIO()
        write_jsonl(EVENTS, buf)
        for line in buf.getvalue().strip().splitlines():
            d = json.loads(line)
            assert d["etype"] in {t.value for t in TraceEventType}


class TestChromeTrace:
    def test_task_spans_become_b_e_pairs(self):
        arr = chrome_trace_events(EVENTS)
        phases = [e["ph"] for e in arr]
        assert phases.count("B") == phases.count("E") == 1
        b = next(e for e in arr if e["ph"] == "B")
        e_ = next(e for e in arr if e["ph"] == "E")
        assert (b["ts"], e_["ts"]) == (0, 100)
        assert b["name"] == "W" and b["pid"] == 3

    def test_message_span_becomes_x_event(self):
        arr = chrome_trace_events(EVENTS)
        x = next(e for e in arr if e["ph"] == "X")
        assert x["name"] == "GO" and x["ts"] == 10 and x["dur"] == 45
        assert x["args"] == {"to": str(B)}

    def test_metadata_rows_per_pe(self):
        arr = chrome_trace_events(EVENTS)
        meta = [e for e in arr if e["ph"] == "M"]
        assert {m["args"]["name"] for m in meta} == {"PE 3"}

    def test_write_and_load(self):
        buf = io.StringIO()
        n = write_chrome_trace(EVENTS, buf)
        buf.seek(0)
        arr = load_chrome_trace(buf)
        assert len(arr) == n

    def test_load_rejects_non_array(self):
        with pytest.raises(ValueError):
            load_chrome_trace(io.StringIO('{"ph": "X"}'))

    def test_load_rejects_missing_ph(self):
        with pytest.raises(ValueError):
            load_chrome_trace(io.StringIO('[{"name": "no-phase"}]'))


class TestMetricsSnapshotFile:
    def test_json_form(self):
        reg = MetricsRegistry()
        reg.counter("msgs", pe=1).inc(2)
        buf = io.StringIO()
        write_metrics_snapshot(reg, buf, as_json=True)
        data = json.loads(buf.getvalue())
        assert data["msgs"]["{pe=1}"]["value"] == 2

    def test_text_form(self):
        buf = io.StringIO()
        write_metrics_snapshot(MetricsRegistry(), buf)
        assert "no metrics recorded" in buf.getvalue()


class TestExportRun:
    @pytest.fixture
    def traced_vm(self, make_vm, registry):
        from repro.core.taskid import PARENT, SAME

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.compute(30)
            ctx.send(PARENT, "DONE")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            ctx.accept("DONE")

        vm = make_vm(registry=registry, metrics_enabled=True)
        vm.tracer.enable_all()
        vm.run("MAIN")
        return vm

    def test_writes_the_bundle(self, traced_vm, tmp_path):
        paths = export_run(traced_vm, tmp_path, prefix="t")
        assert sorted(paths) == ["chrome", "jsonl", "manifest",
                                 "metrics_json", "metrics_txt"]
        for p in paths.values():
            assert p.exists() and p.stat().st_size > 0

    def test_exported_events_reload(self, traced_vm, tmp_path):
        paths = export_run(traced_vm, tmp_path)
        with paths["jsonl"].open() as f:
            back = read_jsonl(f)
        assert back == list(traced_vm.tracer.events)
        with paths["chrome"].open() as f:
            arr = load_chrome_trace(f)
        assert any(e["ph"] == "X" for e in arr)

    def test_metrics_json_parses(self, traced_vm, tmp_path):
        paths = export_run(traced_vm, tmp_path)
        with paths["metrics_json"].open() as f:
            snap = json.load(f)
        assert "tasks_started" in snap
