"""Unit tests: span derivation from section-12 trace events."""

from repro.core.taskid import TaskId
from repro.core.tracing import TraceEvent, TraceEventType
from repro.obs.spans import (
    CAT_CRITICAL,
    CAT_MESSAGE,
    CAT_TASK,
    Span,
    derive_spans,
    span_summary,
)

A = TaskId(1, 1, 1)
B = TaskId(2, 1, 1)


def ev(etype, task=A, ticks=0, info="", other=None, pe=3):
    return TraceEvent(etype=etype, task=task, pe=pe, ticks=ticks,
                      info=info, other=other)


class TestTaskSpans:
    def test_init_term_pair(self):
        spans = derive_spans([
            ev(TraceEventType.TASK_INIT, ticks=10, info="type=W"),
            ev(TraceEventType.TASK_TERM, ticks=90),
        ])
        assert spans == [Span(name="W", cat=CAT_TASK, task=str(A), pe=3,
                              start=10, end=90)]
        assert spans[0].duration == 80 and spans[0].closed

    def test_unterminated_task_open_span(self):
        events = [ev(TraceEventType.TASK_INIT, ticks=5, info="type=W")]
        assert derive_spans(events) == []
        open_spans = derive_spans(events, include_open=True)
        assert len(open_spans) == 1 and not open_spans[0].closed
        assert open_spans[0].duration is None


class TestMessageSpans:
    def test_send_accept_matched_fifo(self):
        events = [
            ev(TraceEventType.MSG_SEND, task=A, ticks=10,
               info="type=GO bytes=8", other=B),
            ev(TraceEventType.MSG_SEND, task=A, ticks=20,
               info="type=GO bytes=8", other=B),
            ev(TraceEventType.MSG_ACCEPT, task=B, ticks=50,
               info="type=GO", other=A),
            ev(TraceEventType.MSG_ACCEPT, task=B, ticks=70,
               info="type=GO", other=A),
        ]
        spans = derive_spans(events)
        assert [s.cat for s in spans] == [CAT_MESSAGE, CAT_MESSAGE]
        # FIFO: the first send matches the first accept.
        assert [(s.start, s.end) for s in spans] == [(10, 50), (20, 70)]
        assert spans[0].args == (("to", str(B)),)

    def test_different_mtype_does_not_match(self):
        events = [
            ev(TraceEventType.MSG_SEND, task=A, ticks=10,
               info="type=GO", other=B),
            ev(TraceEventType.MSG_ACCEPT, task=B, ticks=50,
               info="type=STOP", other=A),
        ]
        assert derive_spans(events) == []


class TestCriticalSpans:
    def test_lock_unlock_pair(self):
        spans = derive_spans([
            ev(TraceEventType.LOCK, ticks=100, info="lock=L member=0"),
            ev(TraceEventType.UNLOCK, ticks=140, info="lock=L member=0"),
        ])
        assert spans == [Span(name="L", cat=CAT_CRITICAL, task=str(A),
                              pe=3, start=100, end=140)]

    def test_per_task_per_lock_matching(self):
        spans = derive_spans([
            ev(TraceEventType.LOCK, task=A, ticks=10, info="lock=L"),
            ev(TraceEventType.LOCK, task=B, ticks=20, info="lock=M"),
            ev(TraceEventType.UNLOCK, task=B, ticks=30, info="lock=M"),
            ev(TraceEventType.UNLOCK, task=A, ticks=40, info="lock=L"),
        ])
        by_name = {s.name: s for s in spans}
        assert (by_name["L"].start, by_name["L"].end) == (10, 40)
        assert (by_name["M"].start, by_name["M"].end) == (20, 30)


class TestOrderingAndSummary:
    def test_output_sorted_by_start(self):
        spans = derive_spans([
            ev(TraceEventType.TASK_INIT, ticks=50, info="type=W"),
            ev(TraceEventType.LOCK, task=B, ticks=5, info="lock=L"),
            ev(TraceEventType.UNLOCK, task=B, ticks=9, info="lock=L"),
            ev(TraceEventType.TASK_TERM, ticks=99),
        ])
        assert [s.start for s in spans] == sorted(s.start for s in spans)

    def test_span_summary(self):
        spans = derive_spans([
            ev(TraceEventType.TASK_INIT, ticks=0, info="type=W"),
            ev(TraceEventType.TASK_TERM, ticks=100),
            ev(TraceEventType.MSG_SEND, task=A, ticks=10,
               info="type=GO", other=B),
        ], include_open=True)
        summary = span_summary(spans)
        assert summary[CAT_TASK] == {"count": 1, "total_ticks": 100,
                                     "open": 0, "aborted": 0}
        assert summary[CAT_MESSAGE]["open"] == 1


class TestRealRun:
    def test_spans_from_traced_vm(self, make_vm, registry):
        from repro.core.taskid import PARENT, SAME

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.compute(40)
            ctx.send(PARENT, "DONE")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            ctx.accept("DONE")

        vm = make_vm(registry=registry)
        vm.tracer.enable_all()
        vm.run("MAIN")
        spans = derive_spans(vm.tracer.events)
        cats = {s.cat for s in spans}
        assert CAT_TASK in cats and CAT_MESSAGE in cats
        for s in spans:
            assert s.closed and s.duration >= 0
