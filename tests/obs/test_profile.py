"""Causal profiler: wait attribution, critical path, exporters, API.

Two layers of coverage: engine-level scenarios drive the profiler hooks
directly (precise virtual timestamps, every wait category), and
VM-level tests run real apps through ``api.profile_run`` and the export
surfaces (metrics rollup, manifest, dispatcher determinism).
"""

import json

import pytest

from repro import api
from repro.apps.jacobi import build_windows_registry
from repro.core.tracing import TraceEventType
from repro.flex.presets import small_flex
from repro.mmos.scheduler import Engine
from repro.obs.profile import (
    CausalProfiler,
    extract_critical_path,
    profile_report,
    write_profile,
)
from repro.obs.profile.export import chrome_profile_trace, folded_stacks
from repro.obs.profile.profiler import (
    WAIT_ACCEPT,
    WAIT_BARRIER,
    WAIT_CATEGORIES,
    WAIT_DISPATCH,
    WAIT_FAULT,
    WAIT_LOCK,
    WAIT_WINDOW,
    WaitAccounting,
    _split_name,
    wait_category,
)

PES = list(range(3, 11))    # small_flex(8) MMOS PEs


def make_engine():
    eng = Engine(small_flex(8))
    prof = CausalProfiler()
    eng.prof_hook = prof
    return eng, prof


class TestWaitCategory:
    @pytest.mark.parametrize("reason,cat", [
        ("critical(LOCK1)", WAIT_LOCK),
        ("barrier(gen 3)", WAIT_BARRIER),
        ("barrier-post(gen 2)", WAIT_BARRIER),
        ("force-join", WAIT_BARRIER),
        ("accept(GO,STOP)", WAIT_ACCEPT),
        ("accept(retry1:GO)", WAIT_FAULT),
        ("tcontr-wait", WAIT_ACCEPT),
        ("ucontr-wait", WAIT_ACCEPT),
        ("window-overlap-wait", WAIT_WINDOW),
        ("disk-io", WAIT_WINDOW),
        ("killed", WAIT_FAULT),
        ("nap", WAIT_DISPATCH),
        ("schedule-idle", WAIT_DISPATCH),
    ])
    def test_reason_mapping(self, reason, cat):
        assert wait_category(reason) == cat

    def test_every_category_is_reachable(self):
        reached = {wait_category(r) for r in (
            "critical(L)", "barrier(gen 1)", "accept(GO)",
            "accept(retry2:GO)", "window-overlap-wait", "nap")}
        assert reached == set(WAIT_CATEGORIES)

    def test_split_name(self):
        assert _split_name("JWORKER@1.3.1") == ("JWORKER", 1)
        assert _split_name("JFORCE@2.2.0#f3") == ("JFORCE", 2)
        assert _split_name("tcontr@1.1.0") == ("tcontr", 1)
        assert _split_name("engine-idle") == ("engine-idle", None)


class TestEngineAttribution:
    def test_wake_resolves_block_into_categorized_wait(self):
        """p1 blocks on a lock at t=0; p0 wakes it at t=10 after real
        work: the blocked ticks are lock-wait, bit-exact."""
        eng, prof = make_engine()
        handles = {}

        def waiter():
            eng.block("critical(L)", cost=0)
            eng.charge(7)

        def worker():
            eng.charge(10)
            eng.wake(handles["w"], info="unlock")
            eng.charge(5)

        handles["w"] = eng.spawn("waiter", PES[1], waiter)
        eng.spawn("worker", PES[0], worker)
        eng.run()
        acct = prof.accounting()
        assert acct.totals == {WAIT_LOCK: 10}
        waits = prof.waits()
        assert [(w.category, w.start, w.end) for w in waits] == [
            (WAIT_LOCK, 0, 10)]
        assert waits[0].name == "waiter"
        eng.shutdown()

    def test_deadline_wait_is_window_wait(self):
        eng, prof = make_engine()

        def sleeper():
            eng.charge(3)
            eng.block("window-overlap-wait", deadline=eng.now() + 20, cost=0)
            eng.charge(4)

        eng.spawn("s", PES[0], sleeper)
        eng.run()
        acct = prof.accounting()
        assert acct.totals == {WAIT_WINDOW: 20}
        eng.shutdown()

    def test_killed_blocked_process_attributes_to_its_wait(self):
        eng, prof = make_engine()
        handles = {}

        def victim():
            eng.block("accept(GO)", cost=0)

        def killer():
            eng.charge(5)
            eng.kill(handles["v"])
            eng.charge(2)

        handles["v"] = eng.spawn("victim", PES[1], victim)
        eng.spawn("killer", PES[0], killer)
        eng.run()
        acct = prof.accounting()
        # Blocked interval up to the kill is the original accept-wait.
        assert acct.totals.get(WAIT_ACCEPT) == 5
        eng.shutdown()

    def test_accept_retry_reason_lands_in_fault_recovery(self):
        eng, prof = make_engine()
        handles = {}

        def retrier():
            eng.block("accept(retry1:GO)", cost=0)
            eng.charge(2)

        def waker():
            eng.charge(8)
            eng.wake(handles["r"])

        handles["r"] = eng.spawn("r", PES[1], retrier)
        eng.spawn("k", PES[0], waker)
        eng.run()
        assert prof.accounting().totals == {WAIT_FAULT: 8}
        eng.shutdown()

    def test_dispatch_queue_wait_from_pe_contention(self):
        """Two processes on one PE: the second's queueing ticks are
        dispatch-queue-wait."""
        eng, prof = make_engine()

        def body():
            eng.charge(10)

        eng.spawn("a", PES[0], body)
        eng.spawn("b", PES[0], body)
        eng.run()
        acct = prof.accounting()
        assert acct.totals == {WAIT_DISPATCH: 10}
        assert acct.by_pe == {(PES[0], WAIT_DISPATCH): 10}
        eng.shutdown()

    def test_slices_cover_all_work(self):
        eng, prof = make_engine()

        def body():
            eng.charge(6)
            eng.preempt(2)
            eng.charge(3)

        eng.spawn("a", PES[0], body)
        eng.spawn("b", PES[1], body)
        eng.run()
        assert prof.total_work() == 2 * 11
        assert prof.elapsed() == 11
        eng.shutdown()


class TestCriticalPath:
    def _lock_scenario(self):
        eng, prof = make_engine()
        handles = {}

        def waiter():
            eng.block("critical(L)", cost=0)
            eng.charge(7)

        def worker():
            eng.charge(10)
            eng.wake(handles["w"])

        handles["w"] = eng.spawn("waiter", PES[1], waiter)
        eng.spawn("worker", PES[0], worker)
        eng.run()
        cp = extract_critical_path(prof)
        eng.shutdown()
        return cp

    def test_path_tiles_elapsed_exactly(self):
        cp = self._lock_scenario()
        assert cp.elapsed == 17
        assert cp.segments[0].start == 0
        assert cp.segments[-1].end == cp.elapsed
        for a, b in zip(cp.segments, cp.segments[1:]):
            assert a.end == b.start, "path segments must tile, no gaps"
        assert cp.path_work_ticks + cp.path_wait_ticks == cp.elapsed

    def test_wake_jumps_to_waker_with_release_note(self):
        cp = self._lock_scenario()
        kinds = [(s.kind, s.process, s.ticks) for s in cp.segments]
        assert kinds == [("work", "worker", 10), ("work", "waiter", 7)]
        assert "released lock-wait of waiter" in cp.segments[0].detail

    def test_deadline_wait_appears_on_path(self):
        eng, prof = make_engine()

        def sleeper():
            eng.charge(3)
            eng.block("disk-io", deadline=eng.now() + 20, cost=0)
            eng.charge(4)

        eng.spawn("s", PES[0], sleeper)
        eng.run()
        cp = extract_critical_path(prof)
        eng.shutdown()
        assert [(s.kind, s.label, s.ticks) for s in cp.segments] == [
            ("work", "s", 3), ("wait", WAIT_WINDOW, 20), ("work", "s", 4)]

    def test_what_if_table_ranks_by_ticks(self):
        cp = self._lock_scenario()
        rows = cp.what_if(5)
        assert rows[0]["ticks"] >= rows[-1]["ticks"]
        assert rows[0]["max_elapsed_saving_pct"] == pytest.approx(
            100.0 * rows[0]["ticks"] / cp.elapsed, abs=0.1)

    def test_efficiency_summary(self):
        cp = self._lock_scenario()
        # work 17 over 17 elapsed on 2 PEs: parallelism 1.0, eff 0.5
        assert cp.total_work == 17
        assert cp.parallelism == pytest.approx(1.0)
        assert cp.efficiency == pytest.approx(0.5)

    def test_empty_profile(self):
        prof = CausalProfiler()
        cp = extract_critical_path(prof)
        assert cp.segments == [] and cp.elapsed == 0


class TestExporters:
    def _profiled(self):
        eng, prof = make_engine()
        handles = {}

        def waiter():
            eng.block("accept(GO)", cost=0)
            eng.charge(4)

        def worker():
            eng.charge(6)
            eng.wake(handles["w"])

        handles["w"] = eng.spawn("WK@1.2.1", PES[1], waiter)
        eng.spawn("WRK@1.3.1", PES[0], worker)
        eng.run()
        eng.shutdown()
        return prof

    def test_folded_stacks_virtual(self):
        prof = self._profiled()
        lines = folded_stacks(prof, "virtual")
        by_key = dict(l.rsplit(" ", 1) for l in lines)
        assert by_key[f"PE{PES[0]};WRK@1.3.1;work"] == "6"
        assert by_key[f"PE{PES[1]};WK@1.2.1;work"] == "4"
        assert by_key[f"PE{PES[1]};WK@1.2.1;wait;accept-wait"] == "6"

    def test_folded_stacks_wall_has_no_wait_frames(self):
        prof = self._profiled()
        assert not any(";wait;" in l for l in folded_stacks(prof, "wall"))

    def test_folded_stacks_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            folded_stacks(self._profiled(), "cpu")

    def test_chrome_trace_wait_slices_are_colored(self):
        prof = self._profiled()
        arr = chrome_profile_trace(prof)
        json.dumps(arr)     # strictly serializable (no numpy leaks)
        waits = [e for e in arr if e.get("cat") == "wait"]
        assert waits and all("cname" in e for e in waits)
        work = [e for e in arr if e.get("cat") == "work"]
        assert {e["ph"] for e in waits + work} == {"X"}

    def test_write_profile_bundle(self, tmp_path):
        prof = self._profiled()
        paths = write_profile(prof, tmp_path)
        assert sorted(paths) == ["chrome", "critical_path", "folded",
                                 "report", "wall_folded"]
        for p in paths.values():
            assert p.exists() and p.stat().st_size > 0
        cp = json.loads(paths["critical_path"].read_text())
        assert cp["path_work_ticks"] + cp["path_wait_ticks"] == cp["elapsed"]

    def test_report_renders_all_sections(self):
        prof = self._profiled()
        text = profile_report(prof)
        assert "CAUSAL PROFILE" in text
        assert "wait states" in text
        assert "per-PE utilization" in text
        assert "critical path:" in text


class TestProfileRunApi:
    @pytest.fixture(scope="class")
    def profiled(self):
        return api.profile_run("JMASTER",
                               registry=build_windows_registry(10, 2, 3))

    def test_returns_profile_and_path(self, profiled):
        assert profiled.elapsed > 0
        assert profiled.profiler.elapsed() == profiled.elapsed
        cp = profiled.critical_path
        assert cp.segments[-1].end == profiled.elapsed
        assert 0.0 < cp.efficiency <= 1.0

    def test_metrics_rollup(self, profiled):
        reg = profiled.vm.metrics
        snap = reg.snapshot()
        names = {fam["name"] for fam in snap["families"]} \
            if isinstance(snap, dict) and "families" in snap \
            else set(reg.families())
        assert "wait_ticks_task" in names
        assert "pe_utilization_pct" in names
        # Counter totals must equal the accounting's totals.
        acct = profiled.profiler.accounting()
        assert reg.counter_total("wait_ticks_task") == acct.total_wait_ticks

    def test_report_and_export(self, profiled, tmp_path):
        text = profiled.report()
        assert "critical path:" in text
        paths = profiled.export(tmp_path)
        assert all(p.exists() for p in paths.values())

    def test_accounting_dataclass_roundtrip(self, profiled):
        acct = WaitAccounting.from_profiler(profiled.profiler)
        assert acct.total_wait_ticks == sum(acct.totals.values())
        assert sum(acct.busy_by_pe.values()) == profiled.profiler.total_work()

    def test_utilization_timeline_fractions(self, profiled):
        tl = profiled.profiler.utilization_timeline(n_buckets=10)
        assert tl, "jacobi must keep at least one PE busy"
        for row in tl.values():
            assert len(row) == 10
            assert all(0.0 <= f <= 1.0 for f in row)


class TestDeterminismAcrossDispatchers:
    def _fingerprint(self, dispatcher, monkeypatch):
        monkeypatch.setenv("PISCES_DISPATCHER", dispatcher)
        pr = api.profile_run("JMASTER",
                             registry=build_windows_registry(12, 2, 3))
        acct = pr.profiler.accounting()
        fp = (
            sorted(acct.totals.items()),
            sorted(acct.by_task.items()),
            [(s.kind, s.start, s.end, s.label, s.pe)
             for s in pr.critical_path.segments],
            pr.elapsed,
        )
        pr.vm.shutdown()
        return fp

    def test_profile_identical_indexed_vs_scan(self, monkeypatch):
        """The acceptance criterion: the critical-path report on seeded
        jacobi is deterministic across dispatchers."""
        assert (self._fingerprint("indexed", monkeypatch)
                == self._fingerprint("scan", monkeypatch))


class TestManifest:
    def test_export_run_writes_manifest_with_profile_bundle(self, tmp_path):
        pr = api.profile_run(
            "JMASTER", registry=build_windows_registry(10, 2, 3),
            trace_events=tuple(t.value for t in TraceEventType))
        out = api.export_run(pr.vm, tmp_path)
        man = json.loads((tmp_path / "manifest.json").read_text())
        assert man["profile"] is True
        assert man["dispatcher"] in ("indexed", "scan", "replay")
        assert man["window_path"] in ("fast", "batched", "reference")
        assert man["repro_version"]
        assert man["elapsed_ticks"] == pr.elapsed
        assert "summary" in man["config"]
        # every exported artifact is named in the manifest
        listed = set(man["files"])
        assert {"jsonl", "chrome", "profile_chrome",
                "profile_critical_path"} <= listed
        assert (tmp_path / "run.profile.folded.txt").exists()
        pr.vm.shutdown()

    def test_manifest_without_faults_or_races(self, tmp_path):
        r = api.run_app("JMASTER", registry=build_windows_registry(8, 1, 2),
                        shutdown=False)
        out = api.export_run(r.vm, tmp_path)
        man = json.loads(out["manifest"].read_text())
        assert man["seed"] is None
        assert man["fault_plan_hash"] is None
        assert man["detect_races"] is None
        assert man["profile"] is False
        r.vm.shutdown()
