"""The run manifest records every reproduction axis -- including the
task-body vehicle, so an archived run is fully re-runnable."""

from repro.api import make_vm
from repro.obs.export import run_manifest


def test_manifest_records_all_execution_axes():
    vm = make_vm(n_clusters=1, slots=2)
    try:
        m = run_manifest(vm)
    finally:
        vm.shutdown()
    assert m["exec_core"] in ("threaded", "coop")
    assert m["task_bodies"] in ("auto", "callable")
    assert m["window_path"] in ("fast", "batched", "reference")
    assert m["dispatcher"]


def test_manifest_task_bodies_follows_config():
    vm = make_vm(n_clusters=1, slots=2, task_bodies="callable")
    try:
        m = run_manifest(vm)
    finally:
        vm.shutdown()
    assert m["task_bodies"] == "callable"
