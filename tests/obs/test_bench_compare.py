"""The benchmark regression gate (benchmarks/compare.py + _bench_schema).

compare.py is a standalone stdlib script (CI runs it as a subprocess);
these tests import it by path and drive ``main(argv)`` directly,
asserting the exit codes the CI job gates on: 0 when records match,
nonzero on any virtual-time change or a >15% wall regression.
"""

import importlib.util
import json
from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parents[2] / "benchmarks"


def _load(modname, filename):
    spec = importlib.util.spec_from_file_location(
        modname, BENCH_DIR / filename)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


compare = _load("bench_compare", "compare.py")
schema = _load("bench_schema", "_bench_schema.py")


def _record(**gate_kw):
    return schema.make_record(
        "demo", smoke=False,
        virtual=gate_kw.get("virtual", {"w1": 1000, "w2": 2000}),
        wall_ratios=gate_kw.get("wall_ratios", {"w1": 1.05}),
        wall_seconds=gate_kw.get("wall_seconds", {"w1": 0.8}),
        workloads=[])


def _write_pair(tmp_path, base, fresh):
    bdir = tmp_path / "base"
    fdir = tmp_path / "fresh"
    bdir.mkdir()
    fdir.mkdir()
    schema.write_bench(base, schema.bench_path("demo", bdir))
    schema.write_bench(fresh, schema.bench_path("demo", fdir))
    return ["--baseline-dir", str(bdir), "--fresh-dir", str(fdir)]


class TestSchema:
    def test_make_and_load_roundtrip(self, tmp_path):
        rec = _record()
        p = schema.write_bench(rec, tmp_path / "BENCH_demo.json")
        assert schema.load_bench(p) == rec

    def test_load_rejects_missing_gate(self, tmp_path):
        p = tmp_path / "BENCH_bad.json"
        p.write_text(json.dumps({"benchmark": "bad", "schema_version": 1}))
        with pytest.raises(ValueError):
            schema.load_bench(p)

    def test_committed_baselines_conform(self):
        root = BENCH_DIR.parent
        found = sorted(root.glob("BENCH_*.json"))
        assert found, "committed BENCH_*.json baselines must exist"
        for p in found:
            doc = schema.load_bench(p)
            assert doc["gate"]["virtual"], f"{p.name}: empty virtual gate"

    def test_profile_overhead_baseline_committed(self):
        doc = schema.load_bench(BENCH_DIR.parent
                                / "BENCH_profile_overhead.json")
        assert doc["benchmark"] == "profile_overhead"
        assert "large-grain" in doc["gate"]["virtual"]
        assert doc["gate"]["wall_ratios"].get("large-grain", 99) <= \
            doc["max_wall_overhead"]


class TestCompareGate:
    def test_identical_records_pass(self, tmp_path, capsys):
        argv = _write_pair(tmp_path, _record(), _record())
        assert compare.main(argv) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_any_virtual_change_fails(self, tmp_path, capsys):
        fresh = _record(virtual={"w1": 1001, "w2": 2000})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv) != 0
        out = capsys.readouterr().out
        assert "virtual time changed" in out and "w1" in out

    def test_20pct_wall_regression_fails(self, tmp_path):
        """The acceptance criterion: an injected 20% synthetic wall
        regression exits nonzero."""
        fresh = _record(wall_ratios={"w1": 1.05 * 1.20})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv) != 0

    def test_wall_within_15pct_passes(self, tmp_path):
        fresh = _record(wall_ratios={"w1": 1.05 * 1.10})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv) == 0

    def test_wall_seconds_regression_fails_above_noise_floor(self, tmp_path):
        fresh = _record(wall_seconds={"w1": 0.8 * 1.3})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv) != 0

    def test_tiny_wall_times_are_not_gated(self, tmp_path):
        base = _record(wall_seconds={"w1": 0.01})
        fresh = _record(wall_seconds={"w1": 0.04})   # 4x but within noise
        argv = _write_pair(tmp_path, base, fresh)
        assert compare.main(argv) == 0

    def test_smoke_records_skip_wall_gates(self, tmp_path):
        base = _record()
        fresh = _record(wall_ratios={"w1": 9.9})
        fresh["smoke"] = True
        argv = _write_pair(tmp_path, base, fresh)
        assert compare.main(argv) == 0

    def test_new_virtual_key_is_note_not_failure(self, tmp_path, capsys):
        fresh = _record(virtual={"w1": 1000, "w2": 2000, "w3": 5})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv) == 0
        assert "only in fresh" in capsys.readouterr().out

    def test_named_benchmark_missing_is_error(self, tmp_path):
        argv = _write_pair(tmp_path, _record(), _record())
        assert compare.main(argv + ["nonexistent"]) == 2

    def test_empty_dirs_is_error(self, tmp_path):
        (tmp_path / "a").mkdir()
        (tmp_path / "b").mkdir()
        assert compare.main(["--baseline-dir", str(tmp_path / "a"),
                             "--fresh-dir", str(tmp_path / "b")]) == 2

    def test_gateless_record_fails_loudly(self, tmp_path):
        argv = _write_pair(tmp_path, _record(), _record())
        fresh_path = tmp_path / "fresh" / "BENCH_demo.json"
        fresh_path.write_text(json.dumps({"benchmark": "demo"}))
        assert compare.main(argv) == 1

    def test_custom_regression_bound(self, tmp_path):
        fresh = _record(wall_ratios={"w1": 1.05 * 1.4})
        argv = _write_pair(tmp_path, _record(), fresh)
        assert compare.main(argv + ["--max-wall-regression", "1.5"]) == 0
        assert compare.main(argv) != 0
