"""Property test: every core x dispatcher leg produces identical traces.

Hypothesis drives randomized spawn/wake/kill/deadline schedules through
engines that differ only in dispatcher implementation (two-level heap
vs the O(n) reference scan) and execution core (thread-per-process vs
the coop discrete-event loop), and demands the complete slice trace --
(pe, start, end, name) for every slice, in dispatch order -- plus the
final PE clock readings and the outcome (normal completion or
deadlock) be identical.  This is the stale-free heap's bookkeeping
under adversarial interleavings: re-keys after PE clock advances,
deadline wakeups, wakes that beat deadlines, kills of blocked and
ready processes -- and the coop core's handoff replacement under the
same schedules, for both body forms (callable bodies on worker
threads, coroutine bodies on the engine thread).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError
from repro.flex.presets import small_flex
from repro.mmos.process import co_block, co_charge, co_preempt
from repro.mmos.scheduler import create_engine

N_PES = 4
PES = list(range(3, 3 + N_PES))   # small_flex MMOS PEs start at 3

op = st.one_of(
    st.tuples(st.just("charge"), st.integers(0, 20)),
    st.tuples(st.just("preempt"), st.integers(0, 5)),
    # nap: block with a deadline -- always runnable again
    st.tuples(st.just("nap"), st.integers(0, 30)),
    # park: block with no deadline; relies on a wake (or deadlocks --
    # every engine must agree on that too)
    st.tuples(st.just("park"), st.just(0)),
    st.tuples(st.just("wake"), st.integers(0, 7)),
    st.tuples(st.just("kill"), st.integers(0, 7)),
)

schedule = st.lists(
    st.tuples(
        st.integers(0, N_PES - 1),          # pe index
        st.integers(0, 40),                 # start_time
        st.lists(op, min_size=1, max_size=7),
    ),
    min_size=1, max_size=6)


def run_schedule(dispatcher, procs, exec_core="threaded",
                 coroutine=False):
    eng = create_engine(small_flex(8), dispatcher=dispatcher,
                        exec_core=exec_core)
    eng.record_slices = True
    handles = []

    def make_body(ops):
        def body():
            for kind, arg in ops:
                if kind == "charge":
                    eng.charge(arg)
                elif kind == "preempt":
                    eng.preempt(arg)
                elif kind == "nap":
                    eng.block("nap", deadline=eng.now() + arg, cost=1)
                elif kind == "park":
                    eng.block("park", cost=1)
                elif kind == "wake":
                    eng.wake(handles[arg % len(handles)], info="hi")
                    eng.preempt(1)
                elif kind == "kill":
                    victim = handles[arg % len(handles)]
                    eng.kill(victim)
                    eng.preempt(1)
        return body

    def make_gen_body(ops):
        # The coroutine form of the identical program: kernel points
        # become yielded KernelOps (engine-side calls like wake/kill
        # stay plain calls -- they never block).
        def body():
            for kind, arg in ops:
                if kind == "charge":
                    yield co_charge(arg)
                elif kind == "preempt":
                    yield co_preempt(arg)
                elif kind == "nap":
                    yield co_block("nap", deadline=eng.now() + arg, cost=1)
                elif kind == "park":
                    yield co_block("park", cost=1)
                elif kind == "wake":
                    eng.wake(handles[arg % len(handles)], info="hi")
                    yield co_preempt(1)
                elif kind == "kill":
                    victim = handles[arg % len(handles)]
                    eng.kill(victim)
                    yield co_preempt(1)
        return body

    make = make_gen_body if coroutine else make_body
    for i, (pe_ix, start, ops) in enumerate(procs):
        handles.append(eng.spawn(f"p{i}", PES[pe_ix], make(ops),
                                 start_time=start))
    outcome = "ok"
    try:
        eng.run()
    except DeadlockError:
        outcome = "deadlock"
    trace = list(eng.slices)
    clocks = eng.machine.clocks.snapshot()
    dispatches = eng.dispatch_count
    eng.shutdown()
    return outcome, trace, clocks, dispatches


@given(schedule)
@settings(max_examples=40, deadline=None)
def test_dispatchers_produce_identical_slice_traces(procs):
    a = run_schedule("indexed", procs)
    b = run_schedule("scan", procs)
    assert a == b, (
        f"dispatcher divergence:\n indexed={a}\n scan={b}")


@given(schedule)
@settings(max_examples=25, deadline=None)
def test_coop_core_matches_threaded_on_both_dispatchers(procs):
    """Core x dispatcher matrix on callable bodies: the coop core's
    worker-thread handoff must retrace the threaded oracle under both
    pickers."""
    ref = run_schedule("indexed", procs, exec_core="threaded")
    for dispatcher in ("indexed", "scan"):
        got = run_schedule(dispatcher, procs, exec_core="coop")
        assert got == ref, (
            f"coop x {dispatcher} diverged from threaded x indexed:\n"
            f" coop={got}\n threaded={ref}")


@given(schedule)
@settings(max_examples=25, deadline=None)
def test_coroutine_bodies_match_callable_bodies_on_both_cores(procs):
    """Body-form invariance: the generator form of the same program
    (run natively by the coop loop, and via the kernel trampoline on
    the threaded core) must retrace the callable form exactly."""
    ref = run_schedule("indexed", procs, exec_core="threaded")
    for exec_core in ("threaded", "coop"):
        got = run_schedule("indexed", procs, exec_core=exec_core,
                           coroutine=True)
        assert got == ref, (
            f"coroutine bodies on {exec_core} diverged from callable "
            f"bodies:\n got={got}\n ref={ref}")


# --------------------------------------------------------------- app zoo --
#
# The hypothesis properties above exercise raw engine schedules; the
# matrix below runs every full application in the repo across
# {threaded, coop} x {auto, callable} task-body vehicles and demands
# identical virtual time, dispatch counts and complete trace streams.
# This is the task-runtime acceptance contract: a PISCES program's
# observable history does not depend on how its bodies are executed.

import dataclasses

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.tracing import TraceEventType
from repro.core.vm import PiscesVM

_ALL_EVENTS = tuple(t.value for t in TraceEventType)


def _two_clusters(slots):
    return tuple(ClusterSpec(number=i, primary_pe=2 + i, slots=slots)
                 for i in (1, 2))


def _force_cluster():
    return (ClusterSpec(number=1, primary_pe=3, slots=2,
                        secondary_pes=(4, 5, 6)),)


def _case_jacobi_windows():
    from repro.apps.jacobi import build_windows_registry
    return (build_windows_registry(12, 2, 3),
            Configuration(clusters=_two_clusters(3), name="zoo-jacobi-w"),
            "JMASTER", ())


def _case_jacobi_force():
    from repro.apps.jacobi import build_force_registry
    return (build_force_registry(10, 2),
            Configuration(clusters=_force_cluster(), name="zoo-jacobi-f"),
            "JFORCE", (10, 2))


def _case_matmul_tasks():
    from repro.apps.matmul import build_tasks_registry
    return (build_tasks_registry(10, 3),
            Configuration(clusters=_two_clusters(3), name="zoo-matmul-t"),
            "MMASTER", ())


def _case_matmul_force():
    from repro.apps.matmul import build_force_registry
    return (build_force_registry(8),
            Configuration(clusters=_force_cluster(), name="zoo-matmul-f"),
            "MFORCE", ())


def _case_matmul_hybrid():
    from repro.apps.matmul import build_hybrid_registry
    clusters = (ClusterSpec(1, 3, 3, (6, 7)), ClusterSpec(2, 4, 3, (8, 9)))
    return (build_hybrid_registry(10, 2),
            Configuration(clusters=clusters, name="zoo-matmul-h"),
            "HMASTER", ())


def _case_fem():
    from repro.apps.fem import FEMProblem, build_fem_registry
    return (build_fem_registry(FEMProblem(n_elements=6)),
            Configuration(clusters=_force_cluster(), name="zoo-fem"),
            "FEM", ())


def _case_truss():
    from repro.apps.truss import build_truss_registry, pratt_truss
    return (build_truss_registry(pratt_truss(n_panels=2)),
            Configuration(clusters=_force_cluster(), name="zoo-truss"),
            "TRUSS", ())


def _case_integrate():
    from repro.apps.integrate import build_integrate_registry, \
        default_integrand
    return (build_integrate_registry(default_integrand, 0.0, 3.0, 8, 6, 3),
            Configuration(clusters=_two_clusters(3), name="zoo-integrate"),
            "IMASTER", ())


def _case_pipeline():
    from repro.apps.pipeline import build_pipeline_registry
    return (build_pipeline_registry(3, list(range(6))),
            Configuration(clusters=_two_clusters(4), name="zoo-pipeline"),
            "COORD", ())


def _case_chaos_jacobi():
    from repro.apps.chaos_jacobi import build_chaos_registry
    return (build_chaos_registry(10, 2, 2, None, "abort", 8_000, 60_000,
                                 200),
            Configuration(clusters=_two_clusters(3), name="zoo-chaos"),
            "CMASTER", ())


APP_CASES = {
    "jacobi_windows": _case_jacobi_windows,
    "jacobi_force": _case_jacobi_force,
    "matmul_tasks": _case_matmul_tasks,
    "matmul_force": _case_matmul_force,
    "matmul_hybrid": _case_matmul_hybrid,
    "fem": _case_fem,
    "truss": _case_truss,
    "integrate": _case_integrate,
    "pipeline": _case_pipeline,
    "chaos_jacobi": _case_chaos_jacobi,
}

_LEGS = (("threaded", "auto"), ("threaded", "callable"),
         ("coop", "auto"), ("coop", "callable"))


def _run_app_leg(case, exec_core, task_bodies):
    registry, config, tasktype, args = case()
    config = dataclasses.replace(config, exec_core=exec_core,
                                 task_bodies=task_bodies,
                                 trace_events=_ALL_EVENTS)
    vm = PiscesVM(config, registry=registry)
    r = vm.run(tasktype, *args)
    return {
        "elapsed": r.elapsed,
        "dispatches": vm.engine.dispatch_count,
        "trace": [e.line() for e in vm.tracer.events],
    }


@pytest.mark.parametrize("app", sorted(APP_CASES))
def test_app_zoo_identical_across_cores_and_vehicles(app):
    ref = _run_app_leg(APP_CASES[app], "threaded", "auto")
    assert ref["trace"], "tracing must be live for the comparison to bite"
    for exec_core, task_bodies in _LEGS[1:]:
        got = _run_app_leg(APP_CASES[app], exec_core, task_bodies)
        assert got == ref, (
            f"{app}: {exec_core}/{task_bodies} diverged from "
            f"threaded/auto (elapsed {got['elapsed']} vs {ref['elapsed']})")


@pytest.mark.parametrize("app", sorted(APP_CASES))
def test_app_zoo_runs_threadless_on_coop(app):
    """On the coop core with coroutine bodies nothing gets an OS
    thread: controllers, task bodies and force members all suspend at
    the KernelOp seam on the engine thread."""
    registry, config, tasktype, args = APP_CASES[app]()
    config = dataclasses.replace(config, exec_core="coop",
                                 task_bodies="auto")
    vm = PiscesVM(config, registry=registry)
    vm.run(tasktype, *args)
    procs = vm.engine._by_ordinal
    assert procs, "the run must have spawned processes"
    threaded = [p.name for p in procs if p.thread is not None]
    assert not threaded, f"worker threads on coop: {threaded}"
