"""Property test: heap and scan dispatchers produce identical traces.

Hypothesis drives randomized spawn/wake/kill/deadline schedules through
two engines that differ only in dispatcher implementation, and demands
the complete slice trace -- (pe, start, end, name) for every slice, in
dispatch order -- plus the final PE clock readings and the outcome
(normal completion or deadlock) be identical.  This is the lazy-heap's
staleness handling under adversarial interleavings: re-keys after PE
clock advances, deadline wakeups, wakes that beat deadlines, kills of
blocked and ready processes.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError
from repro.flex.presets import small_flex
from repro.mmos.scheduler import Engine

N_PES = 4
PES = list(range(3, 3 + N_PES))   # small_flex MMOS PEs start at 3

op = st.one_of(
    st.tuples(st.just("charge"), st.integers(0, 20)),
    st.tuples(st.just("preempt"), st.integers(0, 5)),
    # nap: block with a deadline -- always runnable again
    st.tuples(st.just("nap"), st.integers(0, 30)),
    # park: block with no deadline; relies on a wake (or deadlocks --
    # both engines must agree on that too)
    st.tuples(st.just("park"), st.just(0)),
    st.tuples(st.just("wake"), st.integers(0, 7)),
    st.tuples(st.just("kill"), st.integers(0, 7)),
)

schedule = st.lists(
    st.tuples(
        st.integers(0, N_PES - 1),          # pe index
        st.integers(0, 40),                 # start_time
        st.lists(op, min_size=1, max_size=7),
    ),
    min_size=1, max_size=6)


def run_schedule(dispatcher, procs):
    eng = Engine(small_flex(8), dispatcher=dispatcher)
    eng.record_slices = True
    handles = []

    def make_body(ops):
        def body():
            for kind, arg in ops:
                if kind == "charge":
                    eng.charge(arg)
                elif kind == "preempt":
                    eng.preempt(arg)
                elif kind == "nap":
                    eng.block("nap", deadline=eng.now() + arg, cost=1)
                elif kind == "park":
                    eng.block("park", cost=1)
                elif kind == "wake":
                    eng.wake(handles[arg % len(handles)], info="hi")
                    eng.preempt(1)
                elif kind == "kill":
                    victim = handles[arg % len(handles)]
                    eng.kill(victim)
                    eng.preempt(1)
        return body

    for i, (pe_ix, start, ops) in enumerate(procs):
        handles.append(eng.spawn(f"p{i}", PES[pe_ix], make_body(ops),
                                 start_time=start))
    outcome = "ok"
    try:
        eng.run()
    except DeadlockError:
        outcome = "deadlock"
    trace = list(eng.slices)
    clocks = eng.machine.clocks.snapshot()
    dispatches = eng.dispatch_count
    eng.shutdown()
    return outcome, trace, clocks, dispatches


@given(schedule)
@settings(max_examples=40, deadline=None)
def test_dispatchers_produce_identical_slice_traces(procs):
    a = run_schedule("indexed", procs)
    b = run_schedule("scan", procs)
    assert a == b, (
        f"dispatcher divergence:\n indexed={a}\n scan={b}")
