"""Property test: every core x dispatcher leg produces identical traces.

Hypothesis drives randomized spawn/wake/kill/deadline schedules through
engines that differ only in dispatcher implementation (two-level heap
vs the O(n) reference scan) and execution core (thread-per-process vs
the coop discrete-event loop), and demands the complete slice trace --
(pe, start, end, name) for every slice, in dispatch order -- plus the
final PE clock readings and the outcome (normal completion or
deadlock) be identical.  This is the stale-free heap's bookkeeping
under adversarial interleavings: re-keys after PE clock advances,
deadline wakeups, wakes that beat deadlines, kills of blocked and
ready processes -- and the coop core's handoff replacement under the
same schedules, for both body forms (callable bodies on worker
threads, coroutine bodies on the engine thread).
"""

from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError
from repro.flex.presets import small_flex
from repro.mmos.process import co_block, co_charge, co_preempt
from repro.mmos.scheduler import create_engine

N_PES = 4
PES = list(range(3, 3 + N_PES))   # small_flex MMOS PEs start at 3

op = st.one_of(
    st.tuples(st.just("charge"), st.integers(0, 20)),
    st.tuples(st.just("preempt"), st.integers(0, 5)),
    # nap: block with a deadline -- always runnable again
    st.tuples(st.just("nap"), st.integers(0, 30)),
    # park: block with no deadline; relies on a wake (or deadlocks --
    # every engine must agree on that too)
    st.tuples(st.just("park"), st.just(0)),
    st.tuples(st.just("wake"), st.integers(0, 7)),
    st.tuples(st.just("kill"), st.integers(0, 7)),
)

schedule = st.lists(
    st.tuples(
        st.integers(0, N_PES - 1),          # pe index
        st.integers(0, 40),                 # start_time
        st.lists(op, min_size=1, max_size=7),
    ),
    min_size=1, max_size=6)


def run_schedule(dispatcher, procs, exec_core="threaded",
                 coroutine=False):
    eng = create_engine(small_flex(8), dispatcher=dispatcher,
                        exec_core=exec_core)
    eng.record_slices = True
    handles = []

    def make_body(ops):
        def body():
            for kind, arg in ops:
                if kind == "charge":
                    eng.charge(arg)
                elif kind == "preempt":
                    eng.preempt(arg)
                elif kind == "nap":
                    eng.block("nap", deadline=eng.now() + arg, cost=1)
                elif kind == "park":
                    eng.block("park", cost=1)
                elif kind == "wake":
                    eng.wake(handles[arg % len(handles)], info="hi")
                    eng.preempt(1)
                elif kind == "kill":
                    victim = handles[arg % len(handles)]
                    eng.kill(victim)
                    eng.preempt(1)
        return body

    def make_gen_body(ops):
        # The coroutine form of the identical program: kernel points
        # become yielded KernelOps (engine-side calls like wake/kill
        # stay plain calls -- they never block).
        def body():
            for kind, arg in ops:
                if kind == "charge":
                    yield co_charge(arg)
                elif kind == "preempt":
                    yield co_preempt(arg)
                elif kind == "nap":
                    yield co_block("nap", deadline=eng.now() + arg, cost=1)
                elif kind == "park":
                    yield co_block("park", cost=1)
                elif kind == "wake":
                    eng.wake(handles[arg % len(handles)], info="hi")
                    yield co_preempt(1)
                elif kind == "kill":
                    victim = handles[arg % len(handles)]
                    eng.kill(victim)
                    yield co_preempt(1)
        return body

    make = make_gen_body if coroutine else make_body
    for i, (pe_ix, start, ops) in enumerate(procs):
        handles.append(eng.spawn(f"p{i}", PES[pe_ix], make(ops),
                                 start_time=start))
    outcome = "ok"
    try:
        eng.run()
    except DeadlockError:
        outcome = "deadlock"
    trace = list(eng.slices)
    clocks = eng.machine.clocks.snapshot()
    dispatches = eng.dispatch_count
    eng.shutdown()
    return outcome, trace, clocks, dispatches


@given(schedule)
@settings(max_examples=40, deadline=None)
def test_dispatchers_produce_identical_slice_traces(procs):
    a = run_schedule("indexed", procs)
    b = run_schedule("scan", procs)
    assert a == b, (
        f"dispatcher divergence:\n indexed={a}\n scan={b}")


@given(schedule)
@settings(max_examples=25, deadline=None)
def test_coop_core_matches_threaded_on_both_dispatchers(procs):
    """Core x dispatcher matrix on callable bodies: the coop core's
    worker-thread handoff must retrace the threaded oracle under both
    pickers."""
    ref = run_schedule("indexed", procs, exec_core="threaded")
    for dispatcher in ("indexed", "scan"):
        got = run_schedule(dispatcher, procs, exec_core="coop")
        assert got == ref, (
            f"coop x {dispatcher} diverged from threaded x indexed:\n"
            f" coop={got}\n threaded={ref}")


@given(schedule)
@settings(max_examples=25, deadline=None)
def test_coroutine_bodies_match_callable_bodies_on_both_cores(procs):
    """Body-form invariance: the generator form of the same program
    (run natively by the coop loop, and via the kernel trampoline on
    the threaded core) must retrace the callable form exactly."""
    ref = run_schedule("indexed", procs, exec_core="threaded")
    for exec_core in ("threaded", "coop"):
        got = run_schedule("indexed", procs, exec_core=exec_core,
                           coroutine=True)
        assert got == ref, (
            f"coroutine bodies on {exec_core} diverged from callable "
            f"bodies:\n got={got}\n ref={ref}")
