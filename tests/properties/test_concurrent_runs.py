"""Concurrency-invariance property: N ``run_app`` invocations from a
thread pool are each bit-identical (virtual time + trace stream) to
the same runs executed serially -- on both execution cores.

This is the property the run service's worker pool stands on: VMs
share a process but no mutable state that affects scheduling, so
host-level interleaving cannot perturb any run's virtual outcome.
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import _ALL_TRACE_EVENTS, run_app
from repro.apps.jacobi import build_windows_registry
from repro.apps.matmul import build_tasks_registry
from repro.service.catalog import build_spin_registry

#: (label, registry builder, tasktype, args) -- distinct shapes so the
#: concurrent mix is heterogeneous, like a real service pool.
WORKLOADS = [
    ("jacobi", lambda: build_windows_registry(10, 2, 2), "JMASTER", ()),
    ("matmul", lambda: build_tasks_registry(8, 2), "MMASTER", ()),
    ("spin", lambda: build_spin_registry(40, 13), "SPIN", (40, 13)),
]


def run_one(i: int, exec_core: str):
    label, make_reg, tasktype, args = WORKLOADS[i % len(WORKLOADS)]
    r = run_app(tasktype, *args, registry=make_reg(),
                exec_core=exec_core, trace_events=_ALL_TRACE_EVENTS)
    return (label, r.elapsed, [e.line() for e in r.vm.tracer.events])


@pytest.mark.parametrize("exec_core", ["threaded", "coop"])
def test_thread_pool_runs_bit_identical_to_serial(exec_core):
    n = 6
    serial = [run_one(i, exec_core) for i in range(n)]
    with ThreadPoolExecutor(max_workers=4) as pool:
        concurrent = list(pool.map(lambda i: run_one(i, exec_core),
                                   range(n)))
    for i, (ser, conc) in enumerate(zip(serial, concurrent)):
        label, ser_elapsed, ser_trace = ser
        _, conc_elapsed, conc_trace = conc
        assert conc_elapsed == ser_elapsed, (label, i)
        assert conc_trace == ser_trace, (label, i)


@pytest.mark.parametrize("exec_core", ["threaded", "coop"])
def test_concurrent_fault_plans_stay_with_their_run(exec_core):
    """Fault-plan ambient scoping under concurrency: a chaos run and a
    clean run of the same app, in parallel, each matching its own
    serial reference."""
    from repro.faults import FaultPlan, TaskKill, plan_scope

    plan = FaultPlan(seed=3, kills=(TaskKill(at=200, tasktype="SPIN"),))

    def clean():
        return run_one(2, exec_core)

    def chaotic():
        with plan_scope(plan):
            return run_one(2, exec_core)

    ref_clean, ref_chaotic = clean(), chaotic()
    assert ref_clean[1] != ref_chaotic[1] or ref_clean[2] != ref_chaotic[2]

    with ThreadPoolExecutor(max_workers=2) as pool:
        f_clean = pool.submit(clean)
        f_chaotic = pool.submit(chaotic)
        assert f_clean.result() == ref_clean
        assert f_chaotic.result() == ref_chaotic
