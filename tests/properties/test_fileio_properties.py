"""Property-based tests: disk striping invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.fileio import DiskArray


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=4096),
       st.integers(min_value=0, max_value=10**6),
       st.integers(min_value=0, max_value=10**6))
@settings(max_examples=300, deadline=None)
def test_stripe_spread_conserves_bytes(n_disks, unit, offset, nbytes):
    da = DiskArray(n_disks, stripe_unit=unit)
    spread = da.stripe_spread(offset, nbytes)
    assert sum(spread.values()) == nbytes
    assert all(0 <= d < n_disks for d in spread)
    assert all(b > 0 for b in spread.values())


@given(st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=1024),
       st.integers(min_value=0, max_value=10**5),
       st.integers(min_value=1, max_value=10**6))
@settings(max_examples=200, deadline=None)
def test_stripe_spread_is_balanced(n_disks, unit, offset, nbytes):
    """No disk carries more than one stripe unit beyond its fair share."""
    da = DiskArray(n_disks, stripe_unit=unit)
    spread = da.stripe_spread(offset, nbytes)
    fair = nbytes / n_disks
    for b in spread.values():
        assert b <= fair + 2 * unit


@given(st.integers(min_value=1, max_value=6),
       st.lists(st.tuples(st.integers(min_value=0, max_value=10**5),
                          st.integers(min_value=1, max_value=10**5)),
                min_size=1, max_size=20))
@settings(max_examples=150, deadline=None)
def test_transfers_never_travel_back_in_time(n_disks, requests):
    """Completion times are monotone per disk and never before start."""
    da = DiskArray(n_disks, stripe_unit=512)
    t = 0
    for offset, nbytes in requests:
        done = da.transfer(t, offset, nbytes, write=False)
        assert done > t
        t = done
    # Bytes accounted exactly once.
    assert da.total_bytes() == sum(n for _, n in requests)


@given(st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_more_disks_never_slower(n_disks):
    """For a fixed large transfer, adding disks never increases the
    completion time (same stripe unit)."""
    NBYTES = 256 * 1024
    times = []
    for n in range(1, n_disks + 1):
        da = DiskArray(n, stripe_unit=4096)
        times.append(da.transfer(0, 0, NBYTES, write=False))
    assert all(a >= b for a, b in zip(times, times[1:]))
