"""Property-based tests: Fortran expression translation correctness.

Random integer expression trees are rendered to Fortran source, pushed
through the lexer + parser + code generator, and the emitted Python is
evaluated against a reference interpreter that implements Fortran
semantics directly (notably: integer division truncates toward zero).
"""

from hypothesis import assume, given, settings, strategies as st

from repro.fortran import runtime as _rt
from repro.fortran.lexer import tokenize_line
from repro.fortran.parser import ExprParser
from repro.fortran.preprocessor import CodeGenerator, UnitInfo
from repro.fortran.ast_nodes import Program, ProgramUnit

# ---------------------------------------------------------------- trees --

@st.composite
def int_exprs(draw, depth=0):
    """(fortran_text, reference_value) pairs for integer expressions."""
    if depth >= 4 or draw(st.booleans()):
        n = draw(st.integers(min_value=0, max_value=99))
        return str(n), n
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    lt, lv = draw(int_exprs(depth=depth + 1))
    rt_, rv = draw(int_exprs(depth=depth + 1))
    if op == "/":
        assume(rv != 0)
        val = _rt.div(lv, rv)
    elif op == "+":
        val = lv + rv
    elif op == "-":
        val = lv - rv
    else:
        val = lv * rv
    return f"({lt} {op} {rt_})", val


def translate_and_eval(text: str):
    toks = tokenize_line(text, 1)
    ast = ExprParser(toks, 0, 1).parse()
    unit = ProgramUnit(kind="TASK", name="T", params=[])
    gen = CodeGenerator(Program(units=[unit]))
    info = UnitInfo.build(unit)
    py = gen._expr(ast, info)
    return eval(py, {"_rt": _rt})   # noqa: S307 - test-local eval


@given(int_exprs())
@settings(max_examples=300, deadline=None)
def test_integer_expression_translation_matches_reference(pair):
    text, expected = pair
    assert translate_and_eval(text) == expected


@given(st.integers(min_value=-99, max_value=99),
       st.integers(min_value=-99, max_value=99))
@settings(max_examples=200, deadline=None)
def test_division_truncates_toward_zero(a, b):
    assume(b != 0)
    got = translate_and_eval(f"({a}) / ({b})")
    import math
    expected = math.trunc(a / b)
    assert got == expected


@given(st.integers(min_value=0, max_value=6),
       st.integers(min_value=0, max_value=4))
@settings(max_examples=100, deadline=None)
def test_power_matches_python(a, b):
    assert translate_and_eval(f"{a} ** {b}") == a ** b


@given(st.integers(min_value=-50, max_value=50),
       st.integers(min_value=-50, max_value=50))
@settings(max_examples=200, deadline=None)
def test_relational_operators(a, b):
    for fop, pyop in ((".EQ.", "=="), (".NE.", "!="), (".LT.", "<"),
                      (".LE.", "<="), (".GT.", ">"), (".GE.", ">=")):
        got = translate_and_eval(f"({a}) {fop} ({b})")
        assert got == eval(f"{a} {pyop} {b}")
