"""Property-based tests: the shared-memory heap allocator invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import OutOfMemory
from repro.flex.memory import BLOCK_HEADER_BYTES, HeapAllocator

# An operation sequence: alloc(size) or free(index into live list).
ops = st.lists(
    st.one_of(
        st.tuples(st.just("alloc"), st.integers(min_value=0, max_value=600)),
        st.tuples(st.just("free"), st.integers(min_value=0, max_value=50)),
    ),
    max_size=120)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_structural_invariants_hold_under_any_sequence(sequence):
    """After every operation: blocks+free regions tile the heap exactly,
    free regions are coalesced, accounting matches the live set."""
    h = HeapAllocator(4096)
    live = []
    for op, arg in sequence:
        if op == "alloc":
            try:
                live.append(h.alloc(arg))
            except OutOfMemory:
                pass
        elif live:
            h.free(live.pop(arg % len(live)))
        h.check_invariants()
        assert h.stats.live_bytes == sum(a.size for a in live)
        assert h.stats.live_overhead == len(live) * BLOCK_HEADER_BYTES
        assert h.stats.high_water >= h.stats.live_total


@given(ops)
@settings(max_examples=100, deadline=None)
def test_freeing_everything_restores_one_region(sequence):
    h = HeapAllocator(4096)
    live = []
    for op, arg in sequence:
        if op == "alloc":
            try:
                live.append(h.alloc(arg))
            except OutOfMemory:
                pass
        elif live:
            h.free(live.pop(arg % len(live)))
    for a in live:
        h.free(a)
    assert h.free_regions() == [(0, 4096)]
    assert h.stats.total_allocs == h.stats.total_frees


@given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                max_size=40))
@settings(max_examples=100, deadline=None)
def test_live_allocations_never_overlap(sizes):
    h = HeapAllocator(16 * 1024)
    allocs = []
    for s in sizes:
        try:
            allocs.append(h.alloc(s))
        except OutOfMemory:
            break
    spans = sorted((a.addr, a.end) for a in allocs)
    for (a1, e1), (a2, _) in zip(spans, spans[1:]):
        assert e1 + BLOCK_HEADER_BYTES <= a2 + BLOCK_HEADER_BYTES
        assert e1 <= a2


@given(st.integers(min_value=1, max_value=2000),
       st.integers(min_value=0, max_value=2000))
@settings(max_examples=100, deadline=None)
def test_alloc_free_roundtrip_is_identity(capacity_extra, size):
    cap = size + BLOCK_HEADER_BYTES + capacity_extra
    h = HeapAllocator(cap)
    a = h.alloc(size)
    h.free(a)
    assert h.free_regions() == [(0, cap)]
    assert h.stats.live_total == 0
