"""Property-based tests: race-detector soundness and replay identity.

Three properties over program/size/seed space:

* a program with a genuine unordered conflicting access pair is
  *always* flagged, whatever the force width or problem size;
* the same program correctly synchronized (BARRIER or CRITICAL) is
  *never* flagged -- no false positives from the epoch optimization,
  lockset tracking or extent narrowing;
* a recorded schedule replays bit-identically, including under an
  actively lossy fault plan whose seed hypothesis chooses.
"""

from hypothesis import given, settings, strategies as st

from repro import check_races, record_run, replay_run
from repro.apps.chaos_jacobi import build_chaos_registry
from repro.apps.jacobi import build_windows_registry
from repro.faults import FaultPlan, MessagePolicy

from ..correctness.programs import (barrier_guarded_registry,
                                    critical_guarded_registry,
                                    racy_presched_registry)

FORCE_WIDTHS = st.integers(min_value=1, max_value=3)   # secondary PEs


@given(FORCE_WIDTHS, st.integers(min_value=6, max_value=24))
@settings(max_examples=6, deadline=None)
def test_racy_program_is_always_flagged(force_pes, n):
    chk = check_races("RACY", registry=racy_presched_registry(n),
                      n_clusters=1, force_pes_per_cluster=force_pes)
    assert not chk.clean
    assert all(r.severity == "race" for r in chk.reports)


@given(FORCE_WIDTHS, st.integers(min_value=6, max_value=24))
@settings(max_examples=6, deadline=None)
def test_barrier_guarded_is_never_flagged(force_pes, n):
    chk = check_races("GUARDED", registry=barrier_guarded_registry(n),
                      n_clusters=1, force_pes_per_cluster=force_pes)
    assert chk.clean and not chk.warnings


@given(FORCE_WIDTHS, st.integers(min_value=1, max_value=4))
@settings(max_examples=6, deadline=None)
def test_critical_guarded_is_never_flagged(force_pes, rounds):
    chk = check_races("LOCKED", registry=critical_guarded_registry(rounds),
                      n_clusters=1, force_pes_per_cluster=force_pes)
    assert chk.clean and not chk.warnings


def _identical(rec, rep):
    assert rep.elapsed == rec.elapsed
    assert [e.line() for e in rep.vm.tracer.events] == rec.trace_lines
    assert rep.stats == rec.result.stats


@given(st.integers(min_value=6, max_value=12),
       st.integers(min_value=1, max_value=3),
       st.integers(min_value=2, max_value=3))
@settings(max_examples=5, deadline=None)
def test_replay_identity_over_problem_space(n, sweeps, workers):
    rec = record_run("JMASTER",
                     registry=build_windows_registry(n, sweeps, workers))
    rep = replay_run("JMASTER", schedule=rec,
                     registry=build_windows_registry(n, sweeps, workers))
    _identical(rec, rep)


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=4, deadline=None)
def test_replay_identity_under_fault_plans(seed):
    plan = FaultPlan(seed=seed, name=f"prop-{seed}",
                     messages=MessagePolicy(drop=0.05, duplicate=0.04,
                                            delay=0.08, delay_ticks=600))

    def reg():
        return build_chaos_registry(8, 2, 2, None, "reassign",
                                    8_000, 60_000, 200)

    rec = record_run("CMASTER", registry=reg(), fault_plan=plan)
    rep = replay_run("CMASTER", schedule=rec, registry=reg(),
                     fault_plan=plan)
    _identical(rec, rep)
