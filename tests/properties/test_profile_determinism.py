"""Property: the causal profile is part of the deterministic history.

For any app in the dispatcher-identity matrix and either window
data-plane path, the profiler's complete observable output -- wait
totals by category, the per-task rollup, and the extracted critical
path -- must be bit-identical across the ``indexed`` and ``scan``
dispatchers, across the ``threaded`` and ``coop`` execution cores,
and across a record/replay cycle where the recording run
did NOT profile but the replay does (attaching the profiler to a
replay reproduces the original run's profile exactly).

Fingerprints use task *labels* and PE numbers, never kernel pids
(pids are process-global and differ between VMs by construction).
"""

import os

from hypothesis import given, settings, strategies as st

from repro.apps.fem import run_fem
from repro.apps.integrate import run_integrate
from repro.apps.jacobi import run_jacobi_windows
from repro.apps.matmul import run_matmul_tasks
from repro.apps.pipeline import run_pipeline
from repro.obs.profile import extract_critical_path

APPS = [
    ("jacobi", lambda: run_jacobi_windows(n=12, sweeps=2, n_workers=3)),
    ("matmul", lambda: run_matmul_tasks(n=8, n_workers=3)),
    ("fem", lambda: run_fem(n_elements=8)),
    ("pipeline", lambda: run_pipeline(n_stages=3, items=list(range(8)))),
    ("integrate", lambda: run_integrate(pieces=12, points_per_piece=4)),
]

WINDOW_PATHS = ("fast", "reference")


def _profile_fingerprint(vm, elapsed):
    prof = vm.profiler
    assert prof is not None, "PISCES_PROFILE should have enabled profiling"
    acct = prof.accounting()
    cp = extract_critical_path(prof, elapsed=elapsed)
    return {
        "totals": sorted(acct.totals.items()),
        "by_task": sorted(acct.by_task.items()),
        "by_pe": sorted(acct.by_pe.items()),
        "busy_by_pe": sorted(acct.busy_by_pe.items()),
        "path": [(s.kind, s.start, s.end, s.label, s.pe, s.process)
                 for s in cp.segments],
        "elapsed": int(elapsed),
        "work": prof.total_work(),
    }


def _run(fn, env):
    saved = {}
    for k, v in env.items():
        saved[k] = os.environ.get(k)
        os.environ[k] = v
    try:
        r = fn()
        fp = _profile_fingerprint(r.vm, int(r.elapsed)) \
            if env.get("PISCES_PROFILE") else None
        r.vm.shutdown()
        return fp
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


@settings(max_examples=8, deadline=None)
@given(app=st.sampled_from(range(len(APPS))),
       window_path=st.sampled_from(WINDOW_PATHS))
def test_profile_is_dispatcher_and_window_path_independent(
        app, window_path, tmp_path_factory):
    name, fn = APPS[app]
    base = {"PISCES_PROFILE": "1", "PISCES_WINDOW_PATH": window_path}

    indexed = _run(fn, {**base, "PISCES_DISPATCHER": "indexed"})
    scan = _run(fn, {**base, "PISCES_DISPATCHER": "scan"})
    assert indexed == scan, (
        f"{name}/{window_path}: profile diverged between dispatchers")

    # The profiler's prof_hook is execution-core-agnostic: the coop
    # core must reproduce the threaded core's profile bit for bit.
    coop = _run(fn, {**base, "PISCES_DISPATCHER": "indexed",
                     "PISCES_EXEC_CORE": "coop"})
    assert coop == indexed, (
        f"{name}/{window_path}: profile diverged between execution cores")

    # Record WITHOUT the profiler, replay WITH it: the profile of the
    # replay must reproduce the profiled originals bit for bit.
    psched = tmp_path_factory.mktemp("psched") / f"{name}.psched"
    _run(fn, {"PISCES_DISPATCHER": "indexed",
              "PISCES_WINDOW_PATH": window_path,
              "PISCES_RECORD_SCHEDULE": str(psched)})
    assert psched.exists(), "recorder did not autosave at shutdown"
    replayed = _run(fn, {**base, "PISCES_DISPATCHER": "replay",
                         "PISCES_REPLAY_SCHEDULE": str(psched)})
    assert replayed == indexed, (
        f"{name}/{window_path}: replayed profile diverged from original")
