"""Property-based tests: window geometry, packed sizes, and the
generation-validated window cache (PR 4's data plane)."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.sizes import message_bytes, packed_size
from repro.core.taskid import TaskId
from repro.core.windows import (
    WRITE_HISTORY,
    ArrayStore,
    WindowCache,
    WindowTxn,
    bounds_overlap,
    make_window,
)
from repro.errors import WindowError

OWNER = TaskId(1, 1, 1)

shapes = st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                  max_size=3).map(tuple)


@st.composite
def window_and_subregion(draw):
    shape = draw(shapes)
    base = np.zeros(shape)
    w = make_window(OWNER, "A", base)
    sub = []
    for n in shape:
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=a + 1, max_value=n))
        sub.append((a, b))
    return w, tuple(sub), shape


@given(window_and_subregion())
@settings(max_examples=200, deadline=None)
def test_shrink_always_contained(data):
    w, sub, shape = data
    inner = w.shrink(sub)
    assert w.contains(inner)
    assert inner.size <= w.size
    for (a, b), n in zip(inner.bounds, shape):
        assert 0 <= a < b <= n


@given(window_and_subregion())
@settings(max_examples=200, deadline=None)
def test_double_shrink_composes(data):
    w, sub, shape = data
    inner = w.shrink(sub)
    # shrinking the inner window to its own full extent is the identity
    again = inner.shrink(tuple((0, b - a) for a, b in inner.bounds))
    assert again == inner


@given(shapes, st.integers(min_value=1, max_value=10))
@settings(max_examples=200, deadline=None)
def test_split_partitions_axis_exactly(shape, parts):
    base = np.zeros(shape)
    w = make_window(OWNER, "A", base)
    assume(parts <= shape[0])
    pieces = w.split(parts, axis=0)
    assert len(pieces) == parts
    # contiguity and coverage along axis 0
    assert pieces[0].bounds[0][0] == 0
    assert pieces[-1].bounds[0][1] == shape[0]
    for p, q in zip(pieces, pieces[1:]):
        assert p.bounds[0][1] == q.bounds[0][0]
        assert not p.overlaps(q)
    assert sum(p.size for p in pieces) == w.size


@given(st.lists(st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
    st.booleans(),
), max_size=8))
@settings(max_examples=200, deadline=None)
def test_packed_size_positive_and_message_bytes_monotone(args):
    sizes = [packed_size(a) for a in args]
    assert all(s >= 4 or isinstance(a, (int, float))
               for s, a in zip(sizes, args))
    assert all(s > 0 for s in sizes)
    total, npackets = message_bytes(tuple(args))
    bigger, npk2 = message_bytes(tuple(args) + (np.zeros(100),))
    assert bigger > total or npackets == npk2
    assert bigger >= total


# ------------------------------------------- cache / generation plane --

DIM = 8

sub_bounds = st.tuples(
    st.tuples(st.integers(0, DIM - 1), st.integers(1, DIM)),
    st.tuples(st.integers(0, DIM - 1), st.integers(1, DIM)),
).map(lambda bs: tuple((min(a, b - 1), max(a + 1, b)) for a, b in bs))

write_sequences = st.lists(sub_bounds, min_size=0, max_size=100)


@given(write_sequences, sub_bounds, st.integers(min_value=0, max_value=100))
@settings(max_examples=200, deadline=None)
def test_changed_since_never_false_negative(writes, query, observed_at):
    """changed_since may over-report (conservative miss after history
    truncation) but must NEVER under-report: if any write newer than the
    observed generation overlaps the query, it must say changed."""
    store = ArrayStore(OWNER)
    store.export("A", np.zeros((DIM, DIM)))
    log = []
    for b in writes:
        w = make_window(OWNER, "A", store.get("A"), b)
        store.write(w, np.ones(w.shape), ticks=0)
        log.append((store.generation("A"), b))

    gen = min(observed_at, store.generation("A"))
    model_changed = any(g > gen and bounds_overlap(b, query)
                        for g, b in log)
    got = store.changed_since("A", query, gen)
    if model_changed:
        assert got
    # with an untruncated history the answer is exact
    if len(writes) <= WRITE_HISTORY:
        assert got == model_changed


@given(st.lists(sub_bounds, min_size=1, max_size=12), sub_bounds)
@settings(max_examples=200, deadline=None)
def test_cache_invalidation_removes_exactly_overlaps(cached, written):
    base = np.zeros((DIM, DIM))
    cache = WindowCache()
    windows = [make_window(OWNER, "A", base, b) for b in cached]
    for w in windows:
        cache.store(w, generation=1, data=np.zeros(w.shape))
    wr = make_window(OWNER, "A", base, written)
    cache.invalidate_overlapping(wr)
    for w in windows:
        entry = cache.lookup(w)
        if bounds_overlap(w.bounds, wr.bounds):
            assert entry is None
        else:
            assert entry is not None


@st.composite
def rw_programs(draw):
    """A random interleaving of reads and writes on one shared array."""
    n = draw(st.integers(min_value=1, max_value=30))
    ops = []
    for _ in range(n):
        kind = draw(st.sampled_from(["read", "write"]))
        ops.append((kind, draw(sub_bounds)))
    return ops


@given(rw_programs())
@settings(max_examples=150, deadline=None)
def test_validated_cache_never_serves_stale_data(ops):
    """The gold invariant: whenever the owner validates a reader's
    cached generation ("valid" reply), the cached block is bit-identical
    to the live array content -- a stale block is never revalidated."""
    store = ArrayStore(OWNER)
    store.export("A", np.zeros((DIM, DIM)))
    base = store.get("A")
    cache = WindowCache()
    fill = 1.0
    for kind, b in ops:
        w = make_window(OWNER, "A", base, b)
        if kind == "write":
            store.write(w, np.full(w.shape, fill), ticks=0)
            cache.invalidate_overlapping(w)
            fill += 1.0
            continue
        entry = cache.lookup(w)
        txn = WindowTxn(
            op="read", window=w,
            cached_generation=entry[0] if entry else None)
        reply = store.serve_txn(txn, ticks=0)
        if reply.status == "valid":
            assert np.array_equal(entry[1], base[w.slices()])
        else:
            assert reply.status == "data"
            assert np.array_equal(reply.data, base[w.slices()])
            cache.store(w, reply.generation, np.array(reply.data))
