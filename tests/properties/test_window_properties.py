"""Property-based tests: window geometry and packed sizes."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.sizes import message_bytes, packed_size
from repro.core.taskid import TaskId
from repro.core.windows import make_window
from repro.errors import WindowError

OWNER = TaskId(1, 1, 1)

shapes = st.lists(st.integers(min_value=1, max_value=40), min_size=1,
                  max_size=3).map(tuple)


@st.composite
def window_and_subregion(draw):
    shape = draw(shapes)
    base = np.zeros(shape)
    w = make_window(OWNER, "A", base)
    sub = []
    for n in shape:
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=a + 1, max_value=n))
        sub.append((a, b))
    return w, tuple(sub), shape


@given(window_and_subregion())
@settings(max_examples=200, deadline=None)
def test_shrink_always_contained(data):
    w, sub, shape = data
    inner = w.shrink(sub)
    assert w.contains(inner)
    assert inner.size <= w.size
    for (a, b), n in zip(inner.bounds, shape):
        assert 0 <= a < b <= n


@given(window_and_subregion())
@settings(max_examples=200, deadline=None)
def test_double_shrink_composes(data):
    w, sub, shape = data
    inner = w.shrink(sub)
    # shrinking the inner window to its own full extent is the identity
    again = inner.shrink(tuple((0, b - a) for a, b in inner.bounds))
    assert again == inner


@given(shapes, st.integers(min_value=1, max_value=10))
@settings(max_examples=200, deadline=None)
def test_split_partitions_axis_exactly(shape, parts):
    base = np.zeros(shape)
    w = make_window(OWNER, "A", base)
    assume(parts <= shape[0])
    pieces = w.split(parts, axis=0)
    assert len(pieces) == parts
    # contiguity and coverage along axis 0
    assert pieces[0].bounds[0][0] == 0
    assert pieces[-1].bounds[0][1] == shape[0]
    for p, q in zip(pieces, pieces[1:]):
        assert p.bounds[0][1] == q.bounds[0][0]
        assert not p.overlaps(q)
    assert sum(p.size for p in pieces) == w.size


@given(st.lists(st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=30),
    st.booleans(),
), max_size=8))
@settings(max_examples=200, deadline=None)
def test_packed_size_positive_and_message_bytes_monotone(args):
    sizes = [packed_size(a) for a in args]
    assert all(s >= 4 or isinstance(a, (int, float))
               for s, a in zip(sizes, args))
    assert all(s > 0 for s in sizes)
    total, npackets = message_bytes(tuple(args))
    bigger, npk2 = message_bytes(tuple(args) + (np.zeros(100),))
    assert bigger > total or npackets == npk2
    assert bigger >= total
