"""Property-based tests: loop partitioning and self-scheduling."""

from hypothesis import given, settings, strategies as st

from repro.core.loops import SelfSchedCounter


def presched_indices(member: int, size: int, n: int):
    """Pure mirror of the PRESCHED rule for property checking."""
    return list(range(member, n, size))


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_presched_partition_complete_and_disjoint(n, size):
    """Every iteration is executed by exactly one member."""
    seen = {}
    for m in range(size):
        for i in presched_indices(m, size, n):
            assert i not in seen, f"iteration {i} assigned twice"
            seen[i] = m
    assert sorted(seen) == list(range(n))


@given(st.integers(min_value=0, max_value=500),
       st.integers(min_value=1, max_value=32))
@settings(max_examples=200, deadline=None)
def test_presched_balance_within_one_iteration(n, size):
    """Member loads differ by at most one iteration."""
    loads = [len(presched_indices(m, size, n)) for m in range(size)]
    assert max(loads) - min(loads) <= 1


@given(st.integers(min_value=0, max_value=300),
       st.integers(min_value=1, max_value=16),
       st.randoms())
@settings(max_examples=150, deadline=None)
def test_selfsched_counter_covers_each_index_once(n, size, rnd):
    """Whatever interleaving of member fetches occurs, every index is
    handed out exactly once and then the counter reports exhaustion."""
    counter = SelfSchedCounter(n)
    members = list(range(size))
    handed = []
    active = set(members)
    while active:
        m = rnd.choice(sorted(active))
        i = counter.fetch(m)
        if i < 0:
            active.discard(m)
        else:
            handed.append(i)
    assert sorted(handed) == list(range(n))
    assert sum(counter.executed.values()) == n


@given(st.integers(min_value=1, max_value=200))
@settings(max_examples=50, deadline=None)
def test_selfsched_single_member_gets_everything(n):
    c = SelfSchedCounter(n)
    got = []
    while (i := c.fetch(0)) >= 0:
        got.append(i)
    assert got == list(range(n))
