"""Property-based tests: taskids, accept state, configuration files."""

from hypothesis import given, settings, strategies as st

from repro.config import files
from repro.config.configuration import ClusterSpec, Configuration
from repro.core.accept import ALL_RECEIVED, AcceptState, normalize_specs
from repro.core.messages import Message
from repro.core.taskid import TaskId

# --------------------------------------------------------------- taskids --

taskids = st.builds(TaskId,
                    cluster=st.integers(min_value=0, max_value=99),
                    slot=st.integers(min_value=-2, max_value=16),
                    unique=st.integers(min_value=0, max_value=10**6))


@given(taskids)
@settings(max_examples=200, deadline=None)
def test_taskid_text_roundtrip(tid):
    assert TaskId.parse(str(tid)) == tid


# ---------------------------------------------------------- accept state --

type_names = st.sampled_from(["A", "B", "C", "D"])


@st.composite
def spec_and_stream(draw):
    n_types = draw(st.integers(min_value=1, max_value=4))
    names = ["A", "B", "C", "D"][:n_types]
    per_type = []
    for nm in names:
        c = draw(st.one_of(st.integers(min_value=0, max_value=5),
                           st.just("ALL")))
        per_type.append((nm, ALL_RECEIVED if c == "ALL" else c))
    stream = draw(st.lists(st.sampled_from(names + ["Z"]), max_size=30))
    return per_type, stream


@given(spec_and_stream())
@settings(max_examples=300, deadline=None)
def test_accept_state_never_overshoots(data):
    per_type, stream = data
    spec = normalize_specs(tuple(per_type), None)
    state = AcceptState(spec)
    for i, mtype in enumerate(stream):
        if state.wants(mtype):
            state.take(Message(mtype=mtype, args=(), sender=TaskId(1, 1, 1),
                               receiver=TaskId(1, 1, 1), send_time=i,
                               arrival_time=i))
    by = state.result.by_type()
    for nm, want in per_type:
        if want is not ALL_RECEIVED:
            assert by.get(nm, 0) <= want
    # Zero messages of unlisted types were ever taken.
    assert "Z" not in by
    # satisfied() is consistent with the per-type demands.
    if state.satisfied():
        for nm, want in per_type:
            if want is not ALL_RECEIVED:
                assert by.get(nm, 0) >= want or want == 0 or \
                    stream.count(nm) < want


@given(st.integers(min_value=0, max_value=10),
       st.lists(st.sampled_from(["A", "B"]), max_size=30))
@settings(max_examples=200, deadline=None)
def test_total_count_mode_takes_exactly_min(n, stream):
    spec = normalize_specs(("A", "B"), n)
    state = AcceptState(spec)
    for i, mtype in enumerate(stream):
        if state.wants(mtype):
            state.take(Message(mtype=mtype, args=(), sender=TaskId(1, 1, 1),
                               receiver=TaskId(1, 1, 1), send_time=i,
                               arrival_time=i))
    assert state.result.count == min(n, len(stream))


# ----------------------------------------------------------- config files --

cluster_specs = st.builds(
    ClusterSpec,
    number=st.integers(min_value=1, max_value=18),
    primary_pe=st.integers(min_value=3, max_value=20),
    slots=st.integers(min_value=1, max_value=16),
    secondary_pes=st.lists(st.integers(min_value=3, max_value=20),
                           max_size=5, unique=True).map(tuple),
)


@st.composite
def configurations(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    specs = []
    numbers = draw(st.lists(st.integers(min_value=1, max_value=18),
                            min_size=n, max_size=n, unique=True))
    primaries = draw(st.lists(st.integers(min_value=3, max_value=20),
                              min_size=n, max_size=n, unique=True))
    for num, pe in zip(numbers, primaries):
        sec = draw(st.lists(
            st.integers(min_value=3, max_value=20).filter(lambda p: p != pe),
            max_size=4, unique=True).map(tuple))
        specs.append(ClusterSpec(number=num, primary_pe=pe,
                                 slots=draw(st.integers(1, 16)),
                                 secondary_pes=sec))
    return Configuration(
        clusters=tuple(sorted(specs, key=lambda s: s.number)),
        time_limit=draw(st.one_of(st.none(),
                                  st.integers(min_value=1,
                                              max_value=10**9))),
        name=draw(st.text(
            alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd")),
            min_size=1, max_size=12)))


@given(configurations())
@settings(max_examples=150, deadline=None)
def test_configuration_file_roundtrip(cfg):
    assert files.loads(files.dumps(cfg)) == cfg
