"""The ``.pckpt`` bundle format: round-trips, corruption detection,
and latest-valid discovery."""

import json

import pytest

from repro.checkpoint.format import (
    checkpoint_filename,
    dumps_bundle,
    find_latest_checkpoint,
    load_bundle,
    parse_bundle,
    write_bundle_atomic,
)
from repro.errors import CheckpointError, CheckpointFormatError, PiscesError

MANIFEST = {"format": 1, "now": 1234, "app": {"tasktype": "MAIN",
                                             "args": [3, "x"]}}
STATE = {"now": 1234, "clocks": {"3": 1200, "4": 1234},
         "rng": {"run": 17}}
PSCHED = "#psched 1\nmeta app=MAIN\nP 0:ctrl 1:main\nD 0:0 1:40\n"


class TestRoundTrip:
    def test_dumps_parse_round_trip(self):
        text = dumps_bundle(MANIFEST, STATE, PSCHED)
        m, s, p = parse_bundle(text)
        assert m == json.loads(json.dumps(MANIFEST))
        assert s == json.loads(json.dumps(STATE))
        assert p == PSCHED

    def test_file_round_trip(self, tmp_path):
        target = tmp_path / "a.pckpt"
        write_bundle_atomic(target, dumps_bundle(MANIFEST, STATE, PSCHED))
        m, s, p = load_bundle(target)
        assert m["app"]["tasktype"] == "MAIN"
        assert p == PSCHED
        # Atomic write leaves no temp droppings.
        assert [f.name for f in tmp_path.iterdir()] == ["a.pckpt"]

    def test_empty_psched_round_trips(self):
        m, s, p = parse_bundle(dumps_bundle(MANIFEST, STATE, ""))
        assert p == ""

    def test_bundle_is_deterministic(self):
        assert (dumps_bundle(MANIFEST, STATE, PSCHED)
                == dumps_bundle(dict(MANIFEST), dict(STATE), PSCHED))


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(CheckpointFormatError):
            parse_bundle("#wrong 1\nmeta {}\n")

    def test_truncated_no_checksum(self):
        text = dumps_bundle(MANIFEST, STATE, PSCHED)
        body = "\n".join(text.splitlines()[:-1]) + "\n"
        with pytest.raises(CheckpointFormatError, match="truncated"):
            parse_bundle(body)

    def test_torn_write_detected(self):
        # A file cut mid-body keeps neither its tail lines nor a valid
        # sum; re-attaching the old #sum line must also fail.
        text = dumps_bundle(MANIFEST, STATE, PSCHED)
        lines = text.splitlines()
        torn = "\n".join(lines[:2] + [lines[-1]]) + "\n"
        with pytest.raises(CheckpointFormatError):
            parse_bundle(torn)

    def test_tampered_byte_detected(self):
        text = dumps_bundle(MANIFEST, STATE, PSCHED)
        bad = text.replace('"now":1234', '"now":1235', 1)
        with pytest.raises(CheckpointFormatError, match="checksum"):
            parse_bundle(bad)

    def test_missing_state_line(self):
        import zlib
        body = "#pckpt 1\nmeta {}\n"
        text = body + f"#sum {zlib.adler32(body.encode())}\n"
        with pytest.raises(CheckpointFormatError, match="incomplete"):
            parse_bundle(text)

    def test_checkpoint_errors_are_pisces_errors(self):
        assert issubclass(CheckpointFormatError, CheckpointError)
        assert issubclass(CheckpointError, PiscesError)


class TestFindLatest:
    def _write(self, tmp_path, tick, seq, text=None):
        p = tmp_path / checkpoint_filename(tick, seq)
        p.write_text(text if text is not None
                     else dumps_bundle(MANIFEST, STATE, PSCHED))
        return p

    def test_empty_directory(self, tmp_path):
        assert find_latest_checkpoint(tmp_path) is None

    def test_picks_lexically_latest(self, tmp_path):
        self._write(tmp_path, 1000, 5)
        newest = self._write(tmp_path, 2000, 9)
        assert find_latest_checkpoint(tmp_path) == newest

    def test_skips_torn_newest(self, tmp_path):
        ok = self._write(tmp_path, 1000, 5)
        self._write(tmp_path, 2000, 9,
                    text="#pckpt 1\nmeta {\"cut mid-write")
        assert find_latest_checkpoint(tmp_path) == ok

    def test_all_invalid(self, tmp_path):
        self._write(tmp_path, 1000, 5, text="junk")
        assert find_latest_checkpoint(tmp_path) is None

    def test_filename_sorts_by_tick_then_dispatch(self):
        names = [checkpoint_filename(9, 100), checkpoint_filename(10, 2),
                 checkpoint_filename(10, 11)]
        assert names == sorted(names)
