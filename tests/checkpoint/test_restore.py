"""Checkpoint capture, periodic policy, and bit-identical restore."""

import json
from dataclasses import replace

import pytest

from repro import PARENT, TaskRegistry, simple_configuration
from repro.api import make_vm, restore_vm
from repro.checkpoint import checkpoint_vm, find_latest_checkpoint, load_bundle
from repro.core.tracing import TraceEventType
from repro.errors import CheckpointError

ALL_TRACE = tuple(t.value for t in TraceEventType)
BOTH_CORES = pytest.mark.parametrize("core", ["threaded", "coop"])


def build_registry():
    reg = TaskRegistry()

    @reg.tasktype("WORKER")
    def worker(ctx, n):
        total = 0
        for i in range(n):
            total += i * i
        ctx.send(PARENT, "DONE", total)

    @reg.tasktype("MAIN")
    def main(ctx):
        for i in range(6):
            ctx.initiate("WORKER", 50 + i)
        acc = 0
        for _ in range(6):
            m = ctx.accept("DONE")
            acc += m.args[0]
        return acc

    return reg


def config(core, ckpt_dir=None, every=500, keep=3):
    return replace(
        simple_configuration(n_clusters=2, slots=4, name="ckpt-test"),
        exec_core=core, trace_events=ALL_TRACE,
        checkpoint_every=(every if ckpt_dir else 0),
        checkpoint_dir=str(ckpt_dir) if ckpt_dir else "",
        checkpoint_keep=keep)


def run(core, ckpt_dir=None, **cfg_kwargs):
    reg = build_registry()
    vm = make_vm(config=config(core, ckpt_dir, **cfg_kwargs), registry=reg)
    r = vm.run("MAIN")
    return r, [e.line() for e in vm.tracer.events]


@BOTH_CORES
class TestRestoreIdentity:
    def test_restore_resumes_bit_identically(self, core, tmp_path):
        base, base_trace = run(core)
        _, _ = run(core, ckpt_dir=tmp_path)
        latest = find_latest_checkpoint(tmp_path)
        assert latest is not None
        rr = restore_vm(latest, registry=build_registry())
        res = rr.resume()
        assert res.value == base.value
        assert res.elapsed == base.elapsed
        assert [e.line() for e in rr.vm.tracer.events] == base_trace

    def test_checkpointing_is_a_pure_observer(self, core, tmp_path):
        """Virtual time and the trace stream are bit-identical with
        checkpointing on and off."""
        base, base_trace = run(core)
        ck, ck_trace = run(core, ckpt_dir=tmp_path)
        assert ck.value == base.value
        assert ck.elapsed == base.elapsed
        assert ck_trace == base_trace
        assert ck.stats.checkpoints_written > 0
        assert ck.stats.checkpoint_bytes > 0

    def test_restored_run_rewrites_identical_bundles(self, core, tmp_path):
        """A restored run re-crosses the same checkpoint marks during
        replay and writes byte-identical bundles -- recovery composes
        across repeated crashes."""
        run(core, ckpt_dir=tmp_path)
        bundles = {p.name: p.read_bytes()
                   for p in tmp_path.glob("*.pckpt")}
        latest = find_latest_checkpoint(tmp_path)
        rr = restore_vm(latest, registry=build_registry())
        rr.resume()
        for name, original in bundles.items():
            rewritten = (tmp_path / name)
            assert rewritten.exists(), f"restored run did not re-mark {name}"
            assert rewritten.read_bytes() == original

    def test_restore_detects_wrong_task_code(self, core, tmp_path):
        """A registry whose kernel-visible behaviour diverges from the
        original run fails replay verification (ReplayDivergence is a
        PiscesError) instead of silently computing garbage."""
        from repro.errors import PiscesError
        run(core, ckpt_dir=tmp_path)
        wrong = TaskRegistry()

        @wrong.tasktype("WORKER")
        def worker(ctx, n):
            # Diverges structurally: two sends instead of one.
            ctx.send(PARENT, "DONE", n)
            ctx.send(PARENT, "DONE", n)

        @wrong.tasktype("MAIN")
        def main(ctx):
            for i in range(6):
                ctx.initiate("WORKER", 50 + i)
            acc = 0
            for _ in range(6):
                acc += ctx.accept("DONE").args[0]
            return acc

        rr = restore_vm(find_latest_checkpoint(tmp_path), registry=wrong)
        with pytest.raises(PiscesError):
            rr.resume()


class TestCaptureGuards:
    def test_checkpoint_before_run_raises(self, tmp_path):
        vm = make_vm(config=config("coop"), registry=build_registry())
        with pytest.raises(CheckpointError, match="vm.run"):
            checkpoint_vm(vm, tmp_path / "x.pckpt")
        vm.shutdown()

    def test_checkpoint_from_task_code_raises(self, tmp_path):
        reg = TaskRegistry()
        seen = {}

        @reg.tasktype("MAIN")
        def main(ctx):
            try:
                checkpoint_vm(ctx.vm, tmp_path / "x.pckpt")
            except CheckpointError as e:
                seen["err"] = str(e)

        vm = make_vm(config=config("threaded"), registry=reg)
        vm.run("MAIN")
        assert "between dispatches" in seen["err"]

    def test_checkpoint_without_recorder_raises(self, tmp_path):
        reg = build_registry()
        vm = make_vm(config=config("coop"), registry=reg)
        vm._run_request = ("MAIN", (), 1)
        if vm.engine.sched_hook is None:
            with pytest.raises(CheckpointError, match="decision stream"):
                checkpoint_vm(vm, tmp_path / "x.pckpt")
        vm.shutdown()


class TestPeriodicPolicy:
    def test_keep_prunes_old_bundles(self, tmp_path):
        r, _ = run("coop", ckpt_dir=tmp_path, every=300, keep=2)
        assert r.stats.checkpoints_written > 2
        assert len(list(tmp_path.glob("*.pckpt"))) == 2

    def test_env_var_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PISCES_CHECKPOINT", "500")
        monkeypatch.setenv("PISCES_CHECKPOINT_DIR", str(tmp_path))
        reg = build_registry()
        cfg = replace(simple_configuration(n_clusters=2, slots=4),
                      exec_core="coop")
        vm = make_vm(config=cfg, registry=reg)
        vm.run("MAIN")
        assert find_latest_checkpoint(tmp_path) is not None

    def test_marks_derive_from_virtual_time(self, tmp_path):
        """Each bundle lands in a distinct interval bucket of the
        virtual clock (the mark sequence is a pure function of the
        clock, never of pump count)."""
        run("coop", ckpt_dir=tmp_path, every=400, keep=50)
        ticks = sorted(int(p.name.split("-")[1])
                       for p in tmp_path.glob("*.pckpt"))
        assert len(ticks) >= 2
        buckets = [t // 400 for t in ticks]
        assert len(set(buckets)) == len(buckets)


class TestBundleContents:
    def test_manifest_and_state(self, tmp_path):
        run("coop", ckpt_dir=tmp_path)
        manifest, state, psched = load_bundle(
            find_latest_checkpoint(tmp_path))
        assert manifest["format"] == 1
        assert manifest["app"]["tasktype"] == "MAIN"
        assert manifest["exec_core"] == "coop"
        assert manifest["dispatcher"] in ("indexed", "scan")
        assert manifest["schedule_position"]["D"] > 0
        assert psched.startswith("#psched 1")
        assert state["now"] == manifest["now"]
        assert state["procs"], "no process snapshots"
        assert state["tasks"], "no task snapshots"
        # The whole bundle is JSON-stable.
        json.dumps(manifest)
        json.dumps(state)

    def test_export_manifest_records_cursor_positions(self, tmp_path):
        """export_run manifests carry the fault-plan cursor and the
        schedule position at export time."""
        from repro.faults import FaultPlan, MessagePolicy
        from repro.obs.export import run_manifest

        reg = build_registry()
        plan = FaultPlan(seed=5, name="cursor",
                         messages=MessagePolicy(delay=0.2, delay_ticks=300))
        vm = make_vm(config=config("coop", tmp_path), registry=reg,
                     fault_plan=plan)
        vm.run("MAIN")
        m = run_manifest(vm)
        assert m["fault_plan_cursor"]["events_recorded"] == len(
            vm.faults.events)
        assert set(m["fault_plan_cursor"]) >= {"timed_fired",
                                               "timed_pending",
                                               "rng_digest"}
        assert m["schedule_position"]["D"] > 0
