"""Unit tests: the FLEX/32 machine model and presets."""

import pytest

from repro.errors import BadPE
from repro.flex.machine import FlexMachine, MachineSpec, MBYTE
from repro.flex.presets import nasa_langley_flex32, small_flex


class TestMachineSpec:
    def test_nasa_inventory_matches_section_11(self):
        m = nasa_langley_flex32()
        assert m.spec.n_pes == 20
        assert m.spec.local_memory_bytes == MBYTE
        assert m.spec.shared_memory_bytes == int(2.25 * MBYTE)
        assert m.spec.unix_pes == (1, 2)
        assert m.spec.disk_pes == (1, 2)

    def test_mmos_pes_are_3_through_20(self):
        m = nasa_langley_flex32()
        assert m.mmos_pes() == list(range(3, 21))

    def test_pe_numbering_validated(self):
        m = small_flex(6)
        with pytest.raises(BadPE):
            m.pe(0)
        with pytest.raises(BadPE):
            m.pe(7)

    def test_unix_pes_rejected_for_user_tasks(self):
        m = small_flex(6)
        with pytest.raises(BadPE):
            m.validate_user_pe(1)
        assert m.validate_user_pe(3) == 3

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            MachineSpec(n_pes=0)
        with pytest.raises(ValueError):
            MachineSpec(n_pes=4, unix_pes=(9,))

    def test_small_flex_requires_three_pes(self):
        with pytest.raises(ValueError):
            small_flex(2)


class TestProcessingElement:
    def test_boot_and_reboot_clear_local_memory(self):
        m = small_flex(6)
        pe = m.pe(3)
        pe.local.load("code", 1000)
        pe.boot()
        assert pe.booted
        pe.reboot()
        assert not pe.booted
        assert pe.local.resident_bytes() == 0

    def test_disk_flags(self):
        m = nasa_langley_flex32()
        assert m.pe(1).has_disk and m.pe(2).has_disk
        assert not m.pe(3).has_disk


class TestMemoryReport:
    def test_report_mentions_shared_and_loaded_pes(self):
        m = small_flex(6)
        m.shared.alloc(100, tag="message")
        m.pe(3).local.load("code", 10)
        m.pe(3).boot()
        rep = m.memory_report()
        assert "shared:" in rep
        assert "[message] 100 bytes" in rep
        assert "PE  3 local: 10 bytes" in rep
