"""Unit tests: the shared-memory heap allocator and local memories."""

import pytest

from repro.errors import BadFree, OutOfMemory
from repro.flex.memory import (
    Allocation,
    BLOCK_HEADER_BYTES,
    HeapAllocator,
    LocalMemory,
)


class TestHeapAllocator:
    def test_alloc_returns_payload_address_past_header(self):
        h = HeapAllocator(1024)
        a = h.alloc(100)
        assert a.addr == BLOCK_HEADER_BYTES
        assert a.size == 100

    def test_alloc_accounts_payload_and_overhead(self):
        h = HeapAllocator(1024)
        h.alloc(100)
        assert h.stats.live_bytes == 100
        assert h.stats.live_overhead == BLOCK_HEADER_BYTES
        assert h.stats.live_total == 100 + BLOCK_HEADER_BYTES

    def test_free_returns_all_bytes(self):
        h = HeapAllocator(1024)
        a = h.alloc(100)
        h.free(a)
        assert h.stats.live_total == 0
        assert h.free_regions() == [(0, 1024)]

    def test_sequential_allocs_are_adjacent(self):
        h = HeapAllocator(1024)
        a = h.alloc(16)
        b = h.alloc(16)
        assert b.addr == a.addr + 16 + BLOCK_HEADER_BYTES

    def test_free_coalesces_with_both_neighbours(self):
        h = HeapAllocator(1024)
        a, b, c = h.alloc(32), h.alloc(32), h.alloc(32)
        h.free(a)
        h.free(c)                            # c merges with the tail
        assert len(h.free_regions()) == 2    # left hole + merged tail
        h.free(b)                            # joins everything
        assert h.free_regions() == [(0, 1024)]
        h.check_invariants()

    def test_first_fit_reuses_freed_hole(self):
        h = HeapAllocator(1024)
        a = h.alloc(64)
        h.alloc(64)
        h.free(a)
        c = h.alloc(32)
        assert c.addr == a.addr   # the hole at the front is reused

    def test_out_of_memory_raises_and_counts(self):
        h = HeapAllocator(128)
        with pytest.raises(OutOfMemory) as ei:
            h.alloc(1024)
        assert ei.value.requested == 1024
        assert h.stats.failed_allocs == 1

    def test_oom_reports_largest_satisfiable(self):
        h = HeapAllocator(128)
        with pytest.raises(OutOfMemory) as ei:
            h.alloc(1000)
        assert ei.value.available == 128 - BLOCK_HEADER_BYTES

    def test_exhaustion_then_recovery(self):
        h = HeapAllocator(10 * (50 + BLOCK_HEADER_BYTES))
        allocs = [h.alloc(50) for _ in range(10)]
        with pytest.raises(OutOfMemory):
            h.alloc(50)
        for a in allocs:
            h.free(a)
        assert h.alloc(50).size == 50

    def test_double_free_raises(self):
        h = HeapAllocator(1024)
        a = h.alloc(10)
        h.free(a)
        with pytest.raises(BadFree):
            h.free(a)

    def test_free_of_unknown_address_raises(self):
        h = HeapAllocator(1024)
        with pytest.raises(BadFree):
            h.free(12345)

    def test_high_water_tracks_peak_not_current(self):
        h = HeapAllocator(1024)
        a = h.alloc(200)
        peak = h.stats.live_total
        h.free(a)
        h.alloc(10)
        assert h.stats.high_water == peak

    def test_tags_breakdown(self):
        h = HeapAllocator(4096)
        h.alloc(100, tag="message")
        h.alloc(50, tag="message")
        h.alloc(30, tag="system_table")
        by = h.live_bytes_by_tag()
        assert by == {"message": 150, "system_table": 30}

    def test_zero_size_alloc_is_legal(self):
        h = HeapAllocator(1024)
        a = h.alloc(0)
        assert a.size == 0
        h.free(a)
        assert h.free_regions() == [(0, 1024)]

    def test_negative_alloc_rejected(self):
        h = HeapAllocator(1024)
        with pytest.raises(ValueError):
            h.alloc(-1)

    def test_fragmentation_zero_when_one_region(self):
        h = HeapAllocator(1024)
        assert h.fragmentation() == 0.0

    def test_fragmentation_positive_when_holey(self):
        h = HeapAllocator(1024)
        a = h.alloc(64)
        h.alloc(64)
        h.free(a)
        assert h.fragmentation() > 0.0

    def test_live_allocations_sorted_by_address(self):
        h = HeapAllocator(1024)
        allocs = [h.alloc(8) for _ in range(5)]
        live = list(h.live_allocations())
        assert [a.addr for a in live] == sorted(a.addr for a in allocs)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            HeapAllocator(0)

    def test_utilization_fraction(self):
        h = HeapAllocator(1000)
        h.alloc(492)  # + 8 header = 500
        assert h.stats.utilization == pytest.approx(0.5)


class TestLocalMemory:
    def test_load_and_fraction(self):
        lm = LocalMemory(1000, pe=3)
        lm.load("kernel", 250)
        lm.load("user", 250)
        assert lm.resident_bytes() == 500
        assert lm.fraction_used() == pytest.approx(0.5)
        assert lm.fraction_used(["kernel"]) == pytest.approx(0.25)

    def test_load_accumulates_per_category(self):
        lm = LocalMemory(1000, pe=3)
        lm.load("code", 100)
        lm.load("code", 50)
        assert lm.resident_bytes("code") == 150

    def test_overflow_raises(self):
        lm = LocalMemory(100, pe=3)
        with pytest.raises(OutOfMemory):
            lm.load("big", 101)

    def test_unload_releases(self):
        lm = LocalMemory(100, pe=3)
        lm.load("x", 60)
        assert lm.unload("x") == 60
        assert lm.resident_bytes() == 0
        assert lm.unload("x") == 0

    def test_negative_load_rejected(self):
        lm = LocalMemory(100, pe=3)
        with pytest.raises(ValueError):
            lm.load("x", -5)
