"""Unit tests: PE clocks and the clock bank."""

import pytest

from repro.flex.clock import ClockBank, PEClock


class TestPEClock:
    def test_run_advances_and_counts_busy(self):
        c = PEClock(3)
        end = c.run(0, 100)
        assert end == 100
        assert c.ticks == 100
        assert c.busy_ticks == 100

    def test_run_with_idle_gap(self):
        c = PEClock(3)
        c.run(0, 50)
        c.run(120, 30)      # idle 50..120
        assert c.ticks == 150
        assert c.busy_ticks == 80

    def test_advance_to_never_goes_backwards(self):
        c = PEClock(3)
        c.run(0, 100)
        c.advance_to(40)
        assert c.ticks == 100

    def test_negative_cost_rejected(self):
        c = PEClock(3)
        with pytest.raises(ValueError):
            c.run(0, -1)

    def test_utilization(self):
        c = PEClock(3)
        c.run(0, 25)
        assert c.utilization(100) == pytest.approx(0.25)
        assert c.utilization(0) == 0.0


class TestClockBank:
    def test_elapsed_is_max_over_pes(self):
        bank = ClockBank([1, 2, 3])
        bank[1].run(0, 10)
        bank[3].run(0, 99)
        assert bank.elapsed() == 99

    def test_empty_bank_elapsed_zero(self):
        assert ClockBank([]).elapsed() == 0

    def test_utilizations_use_common_horizon(self):
        bank = ClockBank([1, 2])
        bank[1].run(0, 100)
        bank[2].run(0, 50)
        u = bank.utilizations()
        assert u[1] == pytest.approx(1.0)
        assert u[2] == pytest.approx(0.5)

    def test_snapshot_and_contains(self):
        bank = ClockBank([4, 5])
        bank[4].run(0, 7)
        assert bank.snapshot() == {4: 7, 5: 0}
        assert 4 in bank and 9 not in bank
