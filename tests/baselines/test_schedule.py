"""Unit tests: the SCHEDULE-style baseline."""

import pytest

from repro.baselines.schedule import (
    DISPATCH_COST,
    ScheduleProgram,
    ScheduleRunner,
)
from repro.baselines.seq import run_program_serial, run_serial_ticks
from repro.errors import PiscesError


def diamond(cost=100):
    """a -> (b, c) -> d."""
    p = ScheduleProgram()
    p.unit("a", cost)
    p.unit("b", cost, deps=["a"])
    p.unit("c", cost, deps=["a"])
    p.unit("d", cost, deps=["b", "c"])
    return p


class TestProgram:
    def test_critical_path_and_work(self):
        p = diamond(100)
        assert p.critical_path() == 300
        assert p.total_work() == 400

    def test_duplicate_unit_rejected(self):
        p = ScheduleProgram().unit("a", 1)
        with pytest.raises(PiscesError):
            p.unit("a", 1)

    def test_dep_on_undeclared_rejected(self):
        with pytest.raises(PiscesError):
            ScheduleProgram().unit("b", 1, deps=["a"])

    def test_cycle_detected(self):
        # Cycles cannot be built through the declaration API (deps must
        # pre-exist), so test the detector directly.
        p = ScheduleProgram()
        p.unit("a", 1)
        p.unit("b", 1, deps=["a"])
        p._units["a"].deps = ("b",)
        with pytest.raises(PiscesError, match="cycle"):
            p._topo_order()

    def test_negative_cost_rejected(self):
        with pytest.raises(PiscesError):
            ScheduleProgram().unit("a", -1)


class TestRunner:
    def test_respects_dependencies(self):
        p = diamond()
        res = ScheduleRunner(p, n_pes=2).run()
        u = res.units
        assert u["a"].end <= u["b"].start
        assert u["a"].end <= u["c"].start
        assert max(u["b"].end, u["c"].end) <= u["d"].start

    def test_two_pes_overlap_the_diamond_middle(self):
        p = diamond(100)
        r1 = ScheduleRunner(diamond(100), n_pes=1).run()
        r2 = ScheduleRunner(p, n_pes=2).run()
        assert r2.elapsed < r1.elapsed
        # lower bounds: critical path and work/PEs
        assert r2.elapsed >= r2.critical_path
        assert r1.elapsed >= r1.total_work

    def test_unit_functions_executed(self):
        ran = []
        p = ScheduleProgram()
        p.unit("a", 10, fn=lambda: ran.append("a"))
        p.unit("b", 10, deps=["a"], fn=lambda: ran.append("b"))
        ScheduleRunner(p, n_pes=2).run()
        assert ran == ["a", "b"]

    def test_wide_fanout_scales(self):
        def wide(n):
            p = ScheduleProgram()
            p.unit("root", 10)
            for i in range(12):
                p.unit(f"w{i}", 200, deps=["root"])
            return p

        e1 = ScheduleRunner(wide(12), n_pes=1).run().elapsed
        e4 = ScheduleRunner(wide(12), n_pes=4).run().elapsed
        assert e4 < e1 / 2.5

    def test_determinism(self):
        r1 = ScheduleRunner(diamond(), n_pes=3).run()
        r2 = ScheduleRunner(diamond(), n_pes=3).run()
        assert r1.elapsed == r2.elapsed
        assert {n: u.pe for n, u in r1.units.items()} == \
               {n: u.pe for n, u in r2.units.items()}

    def test_too_many_workers_for_machine_rejected(self):
        from repro.flex.presets import small_flex
        with pytest.raises(PiscesError):
            ScheduleRunner(diamond(), n_pes=10, machine=small_flex(6))
        with pytest.raises(PiscesError):
            ScheduleRunner(diamond(), n_pes=0)

    def test_pe_busy_accounting(self):
        res = ScheduleRunner(diamond(100), n_pes=2).run()
        assert sum(res.pe_busy.values()) >= res.total_work


class TestSerialBaseline:
    def test_serial_ticks_sum(self):
        assert run_serial_ticks([100, 200, 300]) == 600

    def test_program_serial_equals_total_work(self):
        p = diamond(50)
        assert run_program_serial(p) == p.total_work()
