"""Stress tests: barrier generations under asymmetric member timing."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration


def force_cfg(n_secondary):
    return Configuration(clusters=(
        ClusterSpec(1, 3, 2, secondary_pes=tuple(range(4, 4 + n_secondary))),),
        name="bstress")


class TestBarrierStress:
    @pytest.mark.parametrize("size,rounds", [(2, 25), (4, 15), (8, 10)])
    def test_many_generations_with_skewed_arrivals(self, make_vm, registry,
                                                   size, rounds):
        """Members arrive at each barrier in wildly different orders
        (cost depends on member and round); the generation protocol must
        deliver exactly one body execution per round and perfect
        phase alignment."""

        def region(m):
            blk = m.common("S")
            for r in range(rounds):
                # skew: a different member is slowest each round
                m.compute(10 + 200 * ((m.member + r) % m.force_size == 0))
                before = int(blk.gen[()])
                assert before == r, f"member {m.member} entered round " \
                                    f"{r} seeing generation {before}"
                m.barrier(lambda: blk.gen.__setitem__((), blk.gen[()] + 1))
            return int(blk.gen[()])

        @registry.tasktype("T", shared={"S": {"gen": ("i8", ())}})
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(size - 1), registry=registry)
        results = vm.run("T").value
        assert results == [rounds] * size

    def test_alternating_barrier_and_critical(self, make_vm, registry):
        """Interleaved synchronization primitives across rounds."""

        def region(m):
            blk = m.common("S")
            for r in range(10):
                with m.critical("L"):
                    blk.acc[()] += m.member + 1
                m.barrier(lambda: blk.sums.__setitem__(
                    (int(blk.rounds[()]),), blk.acc[()]))
                m.barrier(lambda: (blk.acc.__setitem__((), 0),
                                   blk.rounds.__setitem__(
                                       (), blk.rounds[()] + 1)))
            return None

        spec = {"acc": ("i8", ()), "rounds": ("i8", ()),
                "sums": ("i8", (10,))}

        @registry.tasktype("T", shared={"S": spec}, locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)
            return list(ctx.common("S").sums)

        vm = make_vm(config=force_cfg(3), registry=registry)
        sums = vm.run("T").value
        assert sums == [1 + 2 + 3 + 4] * 10
