"""Unit tests: taskids and symbolic designators."""

import pytest

from repro.core.taskid import (
    ANY, Broadcast, Cluster, Designator, OTHER, PARENT, SAME, SELF, SENDER,
    SendTarget, TContr, TaskId, USER, USER_TERMINAL_ID,
)


class TestTaskId:
    def test_structure_is_cluster_slot_unique(self):
        t = TaskId(3, 2, 7)
        assert (t.cluster, t.slot, t.unique) == (3, 2, 7)

    def test_str_and_parse_roundtrip(self):
        t = TaskId(12, 4, 99)
        assert str(t) == "12.4.99"
        assert TaskId.parse("12.4.99") == t

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            TaskId.parse("1.2")
        with pytest.raises(ValueError):
            TaskId.parse("a.b.c")

    def test_taskids_are_hashable_values(self):
        # Taskids are data values: storable in variables, arrays, dicts.
        d = {TaskId(1, 1, 1): "x"}
        assert d[TaskId(1, 1, 1)] == "x"

    def test_user_terminal_id_is_reserved(self):
        assert USER_TERMINAL_ID == TaskId(0, 0, 0)


class TestDesignators:
    def test_cluster_designators(self):
        assert ANY is Designator.ANY
        assert OTHER is Designator.OTHER
        assert SAME is Designator.SAME
        assert Cluster(4).number == 4

    def test_send_targets(self):
        assert {PARENT, SELF, SENDER, USER} == set(SendTarget)

    def test_tcontr_and_broadcast(self):
        assert TContr(3).cluster == 3
        assert Broadcast().cluster is None
        assert Broadcast(2).cluster == 2
