"""Behavioral tests: ProcessKilled unwinding inside force constructs.

A member killed while holding a lock, queued for one, or parked at a
barrier must never strand its siblings: locks are released or handed
past the corpse, barrier generations shrink so survivors complete.
"""

import pytest


class TestKilledLockHolder:
    def test_sibling_still_acquires_after_holder_killed(self, make_vm,
                                                        registry,
                                                        force_config):
        def region(m):
            eng = m.vm.engine
            lk = m.lock("L")
            if m.member == 1:
                with m.critical(lk):
                    eng.block("hold-forever")   # killed holding L
                return "unreachable"
            if m.is_primary:
                while not lk.locked:            # wait for member 1 to own it
                    m.compute(10)
                eng.kill(m.force.member_procs[1])
                with m.critical(lk):            # must not strand here
                    return "primary-entered"
            return "bystander"

        @registry.tasktype("MAIN")
        def main(ctx):
            results = ctx.forcesplit(region)
            lk = ctx.lock("L")
            return results, lk.locked, lk.owner_pid

        vm = make_vm(config=force_config, registry=registry)
        results, locked, owner = vm.run("MAIN").value
        assert results[0] == "primary-entered"
        assert results[1] is None               # killed member: no result
        assert results[2:] == ["bystander", "bystander"]
        assert not locked and owner is None     # fully released at the end

    def test_killed_waiter_is_skipped_on_release(self, make_vm, registry,
                                                 force_config):
        def region(m):
            eng = m.vm.engine
            lk = m.lock("L")
            if m.member == 1:
                with m.critical(lk):
                    m.compute(5_000)            # hold while sibling queues
                return "held"
            if m.member == 2:
                with m.critical(lk):            # queues; killed waiting
                    return "entered"
            if m.is_primary:
                while not lk.waiters:
                    m.compute(10)
                eng.kill(lk.waiters[0])         # kill the queued member 2
                return "killed-waiter"
            return "bystander"

        @registry.tasktype("MAIN")
        def main(ctx):
            results = ctx.forcesplit(region)
            lk = ctx.lock("L")
            return results, lk.locked

        vm = make_vm(config=force_config, registry=registry)
        results, locked = vm.run("MAIN").value
        assert results[1] == "held"
        assert results[2] is None               # never entered the region
        assert not locked                       # not stranded on the corpse


class TestKilledAtBarrier:
    def test_survivors_complete_when_straggler_killed(self, make_vm,
                                                      registry,
                                                      force_config):
        ran_body = []

        def region(m):
            eng = m.vm.engine
            if m.member == 1:
                eng.block("never-arrives")      # killed before the barrier
                return "unreachable"
            if m.is_primary:
                eng.kill(m.force.member_procs[1])
            m.barrier(lambda: ran_body.append(m.force.barrier_gen))
            return "passed"

        @registry.tasktype("MAIN")
        def main(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_config, registry=registry)
        results = vm.run("MAIN").value
        assert results == ["passed", None, "passed", "passed"]
        assert len(ran_body) == 1               # body ran exactly once

    def test_member_killed_while_parked_at_barrier(self, make_vm, registry,
                                                   force_config):
        def region(m):
            eng = m.vm.engine
            gen = m.force.current_barrier
            if m.is_primary:
                # Wait until every other member is parked at the barrier,
                # kill one of them, then arrive: the generation must
                # complete with the surviving three.
                while gen.arrived < 3:
                    m.compute(10)
                eng.kill(m.force.member_procs[2])
            m.barrier()
            return "passed"

        @registry.tasktype("MAIN")
        def main(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_config, registry=registry)
        results = vm.run("MAIN").value
        assert results[0] == "passed"
        assert results[2] is None


class TestSecondBarrierAfterDeath:
    def test_shrunk_force_reaches_a_later_barrier(self, make_vm, registry,
                                                  force_config):
        """The membership shrink must persist: a second barrier after the
        death completes with three members."""

        def region(m):
            eng = m.vm.engine
            if m.member == 1:
                eng.block("never-arrives")
                return "unreachable"
            if m.is_primary:
                eng.kill(m.force.member_procs[1])
            m.barrier()
            m.compute(100)
            m.barrier()
            return "twice"

        @registry.tasktype("MAIN")
        def main(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_config, registry=registry)
        results = vm.run("MAIN").value
        assert results == ["twice", None, "twice", "twice"]
