"""Unit + behavioral tests: simulated disks and striped file I/O."""

import numpy as np
import pytest

from repro.core.fileio import (
    DEFAULT_STRIPE_UNIT,
    DISK_BYTES_PER_TICK,
    DISK_SEEK_TICKS,
    DiskArray,
    SimDisk,
)
from repro.errors import WindowError


class TestSimDisk:
    def test_transfer_cost_model(self):
        d = SimDisk(0)
        end = d.transfer(100, 160, write=False)
        assert end == 100 + DISK_SEEK_TICKS + 160 // DISK_BYTES_PER_TICK
        assert d.bytes_read == 160 and d.bytes_written == 0

    def test_requests_to_one_disk_serialize(self):
        d = SimDisk(0)
        e1 = d.transfer(0, 1600, write=False)
        e2 = d.transfer(0, 1600, write=True)   # queued behind the first
        assert e2 > e1
        assert d.busy_until == e2
        assert d.requests == 2


class TestDiskArray:
    def test_stripe_spread_round_robin(self):
        da = DiskArray(n_disks=4, stripe_unit=100)
        spread = da.stripe_spread(0, 400)
        assert spread == {0: 100, 1: 100, 2: 100, 3: 100}

    def test_stripe_spread_with_offset(self):
        da = DiskArray(n_disks=2, stripe_unit=100)
        # offset 150: 50B finish chunk 1 (disk 1), 100B chunk 2 (disk 0),
        # 50B of chunk 3 (disk 1).
        assert da.stripe_spread(150, 200) == {1: 100, 0: 100}

    def test_spread_conserves_bytes(self):
        da = DiskArray(n_disks=3, stripe_unit=64)
        for offset, nbytes in ((0, 1), (63, 2), (100, 999), (5000, 12345)):
            assert sum(da.stripe_spread(offset, nbytes).values()) == nbytes

    def test_striped_transfer_faster_than_single(self):
        single = DiskArray(1, stripe_unit=256)
        striped = DiskArray(4, stripe_unit=256)
        t1 = single.transfer(0, 0, 64 * 1024, write=False)
        t4 = striped.transfer(0, 0, 64 * 1024, write=False)
        assert t4 < t1 / 2   # near-4x minus seek overhead

    def test_zero_byte_transfer_is_free(self):
        da = DiskArray(2)
        assert da.transfer(500, 0, 0, write=False) == 500

    def test_validation(self):
        with pytest.raises(WindowError):
            DiskArray(0)
        with pytest.raises(WindowError):
            DiskArray(1, stripe_unit=0)

    def test_describe_and_stats(self):
        da = DiskArray(2, stripe_unit=128)
        da.transfer(0, 0, 512, write=True)
        text = da.describe()
        assert "2 disks" in text and "written" in text
        assert da.total_bytes() == 512


class TestFileWindowIO:
    def test_file_read_waits_for_disk(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            w = ctx.file_window("BIG")
            t0 = ctx.now()
            ctx.window_read(w)
            return ctx.now() - t0

        vm = make_vm(registry=registry)
        vm.export_file("BIG", np.zeros(8192))   # 64 KB
        dt = vm.run("MAIN").value
        assert dt >= DISK_SEEK_TICKS + (8192 * 8) // DISK_BYTES_PER_TICK

    def test_striping_speeds_up_large_reads(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            w = ctx.file_window("BIG")
            t0 = ctx.now()
            ctx.window_read(w)
            return ctx.now() - t0

        def run_with(n_disks):
            vm = make_vm(registry=registry)
            vm.export_file("BIG", np.zeros(16384))
            vm.configure_file_disks(n_disks, stripe_unit=4096)
            return vm.run("MAIN").value

        t1 = run_with(1)
        t4 = run_with(4)
        assert t4 < t1 / 2

    def test_parallel_readers_overlap_on_distinct_disks(self, make_vm,
                                                        registry):
        from repro.core.taskid import PARENT, SAME

        @registry.tasktype("READER")
        def reader(ctx, k):
            w = ctx.file_window("BIG")
            half = w.split(2, axis=0)[k]
            ctx.window_read(half)
            ctx.send(PARENT, "DONE", ctx.now())

        @registry.tasktype("MAIN")
        def main(ctx):
            for k in range(2):
                ctx.initiate("READER", k, on=SAME)
            res = ctx.accept("DONE", count=2)
            return max(m.args[0] for m in res.messages)

        def run_with(n_disks):
            vm = make_vm(registry=registry)
            vm.export_file("BIG", np.zeros(16384))
            vm.configure_file_disks(n_disks, stripe_unit=8192 * 8)
            r = vm.run("MAIN")
            return r.value

        # With one disk the two half-reads queue; with two large-stripe
        # disks each half lives on its own disk and they overlap.
        t1 = run_with(1)
        t2 = run_with(2)
        assert t2 < t1

    def test_disk_counters_reflect_traffic(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            w = ctx.file_window("F")
            ctx.window_read(w)
            ctx.window_write(w, np.ones(100))

        vm = make_vm(registry=registry)
        vm.export_file("F", np.zeros(100))
        vm.run("MAIN")
        da = vm.file_controller.disks
        assert da.total_bytes() == 2 * 800
        assert da.disks[0].requests == 2


class TestMessageWakeFilter:
    def test_message_does_not_release_a_barrier(self, make_vm, registry):
        """A stray message to a task blocked at a BARRIER must stay
        queued, not wake the member early."""
        from repro.core.taskid import PARENT, SAME

        def region(m):
            if m.member == 0:
                m.task.vm.send_message(  # pester ourselves mid-barrier
                    m.self_id, "STRAY", (1,), origin=m)
            m.barrier()
            return "past-barrier"

        @registry.tasktype("T")
        def t(ctx):
            results = ctx.forcesplit(region)
            # the stray message is still queued afterwards
            res = ctx.accept("STRAY")
            return results, res.count

        from repro.config.configuration import ClusterSpec, Configuration
        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(4,)),))
        vm = make_vm(config=cfg, registry=registry)
        (results, stray_count) = vm.run("T").value
        assert results == ["past-barrier", "past-barrier"]
        assert stray_count == 1
