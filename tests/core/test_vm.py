"""Behavioral tests: VM boot, storage accounting, run mechanics."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.sizes import (
    PISCES_SYSTEM_CODE_BYTES,
    PISCES_SYSTEM_DATA_BYTES,
    slot_table_bytes,
)
from repro.core.vm import N_CONTROLLER_SLOTS, PiscesVM
from repro.errors import OutOfMemory, TimeLimitExceeded
from repro.flex.presets import small_flex


class TestBoot:
    def test_boot_loads_every_used_pe(self, make_vm, registry):
        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(5, 6)),
            ClusterSpec(2, 4, 2)))
        vm = make_vm(config=cfg, registry=registry)
        for pe in (3, 4, 5, 6):
            assert vm.machine.pe(pe).booted
            assert vm.machine.pe(pe).local.resident_bytes() > 0
        assert not vm.machine.pe(7).booted

    def test_boot_is_idempotent(self, make_vm, registry):
        vm = make_vm(registry=registry)
        tables = vm.machine.shared.live_bytes_by_tag()["system_table"]
        vm.boot()
        assert vm.machine.shared.live_bytes_by_tag()["system_table"] == tables

    def test_system_tables_sized_per_cluster(self, make_vm, registry):
        cfg = Configuration(clusters=(ClusterSpec(1, 3, 4),
                                      ClusterSpec(2, 4, 2)))
        vm = make_vm(config=cfg, registry=registry)
        expected = (slot_table_bytes(4, N_CONTROLLER_SLOTS)
                    + slot_table_bytes(2, N_CONTROLLER_SLOTS))
        assert vm.machine.shared.live_bytes_by_tag()["system_table"] == expected

    def test_loadfile_records_user_code(self, make_vm, registry):
        @registry.tasktype("T")
        def t(ctx):
            pass

        vm = make_vm(registry=registry)
        from repro.mmos.loader import CAT_USER_CODE
        assert vm.loadfile.sections[CAT_USER_CODE] > 0

    def test_config_validated_against_machine(self, registry):
        cfg = Configuration(clusters=(ClusterSpec(1, 19, 2),))
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            PiscesVM(cfg, registry=registry, machine=small_flex(6))


class TestStorageReport:
    def test_local_fraction_counts_only_pisces_system(self, make_vm,
                                                      registry):
        vm = make_vm(registry=registry)
        rep = vm.storage_report()
        expected = ((PISCES_SYSTEM_CODE_BYTES + PISCES_SYSTEM_DATA_BYTES)
                    / vm.machine.spec.local_memory_bytes)
        for frac in rep["local_system_fraction"].values():
            assert frac == pytest.approx(expected)

    def test_message_bytes_live_reflects_queues(self, make_vm, registry):
        from repro.core.taskid import SELF

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "KEPT", 1.0, 2.0)
            return ctx.vm.storage_report()["message_bytes_live"]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value > 0
        # after termination the queue was freed
        assert vm.storage_report()["message_bytes_live"] == 0


class TestRun:
    def test_run_returns_value_elapsed_console(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.compute(123)
            ctx.print("hi")
            return "val"

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert r.value == "val"
        assert r.elapsed >= 123
        assert "hi" in r.console
        assert r.task.cluster == 1

    def test_run_with_args(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx, a, b):
            return a + b

        vm = make_vm(registry=registry)
        assert vm.run("MAIN", 2, 3).value == 5

    def test_user_task_exception_propagates(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            raise RuntimeError("user bug")

        vm = make_vm(registry=registry)
        with pytest.raises(RuntimeError, match="user bug"):
            vm.run("MAIN")

    def test_time_limit_from_configuration(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            while True:
                ctx.compute(1000)

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),),
                            time_limit=5000)
        vm = make_vm(config=cfg, registry=registry)
        with pytest.raises(TimeLimitExceeded):
            vm.run("MAIN")

    def test_trace_events_enabled_from_configuration(self, make_vm,
                                                     registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            pass

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),),
                            trace_events=("TASK_INIT", "TASK_TERM"))
        vm = make_vm(config=cfg, registry=registry)
        vm.run("MAIN")
        assert len(vm.tracer.events) == 2

    def test_context_manager_shuts_down(self, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            return 1

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),))
        with PiscesVM(cfg, registry=registry,
                      machine=small_flex(6)) as vm:
            pass
        # all controller threads were reaped
        assert all(not p.live for p in vm.engine.processes())

    def test_shared_memory_exhaustion_surfaces(self, make_vm, registry):
        from repro.core.taskid import SELF

        @registry.tasktype("MAIN")
        def main(ctx):
            import numpy as np
            for i in range(10_000):
                ctx.send(SELF, "BIG", np.zeros(1024))   # never accepted

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),))
        vm = make_vm(config=cfg, registry=registry,
                     machine=small_flex(6, shared_kb=64))
        with pytest.raises(OutOfMemory):
            vm.run("MAIN")
