"""Unit tests: SHARED COMMON blocks and lock storage."""

import numpy as np
import pytest

from repro.core.shared import LockState, SharedState
from repro.core.sizes import LOCK_BYTES
from repro.errors import RuntimeLibraryError
from repro.flex.memory import HeapAllocator


def make_state(cap=64 * 1024):
    heap = HeapAllocator(cap)
    return SharedState(heap), heap


class TestSharedCommon:
    def test_declared_arrays_allocated_in_shared_memory(self):
        st, heap = make_state()
        blk = st.declare_common("G", {"u": ("f8", (10, 10)),
                                      "n": ("i8", ())})
        expected = 10 * 10 * 8 + 8
        assert blk.nbytes == expected
        assert heap.live_bytes_by_tag()["shared_common"] == expected

    def test_attribute_access_returns_arrays(self):
        st, _ = make_state()
        blk = st.declare_common("G", {"u": ("f8", 4)})
        blk.u[2] = 7.5
        assert blk.u[2] == 7.5
        assert blk["u"] is blk.u

    def test_scalars_are_zero_d_arrays(self):
        st, _ = make_state()
        blk = st.declare_common("G", {"n": ("i8", ())})
        blk.n[()] = 42
        assert int(blk.n[()]) == 42

    def test_unknown_variable_raises_attribute_error(self):
        st, _ = make_state()
        blk = st.declare_common("G", {"u": ("f8", 4)})
        with pytest.raises(AttributeError):
            blk.missing

    def test_duplicate_block_rejected(self):
        st, _ = make_state()
        st.declare_common("G", {})
        with pytest.raises(RuntimeLibraryError):
            st.declare_common("G", {})

    def test_lookup_unknown_block_rejected(self):
        st, _ = make_state()
        with pytest.raises(RuntimeLibraryError):
            st.common("NOPE")

    def test_release_all_returns_bytes(self):
        st, heap = make_state()
        st.declare_common("A", {"x": ("f8", 100)})
        st.declare_lock("L")
        assert heap.stats.live_bytes > 0
        st.release_all()
        assert heap.stats.live_bytes == 0

    def test_variables_listing(self):
        st, _ = make_state()
        blk = st.declare_common("G", {"a": ("f8", 1), "b": ("i8", ())})
        assert sorted(blk.variables()) == ["a", "b"]


class TestLocks:
    def test_lock_storage_is_four_bytes(self):
        st, heap = make_state()
        st.declare_lock("L")
        assert heap.live_bytes_by_tag()["lock"] == LOCK_BYTES

    def test_duplicate_lock_rejected(self):
        st, _ = make_state()
        st.declare_lock("L")
        with pytest.raises(RuntimeLibraryError):
            st.declare_lock("L")

    def test_lazy_declaration_on_first_use(self):
        st, _ = make_state()
        lk = st.lock("L")
        assert isinstance(lk, LockState)
        assert st.lock("L") is lk
