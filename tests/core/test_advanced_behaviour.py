"""Deeper behavioral tests: reentrant handlers, taskid values in data
structures, window chains through messages, tracer task filters."""

import numpy as np
import pytest

from repro.core.taskid import ANY, PARENT, SAME, SELF, TaskId
from repro.core.tracing import TraceEventType


class TestHandlerReentrancy:
    def test_handler_may_send_replies(self, make_vm, registry):
        """A HANDLER runs in the accepting task's context and can use
        the full API -- including replying to the sender."""

        def on_ping(ctx, n):
            ctx.send(ctx.sender, "PONG", n + 1)

        @registry.tasktype("SERVER", handlers={"PING": on_ping})
        def server(ctx):
            ctx.send(PARENT, "READY")
            ctx.accept(("PING", 3))

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("SERVER", on=SAME)
            ctx.accept("READY")
            srv = ctx.sender
            out = []
            for i in range(3):
                ctx.send(srv, "PING", i)
                out.append(ctx.accept("PONG").args[0])
            return out

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == [1, 2, 3]

    def test_handler_may_accept_nested(self, make_vm, registry):
        """A handler that itself ACCEPTs (nested receive) drains from
        the same in-queue without corrupting the outer accept."""

        def on_outer(ctx):
            inner = ctx.accept("INNER")
            ctx.task.handler_saw.append(inner.args[0])

        @registry.tasktype("MAIN", handlers={"OUTER": on_outer})
        def main(ctx):
            ctx.task.handler_saw = []
            ctx.send(SELF, "OUTER")
            ctx.send(SELF, "INNER", 42)
            ctx.send(SELF, "AFTER")
            ctx.accept("OUTER")
            ctx.accept("AFTER")
            return ctx.task.handler_saw

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == [42]

    def test_handler_initiating_tasks(self, make_vm, registry):
        def on_spawn(ctx, k):
            ctx.initiate("LEAF", k, on=ANY)

        @registry.tasktype("LEAF")
        def leaf(ctx, k):
            ctx.send(PARENT, "LEAFDONE", k)

        @registry.tasktype("MAIN", handlers={"SPAWN": on_spawn})
        def main(ctx):
            ctx.send(SELF, "SPAWN", 5)
            ctx.accept("SPAWN")
            return ctx.accept("LEAFDONE").args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 5


class TestTaskidsAsData:
    def test_taskid_dict_routing_table(self, make_vm, registry):
        """Taskids in containers route correctly after passing through
        messages (value semantics, hashability)."""

        @registry.tasktype("NODE")
        def node(ctx, name):
            ctx.send(PARENT, "REG", name, ctx.self_id)
            res = ctx.accept("VISIT")
            ctx.send(PARENT, "VISITED", name)

        @registry.tasktype("MAIN")
        def main(ctx):
            names = ["a", "b", "c"]
            for n in names:
                ctx.initiate("NODE", n, on=ANY)
            table = {}
            for _ in names:
                r = ctx.accept("REG")
                nm, tid = r.args
                assert tid == r.sender      # taskid arg == actual sender
                table[nm] = tid
            for n in reversed(names):
                ctx.send(table[n], "VISIT")
            res = ctx.accept(("VISITED", 3))
            return [m.args[0] for m in res.messages]

        vm = make_vm(registry=registry)
        assert sorted(vm.run("MAIN").value) == ["a", "b", "c"]

    def test_taskid_roundtrip_preserves_identity(self, make_vm, registry):
        @registry.tasktype("ECHO")
        def echo(ctx):
            r = ctx.accept("Q")
            ctx.send(PARENT, "A", r.args[0])    # echo a taskid back

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("ECHO", on=SAME)
            ctx.accept("X", delay=500, timeout_ok=True)
            ctx.broadcast("Q", ctx.self_id, cluster=1)
            back = ctx.accept("A").args[0]
            return back == ctx.self_id

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value is True


class TestWindowChains:
    def test_three_level_shrink_chain_through_messages(self, make_vm,
                                                       registry):
        """owner -> mid -> leaf, each level shrinking: coordinates stay
        absolute and correct through two message hops."""

        @registry.tasktype("LEAF")
        def leaf(ctx):
            w = ctx.accept("WIN").args[0]
            data = ctx.window_read(w)
            ctx.send(PARENT, "VAL", float(data[0, 0]), w.bounds)

        @registry.tasktype("MID")
        def mid(ctx):
            w = ctx.accept("WIN").args[0]          # rows 2..6
            ctx.initiate("LEAF", on=SAME)
            ctx.accept("X", delay=500, timeout_ok=True)
            inner = w.shrink((slice(1, 2), slice(3, 5)))   # abs row 3
            ctx.broadcast("WIN", inner, cluster=ctx.cluster_number)
            r = ctx.accept("VAL")
            ctx.send(PARENT, "VAL", *r.args)

        @registry.tasktype("OWNER")
        def owner(ctx):
            a = np.arange(64.0).reshape(8, 8)
            ctx.export_array("A", a)
            ctx.initiate("MID", on=2)
            ctx.accept("X", delay=500, timeout_ok=True)
            w = ctx.window("A", region=(slice(2, 6), slice(None)))
            ctx.broadcast("WIN", w, cluster=2)
            r = ctx.accept("VAL")
            return r.args

        vm = make_vm(registry=registry)
        val, bounds = vm.run("OWNER").value
        assert bounds == ((3, 4), (3, 5))
        assert val == 8 * 3 + 3      # a[3, 3]


class TestTracerTaskFilters:
    def test_solo_and_mute_through_monitor(self, make_vm, registry):
        from repro.exec_env.monitor import Monitor

        @registry.tasktype("CHATTY")
        def chatty(ctx, n):
            for i in range(3):
                ctx.send(SELF, "NOTE", i)
                ctx.accept("NOTE")

        vm = make_vm(registry=registry)
        mon = Monitor(vm)
        mon.change_trace_options(enable=("MSG_SEND",))
        r1 = mon.initiate_task("CHATTY", 1, cluster=1)
        r2 = mon.initiate_task("CHATTY", 2, cluster=2)
        mon.pump()
        t1 = vm.initiations[r1]
        # everything traced so far came from both tasks
        tasks_seen = {e.task for e in vm.tracer.events}
        assert len(tasks_seen) == 2
        # solo one task and run two more
        vm.tracer.events.clear()
        mon.change_trace_options(solo_task=str(t1))
        r3 = mon.initiate_task("CHATTY", 3, cluster=1)
        mon.pump()
        assert all(e.task == t1 for e in vm.tracer.events)
        mon.terminate_run()
