"""The window data plane: batched transactions, caching, conflicts.

PR 4's fast path: window reads/writes travel as one strided-block
WindowTxn request/reply instead of per-row messages; readers keep a
generation-validated cache; conditional writes surface WindowConflict.
All three paths (reference / batched / fast) must agree bit-identically
in virtual time -- the per-row reference path is the oracle.
"""

import numpy as np
import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import PARENT, SAME
from repro.errors import PiscesError, WindowConflict, WindowError

ONE_CLUSTER = Configuration(clusters=(ClusterSpec(1, 3, 6),), name="dp")


def fast_config(name="dp-fast"):
    return Configuration(clusters=(ClusterSpec(1, 3, 6),), name=name,
                         window_path="fast")


# ----------------------------------------------------------- caching --

def test_repeated_read_hits_cache(make_vm, registry):
    @registry.tasktype("READER")
    def reader(ctx):
        w = ctx.accept("WIN").args[0]
        a = ctx.window_read(w)
        b = ctx.window_read(w)          # unchanged -> served from cache
        assert np.array_equal(a, b)
        ctx.send(PARENT, "DONE", float(b.sum()))

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.arange(64.0).reshape(8, 8))
        ctx.initiate("READER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        return ctx.accept("DONE").args[0]

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value == float(np.arange(64.0).sum())
    assert r.stats.window_cache_hits == 1
    assert r.stats.window_cache_misses == 1
    # the hit moved no bytes: only the first read crossed the plane
    assert r.stats.window_bytes_moved == 64 * 8
    assert r.stats.window_bytes_read == 2 * 64 * 8


def test_overlapping_write_invalidates_remote_cache(make_vm, registry):
    @registry.tasktype("READER")
    def reader(ctx):
        w = ctx.accept("WIN").args[0]
        before = ctx.window_read(w)
        ctx.send(PARENT, "SAW", float(before[0, 0]))
        ctx.accept("GO")
        after = ctx.window_read(w)      # owner wrote -> must re-fetch
        ctx.send(PARENT, "SAW2", float(after[0, 0]))

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((8, 8)))
        ctx.initiate("READER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        w = ctx.window("A")
        ctx.broadcast("WIN", w, cluster=1)
        res = ctx.accept("SAW")
        first = res.args[0]
        ctx.window_write(w.shrink(rows=(0, 2)), np.full((2, 8), 7.0))
        ctx.send(res.sender, "GO")
        second = ctx.accept("SAW2").args[0]
        return first, second

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value == (0.0, 7.0)
    assert r.stats.window_cache_hits == 0      # invalidated, not hit
    assert r.stats.window_cache_misses == 2


def test_disjoint_write_keeps_cache_valid(make_vm, registry):
    @registry.tasktype("READER")
    def reader(ctx):
        w = ctx.accept("WIN").args[0]
        ctx.window_read(w)
        ctx.send(PARENT, "SAW")
        ctx.accept("GO")
        ctx.window_read(w)              # disjoint write -> still valid
        ctx.send(PARENT, "DONE")

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((8, 8)))
        ctx.initiate("READER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        w = ctx.window("A")
        ctx.broadcast("WIN", w.shrink(rows=(0, 4)), cluster=1)
        res = ctx.accept("SAW")
        ctx.window_write(w.shrink(rows=(6, 8)), np.ones((2, 8)))
        ctx.send(res.sender, "GO")
        ctx.accept("DONE")
        return True

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value is True
    assert r.stats.window_cache_hits == 1


def test_uncacheable_export_never_caches(make_vm, registry):
    @registry.tasktype("READER")
    def reader(ctx):
        w = ctx.accept("WIN").args[0]
        ctx.window_read(w)
        ctx.window_read(w)
        ctx.send(PARENT, "DONE")

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((4, 4)), cacheable=False)
        ctx.initiate("READER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        ctx.accept("DONE")
        return True

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.stats.window_cache_hits == 0
    assert r.stats.window_bytes_moved == 2 * 16 * 8


def test_touch_array_invalidates_after_direct_mutation(make_vm, registry):
    @registry.tasktype("READER")
    def reader(ctx):
        w = ctx.accept("WIN").args[0]
        before = ctx.window_read(w)
        ctx.send(PARENT, "SAW", float(before[0, 0]))
        ctx.accept("GO")
        after = ctx.window_read(w)
        ctx.send(PARENT, "SAW2", float(after[0, 0]))

    @registry.tasktype("OWNER")
    def owner(ctx):
        a = np.zeros((4, 4))
        ctx.export_array("A", a)
        ctx.initiate("READER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        res = ctx.accept("SAW")
        a[...] = 5.0                    # direct mutation, no data plane
        ctx.touch_array("A")            # ... so the owner must TOUCH
        ctx.send(res.sender, "GO")
        return ctx.accept("SAW2").args[0]

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value == 5.0
    assert r.stats.window_cache_hits == 0


# --------------------------------------------------------- conflicts --

def test_if_unchanged_write_succeeds_without_interference(make_vm,
                                                          registry):
    @registry.tasktype("WORKER")
    def workertask(ctx):
        w = ctx.accept("WIN").args[0]
        vals = ctx.window_read(w)
        ctx.window_write(w, vals + 1.0, if_unchanged=True)
        ctx.send(PARENT, "DONE")

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((4, 4)))
        ctx.initiate("WORKER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        ctx.accept("DONE")
        return float(ctx.task.arrays.get("A").sum())

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value == 16.0
    assert r.stats.window_conflicts == 0


def test_if_unchanged_write_raises_window_conflict(make_vm, registry):
    @registry.tasktype("WORKER")
    def workertask(ctx):
        w = ctx.accept("WIN").args[0]
        vals = ctx.window_read(w)
        ctx.send(PARENT, "READY")
        ctx.accept("GO")                # owner overwrites meanwhile
        with pytest.raises(WindowConflict):
            ctx.window_write(w, vals + 1.0, if_unchanged=True)
        ctx.send(PARENT, "DONE")

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((4, 4)))
        ctx.initiate("WORKER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        w = ctx.window("A")
        ctx.broadcast("WIN", w, cluster=1)
        res = ctx.accept("READY")
        ctx.window_write(w.shrink(rows=(0, 1)), np.full((1, 4), 9.0))
        ctx.send(res.sender, "GO")
        ctx.accept("DONE")
        return float(ctx.task.arrays.get("A")[0, 0])

    vm = make_vm(config=fast_config(), registry=registry)
    r = vm.run("OWNER")
    assert r.value == 9.0               # refused write did NOT land
    assert r.stats.window_conflicts == 1


def test_if_unchanged_needs_cached_observation(make_vm, registry):
    @registry.tasktype("WORKER")
    def workertask(ctx):
        w = ctx.accept("WIN").args[0]
        with pytest.raises(WindowConflict):
            ctx.window_write(w, np.zeros(w.shape), if_unchanged=True)
        ctx.send(PARENT, "DONE")

    @registry.tasktype("OWNER")
    def owner(ctx):
        ctx.export_array("A", np.zeros((4, 4)))
        ctx.initiate("WORKER", on=SAME)
        ctx.accept("X", delay=2000, timeout_ok=True)
        ctx.broadcast("WIN", ctx.window("A"), cluster=1)
        ctx.accept("DONE")
        return True

    vm = make_vm(config=fast_config(), registry=registry)
    assert vm.run("OWNER").value is True


def test_window_conflict_is_a_pisces_error():
    assert issubclass(WindowConflict, WindowError)
    assert issubclass(WindowConflict, PiscesError)


# ------------------------------------------------------ path identity --

def _paths_config(path):
    return Configuration(clusters=(ClusterSpec(1, 3, 6),),
                         name=f"id-{path}", window_path=path,
                         trace_events=("MSG_SEND", "MSG_ACCEPT"))


def test_three_paths_bit_identical_virtual_time(make_vm):
    from repro.apps.jacobi import run_jacobi_windows

    runs = {}
    for path in ("reference", "batched", "fast"):
        r = run_jacobi_windows(n=16, sweeps=3, n_workers=2,
                               config=_paths_config(path))
        runs[path] = r
        r.vm.shutdown()
    ref = runs["reference"]
    for path in ("batched", "fast"):
        assert runs[path].elapsed == ref.elapsed
        assert np.array_equal(runs[path].grid, ref.grid)
        assert (runs[path].vm.stats.window_bytes_read
                == ref.vm.stats.window_bytes_read)
        lines = [e.line() for e in runs[path].vm.tracer.events]
        assert lines == [e.line() for e in ref.vm.tracer.events]
    # the reference path never uses the txn plane...
    assert ref.vm.stats.window_txns == 0
    # ... and the fast path moves no more bytes than batched
    assert (runs["fast"].vm.stats.window_bytes_moved
            <= runs["batched"].vm.stats.window_bytes_moved)


def test_window_path_env_override(make_vm, registry, monkeypatch):
    from repro.core.vm import resolve_window_path

    monkeypatch.setenv("PISCES_WINDOW_PATH", "reference")
    assert resolve_window_path(ONE_CLUSTER) == "reference"
    # explicit configuration wins over the environment
    assert resolve_window_path(fast_config()) == "fast"
    monkeypatch.setenv("PISCES_WINDOW_PATH", "bogus")
    from repro.errors import ConfigurationError
    with pytest.raises(ConfigurationError):
        resolve_window_path(ONE_CLUSTER)


# ------------------------------------------- keyword-only selectors --

def test_positional_region_in_ctx_window_rejected(make_vm, registry):
    @registry.tasktype("T")
    def t(ctx):
        ctx.export_array("A", np.zeros((4, 4)))
        with pytest.raises(TypeError):
            ctx.window("A", ((0, 2), (0, 4)))   # keyword-only now
        w = ctx.window("A", region=((0, 2), (0, 4)))
        assert w.shape == (2, 4)
        w2 = ctx.window("A", rows=(0, 2))
        assert w2.shape == (2, 4)
        return True

    vm = make_vm(config=ONE_CLUSTER, registry=registry)
    assert vm.run("T").value is True


def test_positional_region_in_file_window_for_rejected(make_vm, registry):
    @registry.tasktype("T")
    def t(ctx):
        return True

    vm = make_vm(config=ONE_CLUSTER, registry=registry)
    vm.export_file("F", np.zeros((6, 6)))
    with pytest.raises(TypeError):
        vm.file_controller.window_for("F", ((0, 3), (0, 6)))
    w = vm.file_controller.window_for("F", region=((0, 3), (0, 6)))
    assert w.shape == (3, 6)
    w2 = vm.file_controller.window_for("F", rows=(0, 3))
    assert w2.shape == (3, 6)
    vm.run("T")


def test_rows_cols_selectors_reject_bad_shapes(make_vm, registry):
    @registry.tasktype("T")
    def t(ctx):
        ctx.export_array("V", np.zeros(8))
        with pytest.raises(WindowError):
            ctx.window("V", cols=(0, 2))        # no cols on a vector
        ctx.export_array("A", np.zeros((4, 4)))
        with pytest.raises(WindowError):
            ctx.window("A", region=((0, 2),), rows=(0, 2))
        return True

    vm = make_vm(config=ONE_CLUSTER, registry=registry)
    assert vm.run("T").value is True


# --------------------------------------- concurrent file-window I/O --

def test_overlapping_file_rw_serializes(make_vm, registry):
    """Section 8's contract: concurrent file-window transfers that
    overlap (with a writer involved) must serialize; the read sees
    either the old or the new values, never a torn mix."""

    @registry.tasktype("FWRITER")
    def fwriter(ctx):
        w = ctx.file_window("F", rows=(0, 6))
        ctx.window_write(w, np.full((6, 8), 3.0))
        ctx.send(PARENT, "DONE", "w")

    @registry.tasktype("FREADER")
    def freader(ctx):
        w = ctx.file_window("F", rows=(2, 8))
        vals = ctx.window_read(w)
        ctx.send(PARENT, "DONE", "r", float(vals.min()),
                 float(vals.max()))

    @registry.tasktype("MAIN")
    def main(ctx):
        ctx.initiate("FWRITER", on=SAME)
        ctx.initiate("FREADER", on=SAME)
        res = ctx.accept("DONE", count=2)
        for m in res.messages:
            if m.args[0] == "r":
                lo, hi = m.args[1], m.args[2]
                # rows 2..6 are either all-old (0) or all-new (3):
                assert (lo, hi) in ((0.0, 0.0), (0.0, 3.0), (3.0, 3.0))
        return True

    vm = make_vm(config=ONE_CLUSTER, registry=registry)
    vm.export_file("F", np.zeros((8, 8)))
    vm.configure_file_disks(4, stripe_unit=64)
    r = vm.run("MAIN")
    assert r.value is True
    assert r.stats.window_overlap_waits >= 1


def test_disjoint_file_rw_proceeds_in_parallel(make_vm, registry):
    @registry.tasktype("FWORKER")
    def fworker(ctx, k):
        w = ctx.file_window("F", rows=(k * 4, k * 4 + 4))
        vals = ctx.window_read(w)
        ctx.window_write(w, vals + 1.0)
        ctx.send(PARENT, "DONE")

    @registry.tasktype("MAIN")
    def main(ctx):
        for k in range(2):
            ctx.initiate("FWORKER", k, on=SAME)
        ctx.accept("DONE", count=2)
        return True

    vm = make_vm(config=ONE_CLUSTER, registry=registry)
    vm.export_file("F", np.zeros((8, 8)))
    vm.configure_file_disks(4, stripe_unit=64)
    r = vm.run("MAIN")
    assert r.value is True
    assert r.stats.window_overlap_waits == 0
    assert vm.file_controller.arrays.get("F").sum() == 64.0
