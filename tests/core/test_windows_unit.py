"""Unit tests: window geometry, shrink/split, and the array store."""

import numpy as np
import pytest

from repro.core.taskid import TaskId
from repro.core.windows import ArrayStore, Window, make_window
from repro.errors import WindowError

OWNER = TaskId(1, 1, 1)


def full(shape=(10, 8)):
    return make_window(OWNER, "A", np.zeros(shape))


class TestMakeWindow:
    def test_default_region_is_whole_array(self):
        w = full()
        assert w.bounds == ((0, 10), (0, 8))
        assert w.shape == (10, 8)
        assert w.size == 80
        assert w.nbytes == 80 * 8

    def test_region_forms(self):
        a = np.zeros((10, 8))
        w1 = make_window(OWNER, "A", a, (slice(2, 5), slice(0, 8)))
        w2 = make_window(OWNER, "A", a, ((2, 5), (0, 8)))
        assert w1.bounds == w2.bounds == ((2, 5), (0, 8))
        w3 = make_window(OWNER, "A", a, (3, slice(None)))
        assert w3.bounds == ((3, 4), (0, 8))

    def test_region_out_of_bounds_rejected(self):
        a = np.zeros((4,))
        with pytest.raises(WindowError):
            make_window(OWNER, "A", a, (slice(0, 5),))
        with pytest.raises(WindowError):
            make_window(OWNER, "A", a, (slice(3, 3),))

    def test_strided_region_rejected(self):
        a = np.zeros((8,))
        with pytest.raises(WindowError):
            make_window(OWNER, "A", a, (slice(0, 8, 2),))

    def test_dim_mismatch_rejected(self):
        a = np.zeros((4, 4))
        with pytest.raises(WindowError):
            make_window(OWNER, "A", a, (slice(0, 2),))


class TestShrink:
    def test_shrink_uses_window_relative_coordinates(self):
        w = full().shrink((slice(2, 6), slice(1, 4)))
        w2 = w.shrink((slice(1, 2), slice(0, 3)))
        assert w2.bounds == ((3, 4), (1, 4))

    def test_shrink_cannot_grow(self):
        w = full().shrink((slice(2, 6), slice(0, 8)))
        with pytest.raises(WindowError):
            w.shrink((slice(0, 5), slice(0, 8)))   # 5 > 4 rows

    def test_contains_and_overlaps(self):
        w = full()
        inner = w.shrink((slice(1, 3), slice(1, 3)))
        assert w.contains(inner) and not inner.contains(w)
        other = w.shrink((slice(2, 5), slice(2, 5)))
        assert inner.overlaps(other)
        disjoint = w.shrink((slice(5, 7), slice(5, 7)))
        assert not inner.overlaps(disjoint)

    def test_windows_are_immutable_values(self):
        w = full()
        with pytest.raises(Exception):
            w.array = "B"   # frozen dataclass


class TestSplit:
    def test_split_partitions_axis(self):
        parts = full().split(3, axis=0)
        assert [p.bounds[0] for p in parts] == [(0, 3), (3, 6), (6, 10)]
        for p in parts:
            assert p.bounds[1] == (0, 8)

    def test_split_errors(self):
        with pytest.raises(WindowError):
            full().split(0)
        with pytest.raises(WindowError):
            full((2, 2)).split(5, axis=0)

    def test_describe(self):
        assert "WINDOW A" in full().describe()


class TestArrayStore:
    def test_export_get_and_duplicate(self):
        st = ArrayStore(OWNER)
        a = np.arange(6.0)
        st.export("A", a)
        assert st.get("A") is a
        with pytest.raises(WindowError):
            st.export("A", a)
        with pytest.raises(WindowError):
            st.get("B")

    def test_read_returns_copy(self):
        st = ArrayStore(OWNER)
        a = np.arange(6.0)
        st.export("A", a)
        w = make_window(OWNER, "A", a, (slice(2, 4),))
        data = st.read(w, ticks=5)
        assert list(data) == [2.0, 3.0]
        data[0] = 99
        assert a[2] == 2.0

    def test_write_through_window(self):
        st = ArrayStore(OWNER)
        a = np.zeros((4, 4))
        st.export("A", a)
        w = make_window(OWNER, "A", a, (slice(1, 3), slice(1, 3)))
        st.write(w, np.ones((2, 2)), ticks=7)
        assert a[1:3, 1:3].sum() == 4 and a.sum() == 4

    def test_write_shape_mismatch_rejected(self):
        st = ArrayStore(OWNER)
        a = np.zeros((4,))
        st.export("A", a)
        w = make_window(OWNER, "A", a, (slice(0, 2),))
        with pytest.raises(WindowError):
            st.write(w, np.zeros(3), ticks=0)

    def test_access_log_records_operations(self):
        st = ArrayStore(OWNER)
        a = np.zeros((4,))
        st.export("A", a)
        w = make_window(OWNER, "A", a)
        st.read(w, ticks=1)
        st.write(w, np.ones(4), ticks=2)
        ops = [(op, t) for op, _, _, t in st.access_log]
        assert ops == [("read", 1), ("write", 2)]
