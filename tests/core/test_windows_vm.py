"""Behavioral tests: windows between tasks and via the file controller."""

import numpy as np
import pytest

from repro.core.taskid import PARENT, SAME
from repro.errors import WindowError


class TestTaskWindows:
    def test_window_passed_in_message_and_read(self, make_vm, registry):
        @registry.tasktype("READER")
        def reader(ctx):
            ctx.send(PARENT, "GIMME")
            w = ctx.accept("WIN").args[0]
            data = ctx.window_read(w)
            ctx.send(PARENT, "SUM", float(data.sum()))

        @registry.tasktype("OWNER")
        def owner(ctx):
            a = np.arange(16.0).reshape(4, 4)
            ctx.export_array("A", a)
            ctx.initiate("READER", on=SAME)
            ctx.accept("GIMME")
            ctx.send(ctx.sender, "WIN",
                     ctx.window("A", region=(slice(0, 2), slice(0, 4))))
            return ctx.accept("SUM").args[0]

        vm = make_vm(registry=registry)
        assert vm.run("OWNER").value == float(np.arange(8.0).sum())

    def test_window_write_mutates_owner_array(self, make_vm, registry):
        @registry.tasktype("WRITER")
        def writer(ctx):
            ctx.send(PARENT, "GIMME")
            w = ctx.accept("WIN").args[0]
            ctx.window_write(w, np.full(w.shape, 9.0))
            ctx.send(PARENT, "DONE")

        @registry.tasktype("OWNER")
        def owner(ctx):
            a = np.zeros((4, 4))
            ctx.export_array("A", a)
            ctx.initiate("WRITER", on=SAME)
            ctx.accept("GIMME")
            ctx.send(ctx.sender, "WIN",
                     ctx.window("A", region=(slice(1, 3), slice(1, 3))))
            ctx.accept("DONE")
            return float(a.sum()), float(a[1, 1])

        vm = make_vm(registry=registry)
        total, corner = vm.run("OWNER").value
        assert total == 4 * 9.0 and corner == 9.0

    def test_partitioning_forwards_windows_not_data(self, make_vm, registry):
        """Section 8's point: a middle partitioning task forwards shrunk
        windows; array bytes move exactly once (owner -> leaf)."""

        @registry.tasktype("LEAF")
        def leaf(ctx, k):
            ctx.send(PARENT, "HELLO", k)
            w = ctx.accept("WIN").args[0]
            data = ctx.window_read(w)
            ctx.send(PARENT, "SUM", float(data.sum()))

        @registry.tasktype("PARTITIONER")
        def partitioner(ctx):
            w = ctx.accept("WIN").args[0]
            halves = w.split(2, axis=0)
            for k in range(2):
                ctx.initiate("LEAF", k, on=SAME)
            order = {}
            for _ in range(2):
                res = ctx.accept("HELLO")
                order[res.args[0]] = res.sender
            for k in range(2):
                ctx.send(order[k], "WIN", halves[k])
            total = 0.0
            for _ in range(2):
                total += ctx.accept("SUM").args[0]
            ctx.send(PARENT, "TOTAL", total)

        @registry.tasktype("OWNER")
        def owner(ctx):
            a = np.arange(64.0).reshape(8, 8)
            ctx.export_array("A", a)
            ctx.initiate("PARTITIONER", on=SAME)
            # give the partitioner the whole-array window
            import time
            ctx.accept("X", delay=500, timeout_ok=True)  # let it start
            # find the partitioner task: it is our child; send via broadcast
            ctx.broadcast("WIN", ctx.window("A"), cluster=1)
            return ctx.accept("TOTAL").args[0]

        vm = make_vm(registry=registry)
        r = vm.run("OWNER")
        assert r.value == float(np.arange(64.0).sum())
        # Bytes moved through windows = exactly one full array read.
        assert r.stats.window_bytes_read == 64 * 8
        assert r.stats.window_reads == 2

    def test_window_on_dead_owner_fails(self, make_vm, registry):
        @registry.tasktype("BRIEF")
        def brief(ctx):
            a = np.zeros(4)
            ctx.export_array("A", a)
            ctx.send(PARENT, "WIN", ctx.window("A"))

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("BRIEF", on=SAME)
            w = ctx.accept("WIN").args[0]
            ctx.accept("X", delay=2000, timeout_ok=True)  # owner dies
            ctx.window_read(w)

        vm = make_vm(registry=registry)
        with pytest.raises(WindowError):
            vm.run("MAIN")

    def test_window_transfer_cost_scales_with_size(self, make_vm, registry):
        def run(n, registry):
            @registry.tasktype(f"T{n}")
            def t(ctx):
                a = np.zeros(n)
                ctx.export_array("A", a)
                t0 = ctx.now()
                ctx.window_read(ctx.window("A"))
                return ctx.now() - t0
            return f"T{n}"

        small = run(16, registry)
        big = run(4096, registry)
        vm1 = make_vm(registry=registry)
        c_small = vm1.run(small).value
        vm2 = make_vm(registry=registry)
        c_big = vm2.run(big).value
        assert c_big > c_small

    def test_window_traffic_passes_through_message_heap(self, make_vm,
                                                        registry):
        @registry.tasktype("T")
        def t(ctx):
            a = np.zeros(512)
            ctx.export_array("A", a)
            before = ctx.vm.machine.shared.stats.high_water
            ctx.window_read(ctx.window("A"))
            after = ctx.vm.machine.shared.stats.high_water
            return after - before

        vm = make_vm(registry=registry)
        assert vm.run("T").value >= 512 * 8


class TestFileController:
    def test_file_window_read_write(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            w = ctx.file_window("INPUT")
            data = ctx.window_read(w)
            half = w.shrink((slice(0, 4),))
            ctx.window_write(half, np.full(4, -1.0))
            return float(data.sum())

        vm = make_vm(registry=registry)
        vm.export_file("INPUT", np.arange(8.0))
        r = vm.run("MAIN")
        assert r.value == float(np.arange(8.0).sum())
        assert list(vm.file_controller.arrays.get("INPUT")[:4]) == [-1.0] * 4

    def test_concurrent_overlapping_file_access_serialized(self, make_vm,
                                                           registry):
        """Section 8: 'the file controller can manage any parallel
        read/write requests for overlapping sections of an array'."""

        @registry.tasktype("WRITER")
        def writer(ctx, k):
            w = ctx.file_window("SHARED").shrink((slice(k * 2, k * 2 + 4),))
            ctx.window_write(w, np.full(4, float(k + 1)))
            ctx.send(PARENT, "DONE")

        @registry.tasktype("MAIN")
        def main(ctx):
            for k in range(3):
                ctx.initiate("WRITER", k, on=SAME)
            ctx.accept("DONE", count=3)
            return None

        vm = make_vm(registry=registry)
        vm.export_file("SHARED", np.zeros(8))
        vm.run("MAIN")
        log = vm.file_controller.arrays.access_log
        writes = [e for e in log if e[0] == "write"]
        assert len(writes) == 3
        # Serialization: access timestamps strictly ordered.
        times = [e[3] for e in writes]
        assert times == sorted(times)
        # Every cell holds one writer's value (no torn writes).
        arr = vm.file_controller.arrays.get("SHARED")
        assert set(arr.tolist()) <= {1.0, 2.0, 3.0}

    def test_file_window_protocol_by_message(self, make_vm, registry):
        """The asynchronous @FWINDOW protocol of section 8."""
        from repro.core.controllers import (MSG_FILE_WINDOW,
                                            MSG_FILE_WINDOW_REPLY)

        @registry.tasktype("MAIN")
        def main(ctx):
            fc = ctx.vm.file_controller
            ctx.send(fc.tid, MSG_FILE_WINDOW, "INPUT")
            w = ctx.accept(MSG_FILE_WINDOW_REPLY).args[0]
            return float(ctx.window_read(w).sum())

        vm = make_vm(registry=registry)
        vm.export_file("INPUT", np.ones(5))
        assert vm.run("MAIN").value == 5.0

    def test_unknown_file_raises(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.file_window("MISSING")

        vm = make_vm(registry=registry)
        with pytest.raises(WindowError):
            vm.run("MAIN")
