"""Behavioral tests: FORCESPLIT, barriers, critical regions, loops."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.errors import NotInForce, RuntimeLibraryError


def force_cfg(n_secondary=3, slots=2):
    return Configuration(clusters=(
        ClusterSpec(1, 3, slots,
                    secondary_pes=tuple(range(4, 4 + n_secondary))),),
        name="force")


class TestForceSplit:
    def test_force_size_is_configuration_property(self, make_vm, registry):
        """Section 7/9: the same program text runs for any force size."""

        def region(m):
            return m.member

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        for nsec in (0, 1, 3):
            vm = make_vm(config=force_cfg(nsec), registry=registry)
            r = vm.run("T")
            assert r.value == list(range(nsec + 1))

    def test_members_run_on_distinct_pes(self, make_vm, registry):
        def region(m):
            return m.vm.engine.current().pe

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        pes = vm.run("T").value
        assert pes == [3, 4, 5, 6]   # primary PE + the secondary PEs

    def test_members_overlap_in_virtual_time(self, make_vm, registry):
        def region(m):
            m.compute(1000)

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        vm1 = make_vm(config=force_cfg(0), registry=registry)
        e1 = vm1.run("T").elapsed
        vm4 = make_vm(config=force_cfg(3), registry=registry)
        e4 = vm4.run("T").elapsed
        # 4 members do 4x the total work in barely more elapsed time.
        assert e4 < 2 * e1

    def test_primary_continues_after_members_finish(self, make_vm, registry):
        def region(m):
            m.compute(100 * (m.member + 1))
            return m.member * 10

        @registry.tasktype("T")
        def t(ctx):
            results = ctx.forcesplit(region)
            # back to ordinary task execution
            ctx.compute(10)
            return results

        vm = make_vm(config=force_cfg(2), registry=registry)
        assert vm.run("T").value == [0, 10, 20]

    def test_nested_forcesplit_rejected(self, make_vm, registry):
        def inner(m):
            return None

        def region(m):
            m.forcesplit(inner)

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(1), registry=registry)
        with pytest.raises(RuntimeLibraryError):
            vm.run("T")

    def test_force_property_outside_region_raises(self, make_vm, registry):
        @registry.tasktype("T")
        def t(ctx):
            _ = ctx.force

        vm = make_vm(config=force_cfg(1), registry=registry)
        with pytest.raises(NotInForce):
            vm.run("T")

    def test_forcesplit_traced(self, make_vm, registry):
        from repro.core.tracing import TraceEventType

        def region(m):
            return None

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(2), registry=registry)
        vm.tracer.enable(TraceEventType.FORCE_SPLIT)
        vm.run("T")
        evs = vm.tracer.of_type(TraceEventType.FORCE_SPLIT)
        assert len(evs) == 1 and "size=3" in evs[0].info


class TestBarrier:
    def test_barrier_body_runs_once_in_primary(self, make_vm, registry):
        log = []

        def region(m):
            m.compute(10 * (m.member + 1))
            m.barrier(lambda: log.append(("body", m.member)))
            m.compute(5)

        @registry.tasktype("T", shared={"S": {"x": ("i8", ())}})
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        vm.run("T")
        assert log == [("body", 0)]   # exactly once, by the primary

    def test_barrier_orders_phases(self, make_vm, registry):
        def region(m):
            blk = m.common("S")
            blk.counts[(m.member,)] = 1
            m.barrier()
            # after the barrier every member sees everyone's mark
            return int(blk.counts.sum())

        @registry.tasktype("T", shared={"S": {"counts": ("i8", (4,))}})
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        assert vm.run("T").value == [4, 4, 4, 4]

    def test_barrier_reusable_across_generations(self, make_vm, registry):
        def region(m):
            blk = m.common("S")
            for _ in range(3):
                m.barrier(lambda: blk.gen.__setitem__((), blk.gen[()] + 1))
            return int(blk.gen[()])

        @registry.tasktype("T", shared={"S": {"gen": ("i8", ())}})
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(2), registry=registry)
        assert vm.run("T").value == [3, 3, 3]

    def test_size_one_force_barrier_is_trivial(self, make_vm, registry):
        def region(m):
            m.barrier(lambda: None)
            return "ok"

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(0), registry=registry)
        assert vm.run("T").value == ["ok"]

    def test_barrier_enter_traced_per_member(self, make_vm, registry):
        from repro.core.tracing import TraceEventType

        def region(m):
            m.barrier()

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(2), registry=registry)
        vm.tracer.enable(TraceEventType.BARRIER_ENTER)
        vm.run("T")
        assert len(vm.tracer.of_type(TraceEventType.BARRIER_ENTER)) == 3


class TestCritical:
    def test_critical_protects_shared_update(self, make_vm, registry):
        def region(m):
            blk = m.common("S")
            for _ in range(10):
                with m.critical("L"):
                    v = blk.x[()]
                    m.compute(3)        # widen the race window
                    blk.x[()] = v + 1

        @registry.tasktype("T", shared={"S": {"x": ("i8", ())}},
                           locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)
            return int(ctx.common("S").x[()])

        vm = make_vm(config=force_cfg(3), registry=registry)
        assert vm.run("T").value == 40

    def test_lock_grants_are_fifo(self, make_vm, registry):
        order = []

        def region(m):
            with m.critical("L"):
                m.compute(50)
                order.append(m.member)

        @registry.tasktype("T", locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        vm.run("T")
        assert sorted(order) == [0, 1, 2, 3]
        assert len(set(order)) == 4

    def test_lock_unlock_traced(self, make_vm, registry):
        from repro.core.tracing import TraceEventType

        def region(m):
            with m.critical("L"):
                pass

        @registry.tasktype("T", locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(1), registry=registry)
        vm.tracer.enable(TraceEventType.LOCK, TraceEventType.UNLOCK)
        vm.run("T")
        assert len(vm.tracer.of_type(TraceEventType.LOCK)) == 2
        assert len(vm.tracer.of_type(TraceEventType.UNLOCK)) == 2

    def test_contention_statistics(self, make_vm, registry):
        def region(m):
            with m.critical("L"):
                m.compute(100)

        @registry.tasktype("T", locks=("L",))
        def t(ctx):
            ctx.forcesplit(region)
            lk = ctx.task.shared_state.locks["L"]
            return lk.acquisitions, lk.contended_acquisitions

        vm = make_vm(config=force_cfg(3), registry=registry)
        acq, contended = vm.run("T").value
        assert acq == 4 and contended >= 1


class TestLoops:
    def test_presched_interleaves_iterations(self, make_vm, registry):
        def region(m):
            return list(m.presched(range(10)))

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(2), registry=registry)
        parts = vm.run("T").value
        assert parts[0] == [0, 3, 6, 9]
        assert parts[1] == [1, 4, 7]
        assert parts[2] == [2, 5, 8]

    def test_presched_partition_complete_and_disjoint(self, make_vm,
                                                      registry):
        def region(m):
            return list(m.presched(17))

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        parts = vm.run("T").value
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(17))

    def test_selfsched_covers_all_iterations_once(self, make_vm, registry):
        def region(m):
            out = []
            for i in m.selfsched(range(12)):
                m.compute(10 * (i % 4))
                out.append(i)
            return out

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(3), registry=registry)
        parts = vm.run("T").value
        flat = sorted(i for p in parts for i in p)
        assert flat == list(range(12))

    def test_selfsched_balances_skewed_work_better_than_presched(
            self, make_vm, registry):
        # Iteration cost grows with index; PRESCHED gives the cyclic
        # pattern (balanced here), so skew the cost per *block* instead:
        # first half cheap, second half expensive -- cyclic PRESCHED
        # still balances, so use a pathological alternating cost where
        # cyclic assignment concentrates cost on one member.
        def presched_region(m):
            t0 = m.now()
            for i in m.presched(range(16)):
                m.compute(100 if i % 4 == m.force.size else 100 * (i % 4 == 0))
            return m.now() - t0

        def selfsched_region(m):
            for i in m.selfsched(range(16)):
                m.compute(400 if i % 4 == 0 else 1)
            return None

        @registry.tasktype("PRE")
        def pre(ctx):
            # every 4th iteration costs 400, others 1; with 4 members the
            # cyclic map gives ALL expensive iterations to member 0.
            def region(m):
                for i in m.presched(range(16)):
                    m.compute(400 if i % 4 == 0 else 1)
            ctx.forcesplit(region)

        @registry.tasktype("SELF")
        def self_(ctx):
            ctx.forcesplit(selfsched_region)

        vm1 = make_vm(config=force_cfg(3), registry=registry)
        t_pre = vm1.run("PRE").elapsed
        vm2 = make_vm(config=force_cfg(3), registry=registry)
        t_self = vm2.run("SELF").elapsed
        assert t_self < t_pre

    def test_parseg_distributes_segments_round_robin(self, make_vm,
                                                     registry):
        def region(m):
            segs = [lambda k=k: k for k in range(7)]
            return m.parseg(*segs)

        @registry.tasktype("T")
        def t(ctx):
            return ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(2), registry=registry)
        parts = vm.run("T").value
        assert parts[0] == [0, 3, 6]
        assert parts[1] == [1, 4]
        assert parts[2] == [2, 5]

    def test_selfsched_mismatched_totals_rejected(self, make_vm, registry):
        def region(m):
            n = 5 if m.member == 0 else 6
            for _ in m.selfsched(range(n)):
                pass

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        vm = make_vm(config=force_cfg(1), registry=registry)
        with pytest.raises(RuntimeLibraryError):
            vm.run("T")
