"""Behavioral tests: the system ACCEPT timeout, its environment
override, and retry/backoff escalation."""

import pytest

from repro.config.configuration import (
    DEFAULT_ACCEPT_DELAY,
    Configuration,
    ClusterSpec,
    default_accept_delay,
)
from repro.core.accept import RetryPolicy
from repro.core.taskid import PARENT, SAME
from repro.errors import AcceptTimeout, ConfigurationError, MessageError


class TestEnvironmentOverride:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("PISCES_ACCEPT_TIMEOUT", raising=False)
        assert default_accept_delay() == DEFAULT_ACCEPT_DELAY

    def test_env_sets_the_system_timeout(self, monkeypatch):
        monkeypatch.setenv("PISCES_ACCEPT_TIMEOUT", "5000")
        assert default_accept_delay() == 5000
        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),))
        assert cfg.default_accept_delay == 5000

    @pytest.mark.parametrize("bad", ["banana", "12.5", "0", "-3"])
    def test_invalid_values_rejected(self, monkeypatch, bad):
        monkeypatch.setenv("PISCES_ACCEPT_TIMEOUT", bad)
        with pytest.raises(ConfigurationError, match="PISCES_ACCEPT_TIMEOUT"):
            default_accept_delay()

    def test_accept_without_delay_times_out_at_system_timeout(
            self, monkeypatch, make_vm, registry):
        monkeypatch.setenv("PISCES_ACCEPT_TIMEOUT", "5000")

        @registry.tasktype("MAIN")
        def main(ctx):
            start = ctx.vm.engine.now()
            res = ctx.accept("NEVER", timeout_ok=True)   # no DELAY clause
            return res.timed_out, ctx.vm.engine.now() - start

        vm = make_vm(registry=registry)
        timed_out, waited = vm.run("MAIN").value
        assert timed_out
        assert 5000 <= waited < DEFAULT_ACCEPT_DELAY

    def test_timeout_raises_typed_error_by_default(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.accept("NEVER", delay=2000)

        vm = make_vm(registry=registry)
        with pytest.raises(AcceptTimeout, match="NEVER"):
            vm.run("MAIN")


class TestRetryPolicy:
    def test_wait_ticks_backs_off_multiplicatively(self):
        p = RetryPolicy(retries=3, backoff=2.0)
        assert [p.wait_ticks(1000, a) for a in (1, 2, 3)] == [2000, 4000,
                                                              8000]

    def test_wait_never_returns_zero(self):
        assert RetryPolicy(retries=1, backoff=1.0).wait_ticks(0, 1) == 1

    def test_validation(self):
        with pytest.raises(MessageError):
            RetryPolicy(retries=-1)
        with pytest.raises(MessageError):
            RetryPolicy(retries=1, backoff=0.5)


class TestRetryEscalation:
    def test_retries_escalate_before_surfacing_the_timeout(self, make_vm,
                                                           registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            start = ctx.vm.engine.now()
            res = ctx.accept("NEVER", delay=1000, timeout_ok=True,
                             retry=RetryPolicy(retries=2, backoff=2.0))
            return res.timed_out, ctx.vm.engine.now() - start

        vm = make_vm(registry=registry)
        timed_out, waited = vm.run("MAIN").value
        assert timed_out
        assert waited >= 1000 + 2000 + 4000      # base + two backed-off waits
        assert vm.stats.accept_retries == 2

    def test_message_arriving_during_a_retry_window_is_received(
            self, make_vm, registry):
        @registry.tasktype("LATE")
        def late(ctx):
            ctx.compute(2500)
            ctx.send(PARENT, "RESULT", 99)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("LATE", on=SAME)
            res = ctx.accept("RESULT", delay=1000,
                             retry=RetryPolicy(retries=3, backoff=2.0))
            return res.timed_out, res.args[0]

        vm = make_vm(registry=registry)
        timed_out, value = vm.run("MAIN").value
        assert not timed_out and value == 99
        assert vm.stats.accept_retries >= 1

    def test_configuration_default_policy_applies(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            res = ctx.accept("NEVER", delay=1000, timeout_ok=True)
            return res.timed_out

        vm = make_vm(registry=registry, accept_retries=2,
                     accept_backoff=3.0)
        assert vm.run("MAIN").value is True
        assert vm.stats.accept_retries == 2

    def test_explicit_retry_beats_configuration_default(self, make_vm,
                                                        registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            res = ctx.accept("NEVER", delay=1000, timeout_ok=True,
                             retry=RetryPolicy(retries=0))
            return res.timed_out

        vm = make_vm(registry=registry, accept_retries=5)
        assert vm.run("MAIN").value is True
        assert vm.stats.accept_retries == 0
