"""Unit tests: packed sizes and table sizing."""

import numpy as np
import pytest

from repro.core.sizes import (
    CLUSTER_ENTRY_BYTES,
    MSG_HEADER_BYTES,
    PACKET_HEADER_BYTES,
    PACKET_PAYLOAD_BYTES,
    SLOT_ENTRY_BYTES,
    TASKID_BYTES,
    TASK_RECORD_BYTES,
    WINDOW_BYTES,
    message_bytes,
    packed_size,
    slot_table_bytes,
    window_transfer_cost,
)
from repro.core.taskid import TaskId
from repro.core.windows import Window


class TestPackedSize:
    def test_numbers_are_8_bytes(self):
        assert packed_size(5) == 8
        assert packed_size(3.14) == 8
        assert packed_size(np.int64(2)) == 8
        assert packed_size(np.float64(2.5)) == 8

    def test_bool_is_4(self):
        assert packed_size(True) == 4

    def test_strings_rounded_to_word(self):
        assert packed_size("") == 4
        assert packed_size("ab") == 4
        assert packed_size("abcde") == 8

    def test_taskid_and_window_struct_sizes(self):
        assert packed_size(TaskId(1, 2, 3)) == TASKID_BYTES
        w = Window(owner=TaskId(1, 1, 1), array="A", bounds=((0, 4),),
                   dtype="float64", base_shape=(4,))
        assert packed_size(w) == WINDOW_BYTES

    def test_array_is_raw_bytes(self):
        a = np.zeros(10, dtype="f8")
        assert packed_size(a) == 80

    def test_sequences_sum(self):
        assert packed_size([1, 2.0, "ab"]) == 8 + 8 + 4
        assert packed_size((1,)) == 8

    def test_dict_and_none(self):
        assert packed_size(None) == 4
        assert packed_size({"a": 1}) == 4 + 8


class TestMessageBytes:
    def test_empty_message_is_header_only(self):
        total, npk = message_bytes(())
        assert total == MSG_HEADER_BYTES
        assert npk == 0

    def test_payload_splits_into_packets(self):
        args = (np.zeros(20, dtype="f8"),)   # 160 bytes -> 3 packets
        total, npk = message_bytes(args)
        assert npk == 3
        assert total == MSG_HEADER_BYTES + 3 * (PACKET_HEADER_BYTES
                                                + PACKET_PAYLOAD_BYTES)

    def test_small_args_fit_one_packet(self):
        total, npk = message_bytes((1, 2, 3))
        assert npk == 1


class TestTableSizes:
    def test_slot_table_formula(self):
        got = slot_table_bytes(4, 3)
        assert got == CLUSTER_ENTRY_BYTES + 7 * (SLOT_ENTRY_BYTES
                                                 + TASK_RECORD_BYTES)

    def test_window_transfer_cost_scales_with_bytes(self):
        assert window_transfer_cost(1600) > window_transfer_cost(16)
