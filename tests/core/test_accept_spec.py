"""Unit tests: ACCEPT specification normalization and progress logic."""

import pytest

from repro.core.accept import (
    ALL_RECEIVED,
    AcceptResult,
    AcceptState,
    normalize_specs,
)
from repro.core.messages import Message
from repro.core.taskid import TaskId
from repro.errors import MessageError

A = TaskId(1, 1, 1)


def mk(mtype, args=()):
    return Message(mtype=mtype, args=tuple(args), sender=A, receiver=A,
                   send_time=0, arrival_time=0)


class TestNormalize:
    def test_plain_names_want_one_each(self):
        s = normalize_specs(("A", "B"), None)
        assert s.per_type == {"A": 1, "B": 1}
        assert s.total is None

    def test_total_count_mode(self):
        s = normalize_specs(("A", "B"), 3)
        assert s.total == 3
        assert set(s.per_type) == {"A", "B"}

    def test_per_type_counts(self):
        s = normalize_specs((("A", 2), ("B", ALL_RECEIVED)), None)
        assert s.per_type == {"A": 2, "B": None}

    def test_mixing_total_with_tuples_rejected(self):
        with pytest.raises(MessageError):
            normalize_specs((("A", 2),), 3)

    def test_empty_rejected(self):
        with pytest.raises(MessageError):
            normalize_specs((), None)

    def test_negative_counts_rejected(self):
        with pytest.raises(MessageError):
            normalize_specs((("A", -1),), None)
        with pytest.raises(MessageError):
            normalize_specs(("A",), -2)

    def test_bad_spec_shape_rejected(self):
        with pytest.raises(MessageError):
            normalize_specs((42,), None)


class TestAcceptState:
    def test_total_mode_counts_across_types(self):
        st = AcceptState(normalize_specs(("A", "B"), 3))
        assert st.wants("A") and st.wants("B")
        st.take(mk("A"))
        st.take(mk("B"))
        assert not st.satisfied()
        st.take(mk("A"))
        assert st.satisfied()
        assert not st.wants("A")

    def test_per_type_mode_tracks_each(self):
        st = AcceptState(normalize_specs((("A", 2), ("B", 1)), None))
        st.take(mk("A"))
        assert st.wants("A") and st.wants("B")
        st.take(mk("A"))
        assert not st.wants("A")
        assert not st.satisfied()
        st.take(mk("B"))
        assert st.satisfied()

    def test_all_received_is_satisfied_immediately(self):
        st = AcceptState(normalize_specs((("A", ALL_RECEIVED),), None))
        assert st.satisfied()
        assert st.wants("A")        # still drains what is present

    def test_unlisted_type_never_wanted(self):
        st = AcceptState(normalize_specs(("A",), None))
        assert not st.wants("Z")

    def test_wanted_types_open(self):
        st = AcceptState(normalize_specs((("A", 1), ("B", ALL_RECEIVED)),
                                         None))
        assert st.wanted_types_open() == ["A"]
        st.take(mk("A"))
        assert st.wanted_types_open() == []

    def test_zero_count_spec_is_trivially_satisfied(self):
        st = AcceptState(normalize_specs((("A", 0),), None))
        assert st.satisfied()
        st2 = AcceptState(normalize_specs(("A",), 0))
        assert st2.satisfied()


class TestAcceptResult:
    def test_counts_and_by_type(self):
        r = AcceptResult(messages=[mk("A"), mk("B"), mk("A")])
        assert r.count == 3
        assert r.by_type() == {"A": 2, "B": 1}
        assert len(r.of_type("A")) == 2

    def test_args_of_first_message(self):
        r = AcceptResult(messages=[mk("A", (1, 2))])
        assert r.args == (1, 2)

    def test_args_on_empty_result_raises(self):
        with pytest.raises(MessageError):
            AcceptResult().args
        with pytest.raises(MessageError):
            AcceptResult().sender
