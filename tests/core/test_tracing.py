"""Unit tests: trace events, filtering and the file format."""

import io

import pytest

from repro.core.taskid import TaskId
from repro.core.tracing import (
    ALL_EVENT_TYPES,
    PAPER_EVENT_TYPES,
    TraceEvent,
    TraceEventType,
    Tracer,
)

T1 = TaskId(1, 1, 1)
T2 = TaskId(2, 1, 1)


def ev(etype=TraceEventType.MSG_SEND, task=T1, info="type=GO", other=None):
    return TraceEvent(etype=etype, task=task, pe=3, ticks=123, info=info,
                      other=other)


class TestEventTypes:
    def test_the_eight_paper_event_types_exist(self):
        names = {t.value for t in PAPER_EVENT_TYPES}
        assert names == {"TASK_INIT", "TASK_TERM", "MSG_SEND", "MSG_ACCEPT",
                         "LOCK", "UNLOCK", "BARRIER_ENTER", "FORCE_SPLIT"}

    def test_fault_is_an_extension_event_type(self):
        # FAULT is this reproduction's addition, deliberately outside
        # the paper's eight.
        assert TraceEventType.FAULT in ALL_EVENT_TYPES
        assert TraceEventType.FAULT not in PAPER_EVENT_TYPES


class TestLineFormat:
    def test_line_contains_type_task_pe_ticks(self):
        line = ev().line()
        assert line.startswith("TRACE MSG_SEND")
        assert "task=1.1.1" in line and "pe=3" in line and "ticks=123" in line

    def test_parse_roundtrip(self):
        e = ev(other=T2)
        assert TraceEvent.parse(e.line()) == e

    def test_parse_rejects_non_trace_lines(self):
        with pytest.raises(ValueError):
            TraceEvent.parse("hello world")


class TestTracer:
    def test_disabled_by_default(self):
        tr = Tracer()
        tr.emit(ev())
        assert list(tr.events) == [] and tr.dropped == 1

    def test_enable_specific_type(self):
        tr = Tracer()
        tr.enable(TraceEventType.MSG_SEND)
        tr.emit(ev())
        tr.emit(ev(etype=TraceEventType.LOCK))
        assert len(tr.events) == 1

    def test_enable_with_no_args_enables_all(self):
        tr = Tracer()
        tr.enable()
        assert tr.enabled_types == set(ALL_EVENT_TYPES)

    def test_disable_specific_and_all(self):
        tr = Tracer()
        tr.enable_all()
        tr.disable(TraceEventType.LOCK)
        assert TraceEventType.LOCK not in tr.enabled_types
        tr.disable()
        assert not tr.enabled_types

    def test_mute_task(self):
        tr = Tracer()
        tr.enable_all()
        tr.mute_task(T1)
        tr.emit(ev(task=T1))
        tr.emit(ev(task=T2))
        assert [e.task for e in tr.events] == [T2]

    def test_solo_task(self):
        tr = Tracer()
        tr.enable_all()
        tr.solo_task(T2)
        tr.emit(ev(task=T1))
        tr.emit(ev(task=T2))
        assert [e.task for e in tr.events] == [T2]

    def test_file_sink_writes_parseable_lines(self):
        tr = Tracer()
        tr.enable_all()
        buf = io.StringIO()
        tr.to_file(buf)
        tr.emit(ev())
        tr.emit(ev(etype=TraceEventType.LOCK, info="lock=L"))
        lines = buf.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert TraceEvent.parse(lines[1]).etype is TraceEventType.LOCK

    def test_screen_sink(self):
        tr = Tracer()
        tr.enable_all()
        seen = []
        tr.to_screen(seen.append)
        tr.emit(ev())
        assert len(seen) == 1 and seen[0].startswith("TRACE")

    def test_queries(self):
        tr = Tracer()
        tr.enable_all()
        tr.emit(ev())
        tr.emit(ev(etype=TraceEventType.LOCK, task=T2, info="lock=L"))
        assert len(tr.of_type(TraceEventType.LOCK)) == 1
        assert len(tr.for_task(T2)) == 1

    def test_keep_in_memory_off(self):
        tr = Tracer()
        tr.enable_all()
        tr.keep_in_memory = False
        tr.emit(ev())
        assert list(tr.events) == []

    def test_ring_buffer_caps_events_and_counts_overflow(self):
        tr = Tracer(max_events=3)
        tr.enable_all()
        for i in range(5):
            tr.emit(ev(info=f"n={i}"))
        assert len(tr.events) == 3
        assert [e.info for e in tr.events] == ["n=2", "n=3", "n=4"]
        assert tr.overflow_dropped == 2
        assert "overflowed" in tr.describe()

    def test_no_overflow_below_capacity(self):
        tr = Tracer(max_events=10)
        tr.enable_all()
        tr.emit(ev())
        assert tr.overflow_dropped == 0


class TestHostileInfoRoundtrip:
    """The info field must survive line()/parse() whatever it contains."""

    HOSTILE = [
        'type=GO task=9.9.9 pe=7 ticks=0',
        'info="nested" info="twice"',
        'task= pe= ticks= other=',
        'a "quoted" string with \\ backslashes',
        "newline\nand\ttab",
        "",
        "unicode éß☃",
        " leading and trailing ",
    ]

    @pytest.mark.parametrize("info", HOSTILE)
    def test_roundtrip_exact(self, info):
        e = ev(info=info, other=T2)
        assert TraceEvent.parse(e.line()) == e

    def test_legacy_unquoted_lines_still_parse(self):
        line = "TRACE MSG_SEND task=1.1.1 pe=3 ticks=123 info=type=GO"
        e = TraceEvent.parse(line)
        assert e.info == "type=GO" and e.pe == 3 and e.ticks == 123

    def test_roundtrip_property(self):
        hypothesis = pytest.importorskip("hypothesis")
        from hypothesis import given, settings, strategies as st

        @settings(max_examples=200, deadline=None)
        @given(st.text(max_size=80))
        def check(info):
            e = ev(info=info)
            assert TraceEvent.parse(e.line()) == e

        check()
