"""Unit tests: messages, in-queues and heap accounting."""

import pytest

from repro.core.messages import (
    InQueue,
    Message,
    allocate_message,
    release_message,
)
from repro.core.taskid import TaskId
from repro.flex.memory import HeapAllocator

A = TaskId(1, 1, 1)
B = TaskId(2, 1, 1)


def msg(mtype, arrival, heap=None, args=()):
    if heap is None:
        return Message(mtype=mtype, args=tuple(args), sender=A, receiver=B,
                       send_time=max(0, arrival - 10), arrival_time=arrival)
    return allocate_message(heap, mtype, tuple(args), A, B,
                            max(0, arrival - 10), arrival)


class TestAllocation:
    def test_allocate_claims_and_release_frees(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h, args=(1, 2))
        assert h.stats.live_bytes == m.nbytes
        release_message(h, m)
        assert h.stats.live_bytes == 0

    def test_release_is_idempotent(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h)
        release_message(h, m)
        release_message(h, m)   # second call is a no-op
        assert h.stats.live_bytes == 0

    def test_nbytes_survives_release_for_statistics(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h, args=("abc",))
        n = m.nbytes
        release_message(h, m)
        assert m.nbytes == n > 0


class TestInQueue:
    def test_enqueue_orders_by_arrival_then_seq(self):
        q = InQueue(B)
        m1 = msg("A", 30)
        m2 = msg("B", 10)
        m3 = msg("C", 30)   # same arrival as m1, later seq
        for m in (m1, m2, m3):
            q.enqueue(m)
        assert [m.mtype for m in q.messages()] == ["B", "A", "C"]

    def test_first_matching_respects_not_after(self):
        q = InQueue(B)
        q.enqueue(msg("T", 100))
        assert q.first_matching(["T"], not_after=50) is None
        assert q.first_matching(["T"], not_after=100).mtype == "T"

    def test_first_matching_filters_types(self):
        q = InQueue(B)
        q.enqueue(msg("X", 5))
        q.enqueue(msg("Y", 6))
        assert q.first_matching(["Y"], not_after=10).mtype == "Y"

    def test_earliest_arrival_after(self):
        q = InQueue(B)
        q.enqueue(msg("T", 40))
        q.enqueue(msg("T", 90))
        assert q.earliest_arrival(["T"], after=40) == 90
        assert q.earliest_arrival(["T"], after=90) is None
        assert q.earliest_arrival(["Z"], after=0) is None

    def test_remove_type_specific_and_all(self):
        q = InQueue(B)
        q.enqueue(msg("A", 1))
        q.enqueue(msg("B", 2))
        q.enqueue(msg("A", 3))
        dropped = q.remove_type("A")
        assert len(dropped) == 2 and len(q) == 1
        dropped = q.remove_type(None)
        assert len(dropped) == 1 and len(q) == 0

    def test_total_received_counts_all_enqueues(self):
        q = InQueue(B)
        for i in range(5):
            q.enqueue(msg("T", i))
        q.remove_type(None)
        assert q.total_received == 5

    def test_live_bytes_sums_queued_messages(self):
        h = HeapAllocator(8192)
        q = InQueue(B)
        m1, m2 = msg("A", 1, heap=h), msg("B", 2, heap=h, args=(1.5,))
        q.enqueue(m1)
        q.enqueue(m2)
        assert q.live_bytes() == m1.nbytes + m2.nbytes

    def test_describe_mentions_contents(self):
        q = InQueue(B)
        assert "empty" in q.describe()
        q.enqueue(msg("HELLO", 4))
        assert "HELLO" in q.describe()
