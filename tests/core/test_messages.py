"""Unit tests: messages, in-queues and heap accounting."""

import pytest

from repro.core.messages import (
    InQueue,
    Message,
    allocate_message,
    release_message,
)
from repro.core.taskid import TaskId
from repro.flex.memory import HeapAllocator

A = TaskId(1, 1, 1)
B = TaskId(2, 1, 1)


def msg(mtype, arrival, heap=None, args=()):
    if heap is None:
        return Message(mtype=mtype, args=tuple(args), sender=A, receiver=B,
                       send_time=max(0, arrival - 10), arrival_time=arrival)
    return allocate_message(heap, mtype, tuple(args), A, B,
                            max(0, arrival - 10), arrival)


class TestAllocation:
    def test_allocate_claims_and_release_frees(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h, args=(1, 2))
        assert h.stats.live_bytes == m.nbytes
        release_message(h, m)
        assert h.stats.live_bytes == 0

    def test_release_is_idempotent(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h)
        release_message(h, m)
        release_message(h, m)   # second call is a no-op
        assert h.stats.live_bytes == 0

    def test_nbytes_survives_release_for_statistics(self):
        h = HeapAllocator(4096)
        m = msg("T", 10, heap=h, args=("abc",))
        n = m.nbytes
        release_message(h, m)
        assert m.nbytes == n > 0


class TestInQueue:
    def test_enqueue_orders_by_arrival_then_seq(self):
        q = InQueue(B)
        m1 = msg("A", 30)
        m2 = msg("B", 10)
        m3 = msg("C", 30)   # same arrival as m1, later seq
        for m in (m1, m2, m3):
            q.enqueue(m)
        assert [m.mtype for m in q.messages()] == ["B", "A", "C"]

    def test_first_matching_respects_not_after(self):
        q = InQueue(B)
        q.enqueue(msg("T", 100))
        assert q.first_matching(["T"], not_after=50) is None
        assert q.first_matching(["T"], not_after=100).mtype == "T"

    def test_first_matching_filters_types(self):
        q = InQueue(B)
        q.enqueue(msg("X", 5))
        q.enqueue(msg("Y", 6))
        assert q.first_matching(["Y"], not_after=10).mtype == "Y"

    def test_earliest_arrival_after(self):
        q = InQueue(B)
        q.enqueue(msg("T", 40))
        q.enqueue(msg("T", 90))
        assert q.earliest_arrival(["T"], after=40) == 90
        assert q.earliest_arrival(["T"], after=90) is None
        assert q.earliest_arrival(["Z"], after=0) is None

    def test_remove_type_specific_and_all(self):
        q = InQueue(B)
        q.enqueue(msg("A", 1))
        q.enqueue(msg("B", 2))
        q.enqueue(msg("A", 3))
        dropped = q.remove_type("A")
        assert len(dropped) == 2 and len(q) == 1
        dropped = q.remove_type(None)
        assert len(dropped) == 1 and len(q) == 0

    def test_total_received_counts_all_enqueues(self):
        q = InQueue(B)
        for i in range(5):
            q.enqueue(msg("T", i))
        q.remove_type(None)
        assert q.total_received == 5

    def test_live_bytes_sums_queued_messages(self):
        h = HeapAllocator(8192)
        q = InQueue(B)
        m1, m2 = msg("A", 1, heap=h), msg("B", 2, heap=h, args=(1.5,))
        q.enqueue(m1)
        q.enqueue(m2)
        assert q.live_bytes() == m1.nbytes + m2.nbytes

    def test_describe_mentions_contents(self):
        q = InQueue(B)
        assert "empty" in q.describe()
        q.enqueue(msg("HELLO", 4))
        assert "HELLO" in q.describe()


class TestTypedIndex:
    """Regressions for the per-mtype index kept beside the arrival list."""

    def _assert_consistent(self, q):
        """The index must always mirror the arrival-ordered list."""
        by_type = {}
        for m in q.messages():
            by_type.setdefault(m.mtype, []).append(m)
        assert {t: list(d) for t, d in q._by_type.items()} == by_type
        assert q.live_bytes() == sum(m.nbytes for m in q.messages())

    def test_out_of_order_enqueue_keeps_index_sorted(self):
        q = InQueue(B)
        late = msg("T", 50)
        early = msg("T", 10)    # lower arrival but later seq
        other = msg("U", 30)
        q.enqueue(late)
        q.enqueue(other)
        q.enqueue(early)
        assert [m.arrival_time for m in q.messages()] == [10, 30, 50]
        assert q.first_matching(["T"], not_after=20) is early
        self._assert_consistent(q)

    def test_remove_middle_and_front_updates_index(self):
        q = InQueue(B)
        ms = [msg("A", 1), msg("B", 2), msg("A", 3), msg("A", 4)]
        for m in ms:
            q.enqueue(m)
        q.remove(ms[2])                       # middle of the A deque
        assert q.first_matching(["A"], not_after=10) is ms[0]
        self._assert_consistent(q)
        q.remove(ms[0])                       # front of the A deque
        assert q.first_matching(["A"], not_after=10) is ms[3]
        self._assert_consistent(q)
        q.remove(ms[3])                       # A deque becomes empty
        assert q.first_matching(["A"], not_after=10) is None
        assert q.first_matching(["B"], not_after=10) is ms[1]
        self._assert_consistent(q)

    def test_remove_missing_message_raises(self):
        q = InQueue(B)
        q.enqueue(msg("T", 1))
        with pytest.raises(ValueError):
            q.remove(msg("T", 1))    # distinct object, identity equality

    def test_remove_type_single_pass_keeps_order_and_bytes(self):
        h = HeapAllocator(16384)
        q = InQueue(B)
        ms = [msg("A", 1, heap=h), msg("B", 2, heap=h),
              msg("A", 3, heap=h), msg("C", 4, heap=h)]
        for m in ms:
            q.enqueue(m)
        dropped = q.remove_type("A")
        assert dropped == [ms[0], ms[2]]      # queue order preserved
        assert [m.mtype for m in q.messages()] == ["B", "C"]
        assert q.remove_type("A") == []       # now absent
        self._assert_consistent(q)
        q.remove_type(None)
        assert q.live_bytes() == 0
        self._assert_consistent(q)

    def test_earliest_arrival_skips_arrived_backlog(self):
        # The DELAY-bound scenario: an ACCEPT at `now` needs the first
        # *future* arrival of its open types, behind already-arrived
        # (unwanted) backlog of other types.
        q = InQueue(B)
        for i in range(20):
            q.enqueue(msg("LOG", i))          # arrived, never accepted
        q.enqueue(msg("GO", 55))
        q.enqueue(msg("GO", 70))
        assert q.earliest_arrival(["GO"], after=30) == 55
        assert q.earliest_arrival(["GO"], after=55) == 70
        assert q.earliest_arrival(["GO", "LOG"], after=25) == 55
        assert q.earliest_arrival(["LOG"], after=25) is None

    def test_peek_returns_queue_head(self):
        q = InQueue(B)
        assert q.peek() is None
        a, b = msg("X", 20), msg("Y", 5)
        q.enqueue(a)
        q.enqueue(b)
        assert q.peek() is b
        q.remove(b)
        assert q.peek() is a

    def test_first_matching_duplicate_types_harmless(self):
        q = InQueue(B)
        m = msg("T", 5)
        q.enqueue(m)
        assert q.first_matching(["T", "T"], not_after=10) is m
