"""Behavioral tests: task initiation, messaging and ACCEPT semantics."""

import pytest

from repro.core.accept import ALL_RECEIVED
from repro.core.taskid import (
    ANY, Broadcast, Cluster, OTHER, PARENT, SAME, SELF, SENDER, TContr,
    TaskId, USER,
)
from repro.errors import (
    AcceptTimeout,
    MessageError,
    NoSuchCluster,
    UnknownTask,
    UnknownTaskType,
)


class TestInitiateAndTopology:
    def test_initiate_does_not_return_taskid(self, make_vm, registry):
        """Section 6: INITIATE just messages the task controller; the
        parent learns the child's taskid from the child's first message."""

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "HELLO")

        @registry.tasktype("MAIN")
        def main(ctx):
            assert ctx.initiate("CHILD", on=SAME) is None
            res = ctx.accept("HELLO")
            return res.sender

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert isinstance(r.value, TaskId)
        assert r.value.cluster == 1

    def test_child_knows_parent_and_self(self, make_vm, registry):
        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "IDS", ctx.self_id, ctx.parent)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            res = ctx.accept("IDS")
            return res.args, ctx.self_id

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        (child_self, child_parent), main_id = r.value
        assert child_parent == main_id
        assert child_self != main_id

    def test_same_other_cluster_placement(self, make_vm, registry):
        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "WHERE", ctx.cluster_number)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("CHILD", on=SAME)
            ctx.initiate("CHILD", on=OTHER)
            ctx.initiate("CHILD", on=Cluster(2))
            res = ctx.accept("WHERE", count=3)
            return sorted(m.args[0] for m in res.messages)

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == [1, 2, 2]

    def test_any_prefers_most_free_cluster(self, make_vm, registry):
        @registry.tasktype("SLEEPER")
        def sleeper(ctx):
            ctx.accept("GO", delay=5000, timeout_ok=True)

        @registry.tasktype("CHILD")
        def child(ctx):
            ctx.send(PARENT, "WHERE", ctx.cluster_number)

        @registry.tasktype("MAIN")
        def main(ctx):
            # Fill two slots of cluster 1 (ours), leaving cluster 2 freer.
            ctx.initiate("SLEEPER", on=SAME)
            ctx.initiate("SLEEPER", on=SAME)
            ctx.accept("NOTHING", delay=200, timeout_ok=True)  # let them start
            ctx.initiate("CHILD", on=ANY)
            res = ctx.accept("WHERE")
            return res.args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 2

    def test_unknown_tasktype_fails_fast(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("NOPE")

        vm = make_vm(registry=registry)
        with pytest.raises(UnknownTaskType):
            vm.run("MAIN")

    def test_other_with_single_cluster_fails(self, make_vm, registry):
        from repro.config.configuration import ClusterSpec, Configuration

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("MAIN", on=OTHER)

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 4),))
        vm = make_vm(config=cfg, registry=registry)
        with pytest.raises(NoSuchCluster):
            vm.run("MAIN")

    def test_taskid_unique_number_distinguishes_slot_reuse(self, make_vm,
                                                           registry):
        @registry.tasktype("BRIEF")
        def brief(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)

        @registry.tasktype("MAIN")
        def main(ctx):
            from repro.config.configuration import ClusterSpec
            ids = []
            for _ in range(3):
                ctx.initiate("BRIEF", on=Cluster(2))
                ids.append(ctx.accept("IAM").args[0])
            return ids

        from repro.config.configuration import ClusterSpec, Configuration
        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),
                                      ClusterSpec(2, 4, 1)))
        vm = make_vm(config=cfg, registry=registry)
        ids = vm.run("MAIN").value
        assert [t.slot for t in ids] == [1, 1, 1]           # same slot
        assert [t.unique for t in ids] == [1, 2, 3]          # new uniques


class TestSendTargets:
    def test_self_send(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "NOTE", 7)
            return ctx.accept("NOTE").args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 7

    def test_sender_replies_to_last_received(self, make_vm, registry):
        @registry.tasktype("PINGER")
        def pinger(ctx, n):
            ctx.send(PARENT, "PING", n)
            return ctx.accept("PONG").args[0]

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("PINGER", 1, on=SAME)
            ctx.accept("PING")
            ctx.send(SENDER, "PONG", 99)

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        pinger_task = [t for t in r.vm.tasks.values()
                       if t.ttype.name == "PINGER"][0]
        assert pinger_task.result == 99

    def test_sender_before_any_receive_is_error(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SENDER, "X")

        vm = make_vm(registry=registry)
        with pytest.raises(MessageError):
            vm.run("MAIN")

    def test_user_messages_reach_terminal(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(USER, "REPORT", 42, "done")

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert len(r.vm.user_messages) == 1
        mtype, args, sender, _ = r.vm.user_messages[0]
        assert mtype == "REPORT" and args == (42, "done")
        assert "REPORT" in r.console

    def test_tcontr_destination_reaches_controller(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(TContr(2), "WHATEVER")   # unknown types are dropped

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert r.stats.messages_sent >= 1

    def test_send_to_stale_taskid_is_dropped(self, make_vm, registry):
        @registry.tasktype("BRIEF")
        def brief(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("BRIEF", on=SAME)
            tid = ctx.accept("IAM").args[0]
            ctx.accept("X", delay=2000, timeout_ok=True)  # let BRIEF die
            ctx.send(tid, "LATE")
            return tid

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        assert r.stats.messages_to_dead == 1

    def test_send_to_never_existing_taskid_raises(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(TaskId(1, 1, 999), "X")

        vm = make_vm(registry=registry)
        with pytest.raises(UnknownTask):
            vm.run("MAIN")


class TestBroadcast:
    def test_broadcast_all_clusters_excludes_sender(self, make_vm, registry):
        @registry.tasktype("LISTENER")
        def listener(ctx):
            ctx.send(PARENT, "READY")
            ctx.accept("SHOUT")
            ctx.send(PARENT, "HEARD", ctx.cluster_number)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("LISTENER", on=Cluster(1))
            ctx.initiate("LISTENER", on=Cluster(2))
            ctx.accept("READY", count=2)
            n = ctx.broadcast("SHOUT")
            res = ctx.accept("HEARD", count=2)
            return n, sorted(m.args[0] for m in res.messages)

        vm = make_vm(registry=registry)
        n, clusters = vm.run("MAIN").value
        assert n == 2 and clusters == [1, 2]

    def test_broadcast_single_cluster(self, make_vm, registry):
        @registry.tasktype("LISTENER")
        def listener(ctx):
            ctx.send(PARENT, "READY")
            res = ctx.accept("SHOUT", delay=3000, timeout_ok=True)
            ctx.send(PARENT, "HEARD", 0 if res.timed_out else 1)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("LISTENER", on=Cluster(1))
            ctx.initiate("LISTENER", on=Cluster(2))
            ctx.accept("READY", count=2)
            ctx.broadcast("SHOUT", cluster=2)
            res = ctx.accept("HEARD", count=2)
            return sum(m.args[0] for m in res.messages)

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 1   # only the cluster-2 listener

    def test_broadcast_to_unknown_cluster_raises(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.broadcast("X", cluster=9)

        vm = make_vm(registry=registry)
        with pytest.raises(NoSuchCluster):
            vm.run("MAIN")


class TestAcceptBehaviour:
    def test_accept_releases_message_storage(self, make_vm, registry):
        """Section 11/13: explicit deallocation as messages are accepted."""

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "A", 1, 2, 3)
            heap = ctx.vm.machine.shared
            before = heap.live_bytes_by_tag().get("message", 0)
            assert before > 0
            ctx.accept("A")
            after = heap.live_bytes_by_tag().get("message", 0)
            return before, after

        vm = make_vm(registry=registry)
        before, after = vm.run("MAIN").value
        assert after < before

    def test_handler_called_with_message_args(self, make_vm, registry):
        seen = []

        def on_data(ctx, a, b):
            seen.append((a, b))

        @registry.tasktype("MAIN", handlers={"DATA": on_data})
        def main(ctx):
            ctx.send(SELF, "DATA", 4, 5)
            ctx.accept("DATA")

        vm = make_vm(registry=registry)
        vm.run("MAIN")
        assert seen == [(4, 5)]

    def test_same_message_type_interpreted_differently_per_receiver(
            self, make_vm, registry):
        """Section 6: the receiver decides signal-vs-handler, so one
        message type can mean different things to different tasks."""
        handled = []

        def handler(ctx, x):
            handled.append(x)

        @registry.tasktype("WITHHANDLER", handlers={"EVENT": handler})
        def withhandler(ctx):
            ctx.send(PARENT, "READY")
            ctx.accept("EVENT")
            ctx.send(PARENT, "OK")

        @registry.tasktype("ASSIGNAL")
        def assignal(ctx):
            ctx.send(PARENT, "READY")
            res = ctx.accept("EVENT")           # plain signal: counted
            ctx.send(PARENT, "OK", res.count)

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("WITHHANDLER", on=SAME)
            ctx.initiate("ASSIGNAL", on=SAME)
            kids = [ctx.accept("READY").sender for _ in range(2)]
            for k in kids:
                ctx.send(k, "EVENT", 7)
            ctx.accept("OK", count=2)

        vm = make_vm(registry=registry)
        vm.run("MAIN")
        assert handled == [7]

    def test_dynamic_handler_registration(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            got = []
            ctx.handler("LATE", lambda c, v: got.append(v))
            ctx.send(SELF, "LATE", 3)
            ctx.accept("LATE")
            return got

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == [3]

    def test_accept_timeout_raises_without_delay_handler(self, make_vm,
                                                         registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.accept("NEVER", delay=100)

        vm = make_vm(registry=registry)
        with pytest.raises(AcceptTimeout):
            vm.run("MAIN")

    def test_accept_timeout_runs_delay_clause(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ran = []
            res = ctx.accept("NEVER", delay=100, on_timeout=lambda: ran.append(1))
            return ran, res.timed_out

        vm = make_vm(registry=registry)
        ran, timed_out = vm.run("MAIN").value
        assert ran == [1] and timed_out

    def test_accept_timeout_ok_returns_partial(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "A")
            res = ctx.accept("A", "B", count=2, delay=100, timeout_ok=True)
            return res.timed_out, res.by_type()

        vm = make_vm(registry=registry)
        timed_out, by_type = vm.run("MAIN").value
        assert timed_out and by_type == {"A": 1}

    def test_all_received_drains_without_waiting(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            for i in range(3):
                ctx.send(SELF, "NOTE", i)
            # let them arrive
            ctx.accept("NOTE")   # takes the first
            res = ctx.accept(("NOTE", ALL_RECEIVED))
            return res.count

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == 2

    def test_messages_not_matching_stay_queued(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(SELF, "B", 1)
            ctx.send(SELF, "A", 2)
            a = ctx.accept("A")          # skips over the queued B
            b = ctx.accept("B")
            return a.args[0], b.args[0]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == (2, 1)

    def test_fifo_order_within_type(self, make_vm, registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            for i in range(4):
                ctx.send(SELF, "SEQ", i)
            res = ctx.accept(("SEQ", 4))
            return [m.args[0] for m in res.messages]

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == [0, 1, 2, 3]

    def test_default_delay_comes_from_configuration(self, make_vm, registry):
        from repro.config.configuration import ClusterSpec, Configuration

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.accept("NEVER")   # uses the system-provided timeout

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),),
                            default_accept_delay=50)
        vm = make_vm(config=cfg, registry=registry)
        with pytest.raises(AcceptTimeout):
            vm.run("MAIN")
        assert vm.machine.elapsed() < 5000
