"""Behavioral tests: controllers, slots, and task life-cycle."""

import pytest

from repro.config.configuration import ClusterSpec, Configuration
from repro.core.taskid import PARENT, SAME, TaskId


class TestSlotManagement:
    def test_initiate_held_until_slot_frees(self, make_vm, registry):
        """Section 6: with all slots full the controller holds the
        request until another task terminates."""

        @registry.tasktype("SHORT")
        def short(ctx, k):
            ctx.compute(100)
            ctx.send(PARENT, "FIN", k)

        @registry.tasktype("MAIN")
        def main(ctx):
            # Cluster 2 has 1 slot; queue three tasks into it.
            for k in range(3):
                ctx.initiate("SHORT", k, on=2)
            res = ctx.accept(("FIN", 3))
            return [m.args[0] for m in res.messages]

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),
                                      ClusterSpec(2, 4, 1)))
        vm = make_vm(config=cfg, registry=registry)
        r = vm.run("MAIN")
        assert sorted(r.value) == [0, 1, 2]
        # They ran one at a time through the single slot, FIFO.
        assert r.value == [0, 1, 2]
        assert r.stats.initiates_held >= 2

    def test_held_requests_counted(self, make_vm, registry):
        @registry.tasktype("W")
        def w(ctx):
            ctx.compute(50)

        @registry.tasktype("MAIN")
        def main(ctx):
            for _ in range(4):
                ctx.initiate("W", on=2)
            ctx.accept("X", delay=5000, timeout_ok=True)

        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),
                                      ClusterSpec(2, 4, 1)))
        vm = make_vm(config=cfg, registry=registry)
        r = vm.run("MAIN")
        assert r.stats.tasks_started == 5   # MAIN + 4 workers eventually

    def test_cluster_counters(self, make_vm, registry):
        @registry.tasktype("W")
        def w(ctx):
            pass

        @registry.tasktype("MAIN")
        def main(ctx):
            for _ in range(3):
                ctx.initiate("W", on=SAME)
            ctx.accept("X", delay=3000, timeout_ok=True)

        vm = make_vm(registry=registry)
        vm.run("MAIN")
        cr = vm.clusters[1]
        assert cr.tasks_initiated == 4      # MAIN + 3 workers
        assert cr.tasks_terminated >= 3


class TestKill:
    def test_kill_releases_slot_and_notifies(self, make_vm, registry):
        @registry.tasktype("HOG")
        def hog(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER")   # blocks for the system default

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("HOG", on=SAME)
            tid = ctx.accept("IAM").args[0]
            assert ctx.vm.kill_task(tid)
            ctx.accept("X", delay=2000, timeout_ok=True)
            return tid

        vm = make_vm(registry=registry)
        r = vm.run("MAIN")
        tid = r.value
        assert not vm.tasks[tid].alive
        slot = vm.clusters[tid.cluster].slots[tid.slot - 1]
        assert slot.free
        assert r.stats.tasks_killed == 1

    def test_kill_of_unknown_or_done_task_returns_false(self, make_vm,
                                                        registry):
        @registry.tasktype("MAIN")
        def main(ctx):
            return ctx.vm.kill_task(TaskId(1, 1, 99))

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value is False

    def test_killed_task_frees_its_messages(self, make_vm, registry):
        @registry.tasktype("HOG")
        def hog(ctx):
            ctx.send(PARENT, "IAM", ctx.self_id)
            ctx.accept("NEVER")

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.initiate("HOG", on=SAME)
            tid = ctx.accept("IAM").args[0]
            for i in range(5):
                ctx.send(tid, "JUNK", i)   # queues in HOG's in-queue
            heap = ctx.vm.machine.shared
            ctx.accept("X", delay=500, timeout_ok=True)
            before = heap.live_bytes_by_tag().get("message", 0)
            ctx.vm.kill_task(tid)
            ctx.accept("X", delay=2000, timeout_ok=True)
            after = heap.live_bytes_by_tag().get("message", 0)
            return before, after

        vm = make_vm(registry=registry)
        before, after = vm.run("MAIN").value
        assert after < before

    def test_kill_terminates_force_members(self, make_vm, registry):
        def region(m):
            if m.member > 0:
                m.vm.engine.block("member-stuck")
            else:
                m.task.vm.kill_task(m.self_id)

        @registry.tasktype("T")
        def t(ctx):
            ctx.forcesplit(region)

        cfg = Configuration(clusters=(
            ClusterSpec(1, 3, 2, secondary_pes=(4, 5)),))
        vm = make_vm(config=cfg, registry=registry)
        vm.run("T")   # completes without deadlock: members were killed
        assert vm.stats.tasks_killed == 1


class TestControllers:
    def test_controllers_occupy_reserved_slots(self, make_vm, registry):
        vm = make_vm(registry=registry)
        tcon_ids = [c.tid for c in vm.task_controllers.values()]
        assert all(t.slot == 0 for t in tcon_ids)
        assert vm.user_controller.tid.slot == -1
        assert vm.file_controller.tid.slot == -2

    def test_every_cluster_has_a_task_controller(self, make_vm, registry):
        vm = make_vm(registry=registry)
        assert set(vm.task_controllers) == set(vm.clusters)

    def test_unknown_message_to_task_controller_ignored(self, make_vm,
                                                        registry):
        from repro.core.taskid import TContr

        @registry.tasktype("MAIN")
        def main(ctx):
            ctx.send(TContr(1), "GIBBERISH", 1, 2)
            ctx.accept("X", delay=500, timeout_ok=True)
            return "survived"

        vm = make_vm(registry=registry)
        assert vm.run("MAIN").value == "survived"

    def test_user_controller_placement_configurable(self, make_vm, registry):
        cfg = Configuration(clusters=(ClusterSpec(1, 3, 2),
                                      ClusterSpec(2, 4, 2)),
                            user_cluster=2, file_cluster=2)
        vm = make_vm(config=cfg, registry=registry)
        assert vm.user_controller.cluster.number == 2
        assert vm.file_controller.cluster.number == 2
