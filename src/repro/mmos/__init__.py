"""MMOS kernel simulation: processes, deterministic scheduler, loadfiles."""

from .kernel import (
    COST_CPU_SWAP,
    COST_PROCESS_CREATE,
    COST_PROCESS_EXIT,
    COST_TERMINAL_IO,
    MMOSKernel,
)
from .loader import (
    CAT_MMOS_KERNEL,
    CAT_PISCES_CODE,
    CAT_PISCES_DATA,
    CAT_USER_CODE,
    CAT_USER_DATA,
    PISCES_SYSTEM_CATEGORIES,
    Loadfile,
)
from .process import KernelProcess, ProcState
from .scheduler import DEFAULT_KERNEL_COST, Engine

__all__ = [
    "CAT_MMOS_KERNEL",
    "CAT_PISCES_CODE",
    "CAT_PISCES_DATA",
    "CAT_USER_CODE",
    "CAT_USER_DATA",
    "COST_CPU_SWAP",
    "COST_PROCESS_CREATE",
    "COST_PROCESS_EXIT",
    "COST_TERMINAL_IO",
    "DEFAULT_KERNEL_COST",
    "Engine",
    "KernelProcess",
    "Loadfile",
    "MMOSKernel",
    "PISCES_SYSTEM_CATEGORIES",
    "ProcState",
]
