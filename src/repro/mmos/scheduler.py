"""Deterministic discrete-event multiprocessor engine.

This is the substrate substitution for the real MMOS kernel running on
20 FLEX/32 processors (DESIGN.md section 3).  The contract:

* every simulated process runs in its own Python thread, but the engine
  admits **exactly one** thread at a time;
* threads hand control back at *kernel points* -- every PISCES run-time
  library call, plus explicit ``compute(ticks)`` charges;
* each slice executed on PE *p* advances *p*'s virtual clock by the
  ticks charged during the slice; distinct PEs overlap in virtual time,
  processes sharing a PE serialize on it (multiprogramming);
* dispatch order: the runnable process with the least slice start time
  ``max(ready_time, pe_clock)``, ties broken by pid.  Dispatch starts
  are therefore non-decreasing, which guarantees no causality violation
  (a wake or message can never arrive in a receiver's past);
* a blocked process with a deadline is runnable at its deadline (the
  DELAY clause of ACCEPT); whoever wakes it earlier clears the deadline;
* when nothing is runnable and a non-daemon process is still blocked,
  the engine raises :class:`~repro.errors.DeadlockError` with a state
  dump instead of hanging.

Determinism: given the same program and configuration, every dispatch,
message arrival and timeout happens in the same order with the same
virtual timestamps.  The whole test-suite relies on this.

Two dispatcher implementations share that contract (see
``docs/architecture.md``, "Dispatch algorithm and determinism
contract"):

* ``indexed`` (default) -- a lazy-deletion min-heap over runnable
  processes, O(log n) per dispatch, with a per-process grant event so a
  context switch wakes exactly one thread;
* ``scan`` -- the original O(n) linear scan with a broadcast on one
  shared condition variable, kept as the reference oracle.  Both must
  produce bit-identical virtual timestamps and dispatch order; the
  property suite and the engine-throughput benchmark assert it.

The default can be forced with the ``PISCES_DISPATCHER`` environment
variable (``indexed`` or ``scan``).

Orthogonal to the dispatcher, two **execution cores** decide how a
granted process actually runs its slice (``PISCES_EXEC_CORE``, or the
:func:`create_engine` factory):

* ``threaded`` (this module's :class:`Engine`, the determinism oracle)
  -- every process body runs in its own OS thread; a dispatch is a
  grant-event wake plus a thread park;
* ``coop`` (:class:`repro.mmos.coop.CoopEngine`) -- a single-threaded
  discrete-event loop: coroutine bodies are resumed by a plain
  function call (no OS context switch on the hot path), callable
  bodies fall back to a pinned worker thread with a raw-lock handoff.

Both cores share this module's picker, hooks and slice bookkeeping, so
virtual timestamps, dispatch order and trace streams are bit-identical
across every core x dispatcher combination; the dispatcher-identity
matrix and the dispatch-equivalence property suite assert it.
"""

from __future__ import annotations

import heapq
import inspect
import threading
import time
import warnings
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..config.configuration import env_value
from ..errors import (
    DeadlockError,
    EngineShutdown,
    NotInProcess,
    ProcessKilled,
    TimeLimitExceeded,
)
from ..flex.machine import FlexMachine
from .process import (
    DEFAULT_KERNEL_COST,
    KernelOp,
    KernelProcess,
    ProcState,
    drive_kernel_ops,
)

#: Recognized dispatcher implementations.  ``replay`` re-executes a
#: recorded decision stream (see :mod:`repro.correctness.recorder`).
DISPATCHERS = ("indexed", "scan", "replay")

#: Recognized execution cores (see module docstring).
EXEC_CORES = ("threaded", "coop")


def default_dispatcher() -> str:
    """Dispatcher used when the Engine caller does not choose one."""
    d = env_value("PISCES_DISPATCHER", "indexed")
    if d not in DISPATCHERS:
        raise ValueError(
            f"PISCES_DISPATCHER={d!r}: must be one of {DISPATCHERS}")
    return d


def _live_dispatcher_for(schedule: Any) -> str:
    """The live dispatcher a replay of ``schedule`` continues with once
    the recorded stream runs dry (prefix schedules name one; anything
    else falls back to the environment default, never ``replay``)."""
    d = getattr(schedule, "live_dispatcher", "") or default_dispatcher()
    return d if d in ("indexed", "scan") else "indexed"


def default_exec_core() -> str:
    """Execution core used when the caller does not choose one."""
    c = env_value("PISCES_EXEC_CORE", "threaded")
    if c not in EXEC_CORES:
        raise ValueError(
            f"PISCES_EXEC_CORE={c!r}: must be one of {EXEC_CORES}")
    return c


def create_engine(machine: FlexMachine, time_limit: Optional[int] = None,
                  dispatcher: Optional[str] = None,
                  schedule: Optional[Any] = None,
                  exec_core: Optional[str] = None) -> "Engine":
    """Build an engine for ``exec_core`` (default: ``PISCES_EXEC_CORE``,
    then ``threaded``).  This is the one place that knows which class
    implements which core; the VM and benchmarks go through it."""
    if not exec_core:
        exec_core = default_exec_core()
    if exec_core not in EXEC_CORES:
        raise ValueError(
            f"exec_core {exec_core!r}: must be one of {EXEC_CORES}")
    if exec_core == "coop":
        from .coop import CoopEngine
        return CoopEngine(machine, time_limit=time_limit,
                          dispatcher=dispatcher, schedule=schedule)
    return Engine(machine, time_limit=time_limit, dispatcher=dispatcher,
                  schedule=schedule)


class Engine:
    """The MMOS scheduler/dispatcher for one machine (threaded core).

    Also the base class of the coop core: everything that decides *what
    runs next and when* (picker, keys, hooks, slice accounting) lives
    here and is shared; subclasses override only the handoff strategy
    (:meth:`_launch`, :meth:`_run_slice`, :meth:`_yield`,
    :meth:`_drain_process`).
    """

    #: Which execution core this class implements (manifest stamping).
    exec_core = "threaded"

    def __init__(self, machine: FlexMachine, time_limit: Optional[int] = None,
                 dispatcher: Optional[str] = None, schedule: Optional[Any] = None):
        self.machine = machine
        #: PE -> PEClock, cached off the ClockBank: the dispatch hot
        #: path touches a clock several times per slice and the mapping
        #: is immutable for the machine's lifetime.
        self._clockmap = {pe: machine.clocks[pe] for pe in machine.pes}
        self.time_limit = time_limit
        if dispatcher is None:
            dispatcher = "replay" if schedule is not None \
                else default_dispatcher()
        if dispatcher not in DISPATCHERS:
            raise ValueError(
                f"dispatcher {dispatcher!r}: must be one of {DISPATCHERS}")
        self.dispatcher = dispatcher
        self._replay = dispatcher == "replay"
        # Replay reuses the scan picker's data structures only for state
        # dumps; selection itself is driven by the recorded stream.
        self._indexed = dispatcher == "indexed"
        self._cv = threading.Condition()
        self._procs: Dict[int, KernelProcess] = {}
        #: Indexed-dispatcher index (see "Dispatch algorithm" in
        #: docs/architecture.md).  Two-level, with keys that *never go
        #: stale*: per PE, a "ripe" heap of ``(last_dispatched, pid,
        #: gen)`` over runnable processes whose start time is the PE
        #: clock (``ready_time <= clock``; both components immutable
        #: while queued), and a "future" heap of ``(ready_time|deadline,
        #: last_dispatched, pid, gen)`` over processes that become
        #: runnable at a fixed later tick.  Entries migrate future ->
        #: ripe as the PE clock advances.  A single candidate heap of
        #: ``((start, last_dispatched, pid), pe, pe_gen)`` tracks each
        #: PE's best runnable process; per-PE generations lazily
        #: invalidate superseded candidates, per-process generations
        #: (``sched_gen``) lazily invalidate superseded heap entries.
        self._ripe: Dict[int, list] = {pe: [] for pe in machine.pes}
        self._future: Dict[int, list] = {pe: [] for pe in machine.pes}
        self._pe_gen: Dict[int, int] = {pe: 0 for pe in machine.pes}
        self._cand: List[tuple] = []
        self._current: Optional[KernelProcess] = None
        self._now: int = 0          # start time of the latest dispatch
        self._dispatch_seq: int = 0
        self._shutdown = False
        #: Names of processes whose threads survived :meth:`shutdown`
        #: (stuck mid-slice or unjoinable) -- see the RuntimeWarning.
        self.leaked_threads: List[str] = []
        #: Names of processes that were blocked in an ACCEPT when
        #: :meth:`shutdown` drained them (each raised
        #: :class:`~repro.errors.EngineShutdown` while unwinding).
        self.drained_accept_waiters: List[str] = []
        #: Fault-injection hook (see :mod:`repro.faults`): called with
        #: the next slice's start time before every dispatch, and with
        #: None when nothing is runnable; returns True when a fault
        #: fired (scheduling state may have changed).  None means no
        #: fault plan is installed -- the zero-fault cost is one
        #: attribute test per dispatch.
        self._fault_pump: Optional[Callable[[Optional[int]], bool]] = None
        #: Periodic-checkpoint hook (see :mod:`repro.checkpoint`):
        #: called with this engine at the top of every dispatch step,
        #: before the pick and before any fault can fire for the step --
        #: the engine is between slices there, which is exactly the
        #: state a restore reconstructs.  A checkpointer is a pure
        #: observer (zero virtual time); None costs one attribute test.
        self._ckpt_pump: Optional[Callable[["Engine"], None]] = None
        #: When True, every executed slice is appended to ``slices`` as
        #: (pe, start, end, process name) -- the raw material for the
        #: per-PE timeline in :mod:`repro.analysis`.
        self.record_slices = False
        self.slices: List[tuple] = []
        #: Hook invoked (from the engine thread, between slices) after
        #: every dispatch; the execution-environment monitor uses it.
        self.on_idle_check: Optional[Callable[[], None]] = None
        #: Optional MetricsRegistry (wired by the VM).  Observations are
        #: pure bookkeeping -- they never influence dispatch order.
        self.metrics = None
        #: Happens-before hook (the race detector, or None).  Called on
        #: spawn and in-process wakes; observers only -- they never
        #: charge ticks or change scheduling state.
        self.hb_hook: Optional[Any] = None
        #: Causal-profiler hook (see :mod:`repro.obs.profile`), or None.
        #: Called on spawn, wake, kill and once per completed slice;
        #: like the other hooks it is a pure observer -- it never
        #: charges ticks, never changes scheduling state, and costs one
        #: attribute test per site when off.
        self.prof_hook: Optional[Any] = None
        #: Per-run spawn ordinals: kernel pids come from a process-global
        #: counter and are not stable across runs, so the schedule
        #: artifact identifies processes by spawn order instead.
        self._spawn_seq = 0
        self._by_ordinal: List[KernelProcess] = []
        #: Schedule decision hook: a ScheduleRecorder when recording, the
        #: replayed Schedule (consume == verify) when replaying, None
        #: otherwise.  One attribute test per dispatch when unused.
        self.sched_hook: Optional[Any] = None
        self._schedule: Optional[Any] = None
        #: The dispatcher a *live* continuation of this run uses --
        #: equal to ``dispatcher`` except under replay, where it is
        #: what the engine switches to after a prefix schedule runs dry
        #: (checkpoint-manifest stamping).
        self._live_dispatcher = dispatcher
        if self._replay:
            if schedule is None:
                path = env_value("PISCES_REPLAY_SCHEDULE")
                if not path:
                    raise ValueError(
                        "replay dispatcher needs a schedule: pass "
                        "schedule=... or set PISCES_REPLAY_SCHEDULE to a "
                        ".psched path")
                from ..correctness.recorder import Schedule
                schedule = Schedule.load(path)
            schedule.reset()
            self._schedule = schedule
            self.sched_hook = schedule
            self._live_dispatcher = _live_dispatcher_for(schedule)
        else:
            rec_path = env_value("PISCES_RECORD_SCHEDULE")
            if rec_path:
                from ..correctness.recorder import ScheduleRecorder
                self.sched_hook = ScheduleRecorder(path=rec_path)

    # ------------------------------------------------------------ spawn --

    def spawn(self, name: str, pe: int, target: Callable[[], Any], *,
              daemon: bool = False, start_time: Optional[int] = None,
              ) -> KernelProcess:
        """Create a process on PE ``pe``.

        ``target`` is called with no arguments in the new thread.  The
        process becomes READY at ``start_time`` (default: now).
        """
        if pe not in self.machine.pes:
            raise ValueError(f"no PE {pe}")
        p = KernelProcess(name, pe, target, daemon=daemon)
        p.clock = self._clockmap[pe]
        p.ready_time = self._now if start_time is None else start_time
        p.state = ProcState.READY
        p.spawn_ordinal = self._spawn_seq
        self._spawn_seq += 1
        self._by_ordinal.append(p)
        sh = self.sched_hook
        if sh is not None:
            sh.on_spawn(p.spawn_ordinal, p.name)
        hb = self.hb_hook
        if hb is not None and self.in_process():
            hb.on_spawn(self._current, p)
        pr = self.prof_hook
        if pr is not None:
            pr.on_spawn(self._current if self.in_process() else None, p)
        p.is_coroutine = inspect.isgeneratorfunction(target)
        self._procs[p.pid] = p
        self._requeue(p)
        self._launch(p)
        return p

    # ------------------------------------------------ execution strategy --

    def _launch(self, p: KernelProcess) -> None:
        """Start the execution vehicle for ``p`` (threaded core: one OS
        thread per process, coroutine bodies included -- the thread
        drives them through :meth:`_coroutine_trampoline`)."""
        t = threading.Thread(target=self._thread_body, args=(p,),
                             name=f"pisces-{p.name}-{p.pid}", daemon=True)
        p.thread = t
        t.start()

    def _coroutine_trampoline(self, p: KernelProcess) -> Any:
        """Drive a coroutine body from a process thread by mapping each
        yielded :class:`KernelOp` onto the classic blocking calls.  This
        is what makes coroutine bodies first-class citizens of the
        threaded (oracle) core: the op stream executes with exactly the
        virtual-time semantics the coop core gives it."""
        gen = p.target()
        p.gen = gen
        try:
            return drive_kernel_ops(self, gen)
        finally:
            gen.close()

    def _thread_body(self, p: KernelProcess) -> None:
        self._wait_for_grant(p)
        try:
            if p.killed:
                raise ProcessKilled(p.name)
            if p.is_coroutine:
                p.result = self._coroutine_trampoline(p)
            else:
                p.result = p.target()
        except ProcessKilled:
            pass
        except BaseException as e:  # surface in the engine thread
            p.exc = e
        finally:
            if p.on_exit is not None:
                try:
                    p.on_exit(p)
                except BaseException as e:
                    if p.exc is None:
                        p.exc = e
            self._finish_thread(p)

    def _finish_thread(self, p: KernelProcess) -> None:
        """Final DONE bookkeeping, from the process's own thread."""
        with self._cv:
            self._settle_done(p)
            self._cv.notify_all()

    # ----------------------------------------------- slice bookkeeping ----

    def _settle_done(self, p: KernelProcess) -> None:
        """Account the final slice and mark ``p`` DONE (shared by both
        cores; the caller owns whatever synchronization its core needs)."""
        cost = p.pending_cost
        end = p.clock.run(p.slice_start, cost)
        if self.record_slices and cost > 0:
            self.slices.append((p.pe, end - cost, end, p.name))
        p.pending_cost = 0
        p.ready_time = end
        p.state = ProcState.DONE
        self._requeue(p)    # invalidate any queued heap entry

    def _settle_yield(self, p: KernelProcess, new_state: ProcState,
                      reason: str, deadline: Optional[int]) -> None:
        """Account a finished (non-final) slice and park/requeue ``p``.

        The single source of truth for end-of-slice state: both cores
        and every body form go through it, which is what keeps virtual
        timestamps bit-identical across cores.
        """
        cost = p.pending_cost
        end = p.clock.run(p.slice_start, cost)
        if self.record_slices and cost > 0:
            self.slices.append((p.pe, end - cost, end, p.name))
        m = self.metrics
        if m is not None and m.enabled and cost > 0:
            m.histogram("slice_ticks", pe=p.pe).observe(cost)
        p.pending_cost = 0
        p.ready_time = end
        if p.killed and new_state is ProcState.BLOCKED:
            # A killed process must not park where nothing will wake
            # it: stay runnable so the next dispatch raises.
            new_state, reason, deadline = ProcState.READY, "killed", None
        p.state = new_state
        p.blocked_on = reason
        p.deadline = deadline
        self._requeue(p)

    # ------------------------------------------------------ thread handoff --

    def _wait_for_grant(self, p: KernelProcess) -> None:
        """Park the calling process thread until the engine admits it.

        Indexed mode: each process waits on its own event, so a grant
        wakes exactly one thread.  Scan (reference) mode: all parked
        threads share the engine condition variable and every grant is
        a broadcast -- the O(n)-wakeups behaviour the indexed path
        replaces.
        """
        if self._indexed:
            p.grant.wait()
            p.grant.clear()
            p.run_granted = False
        else:
            with self._cv:
                while not p.run_granted:
                    self._cv.wait()
                p.run_granted = False

    def _grant_locked(self, p: KernelProcess) -> None:
        """Admit ``p`` (caller holds ``_cv``).

        Both wake paths are signalled: a process that parked while the
        engine was in one dispatch mode may be granted after a
        replay-to-live switch flipped ``_indexed`` (restored runs), so
        it may be waiting on either the condition variable or its
        personal grant event.
        """
        p.run_granted = True
        if self._indexed:
            p.grant.set()
        self._cv.notify_all()

    # ---------------------------------------------------- process-side ----

    def current(self) -> KernelProcess:
        """The process whose thread is calling; raises if external."""
        p = self._current
        if p is None or p.thread is not threading.current_thread():
            raise NotInProcess("kernel call from outside a simulated process")
        return p

    def in_process(self) -> bool:
        p = self._current
        return p is not None and p.thread is threading.current_thread()

    def now(self) -> int:
        """Current virtual time as seen by the caller.

        Inside a process: slice start + ticks charged so far.  Outside
        (the monitor, between runs): the global elapsed time.
        """
        if self.in_process():
            p = self._current
            return p.slice_start + p.pending_cost
        return max(self._now, self.machine.clocks.elapsed())

    def charge(self, ticks: int) -> None:
        """Charge compute ticks to the current slice without yielding."""
        if ticks < 0:
            raise ValueError("cannot charge negative ticks")
        self.current().pending_cost += ticks

    def preempt(self, cost: int = DEFAULT_KERNEL_COST) -> None:
        """A kernel point: charge ``cost`` and let the scheduler switch."""
        p = self.current()
        p.pending_cost += cost
        self._yield(p, ProcState.READY)

    def block(self, reason: str, *, deadline: Optional[int] = None,
              cost: int = DEFAULT_KERNEL_COST) -> Any:
        """Block the current process until woken (or until ``deadline``).

        Returns the waker's ``info`` value; sets ``timed_out`` on the
        process when the deadline fired first.
        """
        p = self.current()
        p.pending_cost += cost
        p.timed_out = False
        p.wake_info = None
        m = self.metrics
        if m is not None and m.enabled:
            # Reason strings carry dynamic detail after "("; keep the
            # label cardinality bounded by the static prefix.
            m.counter("blocks", reason=reason.split("(", 1)[0]).inc()
        self._yield(p, ProcState.BLOCKED, reason=reason, deadline=deadline)
        return p.wake_info

    def wake(self, p: KernelProcess, info: Any = None,
             at_time: Optional[int] = None) -> bool:
        """Make a blocked process runnable; returns False if not blocked.

        ``at_time`` is the virtual time of the waking event (defaults to
        the caller's current time); the wakee cannot resume earlier than
        both that and the moment it blocked.
        """
        if p.state is not ProcState.BLOCKED:
            return False
        hb = self.hb_hook
        if hb is not None and self.in_process():
            # A wake is a causal edge (the wakee resumes after the
            # waker's action); external wakes (the monitor) carry none.
            hb.on_wake(self._current, p)
        t = self.now() if at_time is None else at_time
        pr = self.prof_hook
        if pr is not None:
            pr.on_wake(self._current if self.in_process() else None, p, t)
        p.ready_time = max(p.ready_time, t)
        p.deadline = None
        p.wake_info = info
        p.timed_out = False
        p.blocked_on = ""
        p.state = ProcState.READY
        self._requeue(p)
        return True

    def kill(self, p: KernelProcess) -> None:
        """Mark a process killed; it unwinds at its next dispatch."""
        if not p.live:
            return
        p.killed = True
        if p.state is ProcState.BLOCKED:
            p.deadline = None
            p.blocked_on = "killed"
            p.ready_time = max(p.ready_time, self.now())
            pr = self.prof_hook
            if pr is not None:
                pr.on_kill(p, p.ready_time)
            p.state = ProcState.READY
            self._requeue(p)

    def _yield(self, p: KernelProcess, new_state: ProcState, *,
               reason: str = "", deadline: Optional[int] = None) -> None:
        """Finish the current slice and hand control to the engine."""
        with self._cv:
            self._settle_yield(p, new_state, reason, deadline)
            self._current = None
            self._cv.notify_all()
            if not self._indexed:
                while not p.run_granted:
                    self._cv.wait()
                p.run_granted = False
        if self._indexed:
            p.grant.wait()
            p.grant.clear()
            p.run_granted = False
        if p.killed:
            raise self._kill_exc(p)

    def _kill_exc(self, p: KernelProcess) -> ProcessKilled:
        """The exception a killed process unwinds with."""
        if self._shutdown:
            return EngineShutdown(
                f"engine shut down while {p.name!r} was "
                f"{p.blocked_on or 'running'}")
        return ProcessKilled(p.name)

    # ----------------------------------------------------- engine-side ----

    def _runnable_key(self, p: KernelProcess):
        # Round-robin among equals: earliest start first, then the
        # process that has waited longest since its last slice, then pid.
        pe_clock = p.clock.ticks
        if p.state is ProcState.READY:
            return (max(p.ready_time, pe_clock), p.last_dispatched, p.pid)
        # blocked with a deadline: runnable at the deadline
        return (max(p.deadline, pe_clock), p.last_dispatched, p.pid)

    @staticmethod
    def _is_runnable(p: KernelProcess) -> bool:
        return p.state is ProcState.READY or (
            p.state is ProcState.BLOCKED and p.deadline is not None)

    def _requeue(self, p: KernelProcess) -> None:
        """Re-index ``p`` after any scheduling-state change.

        Bumps the process's generation (invalidating every entry it
        already has in the per-PE heaps), inserts one fresh entry if the
        process is runnable, and refreshes its PE's candidate.  No-op in
        scan mode.
        """
        if not self._indexed:
            return
        p.sched_gen += 1
        pe = p.pe
        # Inlined _is_runnable/_runnable_key/_touch_pe: this runs once
        # per state change, which on the coop core is once per dispatch.
        state = p.state
        if state is ProcState.READY:
            base = p.ready_time
        elif state is ProcState.BLOCKED and p.deadline is not None:
            base = p.deadline
        else:
            # Not runnable any more -- but its departure may still have
            # changed which queued process is this PE's best candidate.
            base = None
        if base is not None:
            if base <= p.clock.ticks:
                heapq.heappush(self._ripe[pe],
                               (p.last_dispatched, p.pid, p.sched_gen))
            else:
                heapq.heappush(self._future[pe],
                               (base, p.last_dispatched, p.pid,
                                p.sched_gen))
        g = self._pe_gen[pe] + 1
        self._pe_gen[pe] = g
        cand = self._pe_candidate(pe)
        if cand is not None:
            heapq.heappush(self._cand, (cand, pe, g))

    def _pe_candidate(self, pe: int) -> Optional[tuple]:
        """The least current dispatch key among PE ``pe``'s queued
        processes, or None.  Migrates newly-ripe future entries and
        discards stale ones on the way (amortized O(1) per queue event).
        """
        procs = self._procs
        clk = self._clockmap[pe].ticks
        future = self._future[pe]
        ripe = self._ripe[pe]
        while future:
            base, ld, pid, gen = future[0]
            p = procs.get(pid)
            if p is None or gen != p.sched_gen:
                heapq.heappop(future)
                continue
            if base > clk:
                break
            # The PE clock caught up: the start time is now the clock,
            # like every other ripe process.
            heapq.heappop(future)
            heapq.heappush(ripe, (ld, pid, gen))
        while ripe:
            ld, pid, gen = ripe[0]
            p = procs.get(pid)
            if p is None or gen != p.sched_gen:
                heapq.heappop(ripe)
                continue
            return (clk, ld, pid)
        if future:
            base, ld, pid, gen = future[0]
            return (base, ld, pid)
        return None

    def _pop_runnable(self) -> Tuple[Optional[KernelProcess], Optional[tuple]]:
        """Pop the runnable process with the least current key.

        Pops PE candidates in key order; per-PE generations identify the
        (at most one) live candidate per PE.  A live candidate is always
        *fresh*: every event that can change a PE's best pick -- slice
        settle, spawn, wake, kill, fault -- re-indexes through
        :meth:`_requeue`, which refreshes the candidate, and a PE's
        clock only advances during a dispatch on that PE, which settles
        (and so touches) before the next pop.  Keys inside the per-PE
        heaps never go stale at all, so -- unlike a single global heap
        keyed by ``max(ready_time, pe_clock)`` -- a slice on one PE
        never forces a re-key of the other processes queued there.
        """
        cand = self._cand
        pe_gen = self._pe_gen
        while cand:
            key, pe, g = heapq.heappop(cand)
            if g != pe_gen[pe]:
                continue
            pid = key[2]
            # Commit: remove the winner from its per-PE heap.  It is the
            # validated head of ripe (start == clock) or future.  The
            # next candidate for this PE is pushed by the settle/requeue
            # that ends the dispatched slice (or by the horizon/fault
            # requeue when the dispatch is abandoned).
            ripe = self._ripe[pe]
            if ripe and ripe[0][1] == pid:
                heapq.heappop(ripe)
            else:
                heapq.heappop(self._future[pe])
            return self._procs[pid], key
        return None, None

    def _pick(self) -> Optional[KernelProcess]:
        """Reference dispatcher: O(n) scan over all processes."""
        best = None
        best_key = None
        for p in self._procs.values():
            if self._is_runnable(p):
                k = self._runnable_key(p)
                if best_key is None or k < best_key:
                    best, best_key = p, k
        return best

    def _peek_replay(self) -> Tuple[Optional[KernelProcess], Optional[tuple]]:
        """Replay selection: the recorded stream *is* the dispatch order.

        Peeks (does not consume) the next D record; the ``on_dispatch``
        verification in :meth:`step` consumes it.  A record naming a
        process that does not exist or is not runnable means the live
        run diverged from the recording.
        """
        from ..errors import ReplayDivergence
        rec = self._schedule.peek_dispatch()
        if rec is None:
            return None, None
        ordinal, start = rec
        if ordinal >= len(self._by_ordinal):
            raise ReplayDivergence(
                f"schedule names spawn #{ordinal} "
                f"({self._schedule.name_of(ordinal)!r}) but only "
                f"{len(self._by_ordinal)} processes have spawned "
                f"({self._schedule.progress()})")
        p = self._by_ordinal[ordinal]
        if not self._is_runnable(p):
            raise ReplayDivergence(
                f"schedule dispatches {p.name!r} (spawn #{ordinal}, "
                f"recorded start {start}) but it is {p.state.value}"
                + (f" on {p.blocked_on!r}" if p.blocked_on else "")
                + f" ({self._schedule.progress()})")
        return p, self._runnable_key(p)

    def _switch_to_live(self) -> None:
        """A *prefix* schedule (a restored checkpoint) ran dry: hand
        selection back to a live dispatcher and keep going.

        Only selection changes -- ``sched_hook`` stays the prefix
        wrapper, which keeps recording the live tail.  During replay the
        indexed heaps were never fed (``_requeue`` no-ops off-index), so
        requeueing every process in pid order rebuilds them exactly as a
        fresh engine would have.
        """
        sched = self._schedule
        dispatcher = _live_dispatcher_for(sched)
        self.dispatcher = dispatcher
        self._live_dispatcher = dispatcher
        self._replay = False
        self._indexed = dispatcher == "indexed"
        self._schedule = None
        for p in sorted(self._procs.values(), key=lambda q: q.pid):
            self._requeue(p)
        cb = getattr(sched, "on_prefix_complete", None)
        if cb is not None:
            # Restore validation: the replayed state must match the
            # snapshot digests before the run continues live.
            cb(self)

    def step(self, horizon: Optional[int] = None) -> bool:
        """Dispatch one slice.  Returns False when nothing is runnable.

        With ``horizon``, refuses to dispatch a slice that would start
        after that virtual time -- the monitor uses this so that pumping
        the machine "now" does not fast-forward through long DELAYs.
        """
        ck = self._ckpt_pump
        if ck is not None:
            # Between slices, before this step's pick and fault pump:
            # the exact state a restore reconstructs (see
            # docs/architecture.md, "Checkpoint/restore").
            ck(self)
        while True:
            if self._replay:
                p, key = self._peek_replay()
                if p is None and getattr(self._schedule,
                                         "live_after_prefix", False):
                    self._switch_to_live()
                    continue
            elif self._indexed:
                p, key = self._pop_runnable()
            else:
                p = self._pick()
                key = None if p is None else self._runnable_key(p)
            if p is None:
                return False
            if horizon is not None and key[0] > horizon:
                if self._indexed:
                    # The pick was valid; re-index it for the next step.
                    self._requeue(p)
                return False
            if self._fault_pump is not None and self._fault_pump(key[0]):
                # A timed fault fired at or before this slice's start;
                # it may have killed/woken processes (including this
                # one), so re-index the pick and re-pick.
                if self._indexed:
                    self._requeue(p)
                continue
            break
        if p.state is ProcState.BLOCKED:
            # Deadline fired: resume with timed_out set.
            p.timed_out = True
            p.wake_info = None
            p.ready_time = max(p.ready_time, p.deadline)
            p.deadline = None
            p.state = ProcState.READY
        clock = p.clock
        rt = p.ready_time
        ticks = clock.ticks
        start = rt if rt > ticks else ticks
        if self.time_limit is not None and start > self.time_limit:
            raise TimeLimitExceeded(self.time_limit)
        sh = self.sched_hook
        if sh is not None:
            # Recording appends; replay consumes-and-verifies (the start
            # tick doubles as a virtual-time checksum per dispatch).
            sh.on_dispatch(p.spawn_ordinal, start, p.name)
        if start > self._now:
            self._now = start
        self._dispatch_seq += 1
        p.last_dispatched = self._dispatch_seq
        m = self.metrics
        if m is not None and m.enabled:
            m.counter("dispatches", pe=p.pe).inc()
        if start > ticks:
            clock.ticks = start
        pr = self.prof_hook
        t_wall = time.perf_counter() if pr is not None else 0.0
        self._run_slice(p, start)
        self._current = None
        if pr is not None:
            # The slice just completed: under the lock above _yield (or
            # _thread_body) set p.ready_time to its end tick and left
            # the new state/reason/deadline on the process.
            pr.on_slice(p, start, p.ready_time, p.state, p.blocked_on,
                        p.deadline, time.perf_counter() - t_wall)
        if p.exc is not None:
            exc, p.exc = p.exc, None
            self.shutdown()
            raise exc
        if self.on_idle_check is not None:
            self.on_idle_check()
        return True

    def _run_slice(self, p: KernelProcess, start: int) -> None:
        """Execute one slice of ``p`` starting at virtual tick ``start``
        and return when the slice has ended (threaded core: grant the
        process thread and park the engine on the condition variable --
        the OS handoff the coop core's override replaces with a plain
        function call)."""
        with self._cv:
            p.slice_start = start
            p.state = ProcState.RUNNING
            self._current = p
            self._grant_locked(p)
            while p.state is ProcState.RUNNING:
                self._cv.wait()

    def _fast_eligible(self) -> bool:
        """True when no per-slice hook is installed -- replay,
        checkpoint pump, fault pump, schedule recording, profiling,
        metrics, time limit, idle callback -- so :meth:`run` may
        dispatch through :meth:`_step_fast` batches."""
        m = self.metrics
        return (self._indexed and not self._replay
                and self._ckpt_pump is None
                and self._fault_pump is None
                and self.sched_hook is None
                and self.prof_hook is None
                and self.on_idle_check is None
                and self.time_limit is None
                and (m is None or not m.enabled))

    def _step_fast(self, batch: int) -> bool:
        """Dispatch up to ``batch`` slices with the hook tests hoisted
        out of the loop (the caller checked :meth:`_fast_eligible`;
        eligibility cannot change inside the batch -- hooks install at
        boot, between runs, or via the replay path, all ineligible).

        Selection and accounting mirror :meth:`step` exactly minus the
        hook branches, so dispatch streams are identical -- and the
        replay suite cross-checks that claim on every recorded run: the
        recording dispatches through here while its replay (ineligible)
        re-executes the same stream through :meth:`step`.  Returns
        False when nothing was runnable, True when the batch was
        exhausted with work remaining.
        """
        pop = self._pop_runnable
        for _ in range(batch):
            p, key = pop()
            if p is None:
                return False
            if p.state is ProcState.BLOCKED:
                # Deadline fired: resume with timed_out set.
                p.timed_out = True
                p.wake_info = None
                p.ready_time = max(p.ready_time, p.deadline)
                p.deadline = None
                p.state = ProcState.READY
            clock = p.clock
            rt = p.ready_time
            ticks = clock.ticks
            start = rt if rt > ticks else ticks
            if start > self._now:
                self._now = start
            self._dispatch_seq += 1
            p.last_dispatched = self._dispatch_seq
            if start > ticks:
                clock.ticks = start
            self._run_slice(p, start)
            self._current = None
            if p.exc is not None:
                exc, p.exc = p.exc, None
                self.shutdown()
                raise exc
        return True

    @property
    def dispatch_count(self) -> int:
        """Total slices dispatched so far (benchmark instrumentation)."""
        return self._dispatch_seq

    def run(self) -> None:
        """Run until no non-daemon process is live, or deadlock.

        On normal completion the remaining daemon (controller) processes
        are left blocked; call :meth:`shutdown` to reap them.
        """
        try:
            while True:
                if self._fast_eligible():
                    # Hookless runs (the common case) dispatch in
                    # batches with the per-slice hook tests hoisted;
                    # the trailing step() below re-confirms idleness
                    # through the general path.
                    while self._step_fast(1024):
                        pass
                progressed = self.step()
                if progressed:
                    continue
                if self._fault_pump is not None and self._fault_pump(None):
                    # Nothing runnable, but a timed fault was pending:
                    # fire it (e.g. the PE crash a blocked receiver was
                    # unknowingly waiting on) and try again.
                    continue
                live_users = [p for p in self._procs.values()
                              if p.live and not p.daemon]
                if live_users:
                    blocked = [(p.name, p.blocked_on, p.deadline)
                               for p in sorted(live_users,
                                               key=lambda q: q.pid)]
                    raise DeadlockError(self.state_dump(), blocked=blocked)
                return
        except Exception:
            self.shutdown()
            raise

    def run_while(self, predicate: Callable[[], bool]) -> None:
        """Run until ``predicate()`` is false or nothing is runnable."""
        while predicate() and self.step():
            pass

    # --------------------------------------------------------- shutdown --

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Kill every live process and join their threads.

        A thread that does not come back to a kernel point within
        ``join_timeout`` wall-clock seconds (it is stuck in user code,
        or swallowed :class:`ProcessKilled`) is recorded in
        :attr:`leaked_threads` and reported with a ``RuntimeWarning`` --
        a leaked thread is a bug to diagnose, never something to ignore
        silently.
        """
        if self._shutdown:
            return
        self._shutdown = True
        sh = self.sched_hook
        if sh is not None and getattr(sh, "autosave", None) is not None:
            # Recorder only (a replayed Schedule has no autosave): flush
            # the .psched artifact even when the run ends in an error.
            sh.autosave()
        # Pending ACCEPT waiters are drained, not abandoned: each one is
        # granted below, observes `killed`, and unwinds with a clear
        # EngineShutdown error instead of waiting on messages that can
        # never arrive.
        self.drained_accept_waiters = sorted(
            p.name for p in self._procs.values()
            if p.live and p.state is ProcState.BLOCKED
            and p.blocked_on.startswith("accept("))
        for p in list(self._procs.values()):
            if p.live:
                p.killed = True
        stuck = self._drain_processes(join_timeout)
        leaked: List[str] = []
        for p in self._procs.values():
            t = p.thread
            if t is None:
                continue
            t.join(timeout=join_timeout if p.name not in stuck else 0.01)
            if t.is_alive():
                leaked.append(p.name)
        self.leaked_threads = sorted(set(stuck) | set(leaked))
        if self.leaked_threads:
            warnings.warn(
                f"engine shutdown leaked {len(self.leaked_threads)} "
                f"thread(s) (stuck outside kernel points): "
                f"{', '.join(self.leaked_threads)}",
                RuntimeWarning, stacklevel=2)

    def _drain_processes(self, join_timeout: float) -> List[str]:
        """Give every live process one chance per slice to observe
        ``killed`` and unwind; returns names of processes that stayed
        stuck in user code past ``join_timeout``.  Threaded core: grant
        each thread and wait on the condition variable."""
        stuck: List[str] = []
        for p in list(self._procs.values()):
            while p.live and p.thread is not None and p.thread.is_alive():
                with self._cv:
                    if p.state is ProcState.DONE:
                        break
                    p.state = ProcState.RUNNING
                    self._current = p
                    self._grant_locked(p)
                    limit = time.monotonic() + join_timeout
                    while p.state is ProcState.RUNNING:
                        remaining = limit - time.monotonic()
                        if remaining <= 0:
                            break
                        self._cv.wait(remaining)
                    timed_out = p.state is ProcState.RUNNING
                self._current = None
                p.exc = None
                if timed_out:
                    stuck.append(p.name)
                    break
        return stuck

    # ------------------------------------------------------- inspection --

    def processes(self) -> List[KernelProcess]:
        return list(self._procs.values())

    def live_processes(self) -> List[KernelProcess]:
        return [p for p in self._procs.values() if p.live]

    def state_dump(self) -> str:
        lines = [f"engine time {self.now()} ({self.exec_core} core, "
                 f"{self.dispatcher} dispatcher), "
                 f"{len(self.live_processes())} live processes:"]
        failed = self.machine.failed_pes()
        if failed:
            # A hang caused by a crashed PE must be tellable apart from
            # a true deadlock by the dump alone.
            lines.append(f"  failed PEs: {failed} (processes pinned there "
                         f"were killed; blocked peers may be waiting on "
                         f"messages that will never arrive)")
        for p in sorted(self._procs.values(), key=lambda q: q.pid):
            if p.live:
                lines.append("  " + p.describe())
        return "\n".join(lines)

    @property
    def shutting_down(self) -> bool:
        return self._shutdown
