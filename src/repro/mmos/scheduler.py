"""Deterministic discrete-event multiprocessor engine.

This is the substrate substitution for the real MMOS kernel running on
20 FLEX/32 processors (DESIGN.md section 3).  The contract:

* every simulated process runs in its own Python thread, but the engine
  admits **exactly one** thread at a time;
* threads hand control back at *kernel points* -- every PISCES run-time
  library call, plus explicit ``compute(ticks)`` charges;
* each slice executed on PE *p* advances *p*'s virtual clock by the
  ticks charged during the slice; distinct PEs overlap in virtual time,
  processes sharing a PE serialize on it (multiprogramming);
* dispatch order: the runnable process with the least slice start time
  ``max(ready_time, pe_clock)``, ties broken by pid.  Dispatch starts
  are therefore non-decreasing, which guarantees no causality violation
  (a wake or message can never arrive in a receiver's past);
* a blocked process with a deadline is runnable at its deadline (the
  DELAY clause of ACCEPT); whoever wakes it earlier clears the deadline;
* when nothing is runnable and a non-daemon process is still blocked,
  the engine raises :class:`~repro.errors.DeadlockError` with a state
  dump instead of hanging.

Determinism: given the same program and configuration, every dispatch,
message arrival and timeout happens in the same order with the same
virtual timestamps.  The whole test-suite relies on this.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional

from ..errors import DeadlockError, NotInProcess, ProcessKilled, TimeLimitExceeded
from ..flex.machine import FlexMachine
from .process import KernelProcess, ProcState

#: Default ticks charged by a kernel point when the caller gives none.
DEFAULT_KERNEL_COST = 5


class Engine:
    """The MMOS scheduler/dispatcher for one machine."""

    def __init__(self, machine: FlexMachine, time_limit: Optional[int] = None):
        self.machine = machine
        self.time_limit = time_limit
        self._cv = threading.Condition()
        self._procs: Dict[int, KernelProcess] = {}
        self._current: Optional[KernelProcess] = None
        self._now: int = 0          # start time of the latest dispatch
        self._dispatch_seq: int = 0
        self._shutdown = False
        #: When True, every executed slice is appended to ``slices`` as
        #: (pe, start, end, process name) -- the raw material for the
        #: per-PE timeline in :mod:`repro.analysis`.
        self.record_slices = False
        self.slices: List[tuple] = []
        #: Hook invoked (from the engine thread, between slices) after
        #: every dispatch; the execution-environment monitor uses it.
        self.on_idle_check: Optional[Callable[[], None]] = None
        #: Optional MetricsRegistry (wired by the VM).  Observations are
        #: pure bookkeeping -- they never influence dispatch order.
        self.metrics = None

    # ------------------------------------------------------------ spawn --

    def spawn(self, name: str, pe: int, target: Callable[[], Any], *,
              daemon: bool = False, start_time: Optional[int] = None,
              ) -> KernelProcess:
        """Create a process on PE ``pe``.

        ``target`` is called with no arguments in the new thread.  The
        process becomes READY at ``start_time`` (default: now).
        """
        if pe not in self.machine.pes:
            raise ValueError(f"no PE {pe}")
        p = KernelProcess(name, pe, target, daemon=daemon)
        p.ready_time = self._now if start_time is None else start_time
        p.state = ProcState.READY
        t = threading.Thread(target=self._thread_body, args=(p,),
                             name=f"pisces-{name}-{p.pid}", daemon=True)
        p.thread = t
        self._procs[p.pid] = p
        t.start()
        return p

    def _thread_body(self, p: KernelProcess) -> None:
        with self._cv:
            while not p.run_granted:
                self._cv.wait()
            p.run_granted = False
        try:
            if p.killed:
                raise ProcessKilled(p.name)
            p.result = p.target()
        except ProcessKilled:
            pass
        except BaseException as e:  # surface in the engine thread
            p.exc = e
        finally:
            if p.on_exit is not None:
                try:
                    p.on_exit(p)
                except BaseException as e:
                    if p.exc is None:
                        p.exc = e
            with self._cv:
                cost = p.pending_cost
                end = self.machine.clocks[p.pe].run(p.slice_start, cost)
                if self.record_slices and cost > 0:
                    self.slices.append((p.pe, end - cost, end, p.name))
                p.pending_cost = 0
                p.ready_time = end
                p.state = ProcState.DONE
                self._cv.notify_all()

    # ---------------------------------------------------- process-side ----

    def current(self) -> KernelProcess:
        """The process whose thread is calling; raises if external."""
        p = self._current
        if p is None or p.thread is not threading.current_thread():
            raise NotInProcess("kernel call from outside a simulated process")
        return p

    def in_process(self) -> bool:
        p = self._current
        return p is not None and p.thread is threading.current_thread()

    def now(self) -> int:
        """Current virtual time as seen by the caller.

        Inside a process: slice start + ticks charged so far.  Outside
        (the monitor, between runs): the global elapsed time.
        """
        if self.in_process():
            p = self._current
            return p.slice_start + p.pending_cost
        return max(self._now, self.machine.clocks.elapsed())

    def charge(self, ticks: int) -> None:
        """Charge compute ticks to the current slice without yielding."""
        if ticks < 0:
            raise ValueError("cannot charge negative ticks")
        self.current().pending_cost += ticks

    def preempt(self, cost: int = DEFAULT_KERNEL_COST) -> None:
        """A kernel point: charge ``cost`` and let the scheduler switch."""
        p = self.current()
        p.pending_cost += cost
        self._yield(p, ProcState.READY)

    def block(self, reason: str, *, deadline: Optional[int] = None,
              cost: int = DEFAULT_KERNEL_COST) -> Any:
        """Block the current process until woken (or until ``deadline``).

        Returns the waker's ``info`` value; sets ``timed_out`` on the
        process when the deadline fired first.
        """
        p = self.current()
        p.pending_cost += cost
        p.timed_out = False
        p.wake_info = None
        m = self.metrics
        if m is not None and m.enabled:
            # Reason strings carry dynamic detail after "("; keep the
            # label cardinality bounded by the static prefix.
            m.counter("blocks", reason=reason.split("(", 1)[0]).inc()
        self._yield(p, ProcState.BLOCKED, reason=reason, deadline=deadline)
        return p.wake_info

    def wake(self, p: KernelProcess, info: Any = None,
             at_time: Optional[int] = None) -> bool:
        """Make a blocked process runnable; returns False if not blocked.

        ``at_time`` is the virtual time of the waking event (defaults to
        the caller's current time); the wakee cannot resume earlier than
        both that and the moment it blocked.
        """
        if p.state is not ProcState.BLOCKED:
            return False
        t = self.now() if at_time is None else at_time
        p.ready_time = max(p.ready_time, t)
        p.deadline = None
        p.wake_info = info
        p.timed_out = False
        p.blocked_on = ""
        p.state = ProcState.READY
        return True

    def kill(self, p: KernelProcess) -> None:
        """Mark a process killed; it unwinds at its next dispatch."""
        if not p.live:
            return
        p.killed = True
        if p.state is ProcState.BLOCKED:
            p.deadline = None
            p.blocked_on = "killed"
            p.ready_time = max(p.ready_time, self.now())
            p.state = ProcState.READY

    def _yield(self, p: KernelProcess, new_state: ProcState, *,
               reason: str = "", deadline: Optional[int] = None) -> None:
        """Finish the current slice and hand control to the engine."""
        with self._cv:
            cost = p.pending_cost
            end = self.machine.clocks[p.pe].run(p.slice_start, cost)
            if self.record_slices and cost > 0:
                self.slices.append((p.pe, end - cost, end, p.name))
            m = self.metrics
            if m is not None and m.enabled and cost > 0:
                m.histogram("slice_ticks", pe=p.pe).observe(cost)
            p.pending_cost = 0
            p.ready_time = end
            if p.killed and new_state is ProcState.BLOCKED:
                # A killed process must not park where nothing will wake
                # it: stay runnable so the next dispatch raises.
                new_state, reason, deadline = ProcState.READY, "killed", None
            p.state = new_state
            p.blocked_on = reason
            p.deadline = deadline
            self._current = None
            self._cv.notify_all()
            while not p.run_granted:
                self._cv.wait()
            p.run_granted = False
        if p.killed:
            raise ProcessKilled(p.name)

    # ----------------------------------------------------- engine-side ----

    def _runnable_key(self, p: KernelProcess):
        # Round-robin among equals: earliest start first, then the
        # process that has waited longest since its last slice, then pid.
        pe_clock = self.machine.clocks[p.pe].ticks
        if p.state is ProcState.READY:
            return (max(p.ready_time, pe_clock), p.last_dispatched, p.pid)
        # blocked with a deadline: runnable at the deadline
        return (max(p.deadline, pe_clock), p.last_dispatched, p.pid)

    def _pick(self) -> Optional[KernelProcess]:
        best = None
        best_key = None
        for p in self._procs.values():
            if p.state is ProcState.READY or (
                    p.state is ProcState.BLOCKED and p.deadline is not None):
                k = self._runnable_key(p)
                if best_key is None or k < best_key:
                    best, best_key = p, k
        return best

    def step(self, horizon: Optional[int] = None) -> bool:
        """Dispatch one slice.  Returns False when nothing is runnable.

        With ``horizon``, refuses to dispatch a slice that would start
        after that virtual time -- the monitor uses this so that pumping
        the machine "now" does not fast-forward through long DELAYs.
        """
        p = self._pick()
        if p is None:
            return False
        if horizon is not None:
            start_key = self._runnable_key(p)[0]
            if start_key > horizon:
                return False
        if p.state is ProcState.BLOCKED:
            # Deadline fired: resume with timed_out set.
            p.timed_out = True
            p.wake_info = None
            p.ready_time = max(p.ready_time, p.deadline)
            p.deadline = None
            p.state = ProcState.READY
        start = max(p.ready_time, self.machine.clocks[p.pe].ticks)
        if self.time_limit is not None and start > self.time_limit:
            raise TimeLimitExceeded(self.time_limit)
        self._now = max(self._now, start)
        self._dispatch_seq += 1
        p.last_dispatched = self._dispatch_seq
        m = self.metrics
        if m is not None and m.enabled:
            m.counter("dispatches", pe=p.pe).inc()
        self.machine.clocks[p.pe].advance_to(start)
        with self._cv:
            p.slice_start = start
            p.state = ProcState.RUNNING
            self._current = p
            p.run_granted = True
            self._cv.notify_all()
            while p.state is ProcState.RUNNING:
                self._cv.wait()
        self._current = None
        if p.exc is not None:
            exc, p.exc = p.exc, None
            self.shutdown()
            raise exc
        if self.on_idle_check is not None:
            self.on_idle_check()
        return True

    def run(self) -> None:
        """Run until no non-daemon process is live, or deadlock.

        On normal completion the remaining daemon (controller) processes
        are left blocked; call :meth:`shutdown` to reap them.
        """
        try:
            while True:
                progressed = self.step()
                if progressed:
                    continue
                live_users = [p for p in self._procs.values()
                              if p.live and not p.daemon]
                if live_users:
                    raise DeadlockError(self.state_dump())
                return
        except Exception:
            self.shutdown()
            raise

    def run_while(self, predicate: Callable[[], bool]) -> None:
        """Run until ``predicate()`` is false or nothing is runnable."""
        while predicate() and self.step():
            pass

    # --------------------------------------------------------- shutdown --

    def shutdown(self) -> None:
        """Kill every live process and join their threads."""
        if self._shutdown:
            return
        self._shutdown = True
        for p in list(self._procs.values()):
            if p.live:
                p.killed = True
        # Grant every live thread once so it can observe `killed` and exit.
        for p in list(self._procs.values()):
            while p.live and p.thread is not None and p.thread.is_alive():
                with self._cv:
                    if p.state is ProcState.DONE:
                        break
                    p.state = ProcState.RUNNING
                    self._current = p
                    p.run_granted = True
                    self._cv.notify_all()
                    while p.state is ProcState.RUNNING:
                        self._cv.wait()
                self._current = None
                p.exc = None
        for p in self._procs.values():
            if p.thread is not None:
                p.thread.join(timeout=5)

    # ------------------------------------------------------- inspection --

    def processes(self) -> List[KernelProcess]:
        return list(self._procs.values())

    def live_processes(self) -> List[KernelProcess]:
        return [p for p in self._procs.values() if p.live]

    def state_dump(self) -> str:
        lines = [f"engine time {self.now()}, "
                 f"{len(self.live_processes())} live processes:"]
        for p in sorted(self._procs.values(), key=lambda q: q.pid):
            if p.live:
                lines.append("  " + p.describe())
        return "\n".join(lines)
