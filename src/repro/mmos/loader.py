"""Loadfile model.

Section 11: "The user may select any subset of the MMOS PE's for
loading; all selected PE's are loaded with the same code, which includes
the MMOS kernel and all user code."  A :class:`Loadfile` is that image:
a set of (category, bytes) sections.  Loading it onto a machine makes
the bytes resident in each selected PE's local memory, which is what the
section-13 local-memory measurement reads back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from ..flex.machine import FlexMachine

#: Canonical section categories.
CAT_MMOS_KERNEL = "mmos_kernel"
CAT_PISCES_CODE = "pisces_system_code"
CAT_PISCES_DATA = "pisces_system_data"
CAT_USER_CODE = "user_code"
CAT_USER_DATA = "user_data"

#: Categories that count as "PISCES 2 system" in the paper's local-memory
#: overhead claim ("system code and data").
PISCES_SYSTEM_CATEGORIES = (CAT_PISCES_CODE, CAT_PISCES_DATA)


@dataclass
class Loadfile:
    """An MMOS load image: named sections with byte sizes."""

    sections: Dict[str, int] = field(default_factory=dict)

    def add(self, category: str, nbytes: int) -> "Loadfile":
        if nbytes < 0:
            raise ValueError("section size must be non-negative")
        self.sections[category] = self.sections.get(category, 0) + nbytes
        return self

    def total_bytes(self) -> int:
        return sum(self.sections.values())

    def load_onto(self, machine: FlexMachine, pes: Iterable[int]) -> List[int]:
        """Download the image to each PE; returns the loaded PE list."""
        loaded = []
        for pe_num in pes:
            machine.validate_user_pe(pe_num)
            pe = machine.pe(pe_num)
            pe.reboot()
            for cat, nbytes in self.sections.items():
                pe.local.load(cat, nbytes)
            pe.boot()
            loaded.append(pe_num)
        return loaded

    def describe(self) -> str:
        lines = [f"loadfile: {self.total_bytes()} bytes"]
        for cat, nbytes in sorted(self.sections.items()):
            lines.append(f"  {cat}: {nbytes}")
        return "\n".join(lines)
