"""MMOS syscall facade: the few services PISCES uses from the kernel.

Per section 11, PISCES calls MMOS "for only a few activities, primarily
process creation and termination, input/output to the terminal, and
swapping the CPU among ready processes".  This module packages those as
an object so the run-time library never touches the engine directly.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..flex.machine import FlexMachine
from .process import KernelProcess, co_preempt
from .scheduler import DEFAULT_KERNEL_COST, create_engine

#: Tick costs of kernel services (arbitrary units; relative magnitudes
#: follow the usual ordering: process creation >> I/O >> a CPU swap).
COST_PROCESS_CREATE = 200
COST_PROCESS_EXIT = 50
COST_TERMINAL_IO = 20
COST_CPU_SWAP = DEFAULT_KERNEL_COST

#: Interned op tuples for the common compute costs (see
#: :meth:`MMOSKernel.compute_ops`; ops and tuples are both read-only).
_COMPUTE_OPS = {t: (co_preempt(t),) for t in range(33)}


class ConsoleLine(Tuple[int, int, str]):
    """(virtual time, pid, text) -- one line written to the terminal."""


class MMOSKernel:
    """Kernel services for one machine."""

    def __init__(self, machine: FlexMachine, time_limit: Optional[int] = None,
                 dispatcher: Optional[str] = None, schedule=None,
                 exec_core: Optional[str] = None):
        self.machine = machine
        self.engine = create_engine(machine, time_limit=time_limit,
                                    dispatcher=dispatcher, schedule=schedule,
                                    exec_core=exec_core)
        self.console: List[Tuple[int, int, str]] = []
        #: Optional live sink for terminal output (the execution
        #: environment hooks this to echo to the real screen).
        self.console_sink: Optional[Callable[[int, int, str], None]] = None

    # ----------------------------------------------------------- syscalls --

    def create_process(self, name: str, pe: int, target: Callable[[], Any],
                       *, daemon: bool = False) -> KernelProcess:
        """Create a process; charges the caller when inside a process."""
        if self.engine.in_process():
            self.engine.charge(COST_PROCESS_CREATE)
        p = self.engine.spawn(name, pe, target, daemon=daemon)
        return p

    def write_terminal(self, text: str) -> None:
        """Terminal output from the current process (PRINT in Pisces
        Fortran); recorded with the virtual timestamp."""
        eng = self.engine
        pid = eng.current().pid if eng.in_process() else 0
        eng.charge(COST_TERMINAL_IO) if eng.in_process() else None
        t = eng.now()
        self.console.append((t, pid, text))
        if self.console_sink is not None:
            self.console_sink(t, pid, text)

    def swap(self) -> None:
        """Voluntarily give up the CPU (a scheduling point)."""
        self.engine.preempt(COST_CPU_SWAP)

    def compute(self, ticks: int) -> None:
        """Charge pure computation and allow a CPU swap afterwards.

        One preempt carrying the cost: identical slice accounting to
        ``charge(ticks)`` + ``preempt(0)``, half the kernel calls."""
        if ticks < 0:
            raise ValueError("cannot charge negative ticks")
        self.engine.preempt(ticks)

    def compute_ops(self, ticks: int) -> Tuple:
        """Coroutine form of :meth:`compute`: the swap point is a
        yielded :class:`~repro.mmos.process.KernelOp` instead of a
        blocking call, so the op stream is identical on both cores.

        Returns a (usually interned) 1-tuple rather than a generator: a
        coroutine body ``yield from``s it, which iterates at C level
        with no generator frame on the per-dispatch hot path.  The
        single preempt op carries the compute cost -- the cost lands in
        ``pending_cost`` before the slice settles, exactly like
        ``charge(ticks)`` followed by ``preempt(0)``, so virtual time is
        bit-identical."""
        ops = _COMPUTE_OPS.get(ticks)
        if ops is None:
            if ticks < 0:
                raise ValueError("cannot charge negative ticks")
            ops = (co_preempt(ticks),)
        return ops

    # --------------------------------------------------------- inspection --

    def console_text(self) -> str:
        return "\n".join(line for _, _, line in self.console)
