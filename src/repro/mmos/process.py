"""Kernel process objects for the MMOS simulation.

Each PISCES task (and each force member) is one :class:`KernelProcess`.
The paper (section 11) says MMOS provides exactly this:
"multiprogramming, I/O to files and terminals, storage allocation, and a
few other services"; PISCES calls the kernel "primarily for process
creation and termination, input/output to the terminal, and swapping the
CPU among ready processes".

How a process *executes* is an engine strategy, not a property of the
process (see ``docs/architecture.md``, "Execution cores"):

* on the **threaded** core every process body runs in its own Python
  thread that the engine admits one-at-a-time, switching only at kernel
  points;
* on the **coop** core a *coroutine* body (a generator function that
  yields :class:`KernelOp` values from :func:`co_charge` /
  :func:`co_preempt` / :func:`co_block`) is resumed by a plain function
  call on the engine thread -- no OS thread at all -- while an ordinary
  callable body falls back to a pinned worker thread with a raw-lock
  handoff.

Both cores accept both body forms: the threaded core drives a coroutine
body through a trampoline that maps each yielded op onto the classic
blocking calls, so the same program text is executable (and
bit-identical) everywhere.
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Any, Callable, Generator, Optional

#: Default ticks charged by a kernel point when the caller gives none.
#: (Re-exported by :mod:`repro.mmos.scheduler` for compatibility.)
DEFAULT_KERNEL_COST = 5


class ProcState(enum.Enum):
    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class KernelOp:
    """One kernel point yielded by a coroutine process body.

    Build them with :func:`co_charge`, :func:`co_preempt` and
    :func:`co_block`; the engine interprets the op and resumes the
    generator with the op's result (the waker's ``info`` for a block,
    ``None`` otherwise).  Ops are plain data so both execution cores
    interpret the identical stream.
    """

    __slots__ = ("kind", "cost", "reason", "deadline")

    def __init__(self, kind: str, cost: int, reason: str = "",
                 deadline: Optional[int] = None):
        self.kind = kind
        self.cost = cost
        self.reason = reason
        self.deadline = deadline

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.kind == "block":
            extra = f" reason={self.reason!r} deadline={self.deadline}"
        return f"<KernelOp {self.kind} cost={self.cost}{extra}>"


def co_charge(ticks: int) -> KernelOp:
    """Charge compute ticks to the current slice without yielding the
    PE (the coroutine form of ``engine.charge``)."""
    if ticks < 0:
        raise ValueError("cannot charge negative ticks")
    return KernelOp("charge", ticks)


#: Interned preempt ops for the common costs.  A KernelOp is read-only
#: data to both engines (the drivers only ever read kind/cost), and the
#: hot path yields one preempt per dispatch, so small costs share a
#: singleton instead of allocating a fresh op every time.
_PREEMPT_OPS = {c: KernelOp("preempt", c) for c in range(33)}


def co_preempt(cost: int = DEFAULT_KERNEL_COST) -> KernelOp:
    """A kernel point: charge ``cost`` and let the scheduler switch
    (the coroutine form of ``engine.preempt``)."""
    op = _PREEMPT_OPS.get(cost)
    return KernelOp("preempt", cost) if op is None else op


def co_block(reason: str, *, deadline: Optional[int] = None,
             cost: int = DEFAULT_KERNEL_COST) -> KernelOp:
    """Block until woken or until ``deadline`` (the coroutine form of
    ``engine.block``); the ``yield`` expression evaluates to the
    waker's ``info`` value."""
    return KernelOp("block", cost, reason, deadline)


def drive_kernel_ops(engine: Any, gen: Generator) -> Any:
    """Run a KernelOp-yielding generator to completion by mapping each
    op onto the engine's classic blocking calls.

    This is the synchronous driver at the KernelOp seam: the run-time
    library writes every suspending operation *once*, as a generator,
    and executes it in two ways -- a coroutine body ``yield from``s it
    (the ops reach the engine's slice loop), while a callable body on a
    worker thread drives it here.  Both interpret the identical op
    stream, which is what keeps the two body forms bit-identical in
    virtual time.

    If a blocking call unwinds (``ProcessKilled`` / ``EngineShutdown``),
    the generator is closed first so its cleanup handlers run at the
    suspension point -- the same ``GeneratorExit`` they observe when a
    coroutine body is killed on either core.
    """
    try:
        val: Any = None
        while True:
            try:
                op = gen.send(val)
            except StopIteration as e:
                return e.value
            if not isinstance(op, KernelOp):
                raise RuntimeError(
                    f"kernel-op generator yielded {op!r}; expected a "
                    "KernelOp from co_charge/co_preempt/co_block")
            kind = op.kind
            if kind == "charge":
                engine.charge(op.cost)
                val = None
            elif kind == "preempt":
                engine.preempt(op.cost)
                val = None
            else:  # block
                val = engine.block(op.reason, deadline=op.deadline,
                                   cost=op.cost)
    except BaseException:
        gen.close()
        raise


_pid_counter = itertools.count(1)


class KernelProcess:
    """One simulated process: thread + scheduling metadata.

    Scheduling fields are only touched while the caller holds the
    engine's condition variable or is the single admitted runner.
    """

    def __init__(self, name: str, pe: int, target: Callable[[], Any],
                 daemon: bool = False):
        self.pid: int = next(_pid_counter)
        self.name = name
        self.pe = pe
        self.target = target
        #: Daemon processes (controllers) do not keep the run alive and
        #: are not counted as deadlocked parties.
        self.daemon = daemon

        self.state = ProcState.NEW
        #: This PE's clock object (set by ``Engine.spawn``; a process
        #: never migrates, so the engine's per-dispatch accounting reads
        #: it here instead of a clockmap lookup).
        self.clock: Any = None
        #: Virtual time at which the process may next be dispatched.
        self.ready_time: int = 0
        #: Absolute virtual deadline for a blocked-with-timeout process.
        self.deadline: Optional[int] = None
        #: Human-readable reason while blocked (for the deadlock dump).
        self.blocked_on: str = ""
        #: Value handed over by whoever woke us.
        self.wake_info: Any = None
        #: True when the last block ended by timeout, not by a wake.
        self.timed_out: bool = False

        #: Virtual time the current slice started (set by the engine).
        self.slice_start: int = 0
        #: Ticks charged so far in the current slice.
        self.pending_cost: int = 0

        self.killed = False
        self.exc: Optional[BaseException] = None
        self.result: Any = None
        #: Cleanup hook that runs in the process thread after the target
        #: returns, errors, OR is killed -- even if killed before its
        #: first slice.  Must not yield (no kernel blocking calls).
        self.on_exit: Optional[Callable[["KernelProcess"], None]] = None

        self.run_granted = False
        #: Per-process admission gate (indexed dispatcher): the engine
        #: sets it to hand this thread the machine, so a context switch
        #: wakes exactly one thread instead of broadcasting to all.
        self.grant = threading.Event()
        self.thread: Optional[threading.Thread] = None
        #: True when ``target`` is a generator function (a coroutine
        #: body yielding :class:`KernelOp` values).  The coop core runs
        #: it by function call on the engine thread; the threaded core
        #: drives it through a thread trampoline.
        self.is_coroutine = False
        #: The instantiated coroutine body (coop core, or the threaded
        #: trampoline once started); None for plain callable bodies.
        self.gen: Optional[Generator] = None
        #: Raw handoff lock for the coop core's pinned-worker fallback
        #: (callable bodies): always held; the engine passes control by
        #: releasing it, the worker parks by re-acquiring.  None on the
        #: threaded core and for coroutine processes.
        self.handoff: Optional[Any] = None
        #: Dispatch sequence number of the last slice (for round-robin
        #: tie-breaking among processes sharing a PE).
        self.last_dispatched: int = 0
        #: Scheduling generation, bumped by the engine on every state
        #: change that can affect the dispatch key; heap entries carry
        #: the generation they were pushed with, so stale entries are
        #: recognized and discarded lazily at pop time.
        self.sched_gen: int = 0
        #: Per-engine spawn order (0-based), assigned by Engine.spawn.
        #: Pids come from a process-global counter and vary run to run;
        #: the schedule artifact (.psched) identifies processes by this
        #: run-stable ordinal instead.
        self.spawn_ordinal: int = -1

    # ------------------------------------------------------------------

    @property
    def live(self) -> bool:
        return self.state not in (ProcState.DONE,)

    def sched_snapshot(self) -> list:
        """Run-stable scheduling state for checkpoint digests.

        Identified by spawn ordinal, never pid (pids come from a
        process-global counter and differ across host processes); every
        field listed is bit-reproducible between a restored run and the
        uninterrupted original at the same schedule position.
        """
        return [self.spawn_ordinal, self.name, self.state.value,
                int(self.ready_time),
                None if self.deadline is None else int(self.deadline),
                self.blocked_on, bool(self.killed)]

    def describe(self) -> str:
        extra = ""
        if self.state is ProcState.BLOCKED:
            extra = f" on {self.blocked_on!r}"
            if self.deadline is not None:
                extra += f" (deadline {self.deadline})"
        return (f"pid {self.pid} {self.name!r} pe={self.pe} "
                f"{self.state.value}{extra} ready_time={self.ready_time}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<KernelProcess {self.describe()}>"
