"""Cooperative (single-threaded discrete-event) execution core.

:class:`CoopEngine` keeps every scheduling decision of the threaded
oracle -- it *is* an :class:`~repro.mmos.scheduler.Engine`, sharing the
picker, the dispatch keys, the fault/hb/prof/sched hooks and the slice
accounting verbatim -- and replaces only the handoff: where the
threaded core wakes a process thread (grant Event) and parks the engine
thread (condition wait) for every dispatch, the coop core resumes a
coroutine body with a plain ``gen.send()`` on the engine thread.  An OS
context switch (~10us on this class of machine) becomes a generator
switch (~0.1us), which is what makes 1000-process machines routine.

Two body forms (see :mod:`repro.mmos.process`):

* **coroutine bodies** (generator functions yielding
  :class:`~repro.mmos.process.KernelOp`) run *on the engine thread*.
  No OS thread exists for them: ``leaked_threads`` can never name one,
  and a dispatch costs one ``send``.
* **callable bodies** (ordinary functions -- every PISCES task body)
  run on a pinned worker thread with a raw-lock token handoff: both
  locks stay held; the engine passes control by releasing the process's
  ``handoff`` lock and parks by re-acquiring its own ``_resume`` token;
  the worker does the reverse at every kernel point.  A raw lock pair
  is ~2x cheaper than the Event+Condition pair of the threaded core and
  keeps arbitrary blocking user code fully supported.

Determinism contract: virtual timestamps, dispatch order and the
trace/profile streams are bit-identical to the threaded core for the
same program -- both cores funnel every end-of-slice through
``Engine._settle_yield`` / ``Engine._settle_done`` and pick via the
same heap/scan/replay dispatchers.  The dispatcher-identity matrix and
the dispatch-equivalence property suite assert this on every core x
dispatcher combination.
"""

from __future__ import annotations

import threading
import time
from typing import Any, List, Optional

from ..errors import NotInProcess, ProcessKilled
from .process import KernelOp, KernelProcess, ProcState
from .scheduler import Engine


class CoopEngine(Engine):
    """Single-threaded discrete-event execution core (``coop``)."""

    exec_core = "coop"

    def __init__(self, *args: Any, **kwargs: Any):
        super().__init__(*args, **kwargs)
        #: Engine-side token of the raw-lock handoff (callable bodies):
        #: always held while the engine runs; a worker ends its slice by
        #: releasing it, the engine parks by re-acquiring.
        self._resume = threading.Lock()
        self._resume.acquire()
        #: Thread ident driving the current coroutine slice (the engine
        #: thread while inside ``gen.send``), or None.  This is what
        #: makes ``in_process``/``current`` answer correctly for bodies
        #: that have no thread of their own.
        self._gen_runner: Optional[int] = None

    # ------------------------------------------------ execution strategy --

    def _launch(self, p: KernelProcess) -> None:
        if p.is_coroutine:
            # No thread at all: the body is a generator resumed by the
            # engine loop.  Instantiating it runs no user code.
            p.gen = p.target()
            return
        p.handoff = threading.Lock()
        p.handoff.acquire()
        t = threading.Thread(target=self._thread_body, args=(p,),
                             name=f"pisces-{p.name}-{p.pid}", daemon=True)
        p.thread = t
        t.start()

    def _wait_for_grant(self, p: KernelProcess) -> None:
        # Raw-lock park: the engine's _run_slice releases exactly one
        # handoff per dispatch.  Level-triggered, so the release may
        # legally precede this acquire.
        p.handoff.acquire()

    def _run_slice(self, p: KernelProcess, start: int) -> None:
        p.slice_start = start
        p.state = ProcState.RUNNING
        self._current = p
        if p.gen is None:
            p.handoff.release()
            self._resume.acquire()
        else:
            self._step_coroutine(p)

    def _finish_thread(self, p: KernelProcess) -> None:
        # Worker thread exiting: settle DONE, then hand the machine
        # back.  No lock needed -- the engine is parked on _resume and
        # nothing else runs.
        self._settle_done(p)
        self._resume.release()

    def _yield(self, p: KernelProcess, new_state: ProcState, *,
               reason: str = "", deadline: Optional[int] = None) -> None:
        if p.gen is not None:
            raise RuntimeError(
                f"coroutine process {p.name!r} called a blocking kernel "
                "primitive on the coop core; yield co_preempt()/co_block() "
                "instead (charge/now are allowed)")
        self._settle_yield(p, new_state, reason, deadline)
        self._current = None
        self._resume.release()
        p.handoff.acquire()
        if p.killed:
            raise self._kill_exc(p)

    # ------------------------------------------------- coroutine driver --

    def _step_coroutine(self, p: KernelProcess) -> None:
        """One slice of a coroutine body: resume the generator and
        interpret yielded ops until it parks (preempt/block) or ends.

        This is the hot path the tentpole exists for -- a dispatch is
        this function call, no OS handoff anywhere.
        """
        gen = p.gen
        # The runner ident covers kill/close cleanup too: a generator's
        # GeneratorExit handlers (lock hand-off, barrier retraction) and
        # the exit hooks run kernel calls like wake()/now(), which must
        # see in_process() exactly as the threaded core's worker-thread
        # unwinding does.
        self._gen_runner = threading.get_ident()
        try:
            if p.killed:
                # Mirror the threaded core exactly: a killed process
                # never observes ProcessKilled inside a coroutine body
                # (the trampoline raises it *outside* the generator);
                # the body sees GeneratorExit via close(), the result
                # stays None.
                try:
                    gen.close()
                except BaseException as e:
                    p.exc = e
                self._proc_exit(p)
                return
            val = p.wake_info
            while True:
                try:
                    op = gen.send(val)
                except StopIteration as e:
                    p.result = e.value
                    self._proc_exit(p)
                    return
                except ProcessKilled:
                    self._proc_exit(p)
                    return
                except BaseException as e:
                    p.exc = e
                    self._proc_exit(p)
                    return
                if not isinstance(op, KernelOp):
                    p.exc = RuntimeError(
                        f"coroutine process {p.name!r} yielded {op!r}; "
                        "expected a KernelOp from co_charge/co_preempt/"
                        "co_block")
                    gen.close()
                    self._proc_exit(p)
                    return
                kind = op.kind
                if kind == "charge":
                    p.pending_cost += op.cost
                    val = None
                    continue
                if kind == "preempt":
                    p.pending_cost += op.cost
                    p.wake_info = None
                    self._settle_yield(p, ProcState.READY, "", None)
                else:  # block
                    p.pending_cost += op.cost
                    p.timed_out = False
                    p.wake_info = None
                    m = self.metrics
                    if m is not None and m.enabled:
                        m.counter("blocks",
                                  reason=op.reason.split("(", 1)[0]).inc()
                    self._settle_yield(p, ProcState.BLOCKED, op.reason,
                                       op.deadline)
                return
        finally:
            self._gen_runner = None

    def _proc_exit(self, p: KernelProcess) -> None:
        """Coroutine-body counterpart of ``_thread_body``'s finally."""
        if p.on_exit is not None:
            try:
                p.on_exit(p)
            except BaseException as e:
                if p.exc is None:
                    p.exc = e
        self._settle_done(p)

    # ---------------------------------------------------- process-side ----

    def current(self) -> KernelProcess:
        p = self._current
        if p is not None and p.gen is not None:
            if self._gen_runner == threading.get_ident():
                return p
            raise NotInProcess(
                "kernel call from outside a simulated process")
        return super().current()

    def in_process(self) -> bool:
        p = self._current
        if p is not None and p.gen is not None:
            return self._gen_runner == threading.get_ident()
        return super().in_process()

    # --------------------------------------------------------- shutdown --

    def _drain_processes(self, join_timeout: float) -> List[str]:
        """Drain live processes through the coop strategy.

        Coroutine bodies have no thread: closing the generator runs the
        body's finally clauses on the engine thread, the exit hook runs,
        and the process settles DONE -- by construction they can never
        appear in ``leaked_threads``.  Callable bodies are granted their
        handoff so the worker observes ``killed`` and unwinds; one that
        stays stuck in user code past ``join_timeout`` is reported the
        same way the threaded core reports it.
        """
        stuck: List[str] = []
        for p in list(self._procs.values()):
            if not p.live:
                continue
            if p.gen is not None:
                self._current = p
                self._gen_runner = threading.get_ident()
                try:
                    try:
                        p.gen.close()
                    except BaseException:
                        pass
                    p.exc = None
                    self._proc_exit(p)
                finally:
                    self._gen_runner = None
                    self._current = None
                continue
            while p.live and p.thread is not None and p.thread.is_alive():
                if p.state is ProcState.DONE:
                    break
                p.state = ProcState.RUNNING
                self._current = p
                p.handoff.release()
                limit = time.monotonic() + join_timeout
                timed_out = False
                # Re-acquire the engine token; absorb any stray release
                # from a previously-stuck thread (the state check, not
                # the lock, decides whether *this* slice ended).
                while p.state is ProcState.RUNNING:
                    if not self._resume.acquire(timeout=0.05) \
                            and time.monotonic() > limit:
                        timed_out = True
                        break
                self._current = None
                p.exc = None
                if timed_out:
                    stuck.append(p.name)
                    break
        return stuck
