"""repro -- a reproduction of the PISCES 2 parallel programming environment.

Terrence W. Pratt, "The PISCES 2 Parallel Programming Environment",
Proc. 1987 International Conference on Parallel Processing.

Public API quickstart::

    from repro import ANY, PARENT, PiscesVM, TaskRegistry, simple_configuration

    reg = TaskRegistry()

    @reg.tasktype("WORKER")
    def worker(ctx, n):
        ctx.accept("GO")
        ctx.send(PARENT, "DONE", n * n)

    @reg.tasktype("MAIN")
    def main(ctx):
        ...

    vm = PiscesVM(simple_configuration(n_clusters=2), registry=reg)
    result = vm.run("MAIN")

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from .config import ClusterSpec, Configuration, simple_configuration
from .core import (
    ALL_RECEIVED,
    ANY,
    Broadcast,
    Cluster,
    GLOBAL_REGISTRY,
    OTHER,
    PARENT,
    PiscesVM,
    RunResult,
    SAME,
    SELF,
    SENDER,
    TContr,
    TaskContext,
    TaskId,
    TaskRegistry,
    TraceEventType,
    USER,
    Window,
    tasktype,
)
from .errors import (
    PiscesError,
    RaceError,
    RaceWarning,
    ReplayDivergence,
    TraceOverflow,
    WindowConflict,
    WindowError,
)
from .flex import FlexMachine, MachineSpec, nasa_langley_flex32, small_flex
from .obs import MetricsRegistry, derive_spans, export_run
from . import api
from .api import (
    check_races,
    checkpoint_vm,
    find_latest_checkpoint,
    make_vm,
    open_window,
    plan_scope,
    profile_run,
    record_run,
    replay_run,
    restore_vm,
    run_app,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_RECEIVED",
    "ANY",
    "Broadcast",
    "Cluster",
    "ClusterSpec",
    "Configuration",
    "FlexMachine",
    "GLOBAL_REGISTRY",
    "MachineSpec",
    "MetricsRegistry",
    "OTHER",
    "PARENT",
    "PiscesError",
    "PiscesVM",
    "RaceError",
    "RaceWarning",
    "ReplayDivergence",
    "RunResult",
    "SAME",
    "SELF",
    "SENDER",
    "TContr",
    "TaskContext",
    "TaskId",
    "TaskRegistry",
    "TraceEventType",
    "TraceOverflow",
    "USER",
    "Window",
    "WindowConflict",
    "WindowError",
    "__version__",
    "api",
    "check_races",
    "checkpoint_vm",
    "derive_spans",
    "export_run",
    "find_latest_checkpoint",
    "make_vm",
    "profile_run",
    "record_run",
    "replay_run",
    "restore_vm",
    "nasa_langley_flex32",
    "open_window",
    "plan_scope",
    "run_app",
    "simple_configuration",
    "small_flex",
    "tasktype",
]
