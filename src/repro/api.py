"""One-stop facade over the PISCES 2 reproduction.

Programs, examples and notebooks used to import from five deep modules
(``repro.core.vm``, ``repro.config.configuration``, ``repro.obs``,
``repro.faults``, ``repro.flex.presets``) to do four things: build a
VM, run an application task, inject faults, and export the run record.
This module is the stable surface for exactly those things::

    from repro import api

    reg = TaskRegistry()
    ...
    result = api.run_app("MAIN", registry=reg, n_clusters=2, slots=4)
    api.export_run(result.vm, "out/")

Everything here is a thin composition of public pieces -- the deep
modules remain importable for anything not covered.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional, Tuple

from .config.configuration import Configuration, simple_configuration
from .core.task import TaskRegistry
from .core.taskid import Placement
from .core.vm import PiscesVM, RunResult
from .core.windows import Window
from .errors import ConfigurationError, WindowError
from .faults import plan_scope
from .flex.machine import FlexMachine
from .obs.export import export_run

__all__ = [
    "export_run",
    "make_vm",
    "open_window",
    "plan_scope",
    "run_app",
]


def make_vm(n_clusters: int = 2, slots: int = 4, *,
            force_pes_per_cluster: int = 0,
            config: Optional[Configuration] = None,
            registry: Optional[TaskRegistry] = None,
            machine: Optional[FlexMachine] = None,
            metrics: bool = False,
            time_limit: Optional[int] = None,
            trace_events: Tuple[str, ...] = (),
            window_path: str = "",
            fault_plan: Optional[Any] = None,
            name: str = "api") -> PiscesVM:
    """Build a booted VM without touching the configuration layer.

    A ready-made ``config`` wins over the shape arguments; otherwise a
    :func:`simple_configuration` of ``n_clusters`` x ``slots`` (plus
    ``force_pes_per_cluster`` secondary PEs each) is built and the
    keyword toggles (metrics, time limit, tracing, window data-plane
    path) applied to it.
    """
    if config is None:
        config = replace(
            simple_configuration(n_clusters=n_clusters, slots=slots,
                                 force_pes_per_cluster=force_pes_per_cluster,
                                 name=name),
            metrics_enabled=metrics, time_limit=time_limit,
            trace_events=tuple(trace_events), window_path=window_path)
    return PiscesVM(config, registry=registry, machine=machine,
                    fault_plan=fault_plan)


def run_app(tasktype: str, *args: Any,
            registry: Optional[TaskRegistry] = None,
            vm: Optional[PiscesVM] = None,
            on: Placement = None,
            shutdown: bool = True,
            **vm_kwargs: Any) -> RunResult:
    """Run one application task to completion and return its result.

    Builds a VM via :func:`make_vm` (forwarding ``vm_kwargs``) unless an
    existing ``vm`` is supplied.
    """
    if vm is None:
        vm = make_vm(registry=registry, **vm_kwargs)
    elif registry is not None or vm_kwargs:
        raise ConfigurationError(
            "run_app: pass either vm=... or VM-construction keywords")
    return vm.run(tasktype, *args, on=on, shutdown=shutdown)


def open_window(vm: PiscesVM, name: str, *, region=None,
                rows=None, cols=None) -> Window:
    """A window on a file-store array, from outside any task (monitor /
    analysis use; inside a task use ``ctx.file_window``)."""
    fc = vm.file_controller
    if fc is None:
        raise WindowError("no file controller in this configuration")
    return fc.window_for(name, region=region, rows=rows, cols=cols)
