"""One-stop facade over the PISCES 2 reproduction.

Programs, examples and notebooks used to import from five deep modules
(``repro.core.vm``, ``repro.config.configuration``, ``repro.obs``,
``repro.faults``, ``repro.flex.presets``) to do four things: build a
VM, run an application task, inject faults, and export the run record.
This module is the stable surface for exactly those things::

    from repro import api

    reg = TaskRegistry()
    ...
    result = api.run_app("MAIN", registry=reg, n_clusters=2, slots=4)
    api.export_run(result.vm, "out/")

Everything here is a thin composition of public pieces -- the deep
modules remain importable for anything not covered.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

from .checkpoint import (
    RestoredRun,
    checkpoint_vm,
    find_latest_checkpoint,
    restore_vm,
)
from .config.configuration import Configuration, simple_configuration
from .core.task import TaskRegistry
from .core.taskid import Placement
from .core.tracing import TraceEventType
from .core.vm import PiscesVM, RunResult
from .core.windows import Window
from .correctness.detector import RaceDetector, RaceReport
from .correctness.recorder import Schedule, ScheduleRecorder
from .errors import ConfigurationError, WindowError
from .faults import plan_scope
from .flex.machine import FlexMachine
from .obs.export import export_run
from .obs.profile import (
    CausalProfiler,
    CriticalPath,
    extract_critical_path,
    profile_report,
    write_profile,
)
from .results import RunRecord

__all__ = [
    "ProfiledRun",
    "RaceCheck",
    "RecordedRun",
    "RestoredRun",
    "RunRecord",
    "RunResult",
    "check_races",
    "checkpoint_vm",
    "export_run",
    "find_latest_checkpoint",
    "make_vm",
    "open_window",
    "plan_scope",
    "profile_run",
    "record_run",
    "replay_run",
    "restore_vm",
    "run_app",
]

#: Trace event type names enabled by record_run/replay_run when
#: ``trace=True`` (the full stream: its bit-identity is part of the
#: replay contract).
_ALL_TRACE_EVENTS = tuple(t.value for t in TraceEventType)


def make_vm(n_clusters: int = 2, slots: int = 4, *,
            force_pes_per_cluster: int = 0,
            config: Optional[Configuration] = None,
            registry: Optional[TaskRegistry] = None,
            machine: Optional[FlexMachine] = None,
            metrics: bool = False,
            time_limit: Optional[int] = None,
            trace_events: Tuple[str, ...] = (),
            window_path: str = "",
            exec_core: str = "",
            task_bodies: str = "",
            fault_plan: Optional[Any] = None,
            detect_races: Optional[Any] = None,
            recorder: Optional[ScheduleRecorder] = None,
            replay: Union[Schedule, str, Path, None] = None,
            name: str = "api") -> PiscesVM:
    """Build a booted VM without touching the configuration layer.

    A ready-made ``config`` wins over the shape arguments; otherwise a
    :func:`simple_configuration` of ``n_clusters`` x ``slots`` (plus
    ``force_pes_per_cluster`` secondary PEs each) is built and the
    keyword toggles (metrics, time limit, tracing, window data-plane
    path, execution core, task-body vehicle) applied to it.
    ``detect_races`` / ``recorder`` / ``replay`` reach the correctness
    subsystem (:mod:`repro.correctness`).
    """
    if config is None:
        config = replace(
            simple_configuration(n_clusters=n_clusters, slots=slots,
                                 force_pes_per_cluster=force_pes_per_cluster,
                                 name=name),
            metrics_enabled=metrics, time_limit=time_limit,
            trace_events=tuple(trace_events), window_path=window_path,
            exec_core=exec_core, task_bodies=task_bodies)
    return PiscesVM(config, registry=registry, machine=machine,
                    fault_plan=fault_plan, detect_races=detect_races,
                    recorder=recorder, replay=replay)


def run_app(tasktype: str, *args: Any,
            registry: Optional[TaskRegistry] = None,
            vm: Optional[PiscesVM] = None,
            on: Placement = None,
            shutdown: bool = True,
            **vm_kwargs: Any) -> RunResult:
    """Run one application task to completion and return its result.

    Builds a VM via :func:`make_vm` (forwarding ``vm_kwargs``) unless an
    existing ``vm`` is supplied.
    """
    if vm is None:
        vm = make_vm(registry=registry, **vm_kwargs)
    elif registry is not None or vm_kwargs:
        raise ConfigurationError(
            "run_app: pass either vm=... or VM-construction keywords")
    return vm.run(tasktype, *args, on=on, shutdown=shutdown)


@dataclass
class RecordedRun(RunRecord):
    """A run plus everything needed to replay and compare it."""

    result: RunResult
    #: In-memory schedule (replayable directly via ``replay_run``).
    schedule: Schedule
    #: Where the ``.psched`` artifact was written (None: memory only).
    psched_path: Optional[Path]
    #: The textual trace stream (bit-identity evidence for replays).
    trace_lines: List[str]


@dataclass
class RaceCheck(RunRecord):
    """Outcome of :func:`check_races`."""

    result: RunResult
    reports: List[RaceReport]      # races (severity "race")
    warnings: List[RaceReport]     # window read/write warnings
    detector: RaceDetector

    @property
    def clean(self) -> bool:
        return not self.reports

    def report_text(self) -> str:
        return self.detector.report_text()


def _trace_lines(vm: PiscesVM) -> List[str]:
    return [e.line() for e in vm.tracer.events]


def record_run(tasktype: str, *args: Any,
               path: Union[str, Path, None] = None,
               registry: Optional[TaskRegistry] = None,
               on: Placement = None,
               trace: bool = True,
               **vm_kwargs: Any) -> RecordedRun:
    """Run an application while recording its schedule (tentpole API).

    Captures the dispatcher's complete decision stream into a
    ``.psched`` artifact (written to ``path`` when given, else kept in
    memory) so :func:`replay_run` can re-execute the run bit-identically.
    ``trace=True`` (default) also enables the full trace stream in
    strict-overflow mode -- the stream is replay-comparison evidence, so
    silent truncation must fail loudly.
    """
    recorder = ScheduleRecorder(path=path, meta={"app": tasktype})
    if trace:
        vm_kwargs.setdefault("trace_events", _ALL_TRACE_EVENTS)
    vm = make_vm(registry=registry, recorder=recorder, **vm_kwargs)
    if trace:
        vm.tracer.strict_overflow = True
    result = vm.run(tasktype, *args, on=on)
    return RecordedRun(result=result, schedule=recorder.as_schedule(),
                       psched_path=None if path is None else Path(path),
                       trace_lines=_trace_lines(vm))


def replay_run(tasktype: str, *args: Any,
               schedule: Union[RecordedRun, Schedule, str, Path],
               registry: Optional[TaskRegistry] = None,
               on: Placement = None,
               trace: bool = True,
               **vm_kwargs: Any) -> RunResult:
    """Re-execute a recorded run under the replay dispatcher.

    ``schedule`` is a :class:`RecordedRun`, an in-memory
    :class:`Schedule`, or a ``.psched`` path.  Every scheduling decision
    is verified against the recording
    (:class:`~repro.errors.ReplayDivergence` on the first mismatch) and
    the whole recording must be consumed; the replayed run is
    bit-identical -- same elapsed ticks, same trace stream, same
    RunStats.
    """
    if isinstance(schedule, RecordedRun):
        schedule = schedule.schedule
    if isinstance(schedule, (str, Path)):
        schedule = Schedule.load(schedule)
    if trace:
        vm_kwargs.setdefault("trace_events", _ALL_TRACE_EVENTS)
    vm = make_vm(registry=registry, replay=schedule, **vm_kwargs)
    if trace:
        vm.tracer.strict_overflow = True
    result = vm.run(tasktype, *args, on=on)
    schedule.check_complete()
    return result


def check_races(tasktype: str, *args: Any,
                registry: Optional[TaskRegistry] = None,
                on: Placement = None,
                mode: str = "record",
                **vm_kwargs: Any) -> RaceCheck:
    """Run an application under the happens-before race detector.

    ``mode``: ``"record"`` collects reports (default), ``"warn"`` also
    emits :class:`~repro.errors.RaceWarning`, ``"raise"`` raises
    :class:`~repro.errors.RaceError` at the first racing access.
    """
    vm = make_vm(registry=registry, detect_races=mode, **vm_kwargs)
    result = vm.run(tasktype, *args, on=on)
    det = vm.race_detector
    return RaceCheck(result=result, reports=list(det.reports),
                     warnings=list(det.warnings), detector=det)


@dataclass
class ProfiledRun(RunRecord):
    """Outcome of :func:`profile_run`: the run, its causal profile and
    the extracted critical path."""

    result: RunResult
    profiler: CausalProfiler
    critical_path: CriticalPath

    def report(self) -> str:
        """The full text panel (wait states, utilization, path)."""
        return profile_report(self.profiler, elapsed=self.elapsed)

    def export(self, directory: Union[str, Path],
               prefix: str = "profile") -> dict:
        """Write the run record plus the flamegraph/Chrome/critical-path
        bundle (the bundle re-uses this run's extracted path rather than
        re-deriving it without the elapsed total)."""
        paths = super().export(directory, prefix=prefix)
        bundle = write_profile(self.profiler, directory,
                               prefix=f"{prefix}.profile",
                               elapsed=self.elapsed,
                               critical_path=self.critical_path)
        paths.update({f"profile_{k}": p for k, p in bundle.items()})
        return paths


def profile_run(tasktype: str, *args: Any,
                registry: Optional[TaskRegistry] = None,
                on: Placement = None,
                **vm_kwargs: Any) -> ProfiledRun:
    """Run one application under the causal profiler (tentpole API).

    Enables the profiler (and the metrics registry, so the wait-state
    rollups land there) before the run, then extracts the critical
    path.  Profiling charges zero virtual time: elapsed ticks and trace
    streams are bit-identical to an unprofiled run.
    """
    vm_kwargs.setdefault("metrics", True)
    vm = make_vm(registry=registry, **vm_kwargs)
    prof = vm.enable_profiling()
    result = vm.run(tasktype, *args, on=on)
    prof.publish_metrics(vm.metrics, elapsed=result.elapsed)
    cp = extract_critical_path(prof, elapsed=result.elapsed)
    return ProfiledRun(result=result, profiler=prof, critical_path=cp)


def open_window(vm: PiscesVM, name: str, *, region=None,
                rows=None, cols=None) -> Window:
    """A window on a file-store array, from outside any task (monitor /
    analysis use; inside a task use ``ctx.file_window``)."""
    fc = vm.file_controller
    if fc is None:
        raise WindowError("no file controller in this configuration")
    return fc.window_for(name, region=region, rows=rows, cols=cols)
