"""Fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a declarative, *seeded* schedule of faults for
one run.  It contains:

* timed faults in virtual time -- :class:`PECrash` (a processing
  element dies; every kernel process pinned there is killed) and
  :class:`TaskKill` (one task of a named tasktype dies mid-statement);
* a :class:`MessagePolicy` -- per-delivery probabilities of dropping,
  duplicating, delaying or corrupting an eligible user message, drawn
  from a ``random.Random(seed)`` stream that consumes exactly one
  variate per eligible delivery, so the same seed and plan reproduce
  the same faults tick-for-tick;
* ``strict_sends`` -- turn silent sends-to-dead-tasks into typed
  :class:`~repro.errors.SendFailed` errors (task origins only).

Plans are plain frozen data: build them programmatically or load them
from the same style of text file as configurations (section 9)::

    # pisces fault plan
    seed 42
    crash pe 7 at 120000
    kill JWORKER nth 1 at 50000
    messages drop 0.02 duplicate 0.01 delay 0.05 corrupt 0.01 delay_ticks 800
    protect ROWS SWEPT
    strict_sends on
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..errors import ConfigurationError

PLAN_HEADER = "# pisces fault plan"

#: Message types the injector never touches, on top of the system
#: ``@``-prefixed types: failure notifications must survive the faults
#: they report.
ALWAYS_PROTECTED = ("TASK_DIED",)


@dataclass(frozen=True)
class PECrash:
    """A processing element crashes/hangs at virtual time ``at``."""

    at: int
    pe: int


@dataclass(frozen=True)
class TaskKill:
    """The ``nth`` (1-based, taskid order) live task of ``tasktype``
    dies mid-statement at virtual time ``at``."""

    at: int
    tasktype: str
    nth: int = 1


@dataclass(frozen=True)
class HostKill:
    """The *host* Python process is SIGKILLed at virtual time ``at``.

    The chaos event checkpoint/restore exists for: unlike
    :class:`PECrash`/:class:`TaskKill` (simulated failures inside the
    virtual machine), this one kills the real interpreter mid-run --
    no cleanup, no atexit, exactly what a node reclaim or OOM kill
    does.  A restored VM disarms host kills
    (``FaultInjector.arm_host_kills``) so the recovered run does not
    re-die at the same tick; disarmed host kills are total no-ops
    (no RNG variates, no recorded events), keeping the recovered run
    bit-identical to one executed under a plan without the kill.
    """

    at: int


@dataclass(frozen=True)
class MessagePolicy:
    """Per-delivery fault probabilities for eligible user messages.

    Exactly one uniform variate is drawn per eligible delivery and
    compared against the cumulative probabilities in the fixed order
    drop, duplicate, delay, corrupt -- adding a fault class never
    perturbs which deliveries an earlier class hits.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    corrupt: float = 0.0
    #: Extra virtual-time latency added to a delayed (reordered) message.
    delay_ticks: int = 500
    #: Message types exempt from faults (on top of system types).
    protected: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "delay", "corrupt"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(
                    f"message fault probability {name}={p} outside [0, 1]")
        if self.drop + self.duplicate + self.delay + self.corrupt > 1.0:
            raise ConfigurationError(
                "message fault probabilities sum to more than 1")
        if self.delay_ticks < 0:
            raise ConfigurationError("delay_ticks must be >= 0")

    @property
    def any_faults(self) -> bool:
        return (self.drop + self.duplicate + self.delay + self.corrupt) > 0


@dataclass(frozen=True)
class FaultPlan:
    """A complete, seeded fault schedule for one run."""

    seed: int = 0
    crashes: Tuple[PECrash, ...] = ()
    kills: Tuple[TaskKill, ...] = ()
    messages: Optional[MessagePolicy] = None
    #: Sends from *tasks* to dead taskids raise ``SendFailed`` instead
    #: of being silently dropped (controllers keep the lenient default).
    strict_sends: bool = False
    #: Host-process SIGKILLs (crash-recovery chaos; see
    #: :class:`HostKill`).
    host_kills: Tuple[HostKill, ...] = ()
    name: str = "unnamed"

    def timed_events(self) -> List[Union[PECrash, TaskKill, HostKill]]:
        """All timed faults ordered by (time, declaration order)."""
        evs: List[Tuple[int, int, Union[PECrash, TaskKill, HostKill]]] = []
        for i, c in enumerate(self.crashes):
            evs.append((c.at, i, c))
        for i, k in enumerate(self.kills):
            evs.append((k.at, len(self.crashes) + i, k))
        for i, h in enumerate(self.host_kills):
            evs.append((h.at, len(self.crashes) + len(self.kills) + i, h))
        evs.sort(key=lambda e: (e[0], e[1]))
        return [e[2] for e in evs]

    @property
    def empty(self) -> bool:
        """True when the plan changes nothing about a run (a VM given an
        empty plan installs no injector at all)."""
        return (not self.crashes and not self.kills
                and not self.host_kills
                and not self.strict_sends
                and (self.messages is None or not self.messages.any_faults))

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


# ------------------------------------------------------------- text I/O --

def dumps(plan: FaultPlan) -> str:
    """Serialize a plan to the one-directive-per-line text format."""
    out = [PLAN_HEADER, f"name {plan.name}", f"seed {plan.seed}"]
    for c in plan.crashes:
        out.append(f"crash pe {c.pe} at {c.at}")
    for k in plan.kills:
        out.append(f"kill {k.tasktype} nth {k.nth} at {k.at}")
    for h in plan.host_kills:
        out.append(f"hostkill at {h.at}")
    mp = plan.messages
    if mp is not None:
        out.append(f"messages drop {mp.drop} duplicate {mp.duplicate} "
                   f"delay {mp.delay} corrupt {mp.corrupt} "
                   f"delay_ticks {mp.delay_ticks}")
        if mp.protected:
            out.append("protect " + " ".join(mp.protected))
    if plan.strict_sends:
        out.append("strict_sends on")
    return "\n".join(out) + "\n"


def loads(text: str) -> FaultPlan:
    """Parse the text format back into a :class:`FaultPlan`."""
    kw: dict = {}
    crashes: List[PECrash] = []
    kills: List[TaskKill] = []
    host_kills: List[HostKill] = []
    msg_kw: Optional[dict] = None
    protected: Tuple[str, ...] = ()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        toks = line.split()
        try:
            if toks[0] == "name":
                kw["name"] = " ".join(toks[1:]) or "unnamed"
            elif toks[0] == "seed":
                kw["seed"] = int(toks[1])
            elif toks[0] == "crash":
                f = dict(zip(toks[1::2], toks[2::2]))
                crashes.append(PECrash(at=int(f["at"]), pe=int(f["pe"])))
            elif toks[0] == "kill":
                f = dict(zip(toks[2::2], toks[3::2]))
                kills.append(TaskKill(at=int(f["at"]), tasktype=toks[1],
                                      nth=int(f.get("nth", 1))))
            elif toks[0] == "hostkill":
                f = dict(zip(toks[1::2], toks[2::2]))
                host_kills.append(HostKill(at=int(f["at"])))
            elif toks[0] == "messages":
                f = dict(zip(toks[1::2], toks[2::2]))
                msg_kw = {k: (int(v) if k == "delay_ticks" else float(v))
                          for k, v in f.items()}
            elif toks[0] == "protect":
                protected = tuple(toks[1:])
            elif toks[0] == "strict_sends":
                kw["strict_sends"] = toks[1].lower() in ("on", "true", "1")
            else:
                raise ConfigurationError(
                    f"line {lineno}: unknown fault directive {toks[0]!r}")
        except (IndexError, KeyError, ValueError) as e:
            raise ConfigurationError(
                f"fault plan line {lineno}: {raw!r}: {e}") from e
    if msg_kw is not None or protected:
        kw["messages"] = MessagePolicy(protected=protected, **(msg_kw or {}))
    return FaultPlan(crashes=tuple(crashes), kills=tuple(kills),
                     host_kills=tuple(host_kills), **kw)


def save(plan: FaultPlan, path: Union[str, Path]) -> Path:
    """Write a fault-plan file (conventionally ``*.pfault``)."""
    p = Path(path)
    p.write_text(dumps(plan))
    return p


def load(path: Union[str, Path]) -> FaultPlan:
    """Read a fault-plan file saved by :func:`save`."""
    return loads(Path(path).read_text())
