"""Deterministic fault injection and failure semantics.

The paper's virtual machine assumes PEs, slots and message transport
never fail; this package makes failure a first-class, *testable* part
of the environment:

* :mod:`repro.faults.plan` -- declarative seeded :class:`FaultPlan`
  (PE crashes, task kills, lossy/duplicating/delaying/corrupting
  message transport), with the section-9 style text file format;
* :mod:`repro.faults.injector` -- the :class:`FaultInjector` that
  executes a plan against one VM deterministically;
* :mod:`repro.core.supervision` (re-exported here) -- what the system
  does about a dead task: ``NONE`` / ``NOTIFY`` / ``RESTART``.

Install a plan either explicitly::

    vm = PiscesVM(config, registry=reg, fault_plan=plan)

or ambiently, for application entry points that build their own VM::

    with plan_scope(plan):
        result = run_jacobi_windows(...)
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from ..core.supervision import NONE, NOTIFY, RESTART, Supervision
from .injector import (
    CORRUPT,
    CORRUPTION_MARKER,
    DELAY,
    DROP,
    DUPLICATE,
    FaultEvent,
    FaultInjector,
    corrupt_args,
)
from .plan import (
    ALWAYS_PROTECTED,
    FaultPlan,
    HostKill,
    MessagePolicy,
    PECrash,
    TaskKill,
    dumps,
    load,
    loads,
    save,
)

#: Ambient plan installed by :func:`plan_scope`; consulted by
#: ``PiscesVM.__init__`` when no explicit ``fault_plan`` is given.
#: A :class:`~contextvars.ContextVar`, not a module global: concurrent
#: runs in one process (the run service's worker pool, a thread pool of
#: ``run_app`` calls) each see only the plan installed in their own
#: context, so one run's chaos plan can never leak into another's VM.
_ambient_plan: ContextVar[Optional[FaultPlan]] = ContextVar(
    "pisces_ambient_fault_plan", default=None)


@contextmanager
def plan_scope(plan: Optional[FaultPlan]) -> Iterator[Optional[FaultPlan]]:
    """Install ``plan`` for every VM constructed inside the ``with``.

    Lets the chaos suite drive application entry points (which build
    their own VM internally) without changing their signatures.  The
    installation is context-local: a ``plan_scope`` entered on one
    thread is invisible to VMs constructed concurrently on others.
    """
    token = _ambient_plan.set(plan)
    try:
        yield plan
    finally:
        _ambient_plan.reset(token)


def ambient_plan() -> Optional[FaultPlan]:
    """The plan installed by the innermost :func:`plan_scope`, if any."""
    return _ambient_plan.get()


__all__ = [
    "ALWAYS_PROTECTED", "CORRUPT", "CORRUPTION_MARKER", "DELAY", "DROP",
    "DUPLICATE", "FaultEvent", "FaultInjector", "FaultPlan", "HostKill",
    "MessagePolicy", "NONE", "NOTIFY", "PECrash", "RESTART", "Supervision",
    "TaskKill", "ambient_plan", "corrupt_args", "dumps", "load", "loads",
    "plan_scope", "save",
]
