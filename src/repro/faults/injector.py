"""The fault injector: executes a :class:`~repro.faults.plan.FaultPlan`
against one running VM, deterministically.

Determinism contract (same as the dispatcher identity suite): the same
program, configuration, seed and plan produce bit-identical fault event
streams and virtual-time traces across runs.  Two mechanisms keep that
true:

* timed faults fire from the engine's dispatch loop -- the injector's
  :meth:`FaultInjector.pump` runs *before* a slice whose start time has
  passed a fault's ``at``, so a crash lands at the same point of the
  dispatch order every run;
* message faults consume exactly one ``random.Random(seed)`` variate
  per eligible delivery, regardless of outcome, so the stream position
  is a pure function of the delivery sequence.

Every injected fault (and every failure-semantics action taken in
response) is recorded as a :class:`FaultEvent`, emitted as a ``FAULT``
trace event, and counted in ``RunStats`` / the obs metrics registry.
"""

from __future__ import annotations

import heapq
import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple, TYPE_CHECKING, Union

from ..core.taskid import TaskId, USER_TERMINAL_ID
from ..core.tracing import TraceEvent, TraceEventType
from .plan import (ALWAYS_PROTECTED, FaultPlan, HostKill, MessagePolicy,
                   PECrash, TaskKill)

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vm import PiscesVM

#: Message-fault actions returned by :meth:`FaultInjector.on_message`.
DROP = "drop"
DUPLICATE = "duplicate"
DELAY = "delay"
CORRUPT = "corrupt"

#: Marker value substituted into a corrupted payload.
CORRUPTION_MARKER = "<CORRUPTED>"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault or failure-semantics action."""

    at: int       # virtual time the event was applied
    seq: int      # per-run injection order
    kind: str     # pe_crash | task_kill | drop | duplicate | ... | restart
    detail: str

    def line(self) -> str:
        """Deterministic JSONL rendering (the chaos-suite artifact)."""
        return json.dumps({"at": self.at, "seq": self.seq,
                           "kind": self.kind, "detail": self.detail},
                          sort_keys=True)


def corrupt_args(args: Tuple) -> Tuple:
    """Deterministically mutate a payload (stale-checksum corruption)."""
    if args:
        return (CORRUPTION_MARKER,) + tuple(args[1:])
    return (CORRUPTION_MARKER,)


class FaultInjector:
    """Executes one plan against one VM.

    A fresh injector (fresh ``Random(seed)``, fresh timed-event heap)
    is built per VM, so re-running the same plan is bit-identical.
    """

    def __init__(self, vm: "PiscesVM", plan: FaultPlan):
        self.vm = vm
        self.plan = plan
        self.rng = random.Random(plan.seed)
        self.events: List[FaultEvent] = []
        self._seq = 0
        #: Fire :class:`HostKill` events?  ``restore_vm`` disarms them
        #: so a recovered run does not re-die at the same tick.  A
        #: disarmed host kill is a *total* no-op -- no variates, no
        #: recorded events -- bit-identical to a plan without it.
        self.arm_host_kills = True
        #: min-heap of (at, order, event) still to fire.
        self._timed: List[
            Tuple[int, int, Union[PECrash, TaskKill, HostKill]]] = []
        for i, ev in enumerate(plan.timed_events()):
            heapq.heappush(self._timed, (ev.at, i, ev))
        self._timed_total = len(self._timed)
        mp = plan.messages
        self._policy: Optional[MessagePolicy] = (
            mp if mp is not None and mp.any_faults else None)
        if self._policy is not None:
            p = self._policy
            self._cum_drop = p.drop
            self._cum_dup = self._cum_drop + p.duplicate
            self._cum_delay = self._cum_dup + p.delay
            self._cum_corrupt = self._cum_delay + p.corrupt
            self._protected = frozenset(ALWAYS_PROTECTED) | set(p.protected)

    # -------------------------------------------------------- recording --

    def record(self, kind: str, detail: str, *,
               task: Optional[TaskId] = None, pe: int = 0,
               injected: bool = True) -> FaultEvent:
        """Log one fault event (+ trace + stats + metrics).

        ``injected=False`` marks failure-*semantics* actions (a
        detection, a restart) that belong in the event stream but are
        not themselves injected faults.
        """
        vm = self.vm
        now = vm.engine.now()
        ev = FaultEvent(at=now, seq=self._seq, kind=kind, detail=detail)
        self._seq += 1
        self.events.append(ev)
        if injected:
            vm.stats.faults_injected += 1
        vm.tracer.emit(TraceEvent(
            etype=TraceEventType.FAULT,
            task=task if task is not None else USER_TERMINAL_ID,
            pe=pe, ticks=now, info=f"{kind}: {detail}"))
        m = vm.metrics
        if m.enabled:
            m.counter("faults_injected", kind=kind).inc()
        return ev

    def export_jsonl(self) -> str:
        """All fault events as JSON lines (the CI chaos artifact)."""
        return "\n".join(ev.line() for ev in self.events)

    def write_jsonl(self, path) -> Path:
        p = Path(path)
        text = self.export_jsonl()
        p.write_text(text + "\n" if text else "")
        return p

    # ------------------------------------------------------ timed faults --

    def pump(self, upto: Optional[int]) -> bool:
        """Fire pending timed faults.

        ``upto`` is the start time of the slice the engine is about to
        dispatch: every fault scheduled at or before it fires first.
        ``upto=None`` means the engine found nothing runnable (it would
        declare deadlock); the earliest pending fault fires so a run
        blocked on a doomed PE still crashes rather than deadlocks.
        Returns True when anything fired.
        """
        fired = False
        while self._timed:
            at = self._timed[0][0]
            if upto is not None and at > upto:
                break
            _, _, ev = heapq.heappop(self._timed)
            self._fire(ev)
            fired = True
            if upto is None:
                break
        return fired

    def cursor_state(self) -> dict:
        """Where this injector is in its plan (stamped into export and
        checkpoint manifests so a bundle identifies the exact point of
        the run it was taken at)."""
        import zlib
        return {
            "timed_fired": self._timed_total - len(self._timed),
            "timed_pending": len(self._timed),
            "events_recorded": len(self.events),
            "rng_digest": zlib.adler32(repr(self.rng.getstate())
                                       .encode("utf-8")),
        }

    def _fire(self, ev: Union[PECrash, TaskKill, HostKill]) -> None:
        vm = self.vm
        if isinstance(ev, HostKill):
            if not self.arm_host_kills:
                return
            import os
            import signal
            # The chaos event checkpoint/restore exists for: die like a
            # node reclaim would -- no cleanup, no flush, no atexit.
            self.record("host_kill", f"at={ev.at} pid={os.getpid()}")
            os.kill(os.getpid(), signal.SIGKILL)
            return
        if isinstance(ev, PECrash):
            vm.on_pe_failure(ev.pe, reason=f"pe{ev.pe}-crash")
            return
        # TaskKill: the nth live task of the tasktype, in taskid order.
        victims = sorted(
            (t for t in vm.tasks.values()
             if t.alive and t.ttype.name == ev.tasktype),
            key=lambda t: (t.tid.cluster, t.tid.slot, t.tid.unique))
        if len(victims) < ev.nth:
            self.record("task_kill_miss",
                        f"type={ev.tasktype} nth={ev.nth} "
                        f"live={len(victims)}")
            return
        victim = victims[ev.nth - 1]
        self.record("task_kill", f"task={victim.tid} type={ev.tasktype}",
                    task=victim.tid, pe=victim.cluster.primary_pe)
        vm.kill_task(victim.tid, reason="fault-injected kill")

    # ---------------------------------------------------- message faults --

    def on_message(self, mtype: str) -> Optional[str]:
        """Decide the fate of one delivery; one variate per eligible call.

        Returns one of DROP/DUPLICATE/DELAY/CORRUPT or None (deliver
        normally).  System messages (``@`` types), failure notifications
        and explicitly protected types are never eligible and consume
        no randomness.
        """
        if self._policy is None or not self.message_eligible(mtype):
            return None
        u = self.rng.random()
        if u < self._cum_drop:
            return DROP
        if u < self._cum_dup:
            return DUPLICATE
        if u < self._cum_delay:
            return DELAY
        if u < self._cum_corrupt:
            return CORRUPT
        return None

    def message_eligible(self, mtype: str) -> bool:
        if self._policy is None:
            return False
        return not mtype.startswith("@") and mtype not in self._protected

    @property
    def delay_ticks(self) -> int:
        return self._policy.delay_ticks if self._policy is not None else 0

    @property
    def checksums(self) -> bool:
        """Stamp integrity checksums on eligible messages?  Only when
        the plan can corrupt payloads -- detection costs an adler32 per
        eligible message, pointless otherwise."""
        return self._policy is not None and self._policy.corrupt > 0
