"""The PISCES 2 virtual machine (sections 4-6, 11).

A :class:`PiscesVM` instance is one booted run: a configured set of
clusters on a FLEX machine, controllers running, system tables resident
in shared memory, ready to initiate user tasks.  The VM owns:

* destination resolution and message delivery (SEND / broadcast);
* initiate-request routing (ON <cluster> INITIATE ...);
* the window read/write service;
* task life-cycle (start in slot, terminate, kill);
* the storage accounting that the section-13 benchmarks measure.
"""

from __future__ import annotations

import inspect
import itertools
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from ..errors import (
    ConfigurationError,
    MessageError,
    NoSuchCluster,
    RuntimeLibraryError,
    SendFailed,
    UnknownTask,
    WindowConflict,
    WindowError,
)
from ..faults.injector import corrupt_args
from ..flex.machine import FlexMachine
from ..flex.presets import nasa_langley_flex32
from ..mmos.kernel import MMOSKernel
from ..mmos.process import co_block, co_preempt, drive_kernel_ops
from ..obs.metrics import MetricsRegistry
from ..results import RunRecord
from ..mmos.loader import (
    CAT_MMOS_KERNEL,
    CAT_PISCES_CODE,
    CAT_PISCES_DATA,
    CAT_USER_CODE,
    Loadfile,
)
from ..config.configuration import (
    ClusterSpec,
    Configuration,
    env_flag,
    env_int,
    env_value,
)
from .accept import RetryPolicy
from .cluster import ClusterRuntime, PendingInitiate, Slot
from .controllers import (
    Controller,
    FileController,
    MSG_INITIATE,
    MSG_TASK_DIED,
    MSG_TERMINATED,
    TaskController,
    UserController,
)
from .messages import (
    InQueue,
    Message,
    allocate_message,
    payload_checksum,
    release_message,
)
from .sizes import (
    COST_INITIATE_REQUEST,
    COST_PER_PACKET,
    COST_SEND,
    COST_TASK_TERMINATE,
    MMOS_KERNEL_BYTES,
    MSG_LATENCY_INTER_CLUSTER,
    MSG_LATENCY_INTRA_CLUSTER,
    PISCES_SYSTEM_CODE_BYTES,
    PISCES_SYSTEM_DATA_BYTES,
    message_bytes,
    slot_table_bytes,
    window_transfer_cost,
)
from .task import GLOBAL_REGISTRY, Task, TaskContext, TaskRegistry, TaskType
from .taskid import (
    ANY,
    Broadcast,
    Cluster,
    Designator,
    OTHER,
    Placement,
    SAME,
    SendTarget,
    TaskId,
    TContr,
    USER_TERMINAL_ID,
)
from .supervision import Supervision
from .tracing import TraceEvent, TraceEventType, Tracer
from .windows import (
    ArrayStore,
    MSG_WINDOW_ROW,
    MSG_WINDOW_TXN,
    MSG_WINDOW_TXN_REPLY,
    Window,
    WindowTxn,
    WindowTxnReply,
)

#: Valid window data-plane selections (see Configuration.window_path).
WINDOW_PATHS = ("fast", "batched", "reference")


def resolve_window_path(config: Configuration) -> str:
    """Data-plane selection: configuration wins, then the
    ``PISCES_WINDOW_PATH`` environment variable, then "fast"."""
    path = config.window_path or env_value("PISCES_WINDOW_PATH") or "fast"
    if path not in WINDOW_PATHS:
        raise ConfigurationError(
            f"PISCES_WINDOW_PATH={path!r}: must be one of {WINDOW_PATHS}")
    return path


def resolve_exec_core(config: Configuration) -> str:
    """Execution-core selection: configuration wins, then the
    ``PISCES_EXEC_CORE`` environment variable, then "threaded" (the
    determinism oracle; see docs/architecture.md, "Execution cores")."""
    from ..mmos.scheduler import EXEC_CORES
    core = config.exec_core or env_value("PISCES_EXEC_CORE") or "threaded"
    if core not in EXEC_CORES:
        raise ConfigurationError(
            f"PISCES_EXEC_CORE={core!r}: must be one of {EXEC_CORES}")
    return core


#: Valid task-body vehicles (see Configuration.task_bodies).
TASK_BODY_MODES = ("auto", "callable")


def resolve_task_bodies(config: Configuration) -> str:
    """Task-body vehicle selection: configuration wins, then the
    ``PISCES_TASK_BODIES`` environment variable, then "auto" (coroutine
    bodies suspend as coroutines; "callable" forces the classic
    blocking-call driver on worker threads)."""
    mode = config.task_bodies or env_value("PISCES_TASK_BODIES") or "auto"
    if mode not in TASK_BODY_MODES:
        raise ConfigurationError(
            f"PISCES_TASK_BODIES={mode!r}: must be one of {TASK_BODY_MODES}")
    return mode


def resolve_checkpoint(config: Configuration) -> Tuple[int, str, int]:
    """Periodic-checkpoint selection ``(every, directory, keep)``:
    configuration wins, then the ``PISCES_CHECKPOINT`` /
    ``PISCES_CHECKPOINT_DIR`` environment variables; ``every == 0``
    means checkpointing is off."""
    every = config.checkpoint_every
    if not every:
        every = env_int("PISCES_CHECKPOINT", 0)
    directory = config.checkpoint_dir or \
        env_value("PISCES_CHECKPOINT_DIR") or "."
    return every, directory, config.checkpoint_keep


#: Controller slots per cluster counted in the static system table
#: (task controller, user controller, file controller).
N_CONTROLLER_SLOTS = 3


@dataclass
class RunStats:
    """Counters accumulated over a run (read by displays and benches)."""

    messages_sent: int = 0
    broadcast_deliveries: int = 0
    messages_accepted: int = 0
    accepts: int = 0
    accept_timeouts: int = 0
    messages_to_dead: int = 0
    messages_deleted: int = 0
    initiates_requested: int = 0
    initiates_held: int = 0
    tasks_started: int = 0
    tasks_finished: int = 0
    tasks_killed: int = 0
    forcesplits: int = 0
    window_reads: int = 0
    window_writes: int = 0
    window_bytes_read: int = 0
    window_bytes_written: int = 0
    # Window data plane (see docs/architecture.md): bytes that actually
    # crossed the plane (cache hits move none), transaction count, cache
    # outcomes, and §8 overlapping-access serialization events.
    window_bytes_moved: int = 0
    window_txns: int = 0
    window_cache_hits: int = 0
    window_cache_misses: int = 0
    window_overlap_waits: int = 0
    window_conflicts: int = 0
    message_bytes_sent: int = 0
    # Fault injection / failure semantics (see :mod:`repro.faults`).
    faults_injected: int = 0
    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    messages_corrupted: int = 0
    corruptions_detected: int = 0
    tasks_restarted: int = 0
    tasks_died: int = 0
    send_failures: int = 0
    accept_retries: int = 0
    # Concurrency-correctness subsystem (see :mod:`repro.correctness`).
    races_detected: int = 0
    # Checkpoint/restore subsystem (see :mod:`repro.checkpoint`).
    checkpoints_written: int = 0
    checkpoint_bytes: int = 0


@dataclass
class RunResult(RunRecord):
    """Outcome of ``PiscesVM.run``."""

    value: Any
    task: TaskId
    elapsed: int
    console: str
    stats: RunStats
    vm: "PiscesVM"


class PiscesVM:
    """One booted PISCES 2 virtual machine."""

    def __init__(self, config: Configuration,
                 registry: Optional[TaskRegistry] = None,
                 machine: Optional[FlexMachine] = None,
                 autoboot: bool = True,
                 fault_plan: Optional[Any] = None,
                 detect_races: Optional[Any] = None,
                 recorder: Optional[Any] = None,
                 replay: Optional[Any] = None):
        self.config = config
        self.registry = registry if registry is not None else GLOBAL_REGISTRY
        self.machine = machine if machine is not None else nasa_langley_flex32()
        config.validate(self.machine.spec)
        schedule = None
        if replay is not None:
            from ..correctness.recorder import Schedule
            schedule = (Schedule.load(replay)
                        if isinstance(replay, (str, os.PathLike))
                        else replay)
        #: Which execution core runs the processes ("threaded"/"coop");
        #: stamped into the export_run manifest and state dumps.
        self.exec_core = resolve_exec_core(config)
        self.kernel = MMOSKernel(self.machine, time_limit=config.time_limit,
                                 schedule=schedule, exec_core=self.exec_core)
        self.engine = self.kernel.engine
        if recorder is not None:
            # Explicit recorder wins over the PISCES_RECORD_SCHEDULE env
            # default the engine may have installed.
            self.engine.sched_hook = recorder
        #: Schedule decision hook (ScheduleRecorder / replayed Schedule /
        #: None), mirrored from the engine so the run-time library's
        #: hook sites (lock grants, SELFSCHED grabs, accept matches) pay
        #: one attribute test when off.
        self.sched_hook = self.engine.sched_hook
        self.tracer = Tracer()
        for name in config.trace_events:
            self.tracer.enable(TraceEventType(name))
        self.stats = RunStats()
        #: Happens-before race detector, or None (off).  Resolution
        #: order: explicit argument, then the configuration flag, then
        #: the PISCES_DETECT_RACES environment variable.  A True value
        #: means "record" mode; a string selects record/warn/raise.
        self.race_detector: Optional[Any] = None
        if detect_races is None:
            if config.detect_races:
                detect_races = True
            else:
                env = env_flag("PISCES_DETECT_RACES")
                if env:
                    detect_races = env if env in ("record", "warn", "raise") \
                        else True
        if detect_races:
            self.enable_race_detection(
                mode=detect_races if isinstance(detect_races, str)
                else "record")
        #: Window data-plane selection, fixed for the life of the VM.
        self.window_path = resolve_window_path(config)
        #: Task-body vehicle (see :func:`resolve_task_bodies`): "auto"
        #: lets generator-function bodies suspend as coroutines at the
        #: KernelOp seam; "callable" forces the classic blocking-call
        #: driver (worker threads) for the identical op stream.
        self.task_bodies = resolve_task_bodies(config)
        #: Causal profiler (see :mod:`repro.obs.profile`), or None
        #: (off).  Resolution: the configuration flag, then the
        #: PISCES_PROFILE environment variable; ``enable_profiling()``
        #: turns it on explicitly (api.profile_run does).
        self.profiler: Optional[Any] = None
        if config.profile or env_flag("PISCES_PROFILE"):
            self.enable_profiling()
        #: Observability registry (see :mod:`repro.obs`).  Disabled by
        #: default; every instrumentation site guards on ``.enabled`` so
        #: an unmetered run pays one attribute test per site at most.
        self.metrics = MetricsRegistry(enabled=config.metrics_enabled)
        self.engine.metrics = self.metrics
        self.tracer.metrics = self.metrics
        self.default_accept_delay = config.default_accept_delay
        #: System-wide ACCEPT timeout escalation (satellite 2); None
        #: keeps the paper's single-wait semantics with zero overhead.
        self.accept_retry: Optional[RetryPolicy] = (
            RetryPolicy(config.accept_retries, config.accept_backoff,
                        config.accept_jitter)
            if config.accept_retries else None)
        #: The seeded run RNG: the only source of randomness consumed at
        #: virtual-time-ordered points (backoff jitter).  Because every
        #: consumption site executes in deterministic dispatch order, a
        #: seeded run -- and a checkpoint-restored replay of its prefix
        #: -- draws the same variates in the same order.
        self.run_rng = random.Random(config.run_seed)
        #: Fault injector, or None for a fault-free run.  The explicit
        #: ``fault_plan`` argument wins; otherwise a plan installed by
        #: ``faults.plan_scope`` applies (entry points that build their
        #: own VM).  Non-empty plans hook the engine's dispatch loop;
        #: a fault-free run pays one ``is not None`` test per site.
        from .. import faults as _faults
        plan = fault_plan if fault_plan is not None else _faults.ambient_plan()
        if plan is not None and not plan.empty:
            self.faults = _faults.FaultInjector(self, plan)
            self.engine._fault_pump = self.faults.pump
        else:
            self.faults = None
        #: The top-level run request ``(tasktype, args, placement)``
        #: recorded by :meth:`run` -- what a checkpoint manifest needs
        #: to rebuild this VM's workload in a fresh process.
        self._run_request: Optional[Tuple[str, Tuple[Any, ...], Any]] = None
        #: Periodic checkpointer (see :mod:`repro.checkpoint.policy`),
        #: or None (off).  Checkpointing needs the full decision stream,
        #: so a recorder is auto-installed when none is present.
        self.checkpointer: Optional[Any] = None
        ck_every, ck_dir, ck_keep = resolve_checkpoint(config)
        if ck_every:
            if self.engine.sched_hook is None:
                from ..correctness.recorder import ScheduleRecorder
                self.engine.sched_hook = ScheduleRecorder()
                self.sched_hook = self.engine.sched_hook
            from ..checkpoint.policy import PeriodicCheckpointer
            self.checkpointer = PeriodicCheckpointer(
                self, every=ck_every, directory=ck_dir, keep=ck_keep)
            self.engine._ckpt_pump = self.checkpointer.pump

        self.clusters: Dict[int, ClusterRuntime] = {}
        self.tasks: Dict[TaskId, Task] = {}
        self.controllers: Dict[TaskId, Controller] = {}
        self.task_controllers: Dict[int, TaskController] = {}
        self.user_controller: Optional[UserController] = None
        self.file_controller: Optional[FileController] = None
        #: Messages delivered to USER: (mtype, args, sender, arrival).
        self.user_messages: List[Tuple[str, Tuple[Any, ...], TaskId, int]] = []
        self.loadfile: Optional[Loadfile] = None
        self._req_counter = itertools.count(1)
        #: initiate request id -> TaskId once the controller started it.
        self.initiations: Dict[int, TaskId] = {}
        self._booted = False
        if autoboot:
            self.boot()

    # ------------------------------------------------------------- metrics --

    def enable_metrics(self) -> None:
        """Turn on the observability registry (live, e.g. from the
        monitor); already-running components see it immediately."""
        self.metrics.enabled = True

    def disable_metrics(self) -> None:
        self.metrics.enabled = False

    # ------------------------------------------------------------- races --

    def enable_race_detection(self, mode: Optional[str] = None):
        """Turn on the happens-before race detector (idempotent).

        Best enabled before the run starts: tasks created while it is
        off hold plain (untracked) SHARED COMMON arrays, so only
        synchronization edges -- not their accesses -- are observed for
        them.  ``mode=None`` keeps an existing detector's mode
        (``"record"`` for a fresh one).  Detection charges no virtual
        time; see :mod:`repro.correctness`.
        """
        if self.race_detector is not None:
            if mode is not None:
                self.race_detector.mode = mode
            return self.race_detector
        from ..correctness.detector import RaceDetector
        det = RaceDetector(self, mode=mode or "record")
        self.race_detector = det
        self.engine.hb_hook = det
        return det

    # ---------------------------------------------------------- profiling --

    def enable_profiling(self):
        """Turn on the causal profiler (idempotent).

        Best enabled before the run starts: waits that began while it
        was off cannot be attributed.  Profiling charges no virtual
        time -- elapsed ticks and trace streams are bit-identical with
        it on or off (the profile-overhead benchmark asserts this);
        see :mod:`repro.obs.profile`.
        """
        if self.profiler is None:
            from ..obs.profile import CausalProfiler
            self.profiler = CausalProfiler()
            self.engine.prof_hook = self.profiler
        return self.profiler

    def _metric_name_of(self, tid: TaskId) -> str:
        """Tasktype / controller-kind name of a taskid (metric label)."""
        task = self.tasks.get(tid)
        if task is not None:
            return task.ttype.name
        ctrl = self.controllers.get(tid)
        if ctrl is not None:
            return f"<{ctrl.kind}>"
        if tid == USER_TERMINAL_ID or tid.cluster == 0:
            return "<user>"
        return "<unknown>"

    # ---------------------------------------------------------------- boot --

    def boot(self) -> None:
        """Download the loadfile and start the controllers (section 11)."""
        if self._booted:
            return
        cfg = self.config
        # 1. Build and download the loadfile to every PE the run uses.
        lf = Loadfile()
        lf.add(CAT_MMOS_KERNEL, MMOS_KERNEL_BYTES)
        lf.add(CAT_PISCES_CODE, PISCES_SYSTEM_CODE_BYTES)
        lf.add(CAT_PISCES_DATA, PISCES_SYSTEM_DATA_BYTES)
        lf.add(CAT_USER_CODE, self.registry.total_code_bytes())
        lf.load_onto(self.machine, cfg.used_pes())
        self.loadfile = lf
        # 2. Allocate the static system tables in shared memory.
        for spec in cfg.clusters:
            cr = ClusterRuntime(spec.number, spec.primary_pe,
                                spec.secondary_pes, spec.slots)
            cr.table_alloc = self.machine.shared.alloc(
                slot_table_bytes(spec.slots, N_CONTROLLER_SLOTS),
                tag="system_table")
            self.clusters[spec.number] = cr
        # 3. Start the controllers.
        for num, cr in sorted(self.clusters.items()):
            tc = TaskController(self, cr)
            tc.start()
            self.task_controllers[num] = tc
            self.controllers[tc.tid] = tc
        ucr = self.clusters[cfg.effective_user_cluster()]
        self.user_controller = UserController(self, ucr)
        self.user_controller.start()
        self.controllers[self.user_controller.tid] = self.user_controller
        fcr = self.clusters[cfg.effective_file_cluster()]
        self.file_controller = FileController(self, fcr)
        self.file_controller.start()
        self.controllers[self.file_controller.tid] = self.file_controller
        self._booted = True

    # ------------------------------------------------------------ initiate --

    def request_initiate(self, tasktype_name: str, args: Tuple[Any, ...],
                         parent: TaskId, placement: Placement = ANY,
                         current_cluster: Optional[int] = None,
                         supervision: Optional[Supervision] = None,
                         restarts: int = 0,
                         extra_latency: int = 0) -> int:
        """Route an initiate request to a task controller; returns a
        request id (resolvable to the taskid via ``initiations`` once
        the controller has started the task).

        ``supervision`` is the failure-semantics policy for the new
        task; ``restarts`` counts prior incarnations (used by RESTART
        re-initiations to bound the budget)."""
        self.registry.get(tasktype_name)  # fail fast on unknown types
        target = self._resolve_placement(placement, current_cluster)
        req_id = next(self._req_counter)
        self.stats.initiates_requested += 1
        m = self.metrics
        if m.enabled:
            m.counter("initiate_requests", cluster=target).inc()
        if self.engine.in_process():
            self.engine.charge(COST_INITIATE_REQUEST)
        tc = self.task_controllers[target]
        tc.cluster.inflight_initiates += 1
        self._deliver(tc.inq, tc.cluster.number, tc.process, MSG_INITIATE,
                      (req_id, tasktype_name, tuple(args), parent,
                       supervision, restarts),
                      sender=parent,
                      sender_cluster=current_cluster or target,
                      extra_latency=extra_latency)
        return req_id

    def _resolve_placement(self, placement: Placement,
                           current_cluster: Optional[int]) -> int:
        """ANY / OTHER / SAME / CLUSTER <n> -> a cluster number.

        Failed clusters (their primary PE crashed) are never chosen by
        the system (ANY/OTHER); naming one explicitly is an error."""
        numbers = sorted(n for n, c in self.clusters.items() if not c.failed)
        if isinstance(placement, Cluster):
            placement = placement.number
        if isinstance(placement, int):
            if placement not in self.clusters:
                raise NoSuchCluster(f"no cluster {placement} in this run "
                                    f"(have {sorted(self.clusters)})")
            if self.clusters[placement].failed:
                raise NoSuchCluster(f"cluster {placement} has failed "
                                    f"(its primary PE is dead)")
            return placement
        if not numbers:
            raise NoSuchCluster("every cluster in this run has failed")
        if placement is SAME:
            if current_cluster is None:
                raise NoSuchCluster("SAME used outside a task")
            return current_cluster
        if placement is OTHER:
            candidates = [n for n in numbers if n != current_cluster]
            if not candidates:
                raise NoSuchCluster("OTHER: there is no other cluster")
            return self._least_loaded(candidates)
        if placement is ANY:
            return self._least_loaded(numbers)
        raise NoSuchCluster(f"bad cluster designator {placement!r}")

    def _least_loaded(self, candidates: List[int]) -> int:
        """System choice: most free slots net of held requests, then
        lowest cluster number (deterministic)."""
        def key(n: int) -> Tuple[int, int]:
            cr = self.clusters[n]
            free = (cr.free_slot_count() - len(cr.pending)
                    - cr.inflight_initiates)
            return (-free, n)
        return min(candidates, key=key)

    # ------------------------------------------------------ task lifecycle --

    def start_task_in_slot(self, cluster: ClusterRuntime, slot: Slot,
                           tasktype_name: str, args: Tuple[Any, ...],
                           parent: TaskId,
                           req_id: Optional[int] = None,
                           supervision: Optional[Supervision] = None,
                           restarts: int = 0) -> Task:
        """Called by a task controller to place a task into a free slot."""
        ttype = self.registry.get(tasktype_name)
        tid = slot.claim()
        task = Task(self, ttype, tid, parent, cluster, args,
                    supervision=supervision, restarts=restarts)
        slot.task = task
        self.tasks[tid] = task
        cluster.tasks_initiated += 1
        self.stats.tasks_started += 1
        task.initiated_at = self.engine.now()
        m = self.metrics
        if m.enabled:
            m.counter("tasks_started", cluster=cluster.number,
                      tasktype=ttype.name).inc()
            m.gauge("slot_occupancy", cluster=cluster.number).set(
                cluster.n_slots - cluster.free_slot_count())
        # Declared SHARED COMMON blocks and LOCK variables are allocated
        # at initiation ("allocated statically in shared memory").
        for name, spec in ttype.shared.items():
            task.shared_state.declare_common(name, spec)
        for lname in ttype.locks:
            task.shared_state.declare_lock(lname)
        task.alive = True
        task.process = self.kernel.create_process(
            f"{ttype.name}@{tid}", cluster.primary_pe,
            self._make_task_target(task))
        # Cleanup runs via on_exit so it happens even when the task is
        # killed before its first slice ever runs.
        task.process.on_exit = lambda proc: self._task_cleanup(task)
        if req_id is not None:
            self.initiations[req_id] = tid
        task.trace(TraceEventType.TASK_INIT,
                   info=f"type={ttype.name}", other=parent)
        return task

    def _make_task_target(self, task: Task) -> Callable[[], Any]:
        """Choose the process target for a task body.

        A generator-function body is a *coroutine body*: it ``yield
        from``s the ctx operations, so the whole task suspends at the
        KernelOp seam (no worker thread on the coop core).  Under the
        "callable" vehicle the identical op stream is instead driven
        through the engine's blocking calls on a worker thread -- the
        oracle leg of the body-form equivalence suite.  A plain
        callable body keeps the classic path unchanged.
        """
        if inspect.isgeneratorfunction(task.ttype.fn):
            if self.task_bodies == "callable":
                return lambda: drive_kernel_ops(
                    self.engine, self._task_body_gen(task))

            def target():
                # Inlined _task_body_gen: one less delegation frame on
                # every resume of the per-dispatch hot path.
                ctx = TaskContext(task, self.engine.current(),
                                  coroutine=True)
                task.result = yield from task.ttype.fn(ctx, *task.args)
                return task.result
            return target
        return lambda: self._task_body(task)

    def _task_body(self, task: Task) -> Any:
        ctx = TaskContext(task, self.engine.current())
        task.result = task.ttype.fn(ctx, *task.args)
        return task.result

    def _task_body_gen(self, task: Task):
        ctx = TaskContext(task, self.engine.current(), coroutine=True)
        task.result = yield from task.ttype.fn(ctx, *task.args)
        return task.result

    def _task_cleanup(self, task: Task) -> None:
        """Terminate a task: free its messages and shared storage, then
        notify the task controller (which frees the slot).

        Must not yield -- it also runs while unwinding a killed task.
        """
        if not task.alive:
            return
        task.alive = False
        task.terminated_at = self.engine.now()
        self.stats.tasks_finished += 1
        m = self.metrics
        if m.enabled:
            m.counter("tasks_finished", cluster=task.cluster.number,
                      tasktype=task.ttype.name).inc()
            m.histogram("task_lifetime_ticks", tasktype=task.ttype.name
                        ).observe(task.terminated_at - task.initiated_at)
        heap = self.machine.shared
        for m in task.inq.remove_type(None):
            release_message(heap, m)
        task.shared_state.release_all()
        # A task whose process was killed died abnormally -- unless the
        # whole engine is being reaped, which is a normal end of run.
        died = bool(task.process is not None and task.process.killed
                    and not self.engine.shutting_down)
        reason = task.died_reason or ("killed" if died else "")
        term_info = f"type={task.ttype.name}"
        if died:
            # Aborted tasks say so in their TASK_TERM record, so span
            # derivation closes their lifetime with status=aborted
            # instead of leaking an open span (reason tokens stay
            # whitespace-free: the info field is token=value pairs).
            term_info += f" status=aborted reason={reason.replace(' ', '-')}"
        task.trace(TraceEventType.TASK_TERM, info=term_info)
        self.engine.charge(COST_TASK_TERMINATE) if self.engine.in_process() else None
        if died:
            self.stats.tasks_died += 1
            if self.metrics.enabled:
                self.metrics.counter("tasks_died",
                                     tasktype=task.ttype.name).inc()
        tc = self.task_controllers[task.cluster.number]
        if tc.cluster.failed:
            # The home controller died with its PE; a surviving
            # controller (lowest live cluster) cleans up on its behalf.
            live = sorted(n for n, c in self.clusters.items() if not c.failed)
            if not live:
                return  # nobody left to notify; the run is over
            tc = self.task_controllers[live[0]]
        # The slot is NOT freed here: the task controller frees it when
        # it processes @TERMINATED, which keeps held initiate requests
        # strictly FIFO with later ones (section 6).
        try:
            self._deliver(tc.inq, tc.cluster.number, tc.process,
                          MSG_TERMINATED, (task.tid, died, reason),
                          sender=task.tid,
                          sender_cluster=task.cluster.number)
        except Exception:
            pass  # heap exhaustion during unwind must not mask the cause

    def kill_task(self, tid: TaskId, reason: str = "killed") -> bool:
        """KILL A TASK (monitor option 2).  Returns False if not live."""
        task = self.tasks.get(tid)
        if task is None or not task.alive:
            return False
        self.stats.tasks_killed += 1
        task.died_reason = reason
        if task.force is not None:
            for p in task.force.member_procs.values():
                self.engine.kill(p)
        if task.process is not None:
            self.engine.kill(task.process)
        return True

    def find_task(self, tid: TaskId) -> Task:
        task = self.tasks.get(tid)
        if task is None:
            raise UnknownTask(f"no task {tid} was ever initiated")
        return task

    # ------------------------------------------------- failure semantics --

    def on_pe_failure(self, pe_number: int, reason: str = "pe-crash") -> None:
        """A processing element dies (fault injection, or a hang the
        monitor declares dead).

        Consequences, in deterministic order: the PE is marked failed;
        every cluster whose *primary* PE it was goes down with it (its
        held initiate requests are re-routed to survivors); every live
        task of a failed cluster is killed (``ProcessKilled`` unwinds
        it mid-statement); any remaining kernel process pinned to the
        PE -- controller daemons, force members placed there -- is
        killed too.
        """
        pe = self.machine.pe(pe_number)
        if pe.failed:
            return
        self.machine.fail_pe(pe_number)
        if self.faults is not None:
            self.faults.record("pe_crash",
                               f"pe={pe_number} reason={reason}",
                               pe=pe_number)
        rerouted: List[PendingInitiate] = []
        for num in sorted(self.clusters):
            cr = self.clusters[num]
            if cr.primary_pe == pe_number and not cr.failed:
                cr.failed = True
                while cr.pending:
                    rerouted.append(cr.pending.popleft())
        doomed = sorted(
            (t for t in self.tasks.values()
             if t.alive and t.cluster.failed),
            key=lambda t: (t.tid.cluster, t.tid.slot, t.tid.unique))
        for task in doomed:
            self.kill_task(task.tid, reason=reason)
        for p in sorted(self.engine.live_processes(), key=lambda q: q.pid):
            if p.pe == pe_number and not p.killed:
                self.engine.kill(p)
        survivors = sorted(n for n, c in self.clusters.items()
                           if not c.failed)
        for req in rerouted:
            if not survivors:
                break
            target = self._least_loaded(survivors)
            tc = self.task_controllers[target]
            tc.cluster.inflight_initiates += 1
            self._deliver(tc.inq, tc.cluster.number, tc.process,
                          MSG_INITIATE,
                          (None, req.tasktype, req.args, req.parent,
                           req.supervision, req.restarts),
                          sender=req.parent, sender_cluster=target)
            if self.faults is not None:
                self.faults.record(
                    "initiate_rerouted",
                    f"type={req.tasktype} to=cluster{target}",
                    injected=False)

    def handle_task_death(self, tid: TaskId, reason: str,
                          origin: Union[Controller, None] = None) -> None:
        """Apply the dead task's supervision policy (called by the task
        controller that processed its abnormal ``@TERMINATED``).

        RESTART with budget left re-initiates the tasktype with the
        original arguments on a surviving cluster (backed off by the
        policy's ``backoff_ticks`` per prior incarnation).  Otherwise
        the parent is notified with a system ``TASK_DIED <taskid,
        reason>`` message -- re-routed to USER when the parent is the
        terminal or itself dead -- and, under NOTIFY, USER always
        hears about it too.
        """
        task = self.tasks.get(tid)
        if task is None:
            return
        sup = task.supervision
        if sup is not None and sup.restarts \
                and task.restarts_used < sup.max_restarts:
            try:
                incarnation = task.restarts_used + 1
                extra = sup.backoff_ticks * incarnation
                if sup.jitter and extra:
                    # Jitter from the seeded run RNG: consumed at a
                    # virtual-time-ordered point, so determinism holds.
                    spread = int(extra * sup.jitter)
                    if spread:
                        extra = max(0, extra + self.run_rng.randrange(
                            -spread, spread + 1))
                self.request_initiate(
                    task.ttype.name, task.args, parent=task.parent,
                    placement=ANY, supervision=sup, restarts=incarnation,
                    extra_latency=extra)
            except NoSuchCluster:
                pass  # nowhere left to restart; fall through to notify
            else:
                self.stats.tasks_restarted += 1
                if self.metrics.enabled:
                    self.metrics.counter("tasks_restarted",
                                         tasktype=task.ttype.name).inc()
                if self.faults is not None:
                    self.faults.record(
                        "restart",
                        f"type={task.ttype.name} of={tid} "
                        f"incarnation={incarnation}",
                        task=tid, injected=False)
                return
        if self.faults is not None:
            self.faults.record("task_died", f"task={tid} reason={reason}",
                               task=tid, injected=False)
        notify = []
        parent_task = self.tasks.get(task.parent)
        if task.parent != USER_TERMINAL_ID and parent_task is not None \
                and parent_task.alive:
            notify.append(task.parent)
        else:
            notify.append(USER_TERMINAL_ID)
        if sup is not None and sup.policy == "notify" \
                and USER_TERMINAL_ID not in notify:
            notify.append(USER_TERMINAL_ID)
        for dest in notify:
            try:
                self.send_message(dest, MSG_TASK_DIED, (tid, reason),
                                  origin=origin)
            except MessageError:
                pass  # the notification must never take the system down

    # ------------------------------------------------------------ messages --

    def send_message(self, dest, mtype: str, args: Tuple[Any, ...],
                     origin: Union[TaskContext, Controller, None],
                     require_delivery: bool = False) -> int:
        """Deliver a message; returns the number of deliveries made.

        ``origin`` identifies the sender: a task context, a controller,
        or None for the user at the terminal (the monitor's SEND A
        MESSAGE).  ``require_delivery=True`` raises
        :class:`~repro.errors.SendFailed` instead of silently dropping
        a send to a dead taskid.
        """
        sender, sender_cluster = self._origin_identity(origin)
        if self.engine.in_process():
            _, npackets = message_bytes(args)
            self.engine.charge(COST_SEND + npackets * COST_PER_PACKET)
        targets = self._resolve_dest(dest, origin,
                                     require_delivery=require_delivery)
        n = 0
        for inq, rcluster, proc, rtid in targets:
            self._deliver(inq, rcluster, proc, mtype, args,
                          sender=sender, sender_cluster=sender_cluster,
                          receiver=rtid)
            n += 1
        if isinstance(dest, Broadcast):
            self.stats.broadcast_deliveries += n
        return n

    def _origin_identity(self, origin) -> Tuple[TaskId, int]:
        if origin is None:
            return USER_TERMINAL_ID, self.config.effective_user_cluster()
        if isinstance(origin, TaskContext):
            return origin.task.tid, origin.task.cluster.number
        if isinstance(origin, Controller):
            return origin.tid, origin.cluster.number
        raise MessageError(f"bad message origin {origin!r}")

    def _resolve_dest(self, dest, origin, require_delivery: bool = False
                      ) -> List[Tuple[InQueue, int, Any, TaskId]]:
        """Resolve a destination to (in-queue, cluster, process, tid) list."""
        if isinstance(dest, SendTarget):
            if dest is SendTarget.USER:
                uc = self.user_controller
                return [(uc.inq, uc.cluster.number, uc.process, uc.tid)]
            if not isinstance(origin, TaskContext):
                raise MessageError(f"{dest.value} is only valid inside a task")
            if dest is SendTarget.PARENT:
                tid = origin.parent
            elif dest is SendTarget.SELF:
                tid = origin.self_id
            elif dest is SendTarget.SENDER:
                if origin.sender is None:
                    raise MessageError("SENDER: no message received yet")
                tid = origin.sender
            else:  # pragma: no cover - enum is exhaustive
                raise MessageError(f"bad send target {dest}")
            dest = tid
        if isinstance(dest, TContr):
            if dest.cluster not in self.task_controllers:
                raise NoSuchCluster(f"TCONTR {dest.cluster}: no such cluster")
            tc = self.task_controllers[dest.cluster]
            return [(tc.inq, tc.cluster.number, tc.process, tc.tid)]
        if isinstance(dest, Broadcast):
            if dest.cluster is None:
                members = sorted(self.clusters)
            elif dest.cluster in self.clusters:
                members = [dest.cluster]
            else:
                raise NoSuchCluster(f"broadcast to unknown cluster "
                                    f"{dest.cluster}")
            sender_tid, _ = self._origin_identity(origin)
            out = []
            for n in members:
                for task in self.clusters[n].running_tasks():
                    if task.alive and task.tid != sender_tid:
                        out.append((task.inq, n, task.process, task.tid))
            return out
        if isinstance(dest, TaskId):
            if dest == USER_TERMINAL_ID:
                uc = self.user_controller
                return [(uc.inq, uc.cluster.number, uc.process, uc.tid)]
            ctrl = self.controllers.get(dest)
            if ctrl is not None:
                return [(ctrl.inq, ctrl.cluster.number, ctrl.process,
                         ctrl.tid)]
            task = self.tasks.get(dest)
            if task is None:
                raise UnknownTask(f"send to unknown taskid {dest}")
            if not task.alive:
                # Stale taskid (the unique number exists for this): the
                # message is undeliverable and silently dropped -- unless
                # the sender opted into strict delivery (per-send, or a
                # fault plan's ``strict_sends`` for all task origins).
                self.stats.messages_to_dead += 1
                strict = (self.faults is not None
                          and self.faults.plan.strict_sends
                          and isinstance(origin, TaskContext))
                if require_delivery or strict:
                    self.stats.send_failures += 1
                    if self.faults is not None:
                        self.faults.record("send_failed", f"dest={dest}",
                                           task=dest, injected=False)
                    raise SendFailed(dest)
                return []
            return [(task.inq, task.cluster.number, task.process, task.tid)]
        raise MessageError(f"bad send destination {dest!r}")

    def _deliver(self, inq: InQueue, receiver_cluster: int, receiver_proc,
                 mtype: str, args: Tuple[Any, ...], *, sender: TaskId,
                 sender_cluster: int,
                 receiver: Optional[TaskId] = None,
                 extra_latency: int = 0) -> Optional[Message]:
        """Allocate, enqueue and wake; the single delivery primitive.

        With a fault plan active, eligible deliveries pass through the
        injector here: a dropped message is never allocated (returns
        None), a delayed one arrives late, a corrupted one carries a
        payload that fails its checksum at accept, a duplicated one is
        enqueued twice.
        """
        now = self.engine.now()
        latency = (MSG_LATENCY_INTRA_CLUSTER
                   if sender_cluster == receiver_cluster
                   else MSG_LATENCY_INTER_CLUSTER) + extra_latency
        faults = self.faults
        action = None
        if faults is not None:
            action = faults.on_message(mtype)
            if action is not None:
                to = receiver or inq.owner
                faults.record(action, f"type={mtype} from={sender} to={to}")
                if action == "drop":
                    self.stats.messages_dropped += 1
                    return None
                if action == "delay":
                    self.stats.messages_delayed += 1
                    latency += faults.delay_ticks
        msg = allocate_message(self.machine.shared, mtype, tuple(args),
                               sender=sender,
                               receiver=receiver or inq.owner,
                               send_time=now, arrival_time=now + latency)
        if faults is not None and faults.checksums \
                and faults.message_eligible(mtype):
            msg.checksum = payload_checksum(mtype, msg.args)
            if action == "corrupt":
                # Mutate the payload *after* allocation: the heap bytes
                # are unchanged (a bit flip, not a resize) and the stale
                # checksum makes the damage detectable at accept.
                self.stats.messages_corrupted += 1
                msg.args = corrupt_args(msg.args)
        inq.enqueue(msg)
        det = self.race_detector
        if det is not None:
            det.on_send(msg)
        self.stats.messages_sent += 1
        self.stats.message_bytes_sent += msg.nbytes
        m = self.metrics
        if m.enabled:
            route = ("intra" if sender_cluster == receiver_cluster
                     else "inter")
            m.counter("messages_sent", cluster=receiver_cluster,
                      route=route).inc()
            m.counter("message_bytes_sent", cluster=receiver_cluster
                      ).inc(msg.nbytes)
            m.counter("msg_traffic", src=self._metric_name_of(sender),
                      dst=self._metric_name_of(msg.receiver),
                      mtype=mtype).inc()
        sender_task = self.tasks.get(sender)
        if sender_task is not None:
            sender_task.trace(TraceEventType.MSG_SEND,
                              info=f"type={mtype} bytes={msg.nbytes}",
                              other=inq.owner)
        self._wake_receiver(receiver_proc, msg.arrival_time)
        if action == "duplicate":
            # At-least-once transport: a second identical copy arrives
            # right behind the first (same latency, later queue seq).
            self.stats.messages_duplicated += 1
            dup = allocate_message(self.machine.shared, mtype, msg.args,
                                   sender=sender, receiver=msg.receiver,
                                   send_time=now,
                                   arrival_time=msg.arrival_time)
            dup.checksum = msg.checksum
            inq.enqueue(dup)
            if det is not None:
                det.on_send(dup)
            self.stats.messages_sent += 1
            self.stats.message_bytes_sent += dup.nbytes
            self._wake_receiver(receiver_proc, dup.arrival_time)
        return msg

    def _wake_receiver(self, proc, arrival: int) -> None:
        """Wake a receiver blocked in accept/controller-wait, unless its
        own deadline fires before the message would arrive.

        Processes blocked for any *other* reason (barrier, critical,
        force-join, disk I/O) must NOT be woken by message arrival --
        the message waits in the in-queue until the next ACCEPT.
        """
        if proc is None:
            return
        from ..mmos.process import ProcState
        if proc.state is not ProcState.BLOCKED:
            return
        if not (proc.blocked_on.startswith("accept(")
                or proc.blocked_on.endswith("-wait")):
            return
        if proc.deadline is not None and proc.deadline < arrival:
            return  # let the earlier timeout fire; message stays queued
        self.engine.wake(proc, at_time=arrival)

    def delete_messages(self, tid: TaskId, mtype: Optional[str] = None) -> int:
        """DELETE MESSAGES (monitor option 4); returns messages dropped."""
        task = self.find_task(tid)
        dropped = task.inq.remove_type(mtype)
        for m in dropped:
            release_message(self.machine.shared, m)
        self.stats.messages_deleted += len(dropped)
        return len(dropped)

    # -------------------------------------------------------------- windows --

    def _owner_store(self, tid: TaskId) -> ArrayStore:
        ctrl = self.controllers.get(tid)
        if isinstance(ctrl, FileController):
            return ctrl.arrays
        task = self.tasks.get(tid)
        if task is None:
            raise WindowError(f"window owner {tid} does not exist")
        if not task.alive:
            raise WindowError(f"window owner {tid} has terminated")
        return task.arrays

    def _file_io_wait(self, w: Window, write: bool):
        """For windows owned by the file controller: occupy the disks
        and block the requester until the (striped) transfer lands.

        A KernelOp generator (the disk waits are suspension points;
        see :class:`~repro.core.task.TaskContext`).  Section 8's
        overlapping-access contract is enforced here: a transfer that
        conflicts with one still in flight (any overlap where either
        side writes) waits for it to land first; disjoint transfers --
        and overlapping reads -- proceed in parallel across the disk
        stripes.
        """
        fc = self.file_controller
        if fc is None or w.owner != fc.tid:
            return
        while True:
            now = self.engine.now()
            until = fc.conflicting_transfer(w, write, now)
            if until is None:
                break
            self.stats.window_overlap_waits += 1
            if self.metrics.enabled:
                self.metrics.counter("window_overlap_waits").inc()
            yield co_block("window-overlap-wait", deadline=until, cost=0)
        base = fc.arrays.get(w.array)
        itemsize = base.dtype.itemsize
        # File offset of the window's first element in the byte stream.
        offset = 0
        stride = int(base.size) * itemsize
        for (lo, _), dim in zip(w.bounds, base.shape):
            stride //= dim
            offset += lo * stride
        now = self.engine.now()
        done = fc.disks.transfer(now, offset, w.nbytes, write)
        fc.note_transfer(w, write, done)
        if done > now:
            yield co_block("disk-io", deadline=done, cost=0)

    # Every data-plane path below charges the identical virtual-time
    # cost (one window_transfer_cost, the same disk wait, one preempt),
    # so fast/batched/reference runs are bit-identical in virtual time;
    # the paths differ only in host-level data movement.  This is the
    # same oracle pattern as the PR-2 scan dispatcher.

    def _requester_id(self, ctx, store: ArrayStore) -> TaskId:
        return getattr(ctx, "self_id", None) or store.owner

    def _requester_cache(self, ctx):
        task = getattr(ctx, "task", None)
        return None if task is None else task.window_cache

    def _window_txn(self, store: ArrayStore, txn: WindowTxn,
                    requester: TaskId) -> WindowTxnReply:
        """Carry one WindowTxn to the owner on its typed transaction
        queue and serve it (a one-sided shared-memory access: the
        engine's one-at-a-time admission makes it atomic, so request,
        service and reply land at the same virtual instant).  Request
        and reply claim real heap extents, so window traffic shows up
        in the message-heap high-water mark like any other traffic."""
        heap = self.machine.shared
        now = self.engine.now()
        q = store.txns
        if q.metrics is None:
            q.metrics = self.metrics
            q.metric_labels = {"kind": "wtxn"}
        req = allocate_message(heap, MSG_WINDOW_TXN, (txn,),
                               sender=requester, receiver=store.owner,
                               send_time=now, arrival_time=now)
        q.enqueue(req)
        try:
            m = q.first_matching((MSG_WINDOW_TXN,), not_after=now)
            q.remove(m)
            reply = store.serve_txn(m.args[0], now)
            rep = allocate_message(heap, MSG_WINDOW_TXN_REPLY, (reply,),
                                   sender=store.owner, receiver=requester,
                                   send_time=now, arrival_time=now)
            release_message(heap, rep)
        finally:
            release_message(heap, req)
        self.stats.window_txns += 1
        return reply

    def _window_read_reference(self, store: ArrayStore, w: Window,
                               requester: TaskId) -> np.ndarray:
        """The unbatched oracle: one transient message per leading-axis
        row, each allocated and freed on the shared heap."""
        heap = self.machine.shared
        now = self.engine.now()
        out = np.empty(w.shape, dtype=np.dtype(w.dtype))
        i = 0
        for row in store.read_rows(w, now):
            msg = allocate_message(heap, MSG_WINDOW_ROW, (w, row),
                                   sender=store.owner, receiver=requester,
                                   send_time=now, arrival_time=now)
            out[i:i + 1] = row
            release_message(heap, msg)
            i += 1
        return out

    def _window_write_reference(self, store: ArrayStore, w: Window,
                                data: np.ndarray, requester: TaskId) -> None:
        heap = self.machine.shared
        now = self.engine.now()

        def per_row(row: np.ndarray) -> None:
            msg = allocate_message(heap, MSG_WINDOW_ROW, (w, row),
                                   sender=requester, receiver=store.owner,
                                   send_time=now, arrival_time=now)
            release_message(heap, msg)

        store.write_rows(w, data, now, per_row=per_row)

    def window_read(self, ctx: TaskContext, w: Window, *,
                    rows=None, cols=None) -> np.ndarray:
        """Synchronous form of :meth:`window_read_gen` (drives the op
        stream through the engine's blocking calls in place)."""
        return drive_kernel_ops(
            self.engine, self.window_read_gen(ctx, w, rows=rows, cols=cols))

    def window_read_gen(self, ctx: TaskContext, w: Window, *,
                        rows=None, cols=None):
        """Remote read of the data visible in a window (a KernelOp
        generator; value: the data).

        ``rows=`` / ``cols=`` shrink the window for this one access.
        Charges the requester the transfer cost and moves the block
        through the shared-memory message heap; reads of file-controller
        windows additionally wait for the simulated disks (requests to
        distinct stripes overlap; conflicting overlapping requests
        serialize).  On the fast path a repeated read of an unchanged
        region validates against the owner's generation counter and
        hits the reader-side cache -- no payload moves.
        """
        if rows is not None or cols is not None:
            w = w.shrink(rows=rows, cols=cols)
        store = self._owner_store(w.owner)
        det = self.race_detector
        if det is not None:
            det.on_window_access(w, False)
        nbytes = w.nbytes
        self.engine.charge(window_transfer_cost(nbytes))
        yield from self._file_io_wait(w, write=False)
        path = self.window_path
        hit = False
        cache = None
        if path == "reference":
            data = self._window_read_reference(
                store, w, self._requester_id(ctx, store))
            moved = nbytes
        else:
            if path == "fast":
                cache = self._requester_cache(ctx)
            entry = cache.lookup(w) if cache is not None else None
            txn = WindowTxn(op="read", window=w,
                            cached_generation=None if entry is None
                            else entry[0])
            reply = self._window_txn(store, txn,
                                     self._requester_id(ctx, store))
            if reply.status == "valid":
                data = np.array(entry[1], copy=True)
                moved, hit = 0, True
                cache.hits += 1
            else:
                data = reply.data
                moved = nbytes
                if cache is not None:
                    cache.misses += 1
                    if reply.cacheable:
                        cache.store(w, reply.generation,
                                    np.array(data, copy=True))
        st = self.stats
        st.window_reads += 1
        st.window_bytes_read += nbytes
        st.window_bytes_moved += moved
        if hit:
            st.window_cache_hits += 1
        elif cache is not None:
            st.window_cache_misses += 1
        m = self.metrics
        if m.enabled:
            m.counter("window_ops", op="read").inc()
            m.histogram("window_transfer_bytes", op="read").observe(nbytes)
            m.counter("window_bytes_moved", op="read").inc(moved)
            if cache is not None:
                m.counter("window_cache_hits" if hit
                          else "window_cache_misses").inc()
        yield co_preempt(0)
        return data

    def window_write(self, ctx: TaskContext, w: Window,
                     data: np.ndarray, *, rows=None, cols=None,
                     if_unchanged: bool = False) -> None:
        """Synchronous form of :meth:`window_write_gen`."""
        drive_kernel_ops(
            self.engine, self.window_write_gen(ctx, w, data, rows=rows,
                                               cols=cols,
                                               if_unchanged=if_unchanged))

    def window_write_gen(self, ctx: TaskContext, w: Window,
                         data: np.ndarray, *, rows=None, cols=None,
                         if_unchanged: bool = False):
        """Remote write through a window into the owner's array (a
        KernelOp generator).

        ``rows=`` / ``cols=`` shrink the window for this one access.
        ``if_unchanged=True`` makes the write conditional: it is refused
        with :class:`WindowConflict` if the region was written through
        the data plane after this task last read it (requires the
        cached fast path, which tracks observed generations).
        """
        if rows is not None or cols is not None:
            w = w.shrink(rows=rows, cols=cols)
        store = self._owner_store(w.owner)
        det = self.race_detector
        if det is not None:
            det.on_window_access(w, True)
        nbytes = w.nbytes
        self.engine.charge(window_transfer_cost(nbytes))
        yield from self._file_io_wait(w, write=True)
        path = self.window_path
        cache = self._requester_cache(ctx) if path == "fast" else None
        require = None
        if if_unchanged:
            if cache is None:
                raise WindowConflict(
                    w, "conditional writes need the cached (fast) window "
                       "path and a task context")
            require = cache.observed_generation(w)
            if require is None:
                raise WindowConflict(
                    w, "no cached observation to validate against "
                       "(window_read the region first)")
        if path == "reference":
            self._window_write_reference(
                store, w, data, self._requester_id(ctx, store))
        else:
            payload = np.asarray(data, dtype=np.dtype(w.dtype))
            txn = WindowTxn(op="write", window=w, data=payload,
                            require_unchanged_since=require)
            reply = self._window_txn(store, txn,
                                     self._requester_id(ctx, store))
            if reply.status == "conflict":
                self.stats.window_conflicts += 1
                if self.metrics.enabled:
                    self.metrics.counter("window_conflicts").inc()
                yield co_preempt(0)
                raise WindowConflict(w, reply.detail)
        if cache is not None:
            cache.invalidate_overlapping(w)
        st = self.stats
        st.window_writes += 1
        st.window_bytes_written += nbytes
        st.window_bytes_moved += nbytes
        m = self.metrics
        if m.enabled:
            m.counter("window_ops", op="write").inc()
            m.histogram("window_transfer_bytes", op="write").observe(nbytes)
            m.counter("window_bytes_moved", op="write").inc(nbytes)
        yield co_preempt(0)

    def configure_file_disks(self, n_disks: int,
                             stripe_unit: Optional[int] = None) -> None:
        """Give the file controller a striped disk array (the PISCES 3
        parallel-I/O direction; call before the run starts)."""
        from .fileio import DEFAULT_STRIPE_UNIT, DiskArray
        if self.file_controller is None:
            raise WindowError("no file controller in this configuration")
        self.file_controller.disks = DiskArray(
            n_disks, stripe_unit or DEFAULT_STRIPE_UNIT)
        self.file_controller.disks.metrics = self.metrics

    def file_window(self, ctx: TaskContext, name: str, *,
                    region=None, rows=None, cols=None) -> Window:
        """Synchronous form of :meth:`file_window_gen`."""
        return drive_kernel_ops(
            self.engine, self.file_window_gen(ctx, name, region=region,
                                              rows=rows, cols=cols))

    def file_window_gen(self, ctx: TaskContext, name: str, *,
                        region=None, rows=None, cols=None):
        """Window request on a file-store array (a KernelOp generator;
        value: the window)."""
        fc = self.file_controller
        if fc is None:
            raise WindowError("no file controller in this configuration")
        self.engine.charge(COST_SEND)
        yield co_preempt(0)
        return fc.window_for(name, region=region, rows=rows, cols=cols)

    def export_file(self, name: str, array: np.ndarray,
                    cacheable: bool = True) -> None:
        """Put an array into the simulated file system (pre-run setup)."""
        if self.file_controller is None:
            raise WindowError("no file controller in this configuration")
        self.file_controller.export_file(name, array, cacheable=cacheable)

    # ----------------------------------------------------------------- run --

    def run(self, tasktype_name: str, *args: Any,
            on: Placement = None, shutdown: bool = True) -> RunResult:
        """Initiate a top-level task as the user and run to completion.

        By default the remaining daemon controllers are reaped once the
        run finishes (their threads would otherwise outlive the VM); all
        measured state (clocks, heap, stats, traces) survives shutdown.
        Pass ``shutdown=False`` to keep the VM live for monitor use, and
        call :meth:`shutdown` yourself.
        """
        self.boot()
        placement = on if on is not None else min(self.clusters)
        self._run_request = (tasktype_name, tuple(args), placement)
        req = self.request_initiate(tasktype_name, args,
                                    parent=USER_TERMINAL_ID,
                                    placement=placement)
        try:
            self.engine.run()
        finally:
            if shutdown:
                self.shutdown()
        tid = self.initiations.get(req)
        if tid is None:
            raise RuntimeLibraryError(
                f"top-level task {tasktype_name!r} was never started "
                f"(held for a slot that never freed?)")
        task = self.tasks[tid]
        return RunResult(value=task.result, task=tid,
                         elapsed=self.machine.elapsed(),
                         console=self.kernel.console_text(),
                         stats=self.stats, vm=self)

    def run_to_idle(self) -> None:
        """Run until every non-daemon task has finished (monitor use)."""
        self.boot()
        self.engine.run()

    def note_initiate_held(self, req_id: int) -> None:
        self.stats.initiates_held += 1
        if self.metrics.enabled:
            self.metrics.counter("initiates_held").inc()

    # ------------------------------------------------------------- cleanup --

    def shutdown(self) -> None:
        self.engine.shutdown()

    def __enter__(self) -> "PiscesVM":
        self.boot()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------ storage ----

    def storage_report(self) -> Dict[str, Any]:
        """The section-13 measurements, as a dict (see benchmarks)."""
        shared = self.machine.shared
        by_tag = shared.live_bytes_by_tag()
        spec = self.machine.spec
        local_fracs = {}
        for pe_num in self.config.used_pes():
            pe = self.machine.pe(pe_num)
            sys_bytes = (pe.local.resident_bytes(CAT_PISCES_CODE)
                         + pe.local.resident_bytes(CAT_PISCES_DATA))
            local_fracs[pe_num] = sys_bytes / spec.local_memory_bytes
        return {
            "local_system_fraction": local_fracs,
            "shared_table_bytes": by_tag.get("system_table", 0),
            "shared_table_fraction":
                by_tag.get("system_table", 0) / spec.shared_memory_bytes,
            "message_bytes_live": by_tag.get("message", 0),
            "shared_common_bytes": by_tag.get("shared_common", 0),
            "heap_high_water": shared.stats.high_water,
            "heap_live_total": shared.stats.live_total,
        }
