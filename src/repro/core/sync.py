"""Force synchronization: BARRIER and CRITICAL (section 7).

BARRIER: "All members of the force pause on reaching the start of the
barrier.  When all have arrived, the primary force member executes the
statement sequence, and then all force members continue."

CRITICAL <lock>: fetch the lock value; if unlocked, lock it and enter;
otherwise wait until it becomes unlocked.  Waiters are granted FIFO.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from typing import Callable, List, Optional, TYPE_CHECKING

from ..errors import ProcessKilled, RuntimeLibraryError
from ..mmos.process import KernelProcess, co_block, drive_kernel_ops
from ..mmos.scheduler import Engine
from .shared import LockState
from .sizes import COST_BARRIER, COST_LOCK, COST_UNLOCK
from .tracing import TraceEvent, TraceEventType

if TYPE_CHECKING:  # pragma: no cover
    from .forces import Force, ForceContext

_RUN_BODY = "barrier:primary-run-body"
_RELEASE = "barrier:release"


class BarrierGeneration:
    """State of one use of the barrier by a force.

    The engine admits one process at a time, so plain counters are safe;
    the subtlety is the release protocol: the *primary* member must run
    the body between the last arrival and the general release, even when
    the primary was not the last to arrive.
    """

    def __init__(self, size: int):
        self.size = size
        self.arrived = 0
        self.waiting: List[KernelProcess] = []
        self.primary_proc: Optional[KernelProcess] = None
        self.complete = False

    def wait_stats(self) -> int:
        return len(self.waiting)

    def snapshot(self) -> list:
        """Digestable state for checkpoints: counters only -- waiter
        identities are pinned by the process snapshots."""
        return [int(self.size), int(self.arrived), len(self.waiting),
                bool(self.complete)]


def barrier(engine: Engine, force: "Force", member: "ForceContext",
            body: Optional[Callable[[], None]] = None):
    """Execute one BARRIER from ``member``'s execution stream.

    A KernelOp generator: coroutine members ``yield from`` it, callable
    members drive it through the classic blocking calls (see
    :func:`~repro.mmos.process.drive_kernel_ops`).  ``body`` may itself
    be a generator function when it needs to suspend.
    """
    engine.charge(COST_BARRIER)
    force.task.trace(TraceEventType.BARRIER_ENTER,
                     info=f"member={member.member} gen={force.barrier_gen}")
    metrics = force.task.vm.metrics
    entered_at = engine.now() if metrics.enabled else 0

    def observe_wait() -> None:
        if metrics.enabled:
            metrics.histogram(
                "barrier_wait_ticks", cluster=force.task.cluster.number
            ).observe(engine.now() - entered_at)

    gen = force.current_barrier
    proc = engine.current()
    det = force.task.vm.race_detector
    if det is not None:
        # Happens-before: every arrival exports its clock into the
        # generation; whoever runs the body joins the full set, and the
        # release wakes carry it to the remaining members transitively.
        det.on_barrier_arrive(gen, proc, force.barrier_gen, member.member)
    if member.is_primary:
        gen.primary_proc = proc
    gen.arrived += 1
    if gen.arrived < gen.size:
        gen.waiting.append(proc)
        info = yield co_block(f"barrier(gen {force.barrier_gen})")
        if info == _RUN_BODY:
            # Last arrival was not the primary; we are, so run the body
            # and release everyone else.
            if det is not None:
                det.on_barrier_body(gen, proc)
            if body is not None:
                if inspect.isgeneratorfunction(body):
                    yield from body()
                else:
                    body()
            _release_others(engine, gen, proc)
        # info == _RELEASE: nothing more to do.
        observe_wait()
        return
    # We are the last to arrive.
    force.advance_barrier()
    if member.is_primary:
        if det is not None:
            det.on_barrier_body(gen, proc)
        if body is not None:
            if inspect.isgeneratorfunction(body):
                yield from body()
            else:
                body()
        _release_others(engine, gen, proc)
    else:
        if gen.primary_proc is None:
            raise RuntimeLibraryError("barrier finished before primary arrived")
        gen.waiting.remove(gen.primary_proc)
        gen.waiting.append(proc)
        engine.wake(gen.primary_proc, info=_RUN_BODY)
        yield co_block(f"barrier-post(gen {force.barrier_gen - 1})")
    observe_wait()


def _release_others(engine: Engine, gen: BarrierGeneration,
                    me: KernelProcess) -> None:
    gen.complete = True
    for p in gen.waiting:
        if p is not me:
            engine.wake(p, info=_RELEASE)
    gen.waiting.clear()


@contextmanager
def critical(engine: Engine, force: "Force", member: "ForceContext",
             lock: LockState):
    """``CRITICAL <lock> ... END CRITICAL`` as a context manager
    (callable mode: the acquire wait blocks in place)."""
    drive_kernel_ops(engine, acquire_lock(engine, force, member, lock))
    try:
        yield
    finally:
        release_lock(engine, force, member, lock)


class HeldLock:
    """A held CRITICAL region, as a plain (non-suspending) context
    manager: coroutine members write ``with (yield from
    m.critical(lk)): ...``.  Release is synchronous -- charge plus a
    FIFO ownership hand-off, never a wait -- so ``__exit__`` is legal
    even while the body unwinds from a kill (``GeneratorExit`` forbids
    further yields)."""

    __slots__ = ("engine", "force", "member", "lock")

    def __init__(self, engine: Engine, force: "Force",
                 member: "ForceContext", lock: LockState):
        self.engine = engine
        self.force = force
        self.member = member
        self.lock = lock

    def __enter__(self) -> LockState:
        return self.lock

    def __exit__(self, *exc) -> bool:
        release_lock(self.engine, self.force, self.member, self.lock)
        return False


def critical_gen(engine: Engine, force: "Force", member: "ForceContext",
                 lock: LockState):
    """Coroutine form of :func:`critical`: a KernelOp generator whose
    value is the :class:`HeldLock` to enter."""
    yield from acquire_lock(engine, force, member, lock)
    return HeldLock(engine, force, member, lock)


def acquire_lock(engine: Engine, force: "Force", member: "ForceContext",
                 lock: LockState):
    """Acquire a CRITICAL lock (a KernelOp generator)."""
    engine.charge(COST_LOCK)
    proc = engine.current()
    metrics = force.task.vm.metrics
    wanted_at = engine.now() if metrics.enabled else 0
    lock.acquisitions += 1
    if lock.locked:
        lock.contended_acquisitions += 1
        lock.waiters.append(proc)
        try:
            yield co_block(f"critical({lock.name})")
        except (GeneratorExit, ProcessKilled):
            # Killed while queued for the lock: we never entered the
            # region.  (A killed generator sees GeneratorExit at its
            # suspension point on every vehicle.)  Leave the wait
            # queue, and if a release already transferred ownership to
            # us, hand it straight on so the siblings are not stranded
            # behind a dead owner.
            if proc in lock.waiters:
                lock.waiters.remove(proc)
            if lock.owner_pid == proc.pid:
                _grant_next(engine, lock)
            raise
        # The releaser transferred ownership to us before waking.
        if lock.owner_pid != proc.pid:
            raise RuntimeLibraryError(
                f"lock {lock.name} wake without ownership transfer")
    else:
        lock.locked = True
        lock.owner_pid = proc.pid
    vm = force.task.vm
    det = vm.race_detector
    if det is not None:
        det.on_lock_acquire(lock, proc, member.member)
    sh = vm.sched_hook
    if sh is not None:
        sh.on_lock_grant(member.member, lock.name)
    lock.acquired_at = engine.now()
    if metrics.enabled:
        metrics.counter("lock_acquisitions", lock=lock.name).inc()
        metrics.histogram("lock_wait_ticks", lock=lock.name
                          ).observe(lock.acquired_at - wanted_at)
    force.task.trace(TraceEventType.LOCK,
                     info=f"lock={lock.name} member={member.member}")


def release_lock(engine: Engine, force: "Force", member: "ForceContext",
                 lock: LockState) -> None:
    engine.charge(COST_UNLOCK)
    proc = engine.current()
    if not lock.locked or lock.owner_pid != proc.pid:
        raise RuntimeLibraryError(
            f"unlock of {lock.name} by non-owner (owner pid {lock.owner_pid})")
    metrics = force.task.vm.metrics
    if metrics.enabled:
        metrics.histogram("lock_hold_ticks", lock=lock.name
                          ).observe(engine.now() - lock.acquired_at)
    force.task.trace(TraceEventType.UNLOCK,
                     info=f"lock={lock.name} member={member.member}")
    det = force.task.vm.race_detector
    if det is not None:
        # Export before the hand-off so the next holder's acquire join
        # sees everything this region did.
        det.on_lock_release(lock, proc, member.member)
    _grant_next(engine, lock)


def _grant_next(engine: Engine, lock: LockState) -> None:
    """FIFO hand-off to the next *viable* waiter, else unlock.

    Killed or already-dead waiters are skipped: a killed process is
    unwinding (it will never execute the region) and granting it the
    lock would strand every sibling behind a dead owner.
    """
    while lock.waiters:
        nxt: KernelProcess = lock.waiters.pop(0)
        if nxt.killed or not nxt.live:
            continue
        lock.owner_pid = nxt.pid
        engine.wake(nxt)
        return
    lock.locked = False
    lock.owner_pid = None
