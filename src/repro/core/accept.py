"""ACCEPT statement semantics (section 6).

An ACCEPT names message types and how many messages to take:

* ``ACCEPT <n> OF t1, t2, ...`` -- a *total* of n messages across the
  listed types;
* per-type counts -- "the statement may specify counts for each message
  type individually";
* ``ALL`` -- "all messages of that type that have been received" (a
  drain of what is already queued; never waits for more);
* a ``DELAY <time>`` clause bounding the wait, with an optional handler
  statement sequence; without a DELAY clause a system-provided timeout
  value is used.

Python binding::

    ctx.accept("DONE")                          # 1 message of type DONE
    ctx.accept("A", "B", count=3)               # 3 of types A/B combined
    ctx.accept(("A", 2), ("B", ALL_RECEIVED))   # per-type counts
    ctx.accept("GO", delay=500, on_timeout=f)   # DELAY 500 THEN f()

Each accepted message is *processed*: a type with a declared HANDLER has
its handler subroutine called with the message arguments; any other type
is a SIGNAL and is simply counted.  Either way the message's
shared-memory bytes are released.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import MessageError
from .messages import Message


class _AllReceived:
    """Sentinel: accept every already-received message of the type."""

    def __repr__(self) -> str:
        return "ALL_RECEIVED"


#: The ``ALL`` count of the paper's ACCEPT statement.
ALL_RECEIVED = _AllReceived()


@dataclass(frozen=True)
class RetryPolicy:
    """Timeout escalation for ACCEPT: retry the wait before failing.

    When the (explicit or system) delay expires unsatisfied, the accept
    waits again up to ``retries`` more times, each wait ``backoff``
    times longer than the previous one, before the timeout is finally
    surfaced (handler / partial result / AcceptTimeout).  ``retries=0``
    is the paper's single-wait behaviour.
    """

    retries: int = 0
    backoff: float = 2.0
    #: Jitter fraction (0..1): each wait is perturbed by up to +/- this
    #: fraction of its deterministic length.  The variate comes from the
    #: caller-supplied RNG (the VM's seeded run RNG), so jittered runs
    #: stay bit-reproducible and replayable.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise MessageError("RetryPolicy.retries must be >= 0")
        if self.backoff < 1.0:
            raise MessageError("RetryPolicy.backoff must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise MessageError("RetryPolicy.jitter must be in 0..1")

    def wait_ticks(self, base_delay: int, attempt: int, rng=None) -> int:
        """Length of the ``attempt``-th wait (0 = the initial one).

        With ``jitter`` set and an ``rng`` supplied, the wait is spread
        symmetrically by up to ``jitter * wait`` ticks (never below 1
        tick); exactly one variate is consumed per jittered wait.
        """
        w = max(1, int(base_delay * self.backoff ** attempt))
        if self.jitter and rng is not None:
            spread = int(w * self.jitter)
            if spread:
                w = max(1, w + rng.randrange(-spread, spread + 1))
        return w


@dataclass
class AcceptSpec:
    """Normalized accept specification."""

    #: type name -> wanted count (None means ALL_RECEIVED drain).
    per_type: Dict[str, Optional[int]]
    #: total-count mode: n messages across all listed types.
    total: Optional[int] = None

    @property
    def mtypes(self) -> List[str]:
        return list(self.per_type)

    def blocking_types(self) -> List[str]:
        """Types that can still demand future messages (non-ALL)."""
        if self.total is not None:
            return list(self.per_type)
        return [t for t, c in self.per_type.items() if c is not None]


def normalize_specs(specs: Sequence[Union[str, Tuple[str, Any]]],
                    count: Optional[int]) -> AcceptSpec:
    """Turn the user-facing argument forms into an :class:`AcceptSpec`."""
    if not specs:
        raise MessageError("ACCEPT needs at least one message type")
    per_type: Dict[str, Optional[int]] = {}
    saw_tuple = False
    for s in specs:
        if isinstance(s, str):
            per_type[s] = 1
        elif isinstance(s, tuple) and len(s) == 2 and isinstance(s[0], str):
            saw_tuple = True
            t, c = s
            if c is ALL_RECEIVED:
                per_type[t] = None
            else:
                c = int(c)
                if c < 0:
                    raise MessageError(f"negative accept count for {t!r}")
                per_type[t] = c
        else:
            raise MessageError(f"bad accept spec {s!r}")
    if count is not None:
        if saw_tuple:
            raise MessageError("cannot mix a total count with per-type counts")
        if count < 0:
            raise MessageError("negative total accept count")
        return AcceptSpec(per_type={t: None for t in per_type}, total=count)
    if saw_tuple:
        return AcceptSpec(per_type=per_type)
    # Plain type names: each wants one message -- equivalent to per-type
    # count 1, which also covers the single-type ACCEPT 1 OF T case.
    return AcceptSpec(per_type=per_type)


@dataclass
class AcceptResult:
    """What an ACCEPT took: the processed messages, in accept order."""

    messages: List[Message] = field(default_factory=list)
    timed_out: bool = False

    @property
    def count(self) -> int:
        return len(self.messages)

    def by_type(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for m in self.messages:
            out[m.mtype] = out.get(m.mtype, 0) + 1
        return out

    def of_type(self, mtype: str) -> List[Message]:
        return [m for m in self.messages if m.mtype == mtype]

    @property
    def args(self) -> Tuple[Any, ...]:
        """Arguments of the first accepted message (common 1-message case)."""
        if not self.messages:
            raise MessageError("accept processed no messages")
        return self.messages[0].args

    @property
    def sender(self):
        if not self.messages:
            raise MessageError("accept processed no messages")
        return self.messages[-1].sender


class AcceptState:
    """Progress tracker used by the accept loop in the task context."""

    def __init__(self, spec: AcceptSpec):
        self.spec = spec
        self.taken: Dict[str, int] = {t: 0 for t in spec.per_type}
        self.result = AcceptResult()
        #: Virtual time each message was taken (parallel to
        #: ``result.messages``); the observability layer derives the
        #: send->accept latency from it.
        self.take_times: List[int] = []
        #: Cache for :meth:`wanted_now`, invalidated by :meth:`take` --
        #: the accept wait loop probes the in-queue many times between
        #: takes and must not rebuild the type collection per probe.
        self._wanted_cache: Optional[Tuple[str, ...]] = None

    def wanted_now(self) -> Tuple[str, ...]:
        """Types the accept would take one more message of, right now.

        Returns a stable tuple (no duplicates: spec types are dict
        keys), built once per take rather than once per in-queue poll;
        :meth:`InQueue.first_matching` iterates it directly without
        constructing a set.
        """
        w = self._wanted_cache
        if w is None:
            w = self._wanted_cache = tuple(
                t for t in self.spec.per_type if self.wants(t))
        return w

    def wants(self, mtype: str) -> bool:
        """Would the accept take one more message of this type?"""
        if mtype not in self.spec.per_type:
            return False
        if self.spec.total is not None:
            return len(self.result.messages) < self.spec.total
        want = self.spec.per_type[mtype]
        if want is None:       # ALL: always take what has arrived
            return True
        return self.taken[mtype] < want

    def take(self, msg: Message, now: Optional[int] = None) -> None:
        self.taken[msg.mtype] += 1
        self.result.messages.append(msg)
        self.take_times.append(msg.arrival_time if now is None else now)
        self._wanted_cache = None

    def satisfied(self) -> bool:
        """True when the accept need not wait for more messages."""
        if self.spec.total is not None:
            return len(self.result.messages) >= self.spec.total
        return all(c is None or self.taken[t] >= c
                   for t, c in self.spec.per_type.items())

    def wanted_types_open(self) -> List[str]:
        """Types for which the accept is still waiting on future arrivals."""
        if self.satisfied():
            return []
        if self.spec.total is not None:
            return list(self.spec.per_type)
        return [t for t, c in self.spec.per_type.items()
                if c is not None and self.taken[t] < c]


def record_accept_metrics(registry, state: AcceptState,
                          tasktype: str) -> None:
    """Observe per-message send->accept latency and accepted counts.

    Called by the run-time library when an ACCEPT completes and the
    registry is enabled; the latency is take time minus send time, i.e.
    queueing delay plus transit, the quantity a user tunes message
    patterns against.
    """
    for msg, taken_at in zip(state.result.messages, state.take_times):
        registry.counter("messages_accepted", tasktype=tasktype,
                         mtype=msg.mtype).inc()
        registry.histogram("send_accept_latency_ticks", tasktype=tasktype
                           ).observe(max(0, taken_at - msg.send_time))
