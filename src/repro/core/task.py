"""Tasktypes, tasks and the task-context API (sections 5, 6, 10).

A Pisces program "consists of a set of tasktype definitions"; any number
of tasks of the same tasktype may be initiated.  In this Python binding
a tasktype is a decorated function receiving a :class:`TaskContext` as
its first argument::

    reg = TaskRegistry()

    @reg.tasktype("WORKER", handlers={"DATA": on_data})
    def worker(ctx, n):
        ctx.accept("GO")
        ctx.send(PARENT, "DONE", n * n)

The context exposes the Pisces Fortran extension statements: INITIATE,
SEND/broadcast, ACCEPT (with DELAY and SIGNAL/HANDLER processing),
FORCESPLIT, window creation and access, SHARED COMMON access, and
terminal output.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING, Union

import numpy as np

from ..errors import (
    AcceptTimeout,
    MessageError,
    NotInForce,
    RuntimeLibraryError,
    UnknownTaskType,
)
from ..mmos.process import (
    KernelProcess,
    co_block,
    co_preempt,
    drive_kernel_ops,
)
from .accept import (
    ALL_RECEIVED,
    AcceptResult,
    AcceptState,
    RetryPolicy,
    normalize_specs,
    record_accept_metrics,
)
from .cluster import ClusterRuntime
from .messages import InQueue, Message, release_message
from .supervision import NONE as SUPERVISION_NONE, Supervision
from .shared import CommonSpec, LockState, SharedCommonBlock, SharedState
from .sizes import (
    COST_ACCEPT,
    COST_HANDLER_DISPATCH,
    DEFAULT_TASKTYPE_CODE_BYTES,
)
from .taskid import ANY, Designator, Placement, SendTarget, TaskId
from .tracing import TraceEvent, TraceEventType
from .windows import ArrayStore, Window, WindowCache, make_window

if TYPE_CHECKING:  # pragma: no cover
    from .forces import Force, ForceContext
    from .vm import PiscesVM

#: A HANDLER subroutine: called as ``handler(ctx, *message_args)``.
Handler = Callable[..., Any]


@dataclass
class TaskType:
    """A tasktype definition.

    ``handlers`` maps message types to HANDLER subroutines; every other
    accepted type is a SIGNAL (counted only).  ``signals`` is optional
    documentation/validation of the signal types the task expects.
    ``shared`` declares SHARED COMMON blocks (allocated at initiation),
    ``locks`` declares LOCK variables.
    """

    name: str
    fn: Callable[..., Any]
    handlers: Dict[str, Handler] = field(default_factory=dict)
    signals: Tuple[str, ...] = ()
    shared: Dict[str, CommonSpec] = field(default_factory=dict)
    locks: Tuple[str, ...] = ()
    code_bytes: int = DEFAULT_TASKTYPE_CODE_BYTES

    @staticmethod
    def estimate_code_bytes(fn: Callable) -> int:
        """Loadfile contribution of a tasktype: its source size (a
        stand-in for compiled object code size)."""
        try:
            return max(DEFAULT_TASKTYPE_CODE_BYTES // 2, len(inspect.getsource(fn)))
        except (OSError, TypeError):
            return DEFAULT_TASKTYPE_CODE_BYTES


class TaskRegistry:
    """The set of tasktype definitions making up one Pisces program."""

    def __init__(self) -> None:
        self._types: Dict[str, TaskType] = {}

    def tasktype(self, name: str, *, handlers: Optional[Dict[str, Handler]] = None,
                 signals: Tuple[str, ...] = (),
                 shared: Optional[Dict[str, CommonSpec]] = None,
                 locks: Tuple[str, ...] = ()) -> Callable[[Callable], Callable]:
        """Decorator registering a tasktype definition."""
        def deco(fn: Callable) -> Callable:
            tt = TaskType(name=name, fn=fn, handlers=dict(handlers or {}),
                          signals=tuple(signals), shared=dict(shared or {}),
                          locks=tuple(locks),
                          code_bytes=TaskType.estimate_code_bytes(fn))
            self.define(tt)
            fn.tasktype = tt  # type: ignore[attr-defined]
            return fn
        return deco

    def define(self, tt: TaskType) -> None:
        self._types[tt.name] = tt

    def get(self, name: str) -> TaskType:
        try:
            return self._types[name]
        except KeyError:
            raise UnknownTaskType(
                f"tasktype {name!r} is not defined "
                f"(known: {sorted(self._types)})") from None

    def names(self) -> List[str]:
        return sorted(self._types)

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def total_code_bytes(self) -> int:
        return sum(t.code_bytes for t in self._types.values())


#: Default registry used by the module-level ``tasktype`` decorator.
GLOBAL_REGISTRY = TaskRegistry()


def tasktype(name: str, **kw) -> Callable[[Callable], Callable]:
    """Register a tasktype in the global registry (see
    :meth:`TaskRegistry.tasktype`)."""
    return GLOBAL_REGISTRY.tasktype(name, **kw)


class Task:
    """One running (or finished) task."""

    def __init__(self, vm: "PiscesVM", ttype: TaskType, tid: TaskId,
                 parent: TaskId, cluster: ClusterRuntime,
                 args: Tuple[Any, ...],
                 supervision: Optional[Supervision] = None,
                 restarts: int = 0):
        self.vm = vm
        self.ttype = ttype
        self.tid = tid
        self.parent = parent
        self.cluster = cluster
        self.args = args
        #: Failure-semantics policy riding with the initiate request.
        self.supervision = (supervision if supervision is not None
                            else SUPERVISION_NONE)
        #: How many times this task has already been re-initiated.
        self.restarts_used = restarts
        #: Why the task died abnormally (None for normal termination).
        self.died_reason: Optional[str] = None
        self.inq = InQueue(tid)
        self.inq.metrics = vm.metrics
        self.inq.metric_labels = {"cluster": cluster.number, "kind": "task"}
        self.process: Optional[KernelProcess] = None
        det = vm.race_detector
        self.shared_state = SharedState(
            vm.machine.shared,
            monitor=None if det is None else det.common_monitor(self))
        self.arrays = ArrayStore(tid)
        self.arrays.metrics = vm.metrics
        #: Reader-side window cache (fast data-plane path only); force
        #: members share it, which is safe under the engine's
        #: one-at-a-time admission.
        self.window_cache = WindowCache()
        self.force: Optional["Force"] = None
        self.alive = False
        self.result: Any = None
        self.initiated_at = 0
        self.terminated_at: Optional[int] = None

    # ------------------------------------------------------------ trace --

    def trace(self, etype: TraceEventType, info: str = "",
              other: Optional[TaskId] = None) -> None:
        eng = self.vm.engine
        pe = (eng.current().pe if eng.in_process()
              else self.cluster.primary_pe)
        self.vm.tracer.emit(TraceEvent(
            etype=etype, task=self.tid, pe=pe,
            ticks=self.vm.machine.clocks[pe].ticks
            if not eng.in_process() else eng.now(),
            info=info, other=other))

    def describe(self) -> str:
        state = "alive" if self.alive else "done"
        return (f"task {self.tid} type={self.ttype.name} parent={self.parent} "
                f"{state}, inq={len(self.inq)}")


class TaskContext:
    """The user-facing run-time API handed to every tasktype body.

    One context exists per *execution stream*: the task itself, and one
    per force member after a FORCESPLIT (see :class:`ForceContext`).

    A context runs in one of two **modes** over the same runtime code
    (every suspending operation is written once, as a generator of
    :class:`~repro.mmos.process.KernelOp` values):

    * **callable mode** (``coroutine=False``, the classic form): each
      suspending method drives its generator to completion on the spot
      through the engine's blocking calls, so the body is ordinary
      sequential code on a worker thread.
    * **coroutine mode** (``coroutine=True``): each suspending method
      *returns* its generator for the body to ``yield from``, so the
      whole task suspends at the KernelOp seam -- on the coop core it
      then runs with no worker thread at all.

    Both modes interpret the identical op stream and are bit-identical
    in virtual time (see docs/architecture.md, "Task runtime on the
    coop core").
    """

    def __init__(self, task: Task, process: KernelProcess,
                 coroutine: bool = False):
        self.task = task
        self.process = process
        #: True when this context belongs to a coroutine-style body:
        #: suspending methods return KernelOp generators to ``yield
        #: from`` instead of blocking in place.
        self.coroutine = coroutine
        #: Taskid of the sender of the last message received (SENDER).
        self.sender: Optional[TaskId] = None
        #: Run-time handler table: tasktype handlers plus any registered
        #: dynamically with :meth:`handler`.
        self._handlers: Dict[str, Handler] = dict(task.ttype.handlers)

    def _run(self, gen):
        """Execute one suspending runtime operation written as a
        KernelOp generator: a coroutine-mode context hands the
        generator back for the body to ``yield from``; a callable-mode
        context drives it to completion here."""
        if self.coroutine:
            return gen
        return drive_kernel_ops(self.vm.engine, gen)

    # -------------------------------------------------------- identity ----

    @property
    def vm(self) -> "PiscesVM":
        return self.task.vm

    @property
    def self_id(self) -> TaskId:
        """SELF: this task's taskid."""
        return self.task.tid

    @property
    def parent(self) -> TaskId:
        """PARENT: the taskid of the initiating task."""
        return self.task.parent

    @property
    def cluster_number(self) -> int:
        return self.task.cluster.number

    def now(self) -> int:
        """Current virtual time (this PE's clock reading)."""
        return self.vm.engine.now()

    # --------------------------------------------------------- INITIATE ----

    def initiate(self, tasktype_name: str, *args: Any,
                 on: Placement = ANY,
                 supervision: Optional[Supervision] = None) -> None:
        """``ON <cluster> INITIATE <tasktype>(<args>)``.

        Sends an initiate request to the chosen cluster's task
        controller; per section 6 this does *not* return the new task's
        taskid -- the child knows its parent and sends its taskid back
        in a message if the parent needs it.

        ``supervision`` selects the failure-semantics policy for the
        child (:mod:`repro.core.supervision`): what the system does if
        the child dies abnormally.  Default: notify this task with a
        system ``TASK_DIED`` message.
        """
        self.vm.request_initiate(tasktype_name, args, parent=self.self_id,
                                 placement=on,
                                 current_cluster=self.cluster_number,
                                 supervision=supervision)

    # ------------------------------------------------------------- SEND ----

    def send(self, dest, mtype: str, *args: Any,
             require_delivery: bool = False) -> None:
        """``TO <dest> SEND <mtype>(<args>)``.

        ``require_delivery=True`` turns the silent drop of a send to a
        dead taskid into a typed :class:`~repro.errors.SendFailed`.
        """
        self.vm.send_message(dest, mtype, args, origin=self,
                             require_delivery=require_delivery)

    def broadcast(self, mtype: str, *args: Any,
                  cluster: Optional[int] = None) -> int:
        """``TO ALL [CLUSTER <n>] SEND ...``; returns deliveries made."""
        from .taskid import Broadcast
        return self.vm.send_message(Broadcast(cluster), mtype, args,
                                    origin=self)

    # ----------------------------------------------------------- ACCEPT ----

    def handler(self, mtype: str, fn: Handler) -> None:
        """Declare/replace a HANDLER for a message type at run time."""
        self._handlers[mtype] = fn

    def accept(self, *specs, count: Optional[int] = None,
               delay: Optional[int] = None,
               on_timeout: Optional[Callable[[], Any]] = None,
               timeout_ok: bool = False,
               retry: Optional[RetryPolicy] = None) -> AcceptResult:
        """The ACCEPT statement.  See :mod:`repro.core.accept`.

        ``delay`` is the DELAY clause in ticks (default: the system
        timeout, configurable via ``PISCES_ACCEPT_TIMEOUT`` or the
        configuration's ``default_accept_delay``).  On timeout:
        ``on_timeout`` is called if given (the DELAY statement
        sequence); otherwise, with ``timeout_ok`` the partial result is
        returned with ``timed_out`` set; otherwise
        :class:`~repro.errors.AcceptTimeout` is raised (the
        "system-generated timeout message").

        ``retry`` escalates the timeout through extra backed-off waits
        before it is surfaced (default: the configuration's
        ``accept_retries``/``accept_backoff`` policy).

        In coroutine mode this returns a generator; the body writes
        ``res = yield from ctx.accept(...)``.
        """
        return self._run(self._accept_gen(
            specs, count, delay, on_timeout, timeout_ok, retry))

    def _accept_gen(self, specs, count, delay, on_timeout, timeout_ok,
                    retry):
        vm = self.vm
        eng = vm.engine
        spec = normalize_specs(specs, count)
        state = AcceptState(spec)
        eng.charge(COST_ACCEPT)
        vm.stats.accepts += 1
        base_delay = (vm.default_accept_delay if delay is None
                      else int(delay))
        policy = vm.accept_retry if retry is None else retry
        attempt = 0
        deadline = eng.now() + base_delay
        inq = self.task.inq
        while True:
            # Take everything already arrived that the spec still wants.
            while True:
                wanted = state.wanted_now()
                if not wanted:
                    break
                m = inq.first_matching(wanted, not_after=eng.now())
                if m is None:
                    break
                inq.remove(m)
                if m.checksum is not None and not m.verify():
                    self._discard_corrupt(m)
                    continue
                yield from self._process_message(m, state)
            if state.satisfied():
                # Final drain of ALL-count types that have already
                # arrived (per-type mode only: in total-count mode the
                # per-type values are None but mean "any", not ALL).
                all_types = ([] if spec.total is not None else
                             [t for t, c in spec.per_type.items() if c is None])
                if all_types:
                    while True:
                        m = inq.first_matching(all_types, not_after=eng.now())
                        if m is None:
                            break
                        inq.remove(m)
                        if m.checksum is not None and not m.verify():
                            self._discard_corrupt(m)
                            continue
                        yield from self._process_message(m, state)
                if vm.metrics.enabled:
                    record_accept_metrics(vm.metrics, state,
                                          self.task.ttype.name)
                yield co_preempt(0)
                return state.result
            # Unsatisfied: wait for in-flight matches or new sends.
            now = eng.now()
            if now >= deadline:
                if policy is not None and attempt < policy.retries:
                    # Escalate: wait again, backed off, before giving
                    # the caller the timeout.
                    attempt += 1
                    deadline = now + policy.wait_ticks(base_delay, attempt,
                                                       rng=vm.run_rng)
                    vm.stats.accept_retries += 1
                    if vm.metrics.enabled:
                        vm.metrics.counter(
                            "accept_retries",
                            tasktype=self.task.ttype.name).inc()
                    continue
                return self._timeout(state, on_timeout, timeout_ok)
            open_types = state.wanted_types_open()
            next_arr = inq.earliest_arrival(open_types, after=now)
            eff = deadline if next_arr is None else min(deadline, next_arr)
            # Retry waits carry a marker inside the accept( prefix: the
            # prefix is what receiver wake-up and shutdown draining
            # match on, while the profiler charges retry waits to
            # fault-recovery rather than ordinary message latency.
            retry = f"retry{attempt}:" if attempt else ""
            yield co_block(f"accept({retry}{','.join(open_types)})",
                           deadline=eff)
            # Woken by a send, or the deadline fired; loop re-scans.

    def _discard_corrupt(self, m: Message) -> None:
        """Drop a message whose payload fails its integrity checksum."""
        vm = self.vm
        det = vm.race_detector
        if det is not None:
            det.forget_message(m)
        release_message(vm.machine.shared, m)
        vm.stats.corruptions_detected += 1
        if vm.faults is not None:
            vm.faults.record("corrupt_detected",
                             f"type={m.mtype} from={m.sender}",
                             task=self.task.tid,
                             pe=self.task.cluster.primary_pe,
                             injected=False)
        if vm.metrics.enabled:
            vm.metrics.counter("messages_corrupt_detected",
                               tasktype=self.task.ttype.name).inc()

    def _process_message(self, m: Message, state: AcceptState):
        # A KernelOp generator (driven via ``yield from`` inside
        # _accept_gen): HANDLER subroutines may themselves suspend when
        # written as generator functions.
        vm = self.vm
        det = vm.race_detector
        if det is not None:
            # Happens-before: everything the sender did before SEND is
            # ordered before everything this task does after ACCEPT.
            det.on_accept(m)
        sh = vm.sched_hook
        if sh is not None:
            sh.on_accept_match(str(self.task.tid), str(m.sender), m.mtype)
        release_message(vm.machine.shared, m)
        vm.stats.messages_accepted += 1
        self.sender = m.sender
        state.take(m, now=vm.engine.now())
        self.task.trace(TraceEventType.MSG_ACCEPT,
                        info=f"type={m.mtype} bytes={m.nbytes}",
                        other=m.sender)
        h = self._handlers.get(m.mtype)
        if h is not None:
            vm.engine.charge(COST_HANDLER_DISPATCH)
            if inspect.isgeneratorfunction(h):
                yield from h(self, *m.args)
            else:
                h(self, *m.args)

    def _timeout(self, state: AcceptState, on_timeout, timeout_ok) -> AcceptResult:
        self.vm.stats.accept_timeouts += 1
        m = self.vm.metrics
        if m.enabled:
            m.counter("accept_timeouts", tasktype=self.task.ttype.name).inc()
            record_accept_metrics(m, state, self.task.ttype.name)
        state.result.timed_out = True
        if on_timeout is not None:
            on_timeout()
            return state.result
        if timeout_ok:
            return state.result
        raise AcceptTimeout(
            f"ACCEPT in {self.self_id} timed out waiting for "
            f"{state.wanted_types_open()} (got {state.result.by_type()})")

    # ------------------------------------------------------------ compute --

    def compute(self, ticks: int):
        """Charge pure computation time (a preemption point).  In
        coroutine mode: ``yield from ctx.compute(...)``.

        The most frequent suspension point, so it skips the generator
        seam: coroutine mode hands back the kernel's (interned) op
        tuple to ``yield from``; callable mode issues the blocking
        kernel call directly."""
        kernel = self.vm.kernel
        if self.coroutine:
            return kernel.compute_ops(ticks)
        kernel.compute(ticks)
        return None

    def print(self, text: str) -> None:
        """Terminal output via the user controller / MMOS terminal I/O."""
        self.vm.kernel.write_terminal(f"[{self.self_id}] {text}")

    # ---------------------------------------------------------- FORCESPLIT --

    def forcesplit(self, region: Callable[..., Any], *args: Any) -> List[Any]:
        """``FORCESPLIT``: replicate this task into a force.

        ``region`` is the code executed by every member from the split
        point on: ``region(member_ctx, *args)``.  The member count is a
        configuration-time property of the cluster (1 + its secondary
        PEs); the same program text runs unchanged for any force size.
        Returns the list of member results (index = member number;
        member 0 is the primary).

        In coroutine mode: ``results = yield from ctx.forcesplit(...)``;
        a generator-function region runs as a coroutine member body.
        """
        from .forces import do_forcesplit
        return self._run(do_forcesplit(self, region, args))

    @property
    def force(self) -> "Force":
        raise NotInForce("not inside a FORCESPLIT region")

    # ------------------------------------------------------------ windows --

    def export_array(self, name: str, array: np.ndarray,
                     cacheable: bool = True) -> Window:
        """Make a local array window-addressable; returns the full window.

        ``cacheable=False`` opts the array out of reader-side caching;
        pass it when this task will mutate the array directly instead of
        through window writes (or call :meth:`touch_array` after each
        direct mutation)."""
        self.task.arrays.export(name, array, cacheable=cacheable)
        return make_window(self.self_id, name, array)

    def window(self, name: str, *, region=None,
               rows=None, cols=None) -> Window:
        """Create a window on (a region of) one of this task's arrays.

        The region is the keyword ``region=`` or the ``rows=``/``cols=``
        selectors (slice, (start, stop) pair, or int along axis 0 /
        axis 1)."""
        base = self.task.arrays.get(name)
        return make_window(self.self_id, name, base, region,
                           rows=rows, cols=cols)

    def window_read(self, w: Window, *, rows=None, cols=None):
        """Read a copy of the data visible in a window (remote access);
        ``rows=``/``cols=`` shrink the window for this one access.  In
        coroutine mode: ``data = yield from ctx.window_read(w)``."""
        return self._run(self.vm.window_read_gen(self, w, rows=rows,
                                                 cols=cols))

    def window_write(self, w: Window, data: np.ndarray, *,
                     rows=None, cols=None, if_unchanged: bool = False):
        """Write data through a window into the owner's array;
        ``rows=``/``cols=`` shrink the window for this one access.
        ``if_unchanged=True`` refuses with :class:`WindowConflict` if the
        region changed since this task last read it.  In coroutine
        mode: ``yield from ctx.window_write(w, data)``."""
        return self._run(self.vm.window_write_gen(
            self, w, data, rows=rows, cols=cols, if_unchanged=if_unchanged))

    def file_window(self, name: str, *, region=None,
                    rows=None, cols=None):
        """Request a window on a file-system array (via file controller).
        In coroutine mode: ``w = yield from ctx.file_window(name)``."""
        return self._run(self.vm.file_window_gen(self, name, region=region,
                                                 rows=rows, cols=cols))

    def touch_array(self, name: str) -> None:
        """Declare a direct (non-window) mutation of an exported array,
        so remote cached blocks of it revalidate as stale."""
        self.task.arrays.touch(name)

    # ------------------------------------------------------------- shared --

    def common(self, name: str) -> SharedCommonBlock:
        """Access a SHARED COMMON block declared by this tasktype."""
        return self.task.shared_state.common(name)

    def lock(self, name: str) -> LockState:
        """Access (or lazily declare) a LOCK variable."""
        return self.task.shared_state.lock(name)

    def declare_common(self, name: str, spec) -> SharedCommonBlock:
        """Declare a SHARED COMMON block at run time (beyond the static
        tasktype declaration -- e.g. re-declaring after
        :meth:`free_common` with a different shape)."""
        return self.task.shared_state.declare_common(name, spec)

    def free_common(self, name: str) -> None:
        """FREE COMMON: release a block's shared-memory storage now.

        Task termination releases every still-declared block anyway;
        explicit freeing matters for long-lived tasks that cycle through
        differently-shaped blocks (the paper's static allocation is per
        task initiation, and this is the matching deallocation).  The
        name becomes declarable again."""
        self.task.shared_state.free_common(name)


__all__ = [
    "GLOBAL_REGISTRY",
    "Task",
    "TaskContext",
    "TaskRegistry",
    "TaskType",
    "tasktype",
]
