"""Supervision policies for task failure semantics.

The paper's virtual machine assumes tasks never die abnormally; the
fault-injection layer (:mod:`repro.faults`) makes them die, and this
module defines what the system does about it:

* ``NONE``   -- the parent is told (a system ``TASK_DIED`` message) and
  nothing else happens;
* ``NOTIFY`` -- as NONE, plus the user controller receives a copy (so
  the death shows on the terminal even when the parent ignores it);
* ``RESTART(max_restarts, backoff_ticks)`` -- the task controller
  re-initiates the dead task on a surviving cluster (the paper's
  ``ON OTHER INITIATE`` placement), up to ``max_restarts`` times, each
  attempt delayed by ``backoff_ticks * attempt`` of virtual time.  Only
  when restarts are exhausted (or no cluster survives) does the parent
  see ``TASK_DIED``.

A policy rides along with the initiate request (``ctx.initiate(...,
supervision=RESTART(2))``), is held by the task controller with the
task, and is inherited verbatim by every restart of the task.
"""

from __future__ import annotations

from dataclasses import dataclass

POLICY_NONE = "none"
POLICY_NOTIFY = "notify"
POLICY_RESTART = "restart"


@dataclass(frozen=True)
class Supervision:
    """How the system reacts when a task dies abnormally."""

    policy: str = POLICY_NONE
    max_restarts: int = 0
    #: Extra virtual-time latency added to the n-th re-initiation
    #: request (linear backoff: ``backoff_ticks * attempt``).
    backoff_ticks: int = 0
    #: Jitter fraction (0..1): the backoff latency is perturbed by up
    #: to +/- this fraction, drawn from the VM's seeded run RNG so a
    #: jittered run is still bit-reproducible.
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.policy not in (POLICY_NONE, POLICY_NOTIFY, POLICY_RESTART):
            raise ValueError(f"unknown supervision policy {self.policy!r}")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.backoff_ticks < 0:
            raise ValueError("backoff_ticks must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in 0..1")

    @property
    def restarts(self) -> bool:
        return self.policy == POLICY_RESTART and self.max_restarts > 0


#: Default policy: parent is notified, nothing is restarted.
NONE = Supervision()

#: Parent and user terminal are notified.
NOTIFY = Supervision(policy=POLICY_NOTIFY)


def RESTART(max_restarts: int = 1, backoff_ticks: int = 0,
            jitter: float = 0.0) -> Supervision:
    """Re-initiate a dead task on a surviving cluster, up to
    ``max_restarts`` times with linear ``backoff_ticks`` delay
    (optionally jittered by +/- ``jitter`` fraction from the seeded
    run RNG)."""
    return Supervision(policy=POLICY_RESTART, max_restarts=max_restarts,
                       backoff_ticks=backoff_ticks, jitter=jitter)


__all__ = ["NONE", "NOTIFY", "RESTART", "Supervision",
           "POLICY_NONE", "POLICY_NOTIFY", "POLICY_RESTART"]
