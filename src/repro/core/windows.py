"""Windows: parallel data partitioning with generalized pointers (section 8).

"A window in PISCES 2 is a type of generalized pointer that points to a
rectangular subregion of an array that is 'owned' by another task. ...
The window value contains the taskid of the owner, the address of the
array, and a descriptor for the subarray.  Another task may read or
write the subarray visible in the window, by sending a message to the
owner.  Another task may also 'shrink' the window to point to a smaller
subarray."

Windows are immutable values (storable in variables, passable in
messages); shrinking returns a new window.  The read/write traffic is
the point of the A2 ablation: partitioning tasks forward *windows* (32
bytes each), and the array bytes move exactly once, owner to processor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..errors import WindowError
from .taskid import TaskId

#: A bound per dimension: (start, stop), 0-based, stop exclusive,
#: absolute coordinates in the owner's base array.
Bounds = Tuple[int, int]


def _normalize_region(region, shape: Tuple[int, ...]) -> Tuple[Bounds, ...]:
    """Accept slices / (start, stop) pairs / ints; return absolute bounds."""
    if not isinstance(region, tuple):
        region = (region,)
    if len(region) != len(shape):
        raise WindowError(
            f"region has {len(region)} dims, array has {len(shape)}")
    out = []
    for r, n in zip(region, shape):
        if isinstance(r, slice):
            if r.step not in (None, 1):
                raise WindowError("windows are rectangular: step must be 1")
            start = 0 if r.start is None else r.start
            stop = n if r.stop is None else r.stop
        elif isinstance(r, tuple) and len(r) == 2:
            start, stop = r
        elif isinstance(r, int):
            start, stop = r, r + 1
        else:
            raise WindowError(f"bad region component {r!r}")
        if start < 0 or stop > n or start >= stop:
            raise WindowError(
                f"region component ({start},{stop}) outside array dim 0..{n}")
        out.append((start, stop))
    return tuple(out)


@dataclass(frozen=True)
class Window:
    """An immutable window value.

    ``owner`` is the owning task (or file controller) taskid; ``array``
    names an array exported by the owner; ``bounds`` is the visible
    rectangular subregion in absolute base-array coordinates.
    """

    owner: TaskId
    array: str
    bounds: Tuple[Bounds, ...]
    dtype: str
    base_shape: Tuple[int, ...]

    # --------------------------------------------------------- geometry --

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(b - a for a, b in self.bounds)

    @property
    def size(self) -> int:
        n = 1
        for a, b in self.bounds:
            n *= b - a
        return n

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize

    def slices(self) -> Tuple[slice, ...]:
        """The numpy slices selecting this window in the base array."""
        return tuple(slice(a, b) for a, b in self.bounds)

    # ----------------------------------------------------------- shrink --

    def shrink(self, region) -> "Window":
        """A new window on a subregion, given in *window-relative*
        coordinates; must be contained in this window."""
        rel = _normalize_region(region, self.shape)
        new_bounds = tuple(
            (base_a + a, base_a + b)
            for (base_a, _), (a, b) in zip(self.bounds, rel))
        for (na, nb), (oa, ob) in zip(new_bounds, self.bounds):
            if na < oa or nb > ob:
                raise WindowError("shrink outside the window")  # unreachable
        return Window(owner=self.owner, array=self.array, bounds=new_bounds,
                      dtype=self.dtype, base_shape=self.base_shape)

    def split(self, parts: int, axis: int = 0) -> Tuple["Window", ...]:
        """Convenience: shrink into ``parts`` near-equal windows along
        ``axis`` -- the top-level partitioning pattern of section 8."""
        if parts < 1:
            raise WindowError("need at least one part")
        lo, hi = self.bounds[axis]
        n = hi - lo
        if parts > n:
            raise WindowError(f"cannot split extent {n} into {parts} parts")
        cuts = [lo + (n * i) // parts for i in range(parts + 1)]
        out = []
        for i in range(parts):
            b = list(self.bounds)
            b[axis] = (cuts[i], cuts[i + 1])
            out.append(Window(owner=self.owner, array=self.array,
                              bounds=tuple(b), dtype=self.dtype,
                              base_shape=self.base_shape))
        return tuple(out)

    def contains(self, other: "Window") -> bool:
        if (self.owner, self.array) != (other.owner, other.array):
            return False
        return all(oa >= sa and ob <= sb
                   for (sa, sb), (oa, ob) in zip(self.bounds, other.bounds))

    def overlaps(self, other: "Window") -> bool:
        if (self.owner, self.array) != (other.owner, other.array):
            return False
        return all(max(sa, oa) < min(sb, ob)
                   for (sa, sb), (oa, ob) in zip(self.bounds, other.bounds))

    def describe(self) -> str:
        b = "x".join(f"[{a}:{z})" for a, z in self.bounds)
        return f"WINDOW {self.array}{b} owner={self.owner} {self.dtype}"


def make_window(owner: TaskId, array_name: str, base: np.ndarray,
                region=None) -> Window:
    """Create a window on (a region of) an owned array."""
    if region is None:
        region = tuple(slice(0, n) for n in base.shape)
    bounds = _normalize_region(region, base.shape)
    return Window(owner=owner, array=array_name, bounds=bounds,
                  dtype=str(base.dtype), base_shape=tuple(base.shape))


class ArrayStore:
    """Arrays exported by one owner (a task, or the file controller).

    The owner's run-time library serves window reads/writes out of this
    store; the VM charges transfer costs and accounts transient message
    bytes (see ``PiscesVM.window_read``/``window_write``).
    """

    def __init__(self, owner: TaskId):
        self.owner = owner
        self._arrays: dict[str, np.ndarray] = {}
        #: (op, array, bounds, ticks) access log, for the overlap tests.
        self.access_log: list[tuple[str, str, Tuple[Bounds, ...], int]] = []
        #: Optional MetricsRegistry; wired by the owner's VM at creation.
        self.metrics = None

    def export(self, name: str, array: np.ndarray) -> None:
        if name in self._arrays:
            raise WindowError(f"array {name!r} already exported by {self.owner}")
        self._arrays[name] = array

    def get(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise WindowError(
                f"owner {self.owner} exports no array {name!r}") from None

    def names(self) -> list[str]:
        return list(self._arrays)

    def _observe(self, op: str, w: Window) -> None:
        m = self.metrics
        if m is not None and m.enabled:
            m.counter("array_store_ops", op=op, array=w.array).inc()
            m.histogram("array_store_bytes", op=op).observe(w.nbytes)

    def read(self, w: Window, ticks: int) -> np.ndarray:
        base = self.get(w.array)
        self.access_log.append(("read", w.array, w.bounds, ticks))
        self._observe("read", w)
        return np.array(base[w.slices()], copy=True)

    def write(self, w: Window, data: np.ndarray, ticks: int) -> None:
        base = self.get(w.array)
        view = base[w.slices()]
        data = np.asarray(data, dtype=base.dtype)
        if data.shape != view.shape:
            raise WindowError(
                f"write shape {data.shape} != window shape {view.shape}")
        self.access_log.append(("write", w.array, w.bounds, ticks))
        self._observe("write", w)
        view[...] = data
