"""Windows: parallel data partitioning with generalized pointers (section 8).

"A window in PISCES 2 is a type of generalized pointer that points to a
rectangular subregion of an array that is 'owned' by another task. ...
The window value contains the taskid of the owner, the address of the
array, and a descriptor for the subarray.  Another task may read or
write the subarray visible in the window, by sending a message to the
owner.  Another task may also 'shrink' the window to point to a smaller
subarray."

Windows are immutable values (storable in variables, passable in
messages); shrinking returns a new window.  The read/write traffic is
the point of the A2 ablation: partitioning tasks forward *windows* (32
bytes each), and the array bytes move exactly once, owner to processor.

The data plane behind the pointers lives here too:

* :class:`WindowTxn` / :class:`WindowTxnReply` -- the request/reply pair
  a window read or write puts on the owner's transaction queue.  The
  batched path moves the whole rectangular block in one transaction
  instead of one message per row.
* per-array **generation counters** on :class:`ArrayStore` -- every
  write through the data plane bumps the backing array's generation and
  records its bounds, so a reader can ask "has anything overlapping my
  cached block changed?" without re-shipping the block.
* :class:`WindowCache` -- the reader-side cache of validated blocks.

All of this is host-level machinery: the *virtual-time* cost of a
window operation is identical on every data-plane path (see
``PiscesVM.window_read`` and ``docs/architecture.md``).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterator, Optional, Tuple, Union

import numpy as np

from ..errors import WindowError
from .taskid import TaskId

#: A bound per dimension: (start, stop), 0-based, stop exclusive,
#: absolute coordinates in the owner's base array.
Bounds = Tuple[int, int]

#: Writes remembered per array for overlap-based cache validation; a
#: reader whose cached generation predates the recorded history gets a
#: conservative miss instead of a wrong hit.
WRITE_HISTORY = 64

#: Cached blocks kept per reading task (oldest evicted first).
CACHE_ENTRIES = 32

#: Data-plane message types (the leading @ keeps them out of user
#: namespaces).  @WTXN/@WTXN_R carry a batched WindowTxn request/reply;
#: @WROW is the reference path's one-row-per-message transit.
MSG_WINDOW_TXN = "@WTXN"
MSG_WINDOW_TXN_REPLY = "@WTXN_R"
MSG_WINDOW_ROW = "@WROW"


def _normalize_region(region, shape: Tuple[int, ...]) -> Tuple[Bounds, ...]:
    """Accept slices / (start, stop) pairs / ints; return absolute bounds."""
    if not isinstance(region, tuple):
        region = (region,)
    if len(region) != len(shape):
        raise WindowError(
            f"region has {len(region)} dims, array has {len(shape)}")
    out = []
    for r, n in zip(region, shape):
        if isinstance(r, slice):
            if r.step not in (None, 1):
                raise WindowError("windows are rectangular: step must be 1")
            start = 0 if r.start is None else r.start
            stop = n if r.stop is None else r.stop
        elif isinstance(r, tuple) and len(r) == 2:
            start, stop = r
        elif isinstance(r, int):
            start, stop = r, r + 1
        else:
            raise WindowError(f"bad region component {r!r}")
        if start < 0 or stop > n or start >= stop:
            raise WindowError(
                f"region component ({start},{stop}) outside array dim 0..{n}")
        out.append((start, stop))
    return tuple(out)


#: A keyword region selector: a slice, a (start, stop) pair, or an int.
Selector = Union[slice, Tuple[int, int], int]


def region_from_selectors(rows: Optional[Selector], cols: Optional[Selector],
                          ndim: int):
    """Build a region tuple from the keyword ``rows=`` / ``cols=``
    selectors of the unified window call signature.

    ``rows`` selects along axis 0 and ``cols`` along axis 1; an omitted
    selector keeps the full extent.  Only 1-D and 2-D windows have a
    row/column reading -- higher-rank regions must be spelled with
    ``region=``.
    """
    if cols is not None and ndim < 2:
        raise WindowError("cols= selector on a 1-D window")
    if ndim > 2:
        raise WindowError(
            f"rows=/cols= selectors apply to 1-D/2-D windows; "
            f"pass region= for a {ndim}-D array")
    sel = [slice(None) if rows is None else rows]
    if ndim == 2:
        sel.append(slice(None) if cols is None else cols)
    return tuple(sel)


def _combine_region(region, rows: Optional[Selector],
                    cols: Optional[Selector], ndim: int):
    """Resolve the (region, rows=, cols=) trio one call site accepts."""
    if region is not None:
        if rows is not None or cols is not None:
            raise WindowError("pass either region or rows=/cols=, not both")
        return region
    if rows is None and cols is None:
        return None
    return region_from_selectors(rows, cols, ndim)


def bounds_overlap(a: Tuple[Bounds, ...], b: Tuple[Bounds, ...]) -> bool:
    """True when two same-rank bounds tuples share any cell."""
    return all(max(sa, oa) < min(sb, ob)
               for (sa, sb), (oa, ob) in zip(a, b))


@dataclass(frozen=True)
class Window:
    """An immutable window value.

    ``owner`` is the owning task (or file controller) taskid; ``array``
    names an array exported by the owner; ``bounds`` is the visible
    rectangular subregion in absolute base-array coordinates.
    """

    owner: TaskId
    array: str
    bounds: Tuple[Bounds, ...]
    dtype: str
    base_shape: Tuple[int, ...]

    # --------------------------------------------------------- geometry --

    @property
    def shape(self) -> Tuple[int, ...]:
        return tuple(b - a for a, b in self.bounds)

    @property
    def size(self) -> int:
        n = 1
        for a, b in self.bounds:
            n *= b - a
        return n

    @property
    def nbytes(self) -> int:
        return self.size * np.dtype(self.dtype).itemsize

    def slices(self) -> Tuple[slice, ...]:
        """The numpy slices selecting this window in the base array."""
        return tuple(slice(a, b) for a, b in self.bounds)

    # ----------------------------------------------------------- shrink --

    def shrink(self, region=None, *, rows: Optional[Selector] = None,
               cols: Optional[Selector] = None) -> "Window":
        """A new window on a subregion, given in *window-relative*
        coordinates; must be contained in this window.

        The subregion is either a full ``region`` tuple or the keyword
        ``rows=`` / ``cols=`` selectors (slice, (start, stop) pair, or
        int along axis 0 / axis 1)."""
        region = _combine_region(region, rows, cols, len(self.bounds))
        if region is None:
            raise WindowError("shrink needs a region or rows=/cols=")
        rel = _normalize_region(region, self.shape)
        new_bounds = tuple(
            (base_a + a, base_a + b)
            for (base_a, _), (a, b) in zip(self.bounds, rel))
        for (na, nb), (oa, ob) in zip(new_bounds, self.bounds):
            if na < oa or nb > ob:
                raise WindowError("shrink outside the window")  # unreachable
        return Window(owner=self.owner, array=self.array, bounds=new_bounds,
                      dtype=self.dtype, base_shape=self.base_shape)

    def split(self, parts: int, axis: int = 0) -> Tuple["Window", ...]:
        """Convenience: shrink into ``parts`` near-equal windows along
        ``axis`` -- the top-level partitioning pattern of section 8."""
        if parts < 1:
            raise WindowError("need at least one part")
        lo, hi = self.bounds[axis]
        n = hi - lo
        if parts > n:
            raise WindowError(f"cannot split extent {n} into {parts} parts")
        cuts = [lo + (n * i) // parts for i in range(parts + 1)]
        out = []
        for i in range(parts):
            b = list(self.bounds)
            b[axis] = (cuts[i], cuts[i + 1])
            out.append(Window(owner=self.owner, array=self.array,
                              bounds=tuple(b), dtype=self.dtype,
                              base_shape=self.base_shape))
        return tuple(out)

    def contains(self, other: "Window") -> bool:
        if (self.owner, self.array) != (other.owner, other.array):
            return False
        return all(oa >= sa and ob <= sb
                   for (sa, sb), (oa, ob) in zip(self.bounds, other.bounds))

    def overlaps(self, other: "Window") -> bool:
        if (self.owner, self.array) != (other.owner, other.array):
            return False
        return bounds_overlap(self.bounds, other.bounds)

    def describe(self) -> str:
        b = "x".join(f"[{a}:{z})" for a, z in self.bounds)
        return f"WINDOW {self.array}{b} owner={self.owner} {self.dtype}"


def make_window(owner: TaskId, array_name: str, base: np.ndarray,
                region=None, *, rows: Optional[Selector] = None,
                cols: Optional[Selector] = None) -> Window:
    """Create a window on (a region of) an owned array."""
    region = _combine_region(region, rows, cols, base.ndim)
    if region is None:
        region = tuple(slice(0, n) for n in base.shape)
    bounds = _normalize_region(region, base.shape)
    return Window(owner=owner, array=array_name, bounds=bounds,
                  dtype=str(base.dtype), base_shape=tuple(base.shape))


# ------------------------------------------------------------ data plane --

@dataclass(frozen=True)
class WindowTxn:
    """One window data-plane request, carried on the owner's typed
    transaction queue.

    ``op`` is ``"read"`` or ``"write"``.  A read carrying the reader's
    ``cached_generation`` asks the owner to *validate* instead of ship:
    if nothing overlapping the window was written since that generation,
    the reply is ``"valid"`` and no payload moves.  A write carrying
    ``require_unchanged_since`` is conditional: it is refused with
    ``"conflict"`` if an overlapping write landed after that generation.
    """

    op: str
    window: Window
    data: Optional[np.ndarray] = None
    cached_generation: Optional[int] = None
    require_unchanged_since: Optional[int] = None


@dataclass(frozen=True)
class WindowTxnReply:
    """The owner's answer: ``status`` is ``"data"`` (payload attached),
    ``"valid"`` (reader's cached block is current), ``"ok"`` (write
    applied) or ``"conflict"`` (conditional write refused)."""

    status: str
    data: Optional[np.ndarray] = None
    generation: int = 0
    cacheable: bool = True
    detail: str = ""


class WindowCache:
    """Reader-side cache of window blocks with generation validation.

    Each entry remembers the owner generation at which the block was
    shipped; a later read of the same window sends only that generation,
    and the owner answers "valid" when no overlapping write happened
    since.  Entries are evicted least-recently-used past
    :data:`CACHE_ENTRIES`.
    """

    def __init__(self, max_entries: int = CACHE_ENTRIES):
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, Tuple[int, np.ndarray]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def _key(w: Window) -> tuple:
        return (w.owner, w.array, w.bounds, w.dtype)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, w: Window) -> Optional[Tuple[int, np.ndarray]]:
        """(generation, block) cached for exactly this window, or None."""
        e = self._entries.get(self._key(w))
        if e is not None:
            self._entries.move_to_end(self._key(w))
        return e

    def observed_generation(self, w: Window) -> Optional[int]:
        """Generation at which this task last read a block covering
        ``w`` (exact window, or any cached window containing it)."""
        e = self._entries.get(self._key(w))
        if e is not None:
            return e[0]
        for (owner, array, bounds, dtype), (gen, _) in self._entries.items():
            if (owner, array, dtype) != (w.owner, w.array, w.dtype):
                continue
            if all(oa >= ca and ob <= cb
                   for (ca, cb), (oa, ob) in zip(bounds, w.bounds)):
                return gen
        return None

    def store(self, w: Window, generation: int, data: np.ndarray) -> None:
        k = self._key(w)
        self._entries[k] = (generation, data)
        self._entries.move_to_end(k)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def invalidate_overlapping(self, w: Window) -> int:
        """Drop every cached block overlapping ``w``; returns count."""
        doomed = [k for k in self._entries
                  if k[0] == w.owner and k[1] == w.array
                  and bounds_overlap(k[2], w.bounds)]
        for k in doomed:
            del self._entries[k]
        return len(doomed)

    def clear(self) -> None:
        self._entries.clear()


class ArrayStore:
    """Arrays exported by one owner (a task, or the file controller).

    The owner's run-time library serves window reads/writes out of this
    store; the VM charges transfer costs and accounts transient message
    bytes (see ``PiscesVM.window_read``/``window_write``).  Every write
    through the data plane bumps the backing array's generation counter
    and records its bounds in a bounded history, which is what makes
    reader-side caching safely invalidatable on any overlapping write.
    """

    def __init__(self, owner: TaskId):
        self.owner = owner
        self._arrays: dict[str, np.ndarray] = {}
        self._cacheable: dict[str, bool] = {}
        #: (op, array, bounds, ticks) access log, for the overlap tests.
        self.access_log: list[tuple[str, str, Tuple[Bounds, ...], int]] = []
        #: Optional MetricsRegistry; wired by the owner's VM at creation.
        self.metrics = None
        #: Current generation per array (0 = never written through).
        self._generation: Dict[str, int] = {}
        #: Recent writes per array: (generation, bounds), oldest first.
        self._writes: Dict[str, Deque[Tuple[int, Tuple[Bounds, ...]]]] = {}
        #: The typed in-queue window transactions ride on.  Requests are
        #: served at enqueue time (a one-sided shared-memory access; the
        #: engine's one-at-a-time admission makes each transfer atomic),
        #: but carrying them on a real queue keeps heap accounting and
        #: queue metrics uniform with ordinary message traffic.
        from .messages import InQueue
        self.txns = InQueue(owner)

    def export(self, name: str, array: np.ndarray,
               cacheable: bool = True) -> None:
        """Make ``array`` window-addressable.  ``cacheable=False`` opts
        the array out of reader-side caching -- required when the owner
        will mutate it directly instead of through window writes (see
        also :meth:`touch`)."""
        if name in self._arrays:
            raise WindowError(f"array {name!r} already exported by {self.owner}")
        self._arrays[name] = array
        self._cacheable[name] = cacheable

    def get(self, name: str) -> np.ndarray:
        try:
            return self._arrays[name]
        except KeyError:
            raise WindowError(
                f"owner {self.owner} exports no array {name!r}") from None

    def names(self) -> list[str]:
        return list(self._arrays)

    # -------------------------------------------------------- generations --

    def generation(self, name: str) -> int:
        return self._generation.get(name, 0)

    def cacheable(self, name: str) -> bool:
        return self._cacheable.get(name, True)

    def touch(self, name: str) -> int:
        """Owner-side notification of a direct (non-window) mutation:
        bumps the generation with whole-array bounds so every cached
        block of this array revalidates as stale.  Returns the new
        generation."""
        base = self.get(name)
        bounds = tuple((0, n) for n in base.shape)
        return self._note_write(name, bounds)

    def _note_write(self, name: str,
                    bounds: Tuple[Bounds, ...]) -> int:
        g = self._generation.get(name, 0) + 1
        self._generation[name] = g
        dq = self._writes.get(name)
        if dq is None:
            dq = self._writes[name] = deque(maxlen=WRITE_HISTORY)
        dq.append((g, bounds))
        return g

    def snapshot(self) -> dict:
        """Digestable data-plane state for checkpoint validation: array
        content digests, per-array generations and the recent-write
        history (generation, bounds) that reader caches validate
        against.  All of it is bit-reproducible at a given schedule
        position."""
        import zlib
        # adler32 reads the array buffer directly; no tobytes() copy.
        arrays = {name: zlib.adler32(np.ascontiguousarray(a).data)
                  for name, a in sorted(self._arrays.items())}
        writes = {name: [[int(g), [[int(x) for x in b] for b in bounds]]
                         for g, bounds in dq]
                  for name, dq in sorted(self._writes.items())}
        return {"arrays": arrays,
                "generations": dict(sorted(self._generation.items())),
                "writes": writes}

    def changed_since(self, name: str, bounds: Tuple[Bounds, ...],
                      generation: int) -> bool:
        """Has any write overlapping ``bounds`` landed after
        ``generation``?  Conservatively True when the bounded write
        history no longer reaches back that far."""
        current = self._generation.get(name, 0)
        if current <= generation:
            return False
        dq = self._writes.get(name)
        if not dq:
            return True        # generation moved but history lost
        if generation < dq[0][0] - 1:
            return True        # history truncated: conservative miss
        return any(g > generation and bounds_overlap(b, bounds)
                   for g, b in dq)

    # ------------------------------------------------------------- access --

    def _observe(self, op: str, w: Window) -> None:
        m = self.metrics
        if m is not None and m.enabled:
            m.counter("array_store_ops", op=op, array=w.array).inc()
            m.histogram("array_store_bytes", op=op).observe(w.nbytes)

    def read(self, w: Window, ticks: int) -> np.ndarray:
        base = self.get(w.array)
        self.access_log.append(("read", w.array, w.bounds, ticks))
        self._observe("read", w)
        return np.array(base[w.slices()], copy=True)

    def write(self, w: Window, data: np.ndarray, ticks: int) -> None:
        base = self.get(w.array)
        view = base[w.slices()]
        data = np.asarray(data, dtype=base.dtype)
        if data.shape != view.shape:
            raise WindowError(
                f"write shape {data.shape} != window shape {view.shape}")
        self.access_log.append(("write", w.array, w.bounds, ticks))
        self._observe("write", w)
        view[...] = data
        self._note_write(w.array, w.bounds)

    # ------------------------------------------- reference (unbatched) --

    def read_rows(self, w: Window, ticks: int) -> Iterator[np.ndarray]:
        """Reference data path: one leading-axis row copy at a time (the
        pre-batching one-message-per-row semantics).  Logs the access
        once; the caller accounts per-row transit."""
        base = self.get(w.array)
        self.access_log.append(("read", w.array, w.bounds, ticks))
        self._observe("read", w)
        lo, hi = w.bounds[0]
        rest = w.slices()[1:]
        for r in range(lo, hi):
            yield np.array(base[(slice(r, r + 1),) + rest], copy=True)

    def write_rows(self, w: Window, data: np.ndarray, ticks: int,
                   per_row=None) -> None:
        """Reference data path: apply a window write one leading-axis
        row at a time; ``per_row(row)`` lets the caller charge transit
        per row.  One logical write: logged and generation-bumped once."""
        base = self.get(w.array)
        view = base[w.slices()]
        data = np.asarray(data, dtype=base.dtype)
        if data.shape != view.shape:
            raise WindowError(
                f"write shape {data.shape} != window shape {view.shape}")
        self.access_log.append(("write", w.array, w.bounds, ticks))
        self._observe("write", w)
        for i in range(view.shape[0]):
            row = np.array(data[i:i + 1], copy=True)
            if per_row is not None:
                per_row(row)
            view[i:i + 1] = row
        self._note_write(w.array, w.bounds)

    # -------------------------------------------------------- transactions --

    def serve_txn(self, txn: WindowTxn, ticks: int) -> WindowTxnReply:
        """Serve one queued data-plane transaction (owner side)."""
        w = txn.window
        if txn.op == "read":
            cacheable = self.cacheable(w.array)
            gen = self.generation(w.array)
            if (cacheable and txn.cached_generation is not None
                    and not self.changed_since(w.array, w.bounds,
                                               txn.cached_generation)):
                # Reader's block is current: validate, ship nothing.
                self.access_log.append(("read", w.array, w.bounds, ticks))
                self._observe("read", w)
                return WindowTxnReply(status="valid", generation=gen)
            data = self.read(w, ticks)
            return WindowTxnReply(status="data", data=data, generation=gen,
                                  cacheable=cacheable)
        if txn.op == "write":
            if (txn.require_unchanged_since is not None
                    and self.changed_since(w.array, w.bounds,
                                           txn.require_unchanged_since)):
                return WindowTxnReply(
                    status="conflict", generation=self.generation(w.array),
                    detail=f"overlapping write since generation "
                           f"{txn.require_unchanged_since}")
            self.write(w, txn.data, ticks)
            return WindowTxnReply(status="ok",
                                  generation=self.generation(w.array))
        raise WindowError(f"unknown window transaction op {txn.op!r}")
