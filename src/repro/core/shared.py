"""SHARED COMMON blocks and LOCK variables (section 7).

A SHARED COMMON block is "an ordinary Fortran COMMON block, but
allocated in shared memory so that all force members see the same
block"; blocks are allocated statically (at task initiation here, since
a task is the unit that declares them).  LOCK variables hold lock
values controlling CRITICAL regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..flex.memory import Allocation, HeapAllocator
from ..errors import RuntimeLibraryError
from .sizes import LOCK_BYTES

#: Declaration form: name -> (dtype, shape).  A shape of () declares a
#: scalar (a 0-d array, assigned via ``block.x[()] = v``).
CommonSpec = Dict[str, Tuple[str, Union[Tuple[int, ...], int]]]


class SharedCommonBlock:
    """A named COMMON block resident in (simulated) shared memory.

    Variables are numpy arrays; force members all hold references to the
    same object, so plain element assignment is the shared-variable
    communication of the paper.  Attribute access returns the array:

    ``blk.u[i] = 4.0``; scalars are 0-d arrays: ``blk.n[()] = 10``.
    """

    def __init__(self, name: str, spec: CommonSpec, heap: HeapAllocator):
        self._name = name
        self._vars: Dict[str, np.ndarray] = {}
        nbytes = 0
        for var, (dtype, shape) in spec.items():
            if isinstance(shape, int):
                shape = (shape,)
            arr = np.zeros(shape, dtype=dtype)
            self._vars[var] = arr
            nbytes += int(arr.nbytes)
        self._nbytes = nbytes
        self._alloc: Optional[Allocation] = heap.alloc(nbytes, tag="shared_common")
        self._heap = heap

    @property
    def block_name(self) -> str:
        return self._name

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def variables(self) -> List[str]:
        return list(self._vars)

    def __getattr__(self, item: str) -> np.ndarray:
        try:
            return self.__dict__["_vars"][item]
        except KeyError:
            raise AttributeError(
                f"SHARED COMMON /{self.__dict__.get('_name', '?')}/ has no "
                f"variable {item!r}") from None

    def __getitem__(self, item: str) -> np.ndarray:
        return self._vars[item]

    def release(self) -> None:
        if self._alloc is not None:
            self._heap.free(self._alloc)
            self._alloc = None


@dataclass
class LockState:
    """A LOCK variable: unlocked/locked plus a FIFO of waiting members."""

    name: str
    locked: bool = False
    owner_pid: Optional[int] = None
    waiters: List[object] = field(default_factory=list)  # KernelProcess FIFO
    alloc: Optional[Allocation] = None
    #: Contention statistics for the analysis module.
    acquisitions: int = 0
    contended_acquisitions: int = 0
    #: Virtual time the current holder acquired the lock (the
    #: observability layer derives lock-hold ticks from it).
    acquired_at: int = 0

    @classmethod
    def allocate(cls, name: str, heap: HeapAllocator) -> "LockState":
        return cls(name=name, alloc=heap.alloc(LOCK_BYTES, tag="lock"))

    def release_storage(self, heap: HeapAllocator) -> None:
        if self.alloc is not None:
            heap.free(self.alloc)
            self.alloc = None


class SharedState:
    """Per-task container of SHARED COMMON blocks and LOCK variables."""

    def __init__(self, heap: HeapAllocator):
        self._heap = heap
        self.commons: Dict[str, SharedCommonBlock] = {}
        self.locks: Dict[str, LockState] = {}

    def declare_common(self, name: str, spec: CommonSpec) -> SharedCommonBlock:
        if name in self.commons:
            raise RuntimeLibraryError(f"SHARED COMMON /{name}/ already declared")
        blk = SharedCommonBlock(name, spec, self._heap)
        self.commons[name] = blk
        return blk

    def common(self, name: str) -> SharedCommonBlock:
        try:
            return self.commons[name]
        except KeyError:
            raise RuntimeLibraryError(f"no SHARED COMMON /{name}/") from None

    def declare_lock(self, name: str) -> LockState:
        if name in self.locks:
            raise RuntimeLibraryError(f"LOCK {name} already declared")
        lk = LockState.allocate(name, self._heap)
        self.locks[name] = lk
        return lk

    def lock(self, name: str) -> LockState:
        if name not in self.locks:
            # Locks may be declared lazily on first use.
            return self.declare_lock(name)
        return self.locks[name]

    def release_all(self) -> None:
        """Free the shared-memory storage at task termination.

        The block/lock objects are kept (with storage released) so
        post-mortem analysis can still read final values and lock
        contention statistics.
        """
        for blk in self.commons.values():
            blk.release()
        for lk in self.locks.values():
            lk.release_storage(self._heap)
