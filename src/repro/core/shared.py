"""SHARED COMMON blocks and LOCK variables (section 7).

A SHARED COMMON block is "an ordinary Fortran COMMON block, but
allocated in shared memory so that all force members see the same
block"; blocks are allocated statically (at task initiation here, since
a task is the unit that declares them).  LOCK variables hold lock
values controlling CRITICAL regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..flex.memory import Allocation, HeapAllocator
from ..errors import RuntimeLibraryError
from .sizes import LOCK_BYTES

#: Declaration form: name -> (dtype, shape).  A shape of () declares a
#: scalar (a 0-d array, assigned via ``block.x[()] = v``).
CommonSpec = Dict[str, Tuple[str, Union[Tuple[int, ...], int]]]


def _index_bounds(key, shape, region, dims, exact):
    """Extents touched by indexing a (possibly viewed) tracked array.

    ``region`` holds one half-open ``(lo, hi)`` interval per dimension
    of the *root* array; ``dims`` maps each own dimension to its root
    dimension (``-1`` for a ``newaxis`` dimension); ``exact[rd]`` is
    False once a root dimension went through a non-unit-step slice or
    advanced index, after which it can never be narrowed again.  The
    result is conservative: it covers at least every touched element.

    Returns ``(bounds, view_dims, view_exact)`` where ``bounds`` doubles
    as the access extents and the resulting view's region.
    """
    if not isinstance(key, tuple):
        key = (key,)
    if any(k is Ellipsis for k in key):
        explicit = sum(1 for k in key if k is not Ellipsis and k is not None)
        expanded = []
        for k in key:
            if k is Ellipsis:
                expanded.extend([slice(None)] * (len(shape) - explicit))
            else:
                expanded.append(k)
        key = expanded

    bounds = list(region)
    new_exact = list(exact)
    kept = []        # root dim (or -1) per surviving view dimension
    own = 0
    for k in key:
        if k is None:            # np.newaxis: adds a dim, consumes none
            kept.append(-1)
            continue
        if own >= len(dims):
            break
        rd = dims[own]
        n = shape[own]
        own += 1
        if rd < 0:               # indexing into an inserted axis
            if not isinstance(k, (int, np.integer)):
                kept.append(-1)
            continue
        lo, hi = bounds[rd]
        if not exact[rd]:        # inexact: full interval, never narrow
            if not isinstance(k, (int, np.integer)):
                kept.append(rd)
            continue
        if isinstance(k, (int, np.integer)):
            i = int(k)
            if i < 0:
                i += n
            if 0 <= i < n:
                bounds[rd] = (lo + i, lo + i + 1)
            # dim collapses: interval stays pinned, not kept
        elif isinstance(k, slice):
            r = range(*k.indices(n))
            if len(r) == 0:
                bounds[rd] = (lo, lo)
            else:
                bounds[rd] = (lo + min(r), lo + max(r) + 1)
                if r.step != 1:
                    new_exact[rd] = False   # covering interval only
            kept.append(rd)
        else:
            # Advanced index (array/list/mask): covering interval is the
            # whole dim; the result is a copy, so the view attrs computed
            # here are discarded by the caller anyway.
            new_exact[rd] = False
            kept.append(rd)
    kept.extend(dims[own:])
    return tuple(bounds), tuple(kept), tuple(new_exact)


class TrackedArray(np.ndarray):
    """A SHARED COMMON variable with per-access race monitoring.

    Only constructed when race detection is on (blocks declared with no
    monitor hold plain ndarrays -- detection off costs nothing).  Every
    ``__getitem__``/``__setitem__`` reports its conservative element
    extents to the monitor; basic-indexing *views* stay tracked with
    their absolute position in the root array, so ``row = blk.u[i]``
    followed by ``row[j] = v`` reports the right extents.

    Known blind spots (documented, conservative in the "no false
    negative within supported usage" sense): in-place ufuncs on the
    whole array (``blk.u += 1``) and ``np.copyto`` bypass
    ``__setitem__``; advanced indexing returns untracked copies (which
    is semantically right -- writing a copy does not touch shared
    memory).
    """

    def __array_finalize__(self, obj):
        # Never inherit monitoring: ufunc temporaries, copies and
        # reductions must not report phantom accesses.  Tracking is
        # re-attached explicitly (block construction, __getitem__).
        self._pisces_monitor = None
        self._pisces_label = None
        self._pisces_region = None
        self._pisces_dims = None
        self._pisces_exact = None

    def __getitem__(self, key):
        result = super().__getitem__(key)
        mon = self._pisces_monitor
        if mon is None:
            return result
        bounds, vdims, vexact = _index_bounds(
            key, self.shape, self._pisces_region, self._pisces_dims,
            self._pisces_exact)
        mon(self._pisces_label, bounds, False)
        if (type(result) is TrackedArray
                and result.ndim == len(vdims)
                and result.base is not None):
            result._pisces_monitor = mon
            result._pisces_label = self._pisces_label
            result._pisces_region = bounds
            result._pisces_dims = vdims
            result._pisces_exact = vexact
        return result

    def __setitem__(self, key, value):
        mon = self._pisces_monitor
        if mon is not None:
            bounds, _, _ = _index_bounds(
                key, self.shape, self._pisces_region, self._pisces_dims,
                self._pisces_exact)
            mon(self._pisces_label, bounds, True)
        super().__setitem__(key, value)


class SharedCommonBlock:
    """A named COMMON block resident in (simulated) shared memory.

    Variables are numpy arrays; force members all hold references to the
    same object, so plain element assignment is the shared-variable
    communication of the paper.  Attribute access returns the array:

    ``blk.u[i] = 4.0``; scalars are 0-d arrays: ``blk.n[()] = 10``.
    """

    def __init__(self, name: str, spec: CommonSpec, heap: HeapAllocator,
                 monitor=None):
        self._name = name
        self._vars: Dict[str, np.ndarray] = {}
        nbytes = 0
        for var, (dtype, shape) in spec.items():
            if isinstance(shape, int):
                shape = (shape,)
            arr = np.zeros(shape, dtype=dtype)
            if monitor is not None:
                # Race detection on: wrap in a TrackedArray reporting
                # (label, extents, is_write) for every indexed access.
                arr = arr.view(TrackedArray)
                arr._pisces_monitor = monitor
                arr._pisces_label = (name, var)
                arr._pisces_region = tuple((0, n) for n in shape)
                arr._pisces_dims = tuple(range(len(shape)))
                arr._pisces_exact = (True,) * len(shape)
            self._vars[var] = arr
            nbytes += int(arr.nbytes)
        self._nbytes = nbytes
        self._alloc: Optional[Allocation] = heap.alloc(nbytes, tag="shared_common")
        self._heap = heap

    @property
    def block_name(self) -> str:
        return self._name

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def variables(self) -> List[str]:
        return list(self._vars)

    def __getattr__(self, item: str) -> np.ndarray:
        try:
            return self.__dict__["_vars"][item]
        except KeyError:
            raise AttributeError(
                f"SHARED COMMON /{self.__dict__.get('_name', '?')}/ has no "
                f"variable {item!r}") from None

    def __getitem__(self, item: str) -> np.ndarray:
        return self._vars[item]

    def release(self) -> None:
        if self._alloc is not None:
            self._heap.free(self._alloc)
            self._alloc = None

    #: Alias for the explicit-deallocation API (FREE COMMON): releasing
    #: the simulated shared-memory storage is the whole operation -- the
    #: numpy arrays stay readable for post-mortem analysis.
    free = release

    @property
    def freed(self) -> bool:
        return self._alloc is None

    def digest(self) -> Dict[str, int]:
        """Per-variable adler32 content digests (checkpoint validation:
        two VMs at the same schedule position must agree bit-for-bit on
        every SHARED COMMON byte)."""
        import zlib
        # adler32 reads the array buffer directly; no tobytes() copy.
        return {var: zlib.adler32(np.ascontiguousarray(arr).data)
                for var, arr in sorted(self._vars.items())}


@dataclass
class LockState:
    """A LOCK variable: unlocked/locked plus a FIFO of waiting members."""

    name: str
    locked: bool = False
    owner_pid: Optional[int] = None
    waiters: List[object] = field(default_factory=list)  # KernelProcess FIFO
    alloc: Optional[Allocation] = None
    #: Contention statistics for the analysis module.
    acquisitions: int = 0
    contended_acquisitions: int = 0
    #: Virtual time the current holder acquired the lock (the
    #: observability layer derives lock-hold ticks from it).
    acquired_at: int = 0

    @classmethod
    def allocate(cls, name: str, heap: HeapAllocator) -> "LockState":
        return cls(name=name, alloc=heap.alloc(LOCK_BYTES, tag="lock"))

    def release_storage(self, heap: HeapAllocator) -> None:
        if self.alloc is not None:
            heap.free(self.alloc)
            self.alloc = None


class SharedState:
    """Per-task container of SHARED COMMON blocks and LOCK variables."""

    def __init__(self, heap: HeapAllocator, monitor=None):
        self._heap = heap
        #: Access monitor threaded into every declared block when race
        #: detection is on (None otherwise -- plain ndarrays, no cost).
        self.monitor = monitor
        self.commons: Dict[str, SharedCommonBlock] = {}
        self.locks: Dict[str, LockState] = {}
        #: Blocks explicitly freed before task exit (kept for
        #: post-mortem reads; their storage is already released).
        self.freed_commons: List[SharedCommonBlock] = []

    def declare_common(self, name: str, spec: CommonSpec) -> SharedCommonBlock:
        if name in self.commons:
            raise RuntimeLibraryError(f"SHARED COMMON /{name}/ already declared")
        blk = SharedCommonBlock(name, spec, self._heap, monitor=self.monitor)
        self.commons[name] = blk
        return blk

    def free_common(self, name: str) -> SharedCommonBlock:
        """Explicitly deallocate a block before task exit (FREE COMMON).

        The name becomes declarable again; the old block object is kept
        (storage released) so final values stay readable.
        """
        try:
            blk = self.commons.pop(name)
        except KeyError:
            raise RuntimeLibraryError(f"no SHARED COMMON /{name}/") from None
        blk.free()
        self.freed_commons.append(blk)
        return blk

    def common(self, name: str) -> SharedCommonBlock:
        try:
            return self.commons[name]
        except KeyError:
            raise RuntimeLibraryError(f"no SHARED COMMON /{name}/") from None

    def declare_lock(self, name: str) -> LockState:
        if name in self.locks:
            raise RuntimeLibraryError(f"LOCK {name} already declared")
        lk = LockState.allocate(name, self._heap)
        self.locks[name] = lk
        return lk

    def lock(self, name: str) -> LockState:
        if name not in self.locks:
            # Locks may be declared lazily on first use.
            return self.declare_lock(name)
        return self.locks[name]

    def snapshot(self, owner_ordinal=None) -> dict:
        """Digestable state of every block and lock this task owns.

        ``owner_ordinal`` maps a lock's ``owner_pid`` (process-global,
        unstable across hosts) to its run-stable spawn ordinal; waiters
        are counted, not named -- their identities are pinned by the
        process snapshots.
        """
        commons = {name: blk.digest()
                   for name, blk in sorted(self.commons.items())}
        locks = {}
        for name, lk in sorted(self.locks.items()):
            owner = lk.owner_pid
            if owner is not None and owner_ordinal is not None:
                owner = owner_ordinal(owner)
            locks[name] = [bool(lk.locked), owner, len(lk.waiters),
                           int(lk.acquisitions)]
        return {"commons": commons, "locks": locks,
                "freed": sorted(b.block_name for b in self.freed_commons)}

    def release_all(self) -> None:
        """Free the shared-memory storage at task termination.

        The block/lock objects are kept (with storage released) so
        post-mortem analysis can still read final values and lock
        contention statistics.
        """
        for blk in self.commons.values():
            blk.release()
        for lk in self.locks.values():
            lk.release_storage(self._heap)
