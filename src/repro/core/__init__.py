"""PISCES 2 run-time library: the paper's primary contribution."""

from .accept import ALL_RECEIVED, AcceptResult
from .cluster import ClusterRuntime, Slot
from .controllers import FileController, TaskController, UserController
from .forces import Force, ForceContext
from .messages import InQueue, Message
from .shared import LockState, SharedCommonBlock
from .task import (
    GLOBAL_REGISTRY,
    Task,
    TaskContext,
    TaskRegistry,
    TaskType,
    tasktype,
)
from .taskid import (
    ANY,
    Broadcast,
    Cluster,
    OTHER,
    PARENT,
    SAME,
    SELF,
    SENDER,
    TContr,
    TaskId,
    USER,
    USER_TERMINAL_ID,
)
from .tracing import TraceEvent, TraceEventType, Tracer
from .vm import PiscesVM, RunResult, RunStats
from .windows import (
    Window,
    WindowCache,
    WindowTxn,
    WindowTxnReply,
    make_window,
)

__all__ = [
    "ALL_RECEIVED",
    "ANY",
    "AcceptResult",
    "Broadcast",
    "Cluster",
    "ClusterRuntime",
    "FileController",
    "Force",
    "ForceContext",
    "GLOBAL_REGISTRY",
    "InQueue",
    "LockState",
    "Message",
    "OTHER",
    "PARENT",
    "PiscesVM",
    "RunResult",
    "RunStats",
    "SAME",
    "SELF",
    "SENDER",
    "SharedCommonBlock",
    "Slot",
    "TContr",
    "Task",
    "TaskContext",
    "TaskController",
    "TaskId",
    "TaskRegistry",
    "TaskType",
    "TraceEvent",
    "TraceEventType",
    "Tracer",
    "USER",
    "USER_TERMINAL_ID",
    "UserController",
    "Window",
    "WindowCache",
    "WindowTxn",
    "WindowTxnReply",
    "make_window",
    "tasktype",
]
