"""Taskids: first-class task identities.

Section 6: "Every task is given a unique taskid when it is initiated.
The taskid consists of <cluster number, slot number, unique number>
where the unique number distinguishes tasks that have run at different
times in the same slot."  Taskids are data values -- storable in
variables and arrays, passable in messages and parameter lists.
"""

from __future__ import annotations

import enum
from typing import NamedTuple, Union


class TaskId(NamedTuple):
    """<cluster number, slot number, unique number>."""

    cluster: int
    slot: int
    unique: int

    def __str__(self) -> str:
        return f"{self.cluster}.{self.slot}.{self.unique}"

    @classmethod
    def parse(cls, text: str) -> "TaskId":
        parts = text.split(".")
        if len(parts) != 3:
            raise ValueError(f"bad taskid text {text!r}")
        return cls(int(parts[0]), int(parts[1]), int(parts[2]))


#: Slot numbers reserved for controller tasks.  The operating system "is
#: represented as a set of 'controller' tasks that run in slots in the
#: clusters" (section 5); user slots are numbered from 1.
TASK_CONTROLLER_SLOT = 0
USER_CONTROLLER_SLOT = -1
FILE_CONTROLLER_SLOT = -2

#: The pseudo-taskid of the user at the terminal (destination USER).
USER_TERMINAL_ID = TaskId(0, 0, 0)


class Designator(enum.Enum):
    """Symbolic cluster designators for INITIATE (section 6)."""

    ANY = "ANY"        # run in a system-chosen cluster
    OTHER = "OTHER"    # run in another cluster, not this one
    SAME = "SAME"      # run in this cluster


ANY = Designator.ANY
OTHER = Designator.OTHER
SAME = Designator.SAME


class SendTarget(enum.Enum):
    """Symbolic destinations for SEND (section 6)."""

    PARENT = "PARENT"
    SELF = "SELF"
    SENDER = "SENDER"
    USER = "USER"


PARENT = SendTarget.PARENT
SELF = SendTarget.SELF
SENDER = SendTarget.SENDER
USER = SendTarget.USER


class Cluster(NamedTuple):
    """Explicit ``CLUSTER <number>`` designator for INITIATE."""

    number: int


class TContr(NamedTuple):
    """``TCONTR <cluster>`` destination: a cluster's task controller."""

    cluster: int


class Broadcast(NamedTuple):
    """``TO ALL [CLUSTER <number>]`` destination.

    ``cluster`` of None means all clusters.
    """

    cluster: Union[int, None] = None


#: Anything acceptable as a send destination.
Destination = Union[TaskId, SendTarget, TContr, Broadcast]
#: Anything acceptable as an INITIATE placement.
Placement = Union[Designator, Cluster, int]
