"""Parallel loop scheduling and parallel segments (section 7e, 7f).

PRESCHED: "in a force of N members, each member should take 1/N of the
loop iterations.  The Ith force member takes iterations I, N+I, 2*N+I,
etc."  (Cyclic/interleaved preschedule.)

SELFSCHED: "each force member takes the 'next' iteration when it
arrives at the loop.  After completing one iteration, a force member
takes the 'next' iteration of those remaining, etc., until all
iterations are complete."

PARSEG: parallel segments -- "The Ith force member executes the Ith,
N+I, 2*N+I, etc. statement sequences, just as for a PRESCHED DO loop."
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Iterator, List, Sequence, TYPE_CHECKING, Union

from ..mmos.process import co_preempt
from ..mmos.scheduler import Engine
from .sizes import COST_SELFSCHED_FETCH

if TYPE_CHECKING:  # pragma: no cover
    from .forces import Force, ForceContext


def _materialize(iterations: Union[int, range, Sequence]) -> Sequence:
    if isinstance(iterations, int):
        return range(iterations)
    return iterations


def presched(member: "ForceContext",
             iterations: Union[int, range, Sequence]) -> Iterator:
    """Prescheduled partition: member m of N takes m, m+N, m+2N, ...

    (0-based; the paper's statement is the same rule 1-based.)
    """
    seq = _materialize(iterations)
    n = member.force.size
    det = member.force.task.vm.race_detector
    if det is not None:
        det.on_presched_claim(member.member, len(seq), n)
    for i in range(member.member, len(seq), n):
        yield seq[i]


class SelfSchedCounter:
    """Shared "next iteration" counter for one SELFSCHED loop.

    All members executing the same (textual) loop share one counter; the
    force hands them out by per-member loop ordinal, which is well
    defined because every member executes the same program text.
    """

    def __init__(self, total: int):
        self.total = total
        self.next_index = 0
        #: member -> number of iterations it executed (load-balance stats).
        self.executed: dict[int, int] = {}

    def fetch(self, member_index: int) -> int:
        """Grab the next index; -1 when exhausted."""
        if self.next_index >= self.total:
            return -1
        i = self.next_index
        self.next_index += 1
        self.executed[member_index] = self.executed.get(member_index, 0) + 1
        return i


def selfsched(engine: Engine, member: "ForceContext",
              iterations: Union[int, range, Sequence]) -> Iterator:
    """Self-scheduled loop: members dynamically grab the next iteration.

    Each fetch charges :data:`~repro.core.sizes.COST_SELFSCHED_FETCH`
    ticks (the shared-counter critical section); the engine's one-at-a-
    time admission makes the counter update atomic, as the run-time
    library's lock would on the real machine.
    """
    seq = _materialize(iterations)
    counter = member.force.selfsched_counter(member, len(seq))
    vm = member.force.task.vm
    while True:
        engine.charge(COST_SELFSCHED_FETCH)
        engine.preempt(0)
        i = counter.fetch(member.member)
        det = vm.race_detector
        if det is not None:
            # The shared counter is a read-modify-write chain: each
            # fetch is ordered after every earlier fetch (the run-time
            # library's internal lock), which is exactly what makes
            # "my claimed iterations are mine alone" sound.
            det.on_selfsched_fetch(counter, i, member.member)
        if i < 0:
            return
        sh = vm.sched_hook
        if sh is not None:
            sh.on_selfsched(member.member, i)
        yield seq[i]


def selfsched_do(engine: Engine, member: "ForceContext",
                 iterations: Union[int, range, Sequence],
                 body: Callable[[Any], Any]):
    """SELFSCHED as a KernelOp generator: run ``body(item)`` for each
    dynamically claimed iteration; returns this member's results in
    claim order.

    This is the form coroutine members use (``yield from
    m.selfsched_do(n, body)``) -- a Python ``for`` over the
    :func:`selfsched` iterator cannot carry the fetch's KernelOps out
    of the body.  ``body`` may be a generator function when an
    iteration needs to suspend.  Per fetch the op stream is identical
    to :func:`selfsched`: one counter charge and one preemption point.
    """
    seq = _materialize(iterations)
    counter = member.force.selfsched_counter(member, len(seq))
    vm = member.force.task.vm
    body_is_gen = inspect.isgeneratorfunction(body)
    out: List[Any] = []
    while True:
        engine.charge(COST_SELFSCHED_FETCH)
        yield co_preempt(0)
        i = counter.fetch(member.member)
        det = vm.race_detector
        if det is not None:
            det.on_selfsched_fetch(counter, i, member.member)
        if i < 0:
            return out
        sh = vm.sched_hook
        if sh is not None:
            sh.on_selfsched(member.member, i)
        if body_is_gen:
            out.append((yield from body(seq[i])))
        else:
            out.append(body(seq[i]))


def parseg(member: "ForceContext",
           segments: Sequence[Callable[[], Any]]):
    """PARSEG: run this member's share of the segments; returns their
    results in segment order (for this member's segments only).

    A KernelOp generator so that segments written as generator
    functions can suspend; plain segments run synchronously, making
    the classic all-plain case yield no ops at all.
    """
    n = member.force.size
    out: List[Any] = []
    for i in range(member.member, len(segments), n):
        seg = segments[i]
        if inspect.isgeneratorfunction(seg):
            out.append((yield from seg()))
        else:
            out.append(seg())
    return out
