"""Struct sizes and run-time call costs.

The section-13 storage measurements are *measured*, not asserted: the
run-time library allocates its shared-memory structures with these
C-struct-like sizes, chosen to be plausible for a 32-bit machine of the
FLEX/32 era (NS32032).  The paper gives the layout (section 11):

* a system table "with entries for each cluster and each slot within
  each cluster", each running task represented by a record holding task
  state, in-queue pointers, free-space lists and trace flags;
* a message area kept "as a heap with explicit allocation/deallocation";
  messages are "a header and a list of packets containing the arguments";
* a statically-allocated SHARED COMMON area.

Tick costs are arbitrary units; only relative magnitudes matter for the
shape of the benchmark results (process creation >> send >> lock).
"""

from __future__ import annotations

from typing import Any

import numpy as np

# ------------------------------------------------------------- sizes ------

#: A taskid is <cluster number, slot number, unique number> (section 6).
TASKID_BYTES = 12
#: A window value holds the owner taskid, the array address, and a
#: descriptor for the subarray (section 8): 12 + 4 + 16.
WINDOW_BYTES = 32

#: Message header: sender taskid, type code, packet-list pointer,
#: arrival link, timestamp, argument count.
MSG_HEADER_BYTES = 48
#: Each argument packet carries up to this many payload bytes.
PACKET_PAYLOAD_BYTES = 64
#: Per-packet link/size overhead.
PACKET_HEADER_BYTES = 8

#: Per-cluster entry in the system table.
CLUSTER_ENTRY_BYTES = 64
#: Per-slot entry (status word, links).
SLOT_ENTRY_BYTES = 32
#: Task state record: state info, in-queue pointers, free-space list
#: heads, trace flags (section 11 item 1).
TASK_RECORD_BYTES = 96

#: Resident size of the PISCES run-time system per PE.  18 KB of code
#: plus 6 KB of static data = 24 KB, i.e. 2.34% of a 1 MB local memory,
#: matching "less than 2.5% of each PE's local memory".
PISCES_SYSTEM_CODE_BYTES = 18 * 1024
PISCES_SYSTEM_DATA_BYTES = 6 * 1024
#: The MMOS kernel itself (not counted as PISCES overhead).
MMOS_KERNEL_BYTES = 64 * 1024
#: Fallback size for a tasktype whose source cannot be inspected.
DEFAULT_TASKTYPE_CODE_BYTES = 2 * 1024

#: A lock variable.
LOCK_BYTES = 4

# ------------------------------------------------------------- costs ------

COST_SEND = 30              # run-time work to post a message
COST_PER_PACKET = 2         # copying each argument packet
COST_ACCEPT = 15            # scan/accept bookkeeping
COST_HANDLER_DISPATCH = 10  # invoking a HANDLER subroutine
COST_INITIATE_REQUEST = 25  # sending the initiate request to a controller
COST_CONTROLLER_INITIATE = 150   # controller creating the task
COST_TASK_TERMINATE = 60
COST_FORCESPLIT_BASE = 100
COST_FORCESPLIT_PER_MEMBER = 50
COST_BARRIER = 10
COST_LOCK = 5
COST_UNLOCK = 5
COST_SELFSCHED_FETCH = 8    # grabbing the "next" iteration index
COST_WINDOW_REQUEST = 40
COST_WINDOW_PER_BYTE_SHIFT = 7   # 1 tick per 128 bytes moved (memory
                                 # path; disks are ~8x slower per byte)

#: Message transit latency, in ticks.
MSG_LATENCY_INTRA_CLUSTER = 10
MSG_LATENCY_INTER_CLUSTER = 40

#: System-provided ACCEPT timeout when no DELAY clause is given.
DEFAULT_ACCEPT_DELAY = 1_000_000


def window_transfer_cost(nbytes: int) -> int:
    """Ticks to move ``nbytes`` through a window read/write."""
    return COST_WINDOW_REQUEST + (nbytes >> COST_WINDOW_PER_BYTE_SHIFT)


def packed_size(value: Any) -> int:
    """Bytes a value occupies when packed into message argument packets.

    Mirrors a Fortran-era marshalling: numbers are 8 bytes, logicals 4,
    character strings their length (rounded up to 4), taskids and
    windows their struct sizes, arrays their raw bytes, sequences the sum
    of their elements.
    """
    from .taskid import TaskId          # local import to avoid a cycle
    from .windows import Window, WindowTxn, WindowTxnReply

    if isinstance(value, WindowTxn):
        # The window descriptor, op/generation words, and the payload.
        return (WINDOW_BYTES + 16
                + (int(value.data.nbytes) if value.data is not None else 0))
    if isinstance(value, WindowTxnReply):
        return 16 + (int(value.data.nbytes) if value.data is not None else 0)
    if isinstance(value, bool):
        return 4
    if isinstance(value, (int, float, np.integer, np.floating)):
        return 8
    if isinstance(value, complex):
        return 16
    if isinstance(value, str):
        return max(4, (len(value) + 3) & ~3)
    if isinstance(value, bytes):
        return max(4, (len(value) + 3) & ~3)
    if isinstance(value, TaskId):
        return TASKID_BYTES
    if isinstance(value, Window):
        return WINDOW_BYTES
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (list, tuple)):
        return sum(packed_size(v) for v in value)
    if isinstance(value, dict):
        return sum(packed_size(k) + packed_size(v) for k, v in value.items())
    if value is None:
        return 4
    # Anything else: approximate by its repr length (keeps accounting total).
    return max(4, (len(repr(value)) + 3) & ~3)


def message_bytes(args: tuple) -> tuple[int, int]:
    """(total bytes, packet count) a message with ``args`` occupies.

    The header is one allocation; the arguments are split into packets
    of :data:`PACKET_PAYLOAD_BYTES` each with a small packet header.
    """
    payload = sum(packed_size(a) for a in args)
    npackets = (payload + PACKET_PAYLOAD_BYTES - 1) // PACKET_PAYLOAD_BYTES
    total = MSG_HEADER_BYTES + npackets * (PACKET_HEADER_BYTES + PACKET_PAYLOAD_BYTES)
    return total, npackets


def slot_table_bytes(n_user_slots: int, n_controller_slots: int) -> int:
    """Static system-table bytes for one cluster."""
    n = n_user_slots + n_controller_slots
    return CLUSTER_ENTRY_BYTES + n * (SLOT_ENTRY_BYTES + TASK_RECORD_BYTES)
