"""Controller tasks: the PISCES operating system (section 5).

"The operating system is represented as a set of 'controller' tasks
that run in slots in the clusters":

* **task controllers** -- one per cluster; initiate, terminate and
  monitor user tasks in their cluster;
* **user controllers** -- control communication with user terminals
  directly accessible from their cluster;
* **file controllers** -- control access to files on disks directly
  accessible from their cluster (hypothetical on the diskless NASA
  FLEX; here they front the simulated file store).

Controllers are static daemon processes created at boot; user tasks are
dynamic.  All communication with controllers uses the same asynchronous
message mechanism as user-to-user traffic.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

import numpy as np

from ..errors import UnknownTask, WindowError
from ..mmos.process import KernelProcess, co_block, co_preempt
from .cluster import ClusterRuntime, PendingInitiate
from .messages import InQueue, Message, release_message
from .sizes import COST_CONTROLLER_INITIATE
from .taskid import (
    FILE_CONTROLLER_SLOT,
    TASK_CONTROLLER_SLOT,
    TaskId,
    USER_CONTROLLER_SLOT,
)
from .tracing import TraceEvent, TraceEventType
from .windows import ArrayStore, Window, make_window

if TYPE_CHECKING:  # pragma: no cover
    from .vm import PiscesVM

#: System message types (the leading @ keeps them out of user namespaces).
MSG_INITIATE = "@INITIATE"
MSG_TERMINATED = "@TERMINATED"
MSG_KILL = "@KILL"
MSG_FILE_WINDOW = "@FWINDOW"
MSG_FILE_WINDOW_REPLY = "@FWINDOW_R"
#: Failure notification delivered to a dead task's PARENT.  No ``@``
#: prefix: user tasks ACCEPT it like any other message type
#: (``ctx.accept("TASK_DIED")`` -> args ``(taskid, reason)``).
MSG_TASK_DIED = "TASK_DIED"


class Controller:
    """Base: a daemon process with a taskid and an in-queue."""

    slot_number: int = TASK_CONTROLLER_SLOT
    kind = "controller"

    def __init__(self, vm: "PiscesVM", cluster: ClusterRuntime):
        self.vm = vm
        self.cluster = cluster
        self.tid = TaskId(cluster.number, self.slot_number, 1)
        self.inq = InQueue(self.tid)
        self.inq.metrics = vm.metrics
        self.inq.metric_labels = {"cluster": cluster.number,
                                  "kind": self.kind}
        self.process: Optional[KernelProcess] = None

    def start(self) -> None:
        self.process = self.vm.engine.spawn(
            f"{self.kind}@{self.tid}", self.cluster.primary_pe,
            self._serve_forever, daemon=True)

    # ---------------------------------------------------------- main loop --

    def _serve_forever(self):
        # A coroutine body: controllers suspend at the KernelOp seam on
        # every core, so a booted VM runs its whole operating system
        # with zero controller threads on the coop core.
        while True:
            msg = yield from self._next_message()
            try:
                self.handle(msg)
            finally:
                release_message(self.vm.machine.shared, msg)

    def _next_message(self):
        eng = self.vm.engine
        while True:
            yield co_preempt(0)
            now = eng.now()
            # The queue is in (arrival_time, seq) order, so the head is
            # both the first deliverable message and the earliest
            # possible deadline -- no per-poll copy of the queue.
            m = self.inq.peek()
            if m is not None and m.arrival_time <= now:
                self.inq.remove(m)
                det = self.vm.race_detector
                if det is not None:
                    # Controller pop is the accept side of the HB edge
                    # for INITIATE and other control messages, so
                    # initiate -> task start is ordered through the
                    # controller's subsequent spawn.
                    det.on_accept(m)
                return m
            yield co_block(f"{self.kind}-wait",
                           deadline=None if m is None else m.arrival_time)

    def handle(self, msg: Message) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class TaskController(Controller):
    """Initiates, terminates and monitors user tasks in its cluster
    (section 5 kind 1)."""

    slot_number = TASK_CONTROLLER_SLOT
    kind = "tcontr"

    def handle(self, msg: Message) -> None:
        if msg.mtype == MSG_INITIATE:
            req_id, tasktype_name, args, parent, supervision, restarts = \
                msg.args
            self._initiate(req_id, tasktype_name, tuple(args), parent,
                           supervision, restarts)
        elif msg.mtype == MSG_TERMINATED:
            tid, died, reason = msg.args
            self._task_terminated(tid, died, reason)
        elif msg.mtype == MSG_KILL:
            (tid,) = msg.args
            self.vm.kill_task(tid)
        # Unknown types addressed to a controller are ignored (dropped).

    def _initiate(self, req_id: int, tasktype_name: str,
                  args: Tuple[Any, ...], parent: TaskId,
                  supervision=None, restarts: int = 0) -> None:
        self.cluster.inflight_initiates = max(
            0, self.cluster.inflight_initiates - 1)
        slot = self.cluster.free_slot()
        if slot is None:
            # "If no slots are available in the cluster, the task
            # controller will hold the initiate request until another
            # task terminates."
            self.cluster.pending.append(PendingInitiate(
                tasktype=tasktype_name, args=args, parent=parent,
                requested_at=self.vm.engine.now(),
                supervision=supervision, restarts=restarts))
            self.vm.note_initiate_held(req_id)
            return
        self.vm.engine.charge(COST_CONTROLLER_INITIATE)
        self.vm.start_task_in_slot(self.cluster, slot, tasktype_name, args,
                                   parent, req_id=req_id,
                                   supervision=supervision, restarts=restarts)

    def _task_terminated(self, tid: TaskId, died: bool = False,
                         reason: str = "") -> None:
        # Normally ``tid`` is one of ours; after a PE crash the cleanup
        # is re-routed to a *surviving* controller, which frees the slot
        # in the failed cluster on its behalf.
        cluster = self.vm.clusters.get(tid.cluster, self.cluster)
        cluster.tasks_terminated += 1
        # Free the slot (terminating tasks leave that to us, so held
        # requests stay FIFO with respect to later arrivals).
        slot = cluster.slots[tid.slot - 1]
        if slot.task is not None and slot.task.tid == tid:
            slot.release()
        metrics = self.vm.metrics
        if metrics.enabled:
            metrics.gauge("slot_occupancy", cluster=cluster.number).set(
                cluster.n_slots - cluster.free_slot_count())
        # Pump held initiate requests into the freed slot (never into a
        # failed cluster: its requests were re-routed at crash time).
        while (not cluster.failed and cluster.pending
               and cluster.free_slot() is not None):
            req = cluster.pending.popleft()
            slot = cluster.free_slot()
            self.vm.engine.charge(COST_CONTROLLER_INITIATE)
            self.vm.start_task_in_slot(cluster, slot, req.tasktype,
                                       req.args, req.parent,
                                       supervision=req.supervision,
                                       restarts=req.restarts)
        if died:
            # Failure semantics: restart under a RESTART policy, else
            # notify the parent (and USER, under NOTIFY).
            self.vm.handle_task_death(tid, reason, origin=self)


class UserController(Controller):
    """Forwards messages addressed to USER to the terminal (section 5
    kind 2).  Every received message becomes a console line and an entry
    in ``vm.user_messages`` for programmatic inspection."""

    slot_number = USER_CONTROLLER_SLOT
    kind = "ucontr"

    def handle(self, msg: Message) -> None:
        text = ", ".join(repr(a) for a in msg.args)
        self.vm.kernel.write_terminal(
            f"TO USER from {msg.sender}: {msg.mtype}({text})")
        self.vm.user_messages.append(
            (msg.mtype, msg.args, msg.sender, msg.arrival_time))


class FileController(Controller):
    """Controls access to file-system arrays (section 5 kind 3, section 8).

    The "owner" of a file window is this controller; it serves window
    reads/writes out of the VM's file store, serializing overlapping
    requests (the engine's one-at-a-time admission makes each transfer
    atomic, which is exactly the management the paper asks of it).
    Window *creation* is also available by message (@FWINDOW), giving
    the asynchronous protocol of section 8, but the common path is the
    synchronous ``ctx.file_window``.
    """

    slot_number = FILE_CONTROLLER_SLOT
    kind = "fcontr"

    def __init__(self, vm: "PiscesVM", cluster: ClusterRuntime):
        super().__init__(vm, cluster)
        self.arrays = ArrayStore(self.tid)
        self.arrays.metrics = vm.metrics
        # One disk by default; vm.configure_file_disks() swaps in a
        # striped array (the PISCES 3 parallel-I/O direction).
        from .fileio import DiskArray
        self.disks = DiskArray(1)
        self.disks.metrics = vm.metrics
        #: Transfers still occupying the disks: (window, is_write,
        #: completion tick).  Used to serialize conflicting overlapping
        #: requests (section 8); pruned as they land.
        self._inflight: List[Tuple[Window, bool, int]] = []

    def export_file(self, name: str, array: np.ndarray,
                    cacheable: bool = True) -> None:
        self.arrays.export(name, array, cacheable=cacheable)

    def window_for(self, name: str, *, region=None,
                   rows=None, cols=None) -> Window:
        """A window on (a region of) a file-store array.

        The region is the keyword ``region=`` or the ``rows=``/``cols=``
        selectors."""
        base = self.arrays.get(name)
        return make_window(self.tid, name, base, region,
                           rows=rows, cols=cols)

    # -------------------------------------- overlapping-access contract --

    def conflicting_transfer(self, w: Window, write: bool,
                             now: int) -> Optional[int]:
        """Latest completion tick among in-flight transfers conflicting
        with ``w`` (overlap where either side writes), or None."""
        self._inflight = [e for e in self._inflight if e[2] > now]
        worst = None
        for other, other_write, done in self._inflight:
            if (write or other_write) and other.overlaps(w):
                if worst is None or done > worst:
                    worst = done
        return worst

    def note_transfer(self, w: Window, write: bool, done: int) -> None:
        if done > self.vm.engine.now():
            self._inflight.append((w, write, done))

    def handle(self, msg: Message) -> None:
        if msg.mtype == MSG_FILE_WINDOW:
            name, *sel = msg.args
            try:
                w = self.window_for(name, rows=sel[0] if sel else None,
                                    cols=sel[1] if len(sel) > 1 else None)
                self.vm.send_message(msg.sender, MSG_FILE_WINDOW_REPLY, (w,),
                                     origin=self)
            except WindowError as e:
                self.vm.send_message(msg.sender, MSG_FILE_WINDOW_REPLY,
                                     (str(e),), origin=self)
