"""Messages and in-queues.

Section 6/11: communication is asynchronous; messages are queued in an
in-queue for the receiver in order of arrival; the shared-memory message
area is a heap with explicit allocation (at send) and deallocation (at
accept).  A message consists of a header and a list of packets holding
the arguments; "whenever a task receives a message from another task,
the taskid of the sender is included as part of the message".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Tuple

from ..flex.memory import Allocation, HeapAllocator
from .sizes import MSG_HEADER_BYTES, PACKET_HEADER_BYTES, PACKET_PAYLOAD_BYTES, message_bytes
from .taskid import TaskId

_seq = itertools.count(1)


@dataclass
class Message:
    """One in-flight or queued message."""

    mtype: str
    args: Tuple[Any, ...]
    sender: TaskId
    receiver: TaskId
    send_time: int
    arrival_time: int
    seq: int = field(default_factory=lambda: next(_seq))
    #: Shared-memory extent backing this message (header + packets as
    #: one block, since packet count is fixed at send time).
    allocation: Optional[Allocation] = None
    #: Total bytes of the allocation (kept after free for statistics).
    nbytes: int = 0
    npackets: int = 0

    def key(self) -> Tuple[int, int]:
        """Queue ordering: arrival time, then global send sequence."""
        return (self.arrival_time, self.seq)

    def describe(self) -> str:
        return (f"{self.mtype}({len(self.args)} args, {self.nbytes}B) "
                f"from {self.sender} arr={self.arrival_time}")


def allocate_message(heap: HeapAllocator, mtype: str, args: Tuple[Any, ...],
                     sender: TaskId, receiver: TaskId,
                     send_time: int, arrival_time: int,
                     tag: str = "message") -> Message:
    """Build a message, claiming its bytes from the shared-memory heap.

    Raises :class:`~repro.errors.OutOfMemory` when the message area is
    exhausted -- the failure mode section 13 warns about when "large
    numbers of messages ... are sent and left waiting in a task's
    in-queue without being accepted".
    """
    nbytes, npackets = message_bytes(args)
    alloc = heap.alloc(nbytes, tag=tag)
    return Message(mtype=mtype, args=args, sender=sender, receiver=receiver,
                   send_time=send_time, arrival_time=arrival_time,
                   allocation=alloc, nbytes=nbytes, npackets=npackets)


def release_message(heap: HeapAllocator, msg: Message) -> None:
    """Return a message's bytes to the heap (done at accept/cleanup)."""
    if msg.allocation is not None:
        heap.free(msg.allocation)
        msg.allocation = None


class InQueue:
    """A task's in-queue: messages in arrival order.

    The receiver scans it with ACCEPT; messages not matching the accept
    specification stay queued (and keep their heap bytes) until a later
    ACCEPT names their type or the task terminates.
    """

    def __init__(self, owner: TaskId):
        self.owner = owner
        self._q: List[Message] = []
        self.total_received = 0
        #: Deepest the queue has ever been (cheap, always on).
        self.max_depth = 0
        #: Observability hook: a :class:`~repro.obs.metrics.MetricsRegistry`
        #: plus the label set identifying this queue (wired by the owner:
        #: Task / Controller construction).  None means unmetered.
        self.metrics = None
        self.metric_labels: dict = {}

    def __len__(self) -> int:
        return len(self._q)

    def enqueue(self, msg: Message) -> None:
        """Insert in (arrival_time, seq) order.

        Appends are the common case because dispatch times are
        non-decreasing; the sort key guards the rare same-time races.
        """
        key = msg.key()
        q = self._q
        i = len(q)
        while i > 0 and q[i - 1].key() > key:
            i -= 1
        q.insert(i, msg)
        self.total_received += 1
        depth = len(q)
        if depth > self.max_depth:
            self.max_depth = depth
        m = self.metrics
        if m is not None and m.enabled:
            m.histogram("inqueue_depth", **self.metric_labels).observe(depth)
            m.counter("inqueue_bytes", **self.metric_labels).inc(msg.nbytes)

    def first_matching(self, mtypes: Iterable[str],
                       not_after: Optional[int] = None) -> Optional[Message]:
        """Earliest queued message whose type is in ``mtypes``.

        ``not_after`` bounds the arrival time (a receiver at virtual
        time *t* only sees messages that have already arrived).
        """
        wanted = set(mtypes)
        for m in self._q:
            if not_after is not None and m.arrival_time > not_after:
                break
            if m.mtype in wanted:
                return m
        return None

    def earliest_arrival(self, mtypes: Iterable[str],
                         after: int) -> Optional[int]:
        """Arrival time of the first matching message later than ``after``."""
        wanted = set(mtypes)
        for m in self._q:
            if m.arrival_time > after and m.mtype in wanted:
                return m.arrival_time
        return None

    def remove(self, msg: Message) -> None:
        self._q.remove(msg)

    def remove_type(self, mtype: Optional[str] = None) -> List[Message]:
        """Drop all messages (of one type, or every type); returns them.

        Implements the monitor's DELETE MESSAGES operation; caller frees
        the heap bytes.
        """
        if mtype is None:
            dropped, self._q = self._q, []
        else:
            dropped = [m for m in self._q if m.mtype == mtype]
            self._q = [m for m in self._q if m.mtype != mtype]
        return dropped

    def messages(self) -> List[Message]:
        return list(self._q)

    def live_bytes(self) -> int:
        return sum(m.nbytes for m in self._q)

    def describe(self) -> str:
        if not self._q:
            return f"in-queue of {self.owner}: empty"
        lines = [f"in-queue of {self.owner}: {len(self._q)} messages, "
                 f"{self.live_bytes()} bytes"]
        for m in self._q:
            lines.append("  " + m.describe())
        return "\n".join(lines)
