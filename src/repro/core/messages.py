"""Messages and in-queues.

Section 6/11: communication is asynchronous; messages are queued in an
in-queue for the receiver in order of arrival; the shared-memory message
area is a heap with explicit allocation (at send) and deallocation (at
accept).  A message consists of a header and a list of packets holding
the arguments; "whenever a task receives a message from another task,
the taskid of the sender is included as part of the message".
"""

from __future__ import annotations

import itertools
import zlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from ..flex.memory import Allocation, HeapAllocator
from .sizes import MSG_HEADER_BYTES, PACKET_HEADER_BYTES, PACKET_PAYLOAD_BYTES, message_bytes
from .taskid import TaskId

_seq = itertools.count(1)


@dataclass(eq=False)
class Message:
    """One in-flight or queued message.

    Identity equality (``eq=False``): every message is a distinct heap
    extent with a globally unique ``seq``, and identity comparison keeps
    queue removal a pointer scan instead of field-wise comparison.
    """

    mtype: str
    args: Tuple[Any, ...]
    sender: TaskId
    receiver: TaskId
    send_time: int
    arrival_time: int
    seq: int = field(default_factory=lambda: next(_seq))
    #: Shared-memory extent backing this message (header + packets as
    #: one block, since packet count is fixed at send time).
    allocation: Optional[Allocation] = None
    #: Total bytes of the allocation (kept after free for statistics).
    nbytes: int = 0
    npackets: int = 0
    #: Payload integrity checksum (see :func:`payload_checksum`).  None
    #: on the normal path: the field is only populated by the fault
    #: injector so corrupted payloads are detectable at accept; the
    #: zero-fault cost is one ``is None`` test per accepted message.
    checksum: Optional[int] = None

    def key(self) -> Tuple[int, int]:
        """Queue ordering: arrival time, then global send sequence."""
        return (self.arrival_time, self.seq)

    def verify(self) -> bool:
        """True when no checksum is carried or the payload matches it."""
        if self.checksum is None:
            return True
        return payload_checksum(self.mtype, self.args) == self.checksum

    def describe(self) -> str:
        return (f"{self.mtype}({len(self.args)} args, {self.nbytes}B) "
                f"from {self.sender} arr={self.arrival_time}")


def _checksum_bytes(value: Any) -> bytes:
    """Stable byte rendering of one message argument for checksumming."""
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if hasattr(value, "tobytes"):    # numpy arrays and scalars
        try:
            import numpy as np
            return np.ascontiguousarray(value).tobytes()
        except Exception:
            pass
    return repr(value).encode("utf-8", "backslashreplace")


def payload_checksum(mtype: str, args: Tuple[Any, ...]) -> int:
    """Adler-32 over a stable rendering of ``(mtype, args)``.

    Cheap enough to compute per message while a fault plan is active,
    and order/type sensitive enough that the injector's payload
    mutations are always detected.
    """
    crc = zlib.adler32(mtype.encode("utf-8"))
    for a in args:
        crc = zlib.adler32(_checksum_bytes(a), crc)
    return crc & 0xFFFFFFFF


def allocate_message(heap: HeapAllocator, mtype: str, args: Tuple[Any, ...],
                     sender: TaskId, receiver: TaskId,
                     send_time: int, arrival_time: int,
                     tag: str = "message") -> Message:
    """Build a message, claiming its bytes from the shared-memory heap.

    Raises :class:`~repro.errors.OutOfMemory` when the message area is
    exhausted -- the failure mode section 13 warns about when "large
    numbers of messages ... are sent and left waiting in a task's
    in-queue without being accepted".
    """
    nbytes, npackets = message_bytes(args)
    alloc = heap.alloc(nbytes, tag=tag)
    return Message(mtype=mtype, args=args, sender=sender, receiver=receiver,
                   send_time=send_time, arrival_time=arrival_time,
                   allocation=alloc, nbytes=nbytes, npackets=npackets)


def release_message(heap: HeapAllocator, msg: Message) -> None:
    """Return a message's bytes to the heap (done at accept/cleanup)."""
    if msg.allocation is not None:
        heap.free(msg.allocation)
        msg.allocation = None


class InQueue:
    """A task's in-queue: messages in arrival order, indexed by type.

    The receiver scans it with ACCEPT; messages not matching the accept
    specification stay queued (and keep their heap bytes) until a later
    ACCEPT names their type or the task terminates.

    Two structures are kept in lockstep:

    * ``_q`` -- every queued message in global ``(arrival_time, seq)``
      order (the paper's arrival-ordered in-queue, used by displays and
      the monitor's queue dump);
    * ``_by_type`` -- one deque per message type, each in the same key
      order, so :meth:`first_matching` / :meth:`earliest_arrival` peek
      at per-type heads instead of scanning the unmatched backlog (the
      section-13 "messages left waiting in the in-queue" scenario made
      the scan quadratic).

    ``live_bytes`` is maintained incrementally at enqueue/remove.
    """

    def __init__(self, owner: TaskId):
        self.owner = owner
        self._q: List[Message] = []
        self._by_type: Dict[str, Deque[Message]] = {}
        self._live_bytes = 0
        self.total_received = 0
        #: Deepest the queue has ever been (cheap, always on).
        self.max_depth = 0
        #: Observability hook: a :class:`~repro.obs.metrics.MetricsRegistry`
        #: plus the label set identifying this queue (wired by the owner:
        #: Task / Controller construction).  None means unmetered.
        self.metrics = None
        self.metric_labels: dict = {}

    def __len__(self) -> int:
        return len(self._q)

    def enqueue(self, msg: Message) -> None:
        """Insert in (arrival_time, seq) order.

        Appends are the common case because dispatch times are
        non-decreasing; the sort key guards the rare same-time races.
        """
        key = msg.key()
        q = self._q
        i = len(q)
        while i > 0 and q[i - 1].key() > key:
            i -= 1
        q.insert(i, msg)
        d = self._by_type.get(msg.mtype)
        if d is None:
            d = self._by_type[msg.mtype] = deque()
        if not d or d[-1].key() <= key:
            d.append(msg)
        else:
            j = len(d)
            while j > 0 and d[j - 1].key() > key:
                j -= 1
            d.insert(j, msg)
        self._live_bytes += msg.nbytes
        self.total_received += 1
        depth = len(q)
        if depth > self.max_depth:
            self.max_depth = depth
        m = self.metrics
        if m is not None and m.enabled:
            m.histogram("inqueue_depth", **self.metric_labels).observe(depth)
            m.counter("inqueue_bytes", **self.metric_labels).inc(msg.nbytes)

    def peek(self) -> Optional[Message]:
        """Earliest queued message of any type (None when empty)."""
        return self._q[0] if self._q else None

    def first_matching(self, mtypes: Iterable[str],
                       not_after: Optional[int] = None) -> Optional[Message]:
        """Earliest queued message whose type is in ``mtypes``.

        ``not_after`` bounds the arrival time (a receiver at virtual
        time *t* only sees messages that have already arrived).  Cost is
        O(len(mtypes)): each per-type deque is in key order, so only its
        head can be the answer.
        """
        best = None
        best_key = None
        for t in mtypes:
            d = self._by_type.get(t)
            if not d:
                continue
            m = d[0]
            if not_after is not None and m.arrival_time > not_after:
                continue
            k = m.key()
            if best_key is None or k < best_key:
                best, best_key = m, k
        return best

    def earliest_arrival(self, mtypes: Iterable[str],
                         after: int) -> Optional[int]:
        """Arrival time of the first matching message later than ``after``."""
        best = None
        for t in mtypes:
            d = self._by_type.get(t)
            if not d:
                continue
            # In-flight matches sit behind any already-arrived backlog
            # of the same type; key order makes the first one past
            # ``after`` the earliest for this type.
            for m in d:
                if m.arrival_time > after:
                    if best is None or m.arrival_time < best:
                        best = m.arrival_time
                    break
        return best

    def remove(self, msg: Message) -> None:
        self._q.remove(msg)
        d = self._by_type[msg.mtype]
        if d[0] is msg:
            d.popleft()
        else:
            d.remove(msg)
        if not d:
            del self._by_type[msg.mtype]
        self._live_bytes -= msg.nbytes

    def remove_type(self, mtype: Optional[str] = None) -> List[Message]:
        """Drop all messages (of one type, or every type); returns them.

        Implements the monitor's DELETE MESSAGES operation; caller frees
        the heap bytes.
        """
        if mtype is None:
            dropped, self._q = self._q, []
            self._by_type.clear()
            self._live_bytes = 0
            return dropped
        d = self._by_type.pop(mtype, None)
        if not d:
            return []
        dropped = list(d)    # already in queue (key) order
        self._q = [m for m in self._q if m.mtype != mtype]
        for m in dropped:
            self._live_bytes -= m.nbytes
        return dropped

    def messages(self) -> List[Message]:
        return list(self._q)

    def live_bytes(self) -> int:
        return self._live_bytes

    def describe(self) -> str:
        if not self._q:
            return f"in-queue of {self.owner}: empty"
        lines = [f"in-queue of {self.owner}: {len(self._q)} messages, "
                 f"{self.live_bytes()} bytes"]
        for m in self._q:
            lines.append("  " + m.describe())
        return "\n".join(lines)
