"""Parallel file I/O: simulated disks and striping.

Section 1 announces the direction: "A PISCES 3 environment is planned
for a hypercube machine ... The PISCES 3 system will emphasize parallel
I/O and data base access."  Section 8 already gives windows the role of
"a uniform access method for large arrays on secondary storage", served
by the file controller.  This module supplies the storage substrate:

* :class:`SimDisk` -- one disk with a seek + per-byte transfer cost
  model and a virtual-time busy interval (requests to one disk
  serialize; requests to different disks overlap);
* :class:`DiskArray` -- a set of disks over which a file's byte stream
  is striped round-robin in ``stripe_unit`` chunks, so one large window
  read engages every disk at once.

The file controller charges a transfer's completion time by blocking
the requesting task until ``DiskArray.transfer`` says the last chunk
has landed -- which is what makes striped I/O measurably faster in
elapsed virtual time (ablation A7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..errors import WindowError

#: Fixed positioning cost per request per disk touched.
DISK_SEEK_TICKS = 120
#: Transfer rate: one tick per this many bytes.
DISK_BYTES_PER_TICK = 16
#: Default stripe chunk.
DEFAULT_STRIPE_UNIT = 4096


@dataclass
class SimDisk:
    """One simulated disk: a busy interval in virtual time."""

    number: int
    busy_until: int = 0
    requests: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    busy_ticks: int = 0

    def transfer(self, start: int, nbytes: int, write: bool) -> int:
        """Serve ``nbytes`` beginning no earlier than ``start``; returns
        the completion time.  Back-to-back requests queue on the disk."""
        begin = max(start, self.busy_until)
        dur = DISK_SEEK_TICKS + (nbytes + DISK_BYTES_PER_TICK - 1) // DISK_BYTES_PER_TICK
        end = begin + dur
        self.busy_until = end
        self.requests += 1
        self.busy_ticks += dur
        if write:
            self.bytes_written += nbytes
        else:
            self.bytes_read += nbytes
        return end


class DiskArray:
    """Disks behind one file controller, with round-robin striping."""

    def __init__(self, n_disks: int = 1,
                 stripe_unit: int = DEFAULT_STRIPE_UNIT):
        if n_disks < 1:
            raise WindowError("a file controller needs at least one disk")
        if stripe_unit < 1:
            raise WindowError("stripe unit must be positive")
        self.disks = [SimDisk(i) for i in range(n_disks)]
        self.stripe_unit = stripe_unit
        #: Optional MetricsRegistry; wired by the owning file controller.
        self.metrics = None

    @property
    def n_disks(self) -> int:
        return len(self.disks)

    def stripe_spread(self, offset: int, nbytes: int) -> Dict[int, int]:
        """Bytes each disk serves for a transfer of ``nbytes`` starting
        at file offset ``offset`` (chunks assigned round-robin)."""
        out: Dict[int, int] = {}
        pos = offset
        remaining = nbytes
        while remaining > 0:
            chunk_index = pos // self.stripe_unit
            disk = chunk_index % self.n_disks
            in_chunk = self.stripe_unit - (pos % self.stripe_unit)
            take = min(in_chunk, remaining)
            out[disk] = out.get(disk, 0) + take
            pos += take
            remaining -= take
        return out

    def transfer(self, start: int, offset: int, nbytes: int,
                 write: bool) -> int:
        """Issue one striped transfer; returns the completion time (the
        slowest participating disk)."""
        if nbytes <= 0:
            return start
        spread = self.stripe_spread(offset, nbytes)
        end = max(self.disks[d].transfer(start, b, write)
                  for d, b in spread.items())
        m = self.metrics
        if m is not None and m.enabled:
            op = "write" if write else "read"
            m.counter("disk_transfers", op=op).inc()
            m.counter("disk_bytes", op=op).inc(nbytes)
            m.histogram("disk_transfer_ticks", op=op).observe(end - start)
            m.gauge("disks_engaged").set(len(spread))
        return end

    # ------------------------------------------------------------ stats --

    def stats_rows(self) -> List[Tuple[int, int, int, int, int]]:
        """(disk, requests, bytes read, bytes written, busy ticks)."""
        return [(d.number, d.requests, d.bytes_read, d.bytes_written,
                 d.busy_ticks) for d in self.disks]

    def total_bytes(self) -> int:
        return sum(d.bytes_read + d.bytes_written for d in self.disks)

    def describe(self) -> str:
        lines = [f"disk array: {self.n_disks} disks, stripe unit "
                 f"{self.stripe_unit} bytes"]
        for n, req, br, bw, busy in self.stats_rows():
            lines.append(f"  disk {n}: {req} requests, {br}B read, "
                         f"{bw}B written, busy {busy} ticks")
        return "\n".join(lines)
