"""Clusters and slots (section 5).

A cluster is "an abstract group of processing resources"; on the FLEX
the basic mapping is one primary PE plus optional secondary PEs for
force members.  Each cluster provides a finite set of slots in which
tasks run; when all slots are full an initiate request waits until a
slot is free.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, List, Optional, TYPE_CHECKING, Tuple

from ..flex.memory import Allocation
from .taskid import TaskId

if TYPE_CHECKING:  # pragma: no cover
    from .task import Task


@dataclass
class Slot:
    """One task slot: a place a user task can run in a cluster."""

    cluster: int
    number: int
    task: Optional["Task"] = None
    #: Next unique number for a task initiated into this slot; the
    #: unique number "distinguishes tasks that have run at different
    #: times in the same slot" (section 6).
    next_unique: int = 1

    @property
    def free(self) -> bool:
        return self.task is None

    def claim(self) -> TaskId:
        """Reserve the slot and mint the taskid for its next occupant."""
        if not self.free:
            raise RuntimeError(f"slot {self.cluster}.{self.number} is occupied")
        tid = TaskId(self.cluster, self.number, self.next_unique)
        self.next_unique += 1
        return tid

    def release(self) -> None:
        self.task = None


@dataclass
class PendingInitiate:
    """An initiate request held by the task controller until a slot frees."""

    tasktype: str
    args: Tuple[Any, ...]
    parent: TaskId
    requested_at: int
    #: Supervision policy riding along with the request (None: default).
    supervision: Any = None
    #: How many times this task has already been restarted.
    restarts: int = 0


class ClusterRuntime:
    """Run-time state of one cluster."""

    def __init__(self, number: int, primary_pe: int,
                 secondary_pes: Tuple[int, ...], n_slots: int):
        self.number = number
        self.primary_pe = primary_pe
        self.secondary_pes = tuple(secondary_pes)
        self.slots: List[Slot] = [Slot(number, i) for i in range(1, n_slots + 1)]
        #: FIFO of initiate requests waiting for a free slot (section 6:
        #: "the task controller will hold the initiate request until
        #: another task terminates").
        self.pending: Deque[PendingInitiate] = deque()
        #: Shared-memory extent of this cluster's system-table section.
        self.table_alloc: Optional[Allocation] = None
        #: Counters for DISPLAY PE LOADING and the benchmarks.
        self.tasks_initiated = 0
        self.tasks_terminated = 0
        #: Initiate requests sent to this cluster's controller but not
        #: yet processed; the ANY/OTHER placement policy counts these so
        #: a burst of initiates spreads instead of dog-piling.
        self.inflight_initiates = 0
        #: Set when the cluster's primary PE has crashed (fault
        #: injection): its controller is dead, its slots unusable, and
        #: placement policies skip it.
        self.failed = False

    # ------------------------------------------------------------------

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def force_size(self) -> int:
        """Members of a force split in this cluster: the primary member
        plus one per secondary PE (section 9; example item e: no
        secondary PEs means FORCESPLIT causes no parallel splitting)."""
        return 1 + len(self.secondary_pes)

    def free_slot(self) -> Optional[Slot]:
        for s in self.slots:
            if s.free:
                return s
        return None

    def free_slot_count(self) -> int:
        return sum(1 for s in self.slots if s.free)

    def running_tasks(self) -> List["Task"]:
        return [s.task for s in self.slots if s.task is not None]

    def describe(self) -> str:
        occ = ", ".join(
            f"{s.number}:{s.task.ttype.name if s.task else '<free>'}"
            for s in self.slots)
        sec = ",".join(map(str, self.secondary_pes)) or "-"
        failed = " FAILED," if self.failed else ""
        return (f"cluster {self.number}:{failed} PE {self.primary_pe}, "
                f"force PEs [{sec}], slots {{{occ}}}, "
                f"{len(self.pending)} pending")
