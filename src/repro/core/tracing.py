"""Execution tracing (section 12).

Eight event types can be traced; each trace line carries the event type,
the taskid of the relevant task(s), a clock reading ("PE number and
'ticks' count"), and event-specific information.  Tracing may be turned
on and off per event type and per task; output goes to the screen
(a callback sink) and/or to a file for off-line timing analysis
(:mod:`repro.analysis`).
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, IO, List, Optional, Set

from .taskid import TaskId

#: Default in-memory ring-buffer capacity.  Long runs with
#: ``keep_in_memory=True`` keep the most recent events and count the
#: overflow instead of growing without bound.
DEFAULT_MAX_EVENTS = 100_000


class TraceEventType(enum.Enum):
    """The eight traceable event types of section 12, plus FAULT.

    FAULT is an extension beyond the paper: every injected fault and
    every failure-semantics action (PE crash, message drop/corruption,
    task death, restart) emits one, so a faulty run's timeline reads
    from the same trace stream as a clean one.
    """

    TASK_INIT = "TASK_INIT"
    TASK_TERM = "TASK_TERM"
    MSG_SEND = "MSG_SEND"
    MSG_ACCEPT = "MSG_ACCEPT"
    LOCK = "LOCK"
    UNLOCK = "UNLOCK"
    BARRIER_ENTER = "BARRIER_ENTER"
    FORCE_SPLIT = "FORCE_SPLIT"
    FAULT = "FAULT"


#: The paper's original eight event types (FAULT is a repo extension).
PAPER_EVENT_TYPES = frozenset(t for t in TraceEventType
                              if t is not TraceEventType.FAULT)


ALL_EVENT_TYPES = frozenset(TraceEventType)


@dataclass(frozen=True)
class TraceEvent:
    """One trace record."""

    etype: TraceEventType
    task: TaskId
    pe: int
    ticks: int
    info: str = ""
    other: Optional[TaskId] = None   # e.g. the receiver of a send

    def line(self) -> str:
        """The textual trace line written to screen/file.

        The free-form ``info`` string is JSON-quoted and placed last, so
        an info containing ``task=`` / ``pe=`` / ``ticks=`` / ``other=``
        tokens (or any whitespace) survives :meth:`parse` unchanged:
        ``parse(line()) == event`` always holds.
        """
        parts = [f"TRACE {self.etype.value}",
                 f"task={self.task}",
                 f"pe={self.pe}",
                 f"ticks={self.ticks}"]
        if self.other is not None:
            parts.append(f"other={self.other}")
        if self.info:
            parts.append("info=" + json.dumps(self.info))
        return " ".join(parts)

    @classmethod
    def parse(cls, line: str) -> "TraceEvent":
        """Parse a line produced by :meth:`line` (off-line analysis).

        Accepts both the current quoted-info format and legacy lines
        whose info was written as bare trailing tokens.
        """
        # The quoted info marker can only occur where line() wrote it:
        # everything before it is fixed-format fields without spaces or
        # quotes, and any quote *inside* the JSON string is escaped.
        info: Optional[str] = None
        idx = line.find(' info="')
        if idx >= 0:
            head, info = line[:idx], json.loads(line[idx + len(" info="):])
        else:
            head = line
        toks = head.split()
        if len(toks) < 5 or toks[0] != "TRACE":
            raise ValueError(f"not a trace line: {line!r}")
        etype = TraceEventType(toks[1])
        fields: Dict[str, str] = {}
        info_parts: List[str] = []
        for tok in toks[2:]:
            if "=" in tok and tok.split("=", 1)[0] in ("task", "pe", "ticks", "other"):
                k, v = tok.split("=", 1)
                fields[k] = v
            elif tok.startswith("info=") and not info_parts:
                # Legacy unquoted info: strip the marker off the first
                # token; the remainder of the line is the info text.
                info_parts.append(tok[len("info="):])
            else:
                info_parts.append(tok)
        return cls(
            etype=etype,
            task=TaskId.parse(fields["task"]),
            pe=int(fields["pe"]),
            ticks=int(fields["ticks"]),
            info=info if info is not None else " ".join(info_parts),
            other=TaskId.parse(fields["other"]) if "other" in fields else None,
        )


class Tracer:
    """Event filter + sinks.

    By default no event types are enabled (tracing off).  Enabling is
    per event type; additionally, individual tasks can be muted or
    soloed, mirroring "Tracing may be turned on and off for each type of
    event and each task".
    """

    def __init__(self, max_events: Optional[int] = DEFAULT_MAX_EVENTS,
                 strict_overflow: bool = False) -> None:
        self.enabled_types: Set[TraceEventType] = set()
        #: If non-empty, only these tasks are traced.
        self.solo_tasks: Set[TaskId] = set()
        #: These tasks are never traced.
        self.muted_tasks: Set[TaskId] = set()
        #: Ring buffer of the most recent ``max_events`` events
        #: (``max_events=None`` keeps everything -- unbounded).
        self.events: Deque[TraceEvent] = deque(maxlen=max_events)
        #: Keep events in memory (the monitor's display and the analysis
        #: module read them); can be switched off for long runs.
        self.keep_in_memory = True
        self._file: Optional[IO[str]] = None
        self._screen: Optional[Callable[[str], None]] = None
        self.dropped = 0
        #: Events pushed out of the full ring buffer (still delivered to
        #: the file/screen sinks, only the in-memory copy was lost).
        self.overflow_dropped = 0
        #: When True, ring-buffer overflow raises
        #: :class:`~repro.errors.TraceOverflow` instead of silently
        #: evicting the oldest event.  Consumers that *analyze* the
        #: in-memory stream (schedule recording, race evidence, replay
        #: trace comparison) enable this: a truncated stream would make
        #: their artifacts quietly wrong.
        self.strict_overflow = strict_overflow
        #: Optional MetricsRegistry; overflow events bump the
        #: ``trace_overflow_dropped`` counter when wired.
        self.metrics = None

    # ------------------------------------------------------------ config --

    def enable(self, *etypes: TraceEventType) -> None:
        self.enabled_types.update(etypes or ALL_EVENT_TYPES)

    def enable_all(self) -> None:
        self.enabled_types = set(ALL_EVENT_TYPES)

    def disable(self, *etypes: TraceEventType) -> None:
        if etypes:
            self.enabled_types.difference_update(etypes)
        else:
            self.enabled_types.clear()

    def mute_task(self, task: TaskId) -> None:
        self.muted_tasks.add(task)

    def solo_task(self, task: TaskId) -> None:
        self.solo_tasks.add(task)

    def to_file(self, f: IO[str]) -> None:
        """Send trace lines to an open text file."""
        self._file = f

    def to_screen(self, sink: Callable[[str], None]) -> None:
        """Send trace lines to a screen callback."""
        self._screen = sink

    def describe(self) -> str:
        types = ", ".join(sorted(t.value for t in self.enabled_types)) or "(none)"
        return (f"trace: types [{types}], {len(self.events)} events kept, "
                f"{self.dropped} filtered, {self.overflow_dropped} overflowed")

    # ------------------------------------------------------------- emit --

    def wants(self, etype: TraceEventType, task: TaskId) -> bool:
        if etype not in self.enabled_types:
            return False
        if task in self.muted_tasks:
            return False
        if self.solo_tasks and task not in self.solo_tasks:
            return False
        return True

    def emit(self, event: TraceEvent) -> None:
        if not self.wants(event.etype, event.task):
            self.dropped += 1
            return
        if self.keep_in_memory:
            ev = self.events
            if ev.maxlen is not None and len(ev) == ev.maxlen:
                self.overflow_dropped += 1
                m = self.metrics
                if m is not None and m.enabled:
                    m.counter("trace_overflow_dropped").inc()
                if self.strict_overflow:
                    from ..errors import TraceOverflow
                    raise TraceOverflow(
                        f"trace ring buffer overflowed at {ev.maxlen} "
                        f"events (strict_overflow); raise max_events or "
                        f"narrow the enabled event types")
            ev.append(event)
        if self._file is not None:
            self._file.write(event.line() + "\n")
        if self._screen is not None:
            self._screen(event.line())

    # ------------------------------------------------------------ query --

    def of_type(self, etype: TraceEventType) -> List[TraceEvent]:
        return [e for e in self.events if e.etype is etype]

    def for_task(self, task: TaskId) -> List[TraceEvent]:
        return [e for e in self.events if e.task == task]
