"""Forces (section 7).

"A force ... is a set of simultaneously initiated tasks, all of the
same tasktype.  The members of a force are guaranteed to run
concurrently on different PE's.  Force members communicate through
shared variables and synchronize through barriers and critical regions."

In PISCES 2 any task may split into a force with FORCESPLIT; the member
count and the PEs running them are fixed by the *configuration* (one
member per secondary PE of the cluster, plus the primary), never by the
program text -- "the same program text may be executed without change by
a force of any number of members".
"""

from __future__ import annotations

import inspect
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..errors import RuntimeLibraryError
from ..mmos.process import KernelProcess, co_block, drive_kernel_ops
from .loops import (
    SelfSchedCounter,
    parseg as _parseg,
    presched as _presched,
    selfsched as _selfsched,
    selfsched_do as _selfsched_do,
)
from .shared import LockState
from .sizes import COST_FORCESPLIT_BASE, COST_FORCESPLIT_PER_MEMBER
from .sync import (
    BarrierGeneration,
    _RUN_BODY,
    barrier as _barrier,
    critical as _critical,
    critical_gen as _critical_gen,
)
from .task import Task, TaskContext
from .tracing import TraceEventType


class Force:
    """Run-time state of one force (one FORCESPLIT execution)."""

    def __init__(self, task: Task, size: int):
        self.task = task
        self.size = size
        self.barrier_gen = 0
        self.current_barrier = BarrierGeneration(size)
        self.remaining = size
        self.results: Dict[int, Any] = {}
        self.primary_proc: Optional[KernelProcess] = None
        self.primary_waiting = False
        self.member_procs: Dict[int, KernelProcess] = {}
        # SELFSCHED loop counters, identified by per-member loop ordinal
        # (all members execute the same text, so ordinals line up).
        self._ss_counters: List[SelfSchedCounter] = []
        self._member_loop_ordinal: Dict[int, int] = {}

    def advance_barrier(self) -> None:
        self.barrier_gen += 1
        self.current_barrier = BarrierGeneration(self.size)

    def member_died(self, proc: KernelProcess) -> None:
        """A member was killed mid-region: shrink the membership so the
        survivors' barriers stop waiting for an arrival that will never
        come.  Runs from the dying member's exit hook.
        """
        self.size -= 1
        gen = self.current_barrier
        gen.size -= 1
        if proc in gen.waiting:
            # It was parked at the barrier: retract its arrival.
            gen.waiting.remove(proc)
            gen.arrived -= 1
        if (not gen.complete and gen.size > 0
                and gen.arrived >= gen.size
                and gen.primary_proc is not None):
            # The dead member was the straggler: every survivor is
            # parked, so complete the generation through the primary
            # (it runs the body and releases the others).
            self.advance_barrier()
            self.task.vm.engine.wake(gen.primary_proc, info=_RUN_BODY)

    def selfsched_counter(self, member: "ForceContext",
                          total: int) -> SelfSchedCounter:
        ordinal = self._member_loop_ordinal.get(member.member, 0)
        self._member_loop_ordinal[member.member] = ordinal + 1
        if ordinal == len(self._ss_counters):
            self._ss_counters.append(SelfSchedCounter(total))
        counter = self._ss_counters[ordinal]
        if counter.total != total:
            raise RuntimeLibraryError(
                f"SELFSCHED loop {ordinal}: members disagree on iteration "
                f"count ({counter.total} vs {total})")
        return counter

    def last_selfsched_stats(self) -> Dict[int, int]:
        """Per-member iteration counts of the most recent SELFSCHED loop."""
        if not self._ss_counters:
            return {}
        return dict(self._ss_counters[-1].executed)

    def snapshot(self) -> dict:
        """Digestable force state for checkpoints: sizes, barrier
        generation, the in-flight :class:`BarrierGeneration`, and the
        SELFSCHED loop cursors (all run-stable at a given schedule
        position)."""
        return {"size": int(self.size),
                "remaining": int(self.remaining),
                "barrier_gen": int(self.barrier_gen),
                "current": self.current_barrier.snapshot(),
                "selfsched": [[int(c.total), int(c.next_index)]
                              for c in self._ss_counters]}


class ForceContext(TaskContext):
    """A force member's view: the full task API plus force operations."""

    def __init__(self, task: Task, process: KernelProcess, force: Force,
                 member: int, coroutine: bool = False):
        super().__init__(task, process, coroutine=coroutine)
        self._force = force
        self.member = member

    @property
    def force(self) -> Force:
        return self._force

    @property
    def is_primary(self) -> bool:
        """Member 0 is the original task continuing as the primary."""
        return self.member == 0

    @property
    def force_size(self) -> int:
        return self._force.size

    # ------------------------------------------------------------- sync --

    def barrier(self, body: Optional[Callable[[], None]] = None):
        """``BARRIER ... END BARRIER``: all members pause; when all have
        arrived the *primary* runs ``body``; then all continue.  In
        coroutine mode: ``yield from m.barrier(...)`` (``body`` may be
        a generator function)."""
        return self._run(_barrier(self.vm.engine, self._force, self, body))

    def critical(self, lock: Union[LockState, str]):
        """``CRITICAL <lock> ... END CRITICAL``.

        Callable mode: an ordinary context manager (``with
        m.critical("RED"): ...``).  Coroutine mode: the acquire wait
        suspends at the KernelOp seam, so the member writes ``with
        (yield from m.critical("RED")): ...`` -- the yielded-from
        generator resolves to a held-lock context manager whose exit
        releases synchronously.
        """
        lk = self.lock(lock) if isinstance(lock, str) else lock
        if self.coroutine:
            return _critical_gen(self.vm.engine, self._force, self, lk)
        return _critical(self.vm.engine, self._force, self, lk)

    # ------------------------------------------------------------ loops --

    def presched(self, iterations: Union[int, range, Sequence]) -> Iterator:
        """``PRESCHED DO``: cyclic static partition of the iterations."""
        return _presched(self, iterations)

    def selfsched(self, iterations: Union[int, range, Sequence]) -> Iterator:
        """``SELFSCHED DO``: members grab the next iteration dynamically.

        Callable mode only: the iterator form cannot carry each fetch's
        suspension out of a ``for`` body.  Coroutine members use
        :meth:`selfsched_do`.
        """
        if self.coroutine:
            raise RuntimeLibraryError(
                "SELFSCHED's iterator form cannot suspend from inside a "
                "for loop; coroutine members use "
                "yield from m.selfsched_do(iterations, body)")
        return _selfsched(self.vm.engine, self, iterations)

    def selfsched_do(self, iterations: Union[int, range, Sequence],
                     body: Callable[[Any], Any]):
        """``SELFSCHED DO`` driving ``body(item)`` per claimed
        iteration; returns this member's results.  Works in both modes
        (coroutine members: ``yield from m.selfsched_do(n, body)``)."""
        return self._run(
            _selfsched_do(self.vm.engine, self, iterations, body))

    def parseg(self, *segments: Callable[[], Any]):
        """``PARSEG / NEXTSEG / ENDSEG``: parallel statement sequences.
        In coroutine mode: ``yield from m.parseg(...)`` (segments may
        be generator functions)."""
        return self._run(_parseg(self, segments))


def do_forcesplit(ctx: TaskContext, region: Callable[..., Any],
                  args: Tuple[Any, ...]):
    """Implementation of ``TaskContext.forcesplit``.

    A KernelOp generator (the primary's join wait is a suspension
    point).  A generator-function ``region`` runs in coroutine mode:
    the primary ``yield from``s it in place, and every secondary member
    spawns as a coroutine process -- unless the task-body vehicle is
    forced to "callable", in which case members drive the identical op
    stream through blocking calls on worker threads.
    """
    if isinstance(ctx, ForceContext):
        raise RuntimeLibraryError("nested FORCESPLIT is not supported")
    task = ctx.task
    if task.force is not None:
        raise RuntimeLibraryError("task is already split into a force")
    vm = task.vm
    eng = vm.engine
    cluster = task.cluster
    size = cluster.force_size
    eng.charge(COST_FORCESPLIT_BASE + size * COST_FORCESPLIT_PER_MEMBER)
    task.trace(TraceEventType.FORCE_SPLIT, info=f"size={size}")
    vm.stats.forcesplits += 1
    metrics = vm.metrics
    if metrics.enabled:
        metrics.counter("forcesplits", cluster=cluster.number).inc()
        metrics.histogram("force_size", cluster=cluster.number).observe(size)

    creg = inspect.isgeneratorfunction(region)
    force = Force(task, size)
    task.force = force
    force.primary_proc = ctx.process
    try:
        if size > 1:
            for i, pe in enumerate(cluster.secondary_pes, start=1):
                body = _member_body(vm, task, force, i, region, args)
                p = vm.kernel.create_process(
                    f"{task.ttype.name}@{task.tid}#f{i}", pe, body)
                p.on_exit = _member_exit(vm, force)
                force.member_procs[i] = p
        # The primary is member 0 and executes the region itself.
        mctx = ForceContext(task, ctx.process, force, 0, coroutine=creg)
        if creg:
            force.results[0] = yield from region(mctx, *args)
        else:
            force.results[0] = region(mctx, *args)
        force.remaining -= 1
        while force.remaining > 0:
            force.primary_waiting = True
            yield co_block("force-join")
            force.primary_waiting = False
        # A member killed mid-region leaves no result: its slot is None.
        return [force.results.get(i) for i in range(size)]
    finally:
        task.force = None


def _member_body(vm, task: Task, force: Force, member: int,
                 region: Callable[..., Any], args: Tuple[Any, ...]):
    if inspect.isgeneratorfunction(region):
        if vm.task_bodies == "callable":
            # Forced vehicle: drive the region's op stream through the
            # classic blocking calls on this member's worker thread.
            def body() -> None:
                eng = vm.engine
                mctx = ForceContext(task, eng.current(), force, member,
                                    coroutine=True)
                force.results[member] = drive_kernel_ops(
                    eng, region(mctx, *args))
            return body

        def genbody():
            eng = vm.engine
            mctx = ForceContext(task, eng.current(), force, member,
                                coroutine=True)
            force.results[member] = yield from region(mctx, *args)
        return genbody

    def body() -> None:
        eng = vm.engine
        mctx = ForceContext(task, eng.current(), force, member)
        force.results[member] = region(mctx, *args)
    return body


def _member_exit(vm, force: Force):
    """on_exit hook: runs even when the member is killed before/after
    its region, so the primary's join never hangs."""
    def hook(proc) -> None:
        if proc.killed:
            # Abnormal death: unstrand siblings parked at a barrier.
            force.member_died(proc)
        force.remaining -= 1
        if force.remaining == 0 and force.primary_waiting:
            vm.engine.wake(force.primary_proc)
    return hook
