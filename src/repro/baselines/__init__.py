"""Baselines the paper positions PISCES 2 against."""

from .schedule import (
    DISPATCH_COST,
    ScheduleProgram,
    ScheduleResult,
    ScheduleRunner,
    Unit,
)
from .seq import run_program_serial, run_serial_ticks

__all__ = [
    "DISPATCH_COST",
    "ScheduleProgram",
    "ScheduleResult",
    "ScheduleRunner",
    "Unit",
    "run_program_serial",
    "run_serial_ticks",
]
