"""A SCHEDULE-style baseline (section 3).

Dongarra & Sorensen's SCHEDULE is "a package of routines that provide
an interface between Fortran programs and a parallel machine.  The
Fortran routines communicate with shared variables.  The programmer
defines the dependency relations between the routines (via SCHEDULE
calls), and then SCHEDULE maps the program onto the available hardware
in an appropriate way" -- i.e. the *system* does the mapping, where
PISCES 2 has the *programmer* map algorithm -> virtual machine ->
hardware.

This module reproduces that model on the same MMOS virtual-time
substrate so the two are comparable: the user declares units of work
(callables with tick costs) and dependencies; the scheduler runs one
worker per PE, dispatching ready units by critical-path priority.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PiscesError
from ..flex.machine import FlexMachine
from ..flex.presets import small_flex
from ..mmos.scheduler import Engine

#: Scheduling overhead charged per unit dispatch (comparable in spirit
#: to the PISCES initiate/message costs).
DISPATCH_COST = 40


@dataclass
class Unit:
    """One schedulable routine."""

    name: str
    cost: int
    fn: Optional[Callable[[], Any]] = None
    deps: Tuple[str, ...] = ()
    # Filled by the scheduler:
    level: int = 0               # critical-path length to a sink
    start: Optional[int] = None
    end: Optional[int] = None
    pe: Optional[int] = None
    result: Any = None


class ScheduleProgram:
    """The dependency graph a SCHEDULE user declares."""

    def __init__(self) -> None:
        self._units: Dict[str, Unit] = {}

    def unit(self, name: str, cost: int, deps: Sequence[str] = (),
             fn: Optional[Callable[[], Any]] = None) -> "ScheduleProgram":
        """Declare a routine with its dependency relations."""
        if name in self._units:
            raise PiscesError(f"unit {name!r} declared twice")
        for d in deps:
            if d not in self._units:
                raise PiscesError(f"unit {name!r} depends on undeclared {d!r}")
        if cost < 0:
            raise PiscesError("unit cost must be non-negative")
        self._units[name] = Unit(name=name, cost=cost, fn=fn,
                                 deps=tuple(deps))
        return self

    def units(self) -> Dict[str, Unit]:
        return dict(self._units)

    def critical_path(self) -> int:
        """Length of the longest dependency chain (lower bound on any
        schedule's makespan)."""
        self._compute_levels()
        return max((u.level + u.cost for u in self._units.values()),
                   default=0)

    def total_work(self) -> int:
        return sum(u.cost for u in self._units.values())

    def _compute_levels(self) -> None:
        # level = longest path from this unit's completion to a sink.
        succs: Dict[str, List[str]] = {n: [] for n in self._units}
        for u in self._units.values():
            for d in u.deps:
                succs[d].append(u.name)
        order = self._topo_order()
        for name in reversed(order):
            u = self._units[name]
            u.level = max((self._units[s].level + self._units[s].cost
                           for s in succs[name]), default=0)

    def _topo_order(self) -> List[str]:
        indeg = {n: len(u.deps) for n, u in self._units.items()}
        succs: Dict[str, List[str]] = {n: [] for n in self._units}
        for u in self._units.values():
            for d in u.deps:
                succs[d].append(u.name)
        ready = sorted(n for n, k in indeg.items() if k == 0)
        order: List[str] = []
        while ready:
            n = ready.pop(0)
            order.append(n)
            for s in sorted(succs[n]):
                indeg[s] -= 1
                if indeg[s] == 0:
                    ready.append(s)
        if len(order) != len(self._units):
            cyclic = sorted(set(self._units) - set(order))
            raise PiscesError(f"dependency cycle among {cyclic}")
        return order


@dataclass
class ScheduleResult:
    """Outcome of one SCHEDULE run."""

    elapsed: int
    critical_path: int
    total_work: int
    units: Dict[str, Unit]
    pe_busy: Dict[int, int]

    @property
    def speedup_vs_serial(self) -> float:
        return self.total_work / self.elapsed if self.elapsed else 0.0


class ScheduleRunner:
    """Run a :class:`ScheduleProgram` on ``n_pes`` workers.

    System-chosen mapping: workers pull the ready unit with the longest
    critical path (largest ``level + cost`` first), the classic list
    schedule SCHEDULE-era systems used.
    """

    def __init__(self, program: ScheduleProgram, n_pes: int,
                 machine: Optional[FlexMachine] = None):
        if n_pes < 1:
            raise PiscesError("need at least one PE")
        self.program = program
        need = n_pes + 2  # PEs 1-2 run Unix
        self.machine = machine or small_flex(max(3, need))
        mmos = self.machine.mmos_pes()
        if n_pes > len(mmos):
            raise PiscesError(f"{n_pes} workers exceed {len(mmos)} MMOS PEs")
        self.worker_pes = mmos[:n_pes]

    def run(self) -> ScheduleResult:
        units = self.program.units()
        self.program._compute_levels()
        for name, u in self.program._units.items():
            units[name].level = u.level
        indeg = {n: len(u.deps) for n, u in units.items()}
        succs: Dict[str, List[str]] = {n: [] for n in units}
        for u in units.values():
            for d in u.deps:
                succs[d].append(u.name)
        ready: List[str] = sorted(
            (n for n, k in indeg.items() if k == 0),
            key=lambda n: (-(units[n].level + units[n].cost), n))
        remaining = len(units)
        engine = Engine(self.machine)
        idle_workers: List[Any] = []
        state = {"remaining": remaining}

        def worker(pe: int) -> Callable[[], None]:
            def body() -> None:
                while True:
                    if state["remaining"] == 0:
                        return
                    if not ready:
                        proc = engine.current()
                        idle_workers.append(proc)
                        info = engine.block("schedule-idle")
                        if info == "done":
                            return
                        continue
                    name = ready.pop(0)
                    u = units[name]
                    engine.charge(DISPATCH_COST)
                    u.pe = pe
                    u.start = engine.now()
                    if u.fn is not None:
                        u.result = u.fn()
                    engine.charge(u.cost)
                    engine.preempt(0)
                    u.end = engine.now()
                    state["remaining"] -= 1
                    newly = []
                    for s in succs[name]:
                        indeg[s] -= 1
                        if indeg[s] == 0:
                            newly.append(s)
                    if newly:
                        ready.extend(newly)
                        ready.sort(key=lambda n: (
                            -(units[n].level + units[n].cost), n))
                        while idle_workers and ready:
                            engine.wake(idle_workers.pop(0))
                    if state["remaining"] == 0:
                        while idle_workers:
                            engine.wake(idle_workers.pop(0), info="done")
                        return
            return body

        for pe in self.worker_pes:
            engine.spawn(f"sched-worker-{pe}", pe, worker(pe))
        engine.run()
        busy = {pe: self.machine.clocks[pe].busy_ticks
                for pe in self.worker_pes}
        return ScheduleResult(
            elapsed=self.machine.elapsed(),
            critical_path=self.program.critical_path(),
            total_work=self.program.total_work(),
            units=units,
            pe_busy=busy,
        )
