"""Sequential baseline: the same work, one PE, no runtime overheads.

Speedup numbers in the benchmarks are reported against this (and
against force-size-1 runs, which include the PISCES overheads).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from ..flex.machine import FlexMachine
from ..flex.presets import small_flex
from ..mmos.scheduler import Engine
from .schedule import ScheduleProgram


def run_serial_ticks(costs: Sequence[int],
                     machine: Optional[FlexMachine] = None) -> int:
    """Execute work items of the given tick costs serially on one PE;
    returns the elapsed virtual time."""
    m = machine or small_flex()
    eng = Engine(m)
    pe = m.mmos_pes()[0]

    def body() -> None:
        for c in costs:
            eng.charge(c)
            eng.preempt(0)

    eng.spawn("serial", pe, body)
    eng.run()
    return m.elapsed()


def run_program_serial(program: ScheduleProgram,
                       machine: Optional[FlexMachine] = None) -> int:
    """Run a SCHEDULE program's units serially in topological order."""
    units = program.units()
    order = program._topo_order()
    return run_serial_ticks([units[n].cost for n in order], machine)
