"""Saving, loading and editing configuration files (section 9).

"Configurations may be saved on files and reused or edited as desired
for later runs."  The on-disk format is a small readable text format
(one directive per line) so saved configurations diff cleanly::

    # pisces configuration
    name quadcluster
    cluster 1 primary 3 slots 4 force 7,8,9
    cluster 2 primary 4 slots 4 force 16,17,18,19,20
    time_limit 500000
    trace MSG_SEND MSG_ACCEPT
    user_cluster 1
    file_cluster 1
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, TextIO, Union

from ..errors import ConfigurationError
from .configuration import ClusterSpec, Configuration, default_accept_delay

FORMAT_HEADER = "# pisces configuration"


def dumps(cfg: Configuration) -> str:
    """Serialize a configuration to the text format."""
    out = [FORMAT_HEADER, f"name {cfg.name}"]
    for c in sorted(cfg.clusters, key=lambda c: c.number):
        force = ",".join(map(str, c.secondary_pes)) if c.secondary_pes else "-"
        out.append(f"cluster {c.number} primary {c.primary_pe} "
                   f"slots {c.slots} force {force}")
    if cfg.time_limit is not None:
        out.append(f"time_limit {cfg.time_limit}")
    if cfg.trace_events:
        out.append("trace " + " ".join(cfg.trace_events))
    if cfg.user_cluster is not None:
        out.append(f"user_cluster {cfg.user_cluster}")
    if cfg.file_cluster is not None:
        out.append(f"file_cluster {cfg.file_cluster}")
    if cfg.default_accept_delay != default_accept_delay():
        out.append(f"accept_delay {cfg.default_accept_delay}")
    if cfg.accept_retries:
        out.append(f"accept_retry {cfg.accept_retries} {cfg.accept_backoff}")
    return "\n".join(out) + "\n"


def loads(text: str) -> Configuration:
    """Parse the text format back into a configuration."""
    clusters: List[ClusterSpec] = []
    kw = {}
    name = "unnamed"
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        toks = line.split()
        try:
            if toks[0] == "name":
                name = " ".join(toks[1:]) or "unnamed"
            elif toks[0] == "cluster":
                clusters.append(_parse_cluster(toks))
            elif toks[0] == "time_limit":
                kw["time_limit"] = int(toks[1])
            elif toks[0] == "trace":
                kw["trace_events"] = tuple(toks[1:])
            elif toks[0] == "user_cluster":
                kw["user_cluster"] = int(toks[1])
            elif toks[0] == "file_cluster":
                kw["file_cluster"] = int(toks[1])
            elif toks[0] == "accept_delay":
                kw["default_accept_delay"] = int(toks[1])
            elif toks[0] == "accept_retry":
                kw["accept_retries"] = int(toks[1])
                if len(toks) > 2:
                    kw["accept_backoff"] = float(toks[2])
            else:
                raise ConfigurationError(
                    f"line {lineno}: unknown directive {toks[0]!r}")
        except (IndexError, ValueError) as e:
            raise ConfigurationError(f"line {lineno}: {raw!r}: {e}") from e
    if not clusters:
        raise ConfigurationError("configuration file declares no clusters")
    return Configuration(clusters=tuple(clusters), name=name, **kw)


def _parse_cluster(toks: List[str]) -> ClusterSpec:
    # cluster <n> primary <pe> slots <k> force <a,b,c|->
    fields = dict(zip(toks[2::2], toks[3::2]))
    number = int(toks[1])
    if "primary" not in fields:
        raise ConfigurationError(f"cluster {number}: missing primary PE")
    force_txt = fields.get("force", "-")
    secondary = (tuple(int(x) for x in force_txt.split(",") if x)
                 if force_txt != "-" else ())
    return ClusterSpec(number=number,
                       primary_pe=int(fields["primary"]),
                       slots=int(fields.get("slots", 4)),
                       secondary_pes=secondary)


def save(cfg: Configuration, path: Union[str, Path]) -> Path:
    """Write a configuration file (conventionally ``*.pcfg``)."""
    p = Path(path)
    p.write_text(dumps(cfg))
    return p


def load(path: Union[str, Path]) -> Configuration:
    """Read a configuration file saved by :func:`save`."""
    return loads(Path(path).read_text())
