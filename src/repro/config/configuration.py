"""Configurations: the virtual-machine-to-hardware mapping (section 9).

"In PISCES 2 the programmer controls the hardware resources that are
allocated to the execution of user tasks in each cluster. ... A
particular mapping is called a configuration."  Creating one on the
FLEX/32 chooses: (1) how many clusters and their numbers, (2) the
primary PE of each cluster, (3) the secondary PEs that run force
members for each cluster, (4) the number of user-task slots per
cluster.  A configuration also carries an execution time limit and
trace settings (section 11), and may be saved, edited and reused.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ConfigurationError
from ..flex.machine import MachineSpec

#: Arbitrary sanity cap on user slots per cluster (the slot count
#: bounds the degree of multiprogramming on the primary PE).
MAX_SLOTS = 16

#: Built-in system ACCEPT timeout (ticks) when no DELAY clause is given
#: and the environment does not override it.
DEFAULT_ACCEPT_DELAY = 1_000_000

#: Every environment variable the runtime recognizes, with the one-line
#: meaning documented in the users_manual section 10 table.  This is the
#: single source of truth for the surface: :func:`env_value` refuses
#: names missing from it (so a new reader cannot slip in undocumented),
#: and the test suite asserts each entry appears in the manual's table.
ENV_VARS: Dict[str, str] = {
    "PISCES_EXEC_CORE": "execution core: threaded (oracle) or coop",
    "PISCES_DISPATCHER": "dispatch picker: indexed, scan or replay",
    "PISCES_TASK_BODIES": "task-body vehicle: auto or callable",
    "PISCES_WINDOW_PATH": "window data plane: fast, batched or reference",
    "PISCES_ACCEPT_TIMEOUT": "system ACCEPT timeout in ticks",
    "PISCES_CHECKPOINT": "periodic checkpoint interval in ticks (0 = off)",
    "PISCES_CHECKPOINT_DIR": "directory receiving periodic .pckpt bundles",
    "PISCES_DETECT_RACES": "race detector: 1, record, warn or raise",
    "PISCES_PROFILE": "enable the causal profiler at boot",
    "PISCES_RECORD_SCHEDULE": "autosave the dispatch schedule to this path",
    "PISCES_REPLAY_SCHEDULE": "replay the .psched recording at this path",
}


def env_value(name: str, default: str = "") -> str:
    """Read one recognized ``PISCES_*`` variable.

    Every environment reader in the tree resolves through here, so the
    recognized surface is exactly :data:`ENV_VARS` -- reading a name
    missing from the registry is a programming error, not a silent
    misconfiguration.  The value is stripped; unset or empty yields
    ``default``.
    """
    if name not in ENV_VARS:
        raise ConfigurationError(
            f"unregistered environment variable {name!r}; add it to "
            "configuration.ENV_VARS and the users_manual table")
    v = os.environ.get(name, "").strip()
    return v if v else default


def env_choice(name: str, choices: Tuple[str, ...],
               default: str = "") -> str:
    """:func:`env_value` restricted to an allowed set."""
    v = env_value(name, default)
    if v not in choices:
        raise ConfigurationError(
            f"{name}={v!r} is not one of {'/'.join(choices)}")
    return v


def env_int(name: str, default: int, minimum: int = 0) -> int:
    """:func:`env_value` parsed as a tick count with a floor."""
    v = env_value(name)
    if not v:
        return default
    try:
        n = int(v)
    except ValueError:
        raise ConfigurationError(
            f"{name}={v!r} is not an integer tick count")
    if n < minimum:
        raise ConfigurationError(
            f"{name}={v!r} must be positive" if minimum > 0
            else f"{name}={v!r} must be >= {minimum}")
    return n


def env_flag(name: str) -> str:
    """:func:`env_value` as an on/off switch with an optional mode.

    Returns "" when the variable is unset, empty, or one of the
    conventional off spellings (``0``/``false``/``off``); any other
    value -- ``1``, or a mode word like ``record`` -- comes back
    verbatim for the caller to interpret.
    """
    v = env_value(name)
    return "" if v in ("0", "false", "off") else v


def default_accept_delay() -> int:
    """The system-provided ACCEPT timeout.

    The paper promises a "system-provided timeout value" for ACCEPT
    without DELAY; ``PISCES_ACCEPT_TIMEOUT`` (ticks) makes it
    configurable per run without editing configurations.
    """
    return env_int("PISCES_ACCEPT_TIMEOUT", DEFAULT_ACCEPT_DELAY, minimum=1)


@dataclass(frozen=True)
class ClusterSpec:
    """Mapping of one cluster onto hardware."""

    number: int
    primary_pe: int
    slots: int = 4
    secondary_pes: Tuple[int, ...] = ()

    def validate(self, machine: MachineSpec) -> None:
        if self.number < 1:
            raise ConfigurationError(f"cluster number {self.number} < 1")
        mmos = set(machine.mmos_pes)
        if self.primary_pe not in mmos:
            raise ConfigurationError(
                f"cluster {self.number}: primary PE {self.primary_pe} is not "
                f"an MMOS PE (valid: {sorted(mmos)})")
        if not 1 <= self.slots <= MAX_SLOTS:
            raise ConfigurationError(
                f"cluster {self.number}: slots must be 1..{MAX_SLOTS}, "
                f"got {self.slots}")
        seen = set()
        for pe in self.secondary_pes:
            if pe not in mmos:
                raise ConfigurationError(
                    f"cluster {self.number}: secondary PE {pe} is not an "
                    f"MMOS PE")
            if pe in seen:
                raise ConfigurationError(
                    f"cluster {self.number}: secondary PE {pe} listed twice")
            seen.add(pe)
        if self.primary_pe in seen:
            raise ConfigurationError(
                f"cluster {self.number}: PE {self.primary_pe} cannot be both "
                f"primary and secondary of the same cluster")


@dataclass(frozen=True)
class Configuration:
    """A complete run configuration."""

    clusters: Tuple[ClusterSpec, ...]
    #: Execution time limit in ticks (part of the configuration per
    #: section 11); None disables the limit.
    time_limit: Optional[int] = None
    #: Trace event type names enabled at start (section 11/12).
    trace_events: Tuple[str, ...] = ()
    #: Collect run metrics (the :mod:`repro.obs` registry).  Off by
    #: default: instrumentation is zero-cost when disabled.
    metrics_enabled: bool = False
    #: Cluster whose user controller owns the terminal (default: lowest).
    user_cluster: Optional[int] = None
    #: Cluster hosting the file controller (default: lowest; the file
    #: store stands in for the Unix file system on a diskless FLEX).
    file_cluster: Optional[int] = None
    #: System-provided ACCEPT timeout when no DELAY is given; defaults
    #: from the ``PISCES_ACCEPT_TIMEOUT`` environment variable.
    default_accept_delay: int = field(default_factory=default_accept_delay)
    #: ACCEPT timeout escalation: number of retry waits before the
    #: timeout is surfaced, and the multiplicative backoff applied to
    #: each successive wait (see ``docs/architecture.md``).
    accept_retries: int = 0
    accept_backoff: float = 2.0
    #: Window data-plane selection: "fast" (batched transfers + reader
    #: cache), "batched" (no cache) or "reference" (the unbatched
    #: per-row oracle).  "" defers to the ``PISCES_WINDOW_PATH``
    #: environment variable, then to "fast".  Every path is bit-identical
    #: in virtual time (see docs/architecture.md).
    window_path: str = ""
    #: Execution-core selection: "threaded" (one OS thread per process,
    #: the determinism oracle) or "coop" (single-threaded discrete-event
    #: loop; coroutine bodies dispatch by function call).  "" defers to
    #: the ``PISCES_EXEC_CORE`` environment variable, then to
    #: "threaded".  Both cores are bit-identical in virtual time and
    #: dispatch order (see docs/architecture.md, "Execution cores").
    exec_core: str = ""
    #: Task-body vehicle: "auto" lets coroutine-style bodies (generator
    #: functions) suspend as coroutines at the KernelOp seam -- on the
    #: coop core they then run with no worker thread at all -- while
    #: "callable" forces every body onto the classic blocking-call
    #: driver (worker threads on both cores).  "" defers to the
    #: ``PISCES_TASK_BODIES`` environment variable, then to "auto".
    #: Both vehicles are bit-identical in virtual time (the body-form
    #: equivalence suite asserts this across the app zoo).
    task_bodies: str = ""
    #: Enable the happens-before race detector at boot (see
    #: :mod:`repro.correctness`); detection charges no virtual time.
    detect_races: bool = False
    #: Enable the causal profiler at boot (see
    #: :mod:`repro.obs.profile`); profiling charges no virtual time.
    #: The ``PISCES_PROFILE`` environment variable also turns it on.
    profile: bool = False
    #: Periodic checkpointing: write a ``.pckpt`` bundle every this many
    #: virtual ticks (0 disables; the ``PISCES_CHECKPOINT`` environment
    #: variable also turns it on).  Checkpoints are pure observers: a
    #: checkpointed run is bit-identical in virtual time to an
    #: unchecked one (see :mod:`repro.checkpoint`).
    checkpoint_every: int = 0
    #: Directory receiving periodic ``.pckpt`` bundles ("" defers to the
    #: ``PISCES_CHECKPOINT_DIR`` environment variable, then to the
    #: current directory).
    checkpoint_dir: str = ""
    #: How many periodic checkpoints to retain (older bundles are
    #: removed after each successful write; crash recovery only ever
    #: needs the latest valid one).
    checkpoint_keep: int = 2
    #: Seed of the VM-level run RNG (``vm.run_rng``): the *only* source
    #: of randomness consumed at virtual-time-ordered points (backoff
    #: jitter), so seeded runs stay bit-reproducible.
    run_seed: int = 0
    #: Jitter fraction (0..1) applied to ACCEPT retry backoff waits:
    #: each wait is perturbed by up to +/- this fraction, drawn from the
    #: seeded run RNG so determinism holds.
    accept_jitter: float = 0.0
    name: str = "unnamed"

    # ------------------------------------------------------------ access --

    def cluster_numbers(self) -> List[int]:
        return sorted(c.number for c in self.clusters)

    def cluster(self, number: int) -> ClusterSpec:
        for c in self.clusters:
            if c.number == number:
                return c
        raise ConfigurationError(f"no cluster {number} in configuration")

    def used_pes(self) -> List[int]:
        """Every PE the configuration touches (loadfile targets)."""
        pes = set()
        for c in self.clusters:
            pes.add(c.primary_pe)
            pes.update(c.secondary_pes)
        return sorted(pes)

    def effective_user_cluster(self) -> int:
        return (self.user_cluster if self.user_cluster is not None
                else min(self.cluster_numbers()))

    def effective_file_cluster(self) -> int:
        return (self.file_cluster if self.file_cluster is not None
                else min(self.cluster_numbers()))

    def max_multiprogramming(self, pe: int) -> int:
        """Upper bound on simultaneous user tasks/force members on a PE.

        Section 9: a PE that is secondary for several clusters can host
        force members from each; the bound is the sum of the slot counts
        of every cluster the PE serves (as primary or secondary).
        """
        total = 0
        for c in self.clusters:
            if c.primary_pe == pe or pe in c.secondary_pes:
                total += c.slots
        return total

    # ---------------------------------------------------------- validate --

    def validate(self, machine: MachineSpec) -> "Configuration":
        if not self.clusters:
            raise ConfigurationError("configuration has no clusters")
        max_clusters = len(machine.mmos_pes)
        if len(self.clusters) > max_clusters:
            raise ConfigurationError(
                f"{len(self.clusters)} clusters exceed the {max_clusters} "
                f"available MMOS PEs")
        numbers = [c.number for c in self.clusters]
        if len(set(numbers)) != len(numbers):
            raise ConfigurationError(f"duplicate cluster numbers in {numbers}")
        primaries = [c.primary_pe for c in self.clusters]
        if len(set(primaries)) != len(primaries):
            raise ConfigurationError(
                f"clusters must have distinct primary PEs, got {primaries}")
        for c in self.clusters:
            c.validate(machine)
        for attr in ("user_cluster", "file_cluster"):
            v = getattr(self, attr)
            if v is not None and v not in numbers:
                raise ConfigurationError(f"{attr}={v} is not a cluster")
        if self.time_limit is not None and self.time_limit <= 0:
            raise ConfigurationError("time_limit must be positive")
        if self.default_accept_delay <= 0:
            raise ConfigurationError("default_accept_delay must be positive")
        if self.accept_retries < 0:
            raise ConfigurationError("accept_retries must be >= 0")
        if self.accept_backoff < 1.0:
            raise ConfigurationError("accept_backoff must be >= 1")
        if self.window_path not in ("", "fast", "batched", "reference"):
            raise ConfigurationError(
                f"window_path must be fast/batched/reference, "
                f"got {self.window_path!r}")
        if self.exec_core not in ("", "threaded", "coop"):
            raise ConfigurationError(
                f"exec_core must be threaded/coop, got {self.exec_core!r}")
        if self.task_bodies not in ("", "auto", "callable"):
            raise ConfigurationError(
                f"task_bodies must be auto/callable, "
                f"got {self.task_bodies!r}")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if self.checkpoint_keep < 1:
            raise ConfigurationError("checkpoint_keep must be >= 1")
        if not 0.0 <= self.accept_jitter <= 1.0:
            raise ConfigurationError(
                f"accept_jitter must be in 0..1, got {self.accept_jitter}")
        return self

    # ------------------------------------------------------------ editing --

    def with_cluster(self, spec: ClusterSpec) -> "Configuration":
        """A copy with one cluster added or replaced (menu editing)."""
        rest = tuple(c for c in self.clusters if c.number != spec.number)
        return replace(self, clusters=tuple(
            sorted(rest + (spec,), key=lambda c: c.number)))

    def without_cluster(self, number: int) -> "Configuration":
        return replace(self, clusters=tuple(
            c for c in self.clusters if c.number != number))

    def describe(self) -> str:
        lines = [f"configuration {self.name!r}:"]
        for c in sorted(self.clusters, key=lambda c: c.number):
            sec = ",".join(map(str, c.secondary_pes)) or "-"
            lines.append(f"  cluster {c.number}: primary PE {c.primary_pe}, "
                         f"{c.slots} slots, force PEs [{sec}] "
                         f"(force size {1 + len(c.secondary_pes)})")
        if self.time_limit is not None:
            lines.append(f"  time limit: {self.time_limit} ticks")
        if self.trace_events:
            lines.append(f"  trace: {', '.join(self.trace_events)}")
        if self.metrics_enabled:
            lines.append("  metrics: enabled")
        if self.window_path:
            lines.append(f"  window data plane: {self.window_path}")
        if self.exec_core:
            lines.append(f"  execution core: {self.exec_core}")
        if self.task_bodies:
            lines.append(f"  task bodies: {self.task_bodies}")
        if self.profile:
            lines.append("  profiling: enabled")
        if self.checkpoint_every:
            where = self.checkpoint_dir or "."
            lines.append(f"  checkpoint: every {self.checkpoint_every} ticks "
                         f"to {where} (keep {self.checkpoint_keep})")
        if self.accept_jitter:
            lines.append(f"  accept jitter: {self.accept_jitter}")
        return "\n".join(lines)


def simple_configuration(n_clusters: int = 2, slots: int = 4,
                         force_pes_per_cluster: int = 0,
                         first_pe: int = 3,
                         name: str = "simple") -> Configuration:
    """Convenience builder: ``n_clusters`` clusters on consecutive PEs
    starting at ``first_pe``, each with ``slots`` slots, then consecutive
    blocks of ``force_pes_per_cluster`` secondary PEs."""
    specs = []
    next_pe = first_pe
    primaries = []
    for i in range(1, n_clusters + 1):
        primaries.append(next_pe)
        next_pe += 1
    for i, pe in enumerate(primaries, start=1):
        sec = tuple(range(next_pe, next_pe + force_pes_per_cluster))
        next_pe += force_pes_per_cluster
        specs.append(ClusterSpec(number=i, primary_pe=pe, slots=slots,
                                 secondary_pes=sec))
    return Configuration(clusters=tuple(specs), name=name)
