"""Configuration environment: mapping the virtual machine to hardware."""

from .configuration import (
    ClusterSpec,
    Configuration,
    MAX_SLOTS,
    simple_configuration,
)

__all__ = [
    "ClusterSpec",
    "Configuration",
    "MAX_SLOTS",
    "simple_configuration",
]
