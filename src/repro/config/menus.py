"""The menu-driven configuration environment (sections 9, 11).

"Configurations are created within the PISCES 2 environment via a
series of menus."  This is a faithful, *scriptable* text-menu front end:
it reads answers from any iterator of lines (an interactive stdin, or a
list in tests) and writes prompts to any sink, so the whole dialogue is
unit-testable.

Menu map::

    PISCES CONFIGURATION ENVIRONMENT
      1  NEW CONFIGURATION
      2  ADD/EDIT CLUSTER
      3  REMOVE CLUSTER
      4  SET TIME LIMIT
      5  SET TRACE OPTIONS
      6  SHOW CONFIGURATION
      7  SAVE CONFIGURATION
      8  LOAD CONFIGURATION
      9  BUILD LOADFILE (describe)
      0  DONE (return the configuration)
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional

from ..errors import ConfigurationError
from ..flex.machine import MachineSpec
from .configuration import ClusterSpec, Configuration
from . import files

MENU_TEXT = """PISCES CONFIGURATION ENVIRONMENT
  1  NEW CONFIGURATION
  2  ADD/EDIT CLUSTER
  3  REMOVE CLUSTER
  4  SET TIME LIMIT
  5  SET TRACE OPTIONS
  6  SHOW CONFIGURATION
  7  SAVE CONFIGURATION
  8  LOAD CONFIGURATION
  9  BUILD LOADFILE (describe)
  0  DONE"""


class ConfigurationMenu:
    """A scriptable configuration-building dialogue."""

    def __init__(self, machine: Optional[MachineSpec] = None,
                 inputs: Optional[Iterable[str]] = None,
                 output: Optional[Callable[[str], None]] = None):
        self.machine = machine or MachineSpec()
        self._in: Iterator[str] = iter(inputs) if inputs is not None else iter([])
        self._out = output or (lambda s: None)
        self.config = Configuration(clusters=(), name="new")
        self.transcript: List[str] = []

    # ------------------------------------------------------------ dialog --

    def _say(self, text: str) -> None:
        self.transcript.append(text)
        self._out(text)

    def _ask(self, prompt: str) -> str:
        self._say(prompt)
        try:
            ans = next(self._in).strip()
        except StopIteration:
            raise ConfigurationError("menu input exhausted") from None
        self.transcript.append("> " + ans)
        return ans

    def _ask_int(self, prompt: str, lo: int, hi: int) -> int:
        while True:
            ans = self._ask(prompt)
            try:
                v = int(ans)
            except ValueError:
                self._say(f"  not a number: {ans!r}")
                continue
            if lo <= v <= hi:
                return v
            self._say(f"  must be {lo}..{hi}")

    # -------------------------------------------------------------- main --

    def run(self) -> Configuration:
        """Drive the menu until DONE; returns the validated configuration."""
        while True:
            self._say(MENU_TEXT)
            choice = self._ask("choice?")
            if choice == "0":
                cfg = self.config.validate(self.machine)
                self._say(f"configuration {cfg.name!r} complete")
                return cfg
            handler = getattr(self, f"_op_{choice}", None)
            if handler is None:
                self._say(f"  no such option {choice!r}")
                continue
            try:
                handler()
            except ConfigurationError as e:
                self._say(f"  error: {e}")

    # --------------------------------------------------------- operations --

    def _op_1(self) -> None:
        name = self._ask("configuration name?") or "unnamed"
        self.config = Configuration(clusters=(), name=name)
        self._say(f"new empty configuration {name!r}")

    def _op_2(self) -> None:
        mmos = sorted(self.machine.mmos_pes)
        n = self._ask_int("cluster number?", 1, 99)
        primary = self._ask_int(
            f"primary PE? (MMOS PEs: {mmos[0]}..{mmos[-1]})",
            mmos[0], mmos[-1])
        slots = self._ask_int("user task slots?", 1, 16)
        force_txt = self._ask("secondary (force) PEs? (comma list or -)")
        secondary = (tuple(int(x) for x in force_txt.split(",") if x.strip())
                     if force_txt not in ("-", "") else ())
        spec = ClusterSpec(number=n, primary_pe=primary, slots=slots,
                           secondary_pes=secondary)
        spec.validate(self.machine)
        self.config = self.config.with_cluster(spec)
        self._say(f"cluster {n} set: primary PE {primary}, {slots} slots, "
                  f"force PEs {list(secondary) or '-'}")

    def _op_3(self) -> None:
        n = self._ask_int("remove which cluster?", 1, 99)
        self.config = self.config.without_cluster(n)
        self._say(f"cluster {n} removed")

    def _op_4(self) -> None:
        v = self._ask_int("execution time limit (ticks)?", 1, 2**31)
        import dataclasses
        self.config = dataclasses.replace(self.config, time_limit=v)
        self._say(f"time limit {v}")

    def _op_5(self) -> None:
        from ..core.tracing import TraceEventType
        names = [t.value for t in TraceEventType]
        self._say("event types: " + " ".join(names))
        ans = self._ask("trace which? (space list, ALL, or NONE)")
        if ans.upper() == "ALL":
            events = tuple(names)
        elif ans.upper() in ("NONE", ""):
            events = ()
        else:
            events = tuple(ans.split())
            for e in events:
                if e not in names:
                    raise ConfigurationError(f"unknown trace event {e!r}")
        import dataclasses
        self.config = dataclasses.replace(self.config, trace_events=events)
        self._say(f"tracing: {', '.join(events) or '(none)'}")

    def _op_6(self) -> None:
        self._say(self.config.describe())

    def _op_7(self) -> None:
        path = self._ask("save to file?")
        self.config.validate(self.machine)
        files.save(self.config, path)
        self._say(f"saved to {path}")

    def _op_8(self) -> None:
        path = self._ask("load from file?")
        self.config = files.load(path)
        self._say(f"loaded {self.config.name!r} "
                  f"({len(self.config.clusters)} clusters)")

    def _op_9(self) -> None:
        from ..core.task import GLOBAL_REGISTRY
        from ..mmos.loader import (
            CAT_MMOS_KERNEL, CAT_PISCES_CODE, CAT_PISCES_DATA, CAT_USER_CODE,
            Loadfile)
        from ..core.sizes import (
            MMOS_KERNEL_BYTES, PISCES_SYSTEM_CODE_BYTES,
            PISCES_SYSTEM_DATA_BYTES)
        lf = Loadfile()
        lf.add(CAT_MMOS_KERNEL, MMOS_KERNEL_BYTES)
        lf.add(CAT_PISCES_CODE, PISCES_SYSTEM_CODE_BYTES)
        lf.add(CAT_PISCES_DATA, PISCES_SYSTEM_DATA_BYTES)
        lf.add(CAT_USER_CODE, GLOBAL_REGISTRY.total_code_bytes())
        self._say(lf.describe())
        self._say(f"target PEs: {self.config.used_pes()}")
