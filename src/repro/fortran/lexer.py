"""Tokenizer for Pisces Fortran (section 10).

The preprocessor accepts a liberal Fortran-77-style source form:

* one statement per line (a trailing ``&`` continues onto the next);
* comments: a ``C`` or ``*`` in column 1, or ``!`` anywhere;
* an optional numeric statement label at the start of a line;
* case-insensitive keywords and names (canonicalized to upper case);
* the usual F77 operator spellings, including ``.EQ.``/``.AND.``/ etc.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..errors import LexError


class TokKind(enum.Enum):
    NAME = "name"
    INT = "int"
    REAL = "real"
    STRING = "string"
    OP = "op"
    EOL = "eol"


@dataclass(frozen=True)
class Token:
    kind: TokKind
    text: str
    line: int
    col: int

    def is_name(self, *names: str) -> bool:
        return self.kind is TokKind.NAME and self.text in names

    def is_op(self, *ops: str) -> bool:
        return self.kind is TokKind.OP and self.text in ops


#: Multi-character operators, longest first (dotted forms first of all).
_DOTTED = [".EQ.", ".NE.", ".LT.", ".LE.", ".GT.", ".GE.",
           ".AND.", ".OR.", ".NOT.", ".TRUE.", ".FALSE."]
_OPS = ["**", "//", "(", ")", ",", "+", "-", "*", "/", "=",
        "<", ">", ":", "'"]

_NAME_RE = re.compile(r"[A-Za-z][A-Za-z0-9_]*")
_NUM_RE = re.compile(
    r"(\d+\.\d*([EeDd][+-]?\d+)?|\.\d+([EeDd][+-]?\d+)?"
    r"|\d+[EeDd][+-]?\d+|\d+)")


@dataclass
class LogicalLine:
    """One statement after comment stripping and continuation joining."""

    label: Optional[int]
    tokens: List[Token]
    line: int

    @property
    def text(self) -> str:
        return " ".join(t.text for t in self.tokens)


def strip_comment(raw: str) -> str:
    """Remove comments; respects quoted strings for the ``!`` form.

    Column-1 ``*`` is always a comment; column-1 ``C`` only when
    followed by whitespace (so unindented CALL/CONTINUE still parse).
    """
    if raw[:1] == "*":
        return ""
    if raw[:1] in ("C", "c") and (len(raw) == 1 or raw[1] in " \t"):
        return ""
    out = []
    in_str = False
    for ch in raw:
        if ch == "'":
            in_str = not in_str
        if ch == "!" and not in_str:
            break
        out.append(ch)
    return "".join(out)


def tokenize_line(text: str, line_no: int) -> List[Token]:
    """Tokenize one (comment-free) source line."""
    toks: List[Token] = []
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch in " \t":
            i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise LexError("unterminated string", line_no, i)
                if text[j] == "'":
                    if j + 1 < n and text[j + 1] == "'":   # '' escape
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            toks.append(Token(TokKind.STRING, "".join(buf), line_no, i))
            i = j + 1
            continue
        if ch == ".":
            matched = False
            up = text[i:i + 7].upper()
            for d in _DOTTED:
                if up.startswith(d):
                    toks.append(Token(TokKind.OP, d, line_no, i))
                    i += len(d)
                    matched = True
                    break
            if matched:
                continue
        m = _NUM_RE.match(text, i)
        if m and (ch.isdigit() or ch == "."):
            txt = m.group(0)
            kind = (TokKind.REAL if any(c in txt for c in ".EeDd")
                    else TokKind.INT)
            toks.append(Token(kind, txt.upper().replace("D", "E"),
                              line_no, i))
            i = m.end()
            continue
        m = _NAME_RE.match(text, i)
        if m:
            toks.append(Token(TokKind.NAME, m.group(0).upper(), line_no, i))
            i = m.end()
            continue
        two = text[i:i + 2]
        if two in ("**", "//", "<=", ">=", "<>", "=="):
            toks.append(Token(TokKind.OP, two, line_no, i))
            i += 2
            continue
        if ch in "()+-*/=,<>:":
            toks.append(Token(TokKind.OP, ch, line_no, i))
            i += 1
            continue
        raise LexError(f"unexpected character {ch!r}", line_no, i)
    return toks


def logical_lines(source: str) -> Iterator[LogicalLine]:
    """Split source into labelled, continuation-joined statement lines."""
    pending: Optional[Tuple[int, str]] = None
    for line_no, raw in enumerate(source.splitlines(), start=1):
        body = strip_comment(raw).rstrip()
        if not body.strip():
            continue
        if pending is not None:
            start, acc = pending
            body_strip = body.strip()
            acc = acc + " " + body_strip
            if acc.rstrip().endswith("&"):
                pending = (start, acc.rstrip()[:-1])
                continue
            pending = None
            yield _finish(acc, start)
            continue
        if body.rstrip().endswith("&"):
            pending = (line_no, body.rstrip()[:-1])
            continue
        yield _finish(body, line_no)
    if pending is not None:
        yield _finish(pending[1], pending[0])


def _finish(text: str, line_no: int) -> LogicalLine:
    toks = tokenize_line(text, line_no)
    label = None
    if toks and toks[0].kind is TokKind.INT and len(toks) > 1:
        label = int(toks[0].text)
        toks = toks[1:]
    return LogicalLine(label=label, tokens=toks, line=line_no)
