"""Pisces Fortran: the extended-Fortran front end (section 10).

Grammar summary (concrete syntax reconstructed from the paper's text;
the original User's Manual [6] is not in the paper):

Program units::

    TASK NAME(P1, P2) ... END TASK
    SUBROUTINE NAME(P1) ... END
    HANDLER MSGTYPE(A1, A2) ... END HANDLER

Declarations (inside units)::

    INTEGER I, A(10)            REAL X          DOUBLE PRECISION D
    LOGICAL FLAG                CHARACTER S     TASKID T, KIDS(8)
    WINDOW W                    LOCK L
    SHARED COMMON /BLK/ G(100), N
    SIGNAL GO, DONE             HANDLER RESULT

Pisces statements::

    ON ANY INITIATE WORKER(I)            (also CLUSTER <n>, OTHER, SAME)
    TO PARENT SEND HELLO(K)              (also SELF, SENDER, USER,
                                          TCONTR <n>, ALL [CLUSTER <n>],
                                          a TASKID variable)
    ACCEPT 3 OF A, B                     (single-line, total count)
    ACCEPT OF                            (block form, per-type counts)
      2 OF A
      ALL OF B
    DELAY 500 THEN
      ...statements...
    END ACCEPT
    FORCESPLIT
    BARRIER ... END BARRIER
    CRITICAL L ... END CRITICAL
    PRESCHED DO 10 I = 1, N ... 10 CONTINUE      (also SELFSCHED, END DO)
    PARSEG ... NEXTSEG ... ENDSEG
    COMPUTE <ticks>                      (reproduction extension: charge
                                          virtual work for measurement)

Fortran subset: assignment, block IF/ELSE IF/ELSE/END IF, logical IF,
DO (labelled or END DO), DO WHILE, CALL, PRINT * / WRITE (*,*),
PARAMETER, DATA, RETURN, STOP, CONTINUE; expressions with ** // and the
dotted operators; intrinsics ABS MAX MIN MOD SQRT SIN COS TAN EXP LOG
ATAN INT REAL FLOAT DBLE NINT.  GOTO is rejected with a clear error.
"""

from .lexer import LogicalLine, TokKind, Token, logical_lines, tokenize_line
from .parser import parse_source
from .preprocessor import (
    PiscesFortranProgram,
    generate_python,
    preprocess,
)

__all__ = [
    "LogicalLine",
    "PiscesFortranProgram",
    "TokKind",
    "Token",
    "generate_python",
    "logical_lines",
    "parse_source",
    "preprocess",
    "tokenize_line",
]
