"""Parser for Pisces Fortran.

Line-oriented recursive descent over :class:`~repro.fortran.lexer.
LogicalLine` streams.  Produces a :class:`~repro.fortran.ast_nodes.
Program`.  The exact concrete syntax of the PISCES 2 User's Manual [6]
is not in the paper; the statement forms below follow the paper's text
(sections 6, 7, 10) with conventional F77 spelling for the rest.  See
the package docstring for the full grammar summary.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from ..errors import ParseError
from .ast_nodes import (
    AcceptSpecItem, AcceptStmt, ArrayRef, Assign, BarrierStmt, BinOp,
    CallStmt, ComputeStmt, ContinueStmt, CriticalStmt, Declaration, DimSpec,
    DoLoop, ForceSplitStmt, HandlerDecl, IfBlock, InitiateStmt, LockDecl,
    LogicalConst, LogicalIf, MultiStmt, Num, ParsegStmt, PrintStmt, Program,
    ProgramUnit, ReturnStmt, SendStmt, SharedCommonDecl, SignalDecl,
    StopStmt, Str, UnOp, Var, WhileLoop,
)
from .lexer import LogicalLine, TokKind, Token, logical_lines

_TYPE_KEYWORDS = {"INTEGER", "REAL", "LOGICAL", "CHARACTER", "TASKID",
                  "WINDOW", "DOUBLEPRECISION"}

_REL_OPS = {".EQ.": ".EQ.", "==": ".EQ.", ".NE.": ".NE.", "<>": ".NE.",
            ".LT.": ".LT.", "<": ".LT.", ".LE.": ".LE.", "<=": ".LE.",
            ".GT.": ".GT.", ">": ".GT.", ".GE.": ".GE.", ">=": ".GE."}


class ExprParser:
    """Pratt-style expression parser over one token list."""

    def __init__(self, toks: List[Token], pos: int, line: int):
        self.toks = toks
        self.pos = pos
        self.line = line

    # helpers -------------------------------------------------------------

    def peek(self) -> Optional[Token]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> Token:
        t = self.peek()
        if t is None:
            raise ParseError("unexpected end of statement", self.line)
        self.pos += 1
        return t

    def expect_op(self, op: str) -> None:
        t = self.next()
        if not t.is_op(op):
            raise ParseError(f"expected {op!r}, found {t.text!r}", self.line)

    # grammar -------------------------------------------------------------

    def parse(self):
        return self.parse_or()

    def parse_or(self):
        left = self.parse_and()
        while (t := self.peek()) is not None and t.is_op(".OR."):
            self.next()
            left = BinOp(".OR.", left, self.parse_and())
        return left

    def parse_and(self):
        left = self.parse_not()
        while (t := self.peek()) is not None and t.is_op(".AND."):
            self.next()
            left = BinOp(".AND.", left, self.parse_not())
        return left

    def parse_not(self):
        t = self.peek()
        if t is not None and t.is_op(".NOT."):
            self.next()
            return UnOp(".NOT.", self.parse_not())
        return self.parse_rel()

    def parse_rel(self):
        left = self.parse_add()
        t = self.peek()
        if t is not None and t.kind is TokKind.OP and t.text in _REL_OPS:
            self.next()
            return BinOp(_REL_OPS[t.text], left, self.parse_add())
        return left

    def parse_add(self):
        left = self.parse_mul()
        while (t := self.peek()) is not None and t.is_op("+", "-", "//"):
            self.next()
            left = BinOp(t.text, left, self.parse_mul())
        return left

    def parse_mul(self):
        left = self.parse_unary()
        while (t := self.peek()) is not None and t.is_op("*", "/"):
            self.next()
            left = BinOp(t.text, left, self.parse_unary())
        return left

    def parse_unary(self):
        t = self.peek()
        if t is not None and t.is_op("-", "+"):
            self.next()
            return UnOp(t.text, self.parse_unary())
        return self.parse_power()

    def parse_power(self):
        base = self.parse_primary()
        t = self.peek()
        if t is not None and t.is_op("**"):
            self.next()
            return BinOp("**", base, self.parse_unary())  # right assoc
        return base

    def parse_primary(self):
        t = self.next()
        if t.kind in (TokKind.INT, TokKind.REAL):
            return Num(t.text)
        if t.kind is TokKind.STRING:
            return Str(t.text)
        if t.is_op(".TRUE."):
            return LogicalConst(True)
        if t.is_op(".FALSE."):
            return LogicalConst(False)
        if t.is_op("("):
            e = self.parse()
            self.expect_op(")")
            return e
        if t.kind is TokKind.NAME:
            nxt = self.peek()
            if nxt is not None and nxt.is_op("("):
                self.next()
                args = self.parse_arglist()
                return ArrayRef(t.text, tuple(args))
            return Var(t.text)
        raise ParseError(f"unexpected token {t.text!r} in expression",
                         self.line)

    def parse_arglist(self) -> List:
        args: List = []
        t = self.peek()
        if t is not None and t.is_op(")"):
            self.next()
            return args
        while True:
            args.append(self.parse())
            t = self.next()
            if t.is_op(")"):
                return args
            if not t.is_op(","):
                raise ParseError(f"expected ',' or ')' in argument list, "
                                 f"found {t.text!r}", self.line)


class Parser:
    """Statement/unit parser over the logical-line stream."""

    def __init__(self, source: str):
        self.lines: List[LogicalLine] = list(logical_lines(source))
        self.pos = 0

    # ------------------------------------------------------------ stream --

    def peek_line(self) -> Optional[LogicalLine]:
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next_line(self) -> LogicalLine:
        ll = self.peek_line()
        if ll is None:
            last = self.lines[-1].line if self.lines else 0
            raise ParseError("unexpected end of source", last)
        self.pos += 1
        return ll

    # ------------------------------------------------------------ program --

    def parse_program(self) -> Program:
        prog = Program()
        while (ll := self.peek_line()) is not None:
            toks = ll.tokens
            if toks and toks[0].is_name("TASK"):
                prog.units.append(self._parse_unit("TASK"))
            elif toks and toks[0].is_name("SUBROUTINE"):
                prog.units.append(self._parse_unit("SUBROUTINE"))
            elif toks and toks[0].is_name("HANDLER"):
                prog.units.append(self._parse_unit("HANDLER"))
            else:
                raise ParseError(
                    f"expected TASK, SUBROUTINE or HANDLER definition, "
                    f"found {ll.text!r}", ll.line)
        if not prog.units:
            raise ParseError("empty program", 1)
        return prog

    def _parse_unit(self, kind: str) -> ProgramUnit:
        ll = self.next_line()
        toks = ll.tokens
        if len(toks) < 2 or toks[1].kind is not TokKind.NAME:
            raise ParseError(f"{kind} needs a name", ll.line)
        name = toks[1].text
        params: List[str] = []
        if len(toks) > 2:
            if not toks[2].is_op("("):
                raise ParseError(f"bad {kind} header", ll.line)
            i = 3
            while i < len(toks) and not toks[i].is_op(")"):
                if toks[i].kind is TokKind.NAME:
                    params.append(toks[i].text)
                elif not toks[i].is_op(","):
                    raise ParseError("bad parameter list", ll.line)
                i += 1
        unit = ProgramUnit(kind=kind, name=name, params=params, line=ll.line)
        unit.body = self._parse_body(unit, end_words={(kind,), ("END",)})
        return unit

    # --------------------------------------------------------------- body --

    def _is_end(self, ll: LogicalLine, end_words) -> bool:
        toks = ll.tokens
        if not toks or not toks[0].is_name("END"):
            return False
        if len(toks) == 1:
            return ("END",) in end_words
        return (toks[1].text,) in end_words

    def _parse_body(self, unit: Optional[ProgramUnit],
                    end_words) -> List:
        """Parse statements until an END line; consumes the END line."""
        body: List = []
        while True:
            ll = self.peek_line()
            if ll is None:
                raise ParseError("missing END", self.lines[-1].line)
            if self._is_end(ll, end_words):
                self.next_line()
                return body
            stmt = self._parse_statement(unit)
            if stmt is not None:
                body.append(stmt)
                if isinstance(stmt, ForceSplitStmt):
                    # The rest of the unit runs in every force member.
                    stmt.rest = self._parse_body(unit, end_words)
                    return body

    def _parse_block(self, unit, *terminators: Tuple[str, ...]) -> Tuple[List, Tuple[str, ...]]:
        """Parse statements until one of the terminator token-tuples;
        returns (body, terminator seen); consumes the terminator line."""
        body: List = []
        while True:
            ll = self.peek_line()
            if ll is None:
                raise ParseError("missing block terminator "
                                 f"{terminators}", self.lines[-1].line)
            words = tuple(t.text for t in ll.tokens
                          if t.kind is TokKind.NAME)
            for term in terminators:
                if words[:len(term)] == term:
                    self.next_line()
                    return body, term
            stmt = self._parse_statement(unit)
            if stmt is not None:
                body.append(stmt)

    def _parse_labelled_block(self, unit, label: int) -> List:
        """Parse statements until the line carrying ``label`` (classic
        ``DO 10 ... / 10 CONTINUE``); the labelled line is executed too."""
        body: List = []
        while True:
            ll = self.peek_line()
            if ll is None:
                raise ParseError(f"missing statement label {label}",
                                 self.lines[-1].line)
            hit = ll.label == label
            stmt = self._parse_statement(unit)
            if stmt is not None:
                body.append(stmt)
            if hit:
                return body

    # ---------------------------------------------------------- statement --

    def _parse_statement(self, unit):
        ll = self.next_line()
        toks = ll.tokens
        if not toks:
            return None
        head = toks[0]
        if head.kind is not TokKind.NAME:
            raise ParseError(f"cannot parse statement {ll.text!r}", ll.line)
        w = head.text

        # ---- declarations ------------------------------------------------
        if w in _TYPE_KEYWORDS or (w == "DOUBLE" and len(toks) > 1
                                   and toks[1].is_name("PRECISION")):
            return self._parse_declaration(unit, ll)
        if w == "SHARED":
            return self._parse_shared_common(unit, ll)
        if w == "LOCK":
            names = self._parse_name_list(toks[1:], ll)
            if unit is not None:
                unit.locks.extend(names)
            return None
        if w == "SIGNAL":
            names = self._parse_name_list(toks[1:], ll)
            if unit is not None:
                unit.signal_types.extend(names)
            return None
        if w == "HANDLER":
            names = self._parse_name_list(toks[1:], ll)
            if unit is not None:
                unit.handler_types.extend(names)
            return None

        # ---- Pisces statements -------------------------------------------
        if w == "ON":
            return self._parse_initiate(ll)
        if w == "TO":
            return self._parse_send(ll)
        if w == "ACCEPT":
            return self._parse_accept(unit, ll)
        if w == "FORCESPLIT":
            return ForceSplitStmt(line=ll.line)
        if w == "BARRIER":
            body, _ = self._parse_block(unit, ("END", "BARRIER"))
            return BarrierStmt(body=body, line=ll.line)
        if w == "CRITICAL":
            if len(toks) < 2 or toks[1].kind is not TokKind.NAME:
                raise ParseError("CRITICAL needs a lock variable", ll.line)
            body, _ = self._parse_block(unit, ("END", "CRITICAL"))
            return CriticalStmt(lock=toks[1].text, body=body, line=ll.line)
        if w == "PARSEG":
            return self._parse_parseg(unit, ll)
        if w in ("PRESCHED", "SELFSCHED"):
            if len(toks) < 2 or not toks[1].is_name("DO"):
                raise ParseError(f"{w} must be followed by DO", ll.line)
            return self._parse_do(unit, ll, toks[1:], sched=w)
        if w == "COMPUTE":
            e = self._parse_expr(toks, 1, ll.line)
            return ComputeStmt(ticks=e, line=ll.line)

        # ---- Fortran statements ------------------------------------------
        if w == "IF":
            return self._parse_if(unit, ll)
        if w == "ELSE" or w == "ELSEIF" or w == "ENDIF":
            raise ParseError(f"{w} outside an IF block", ll.line)
        if w == "DO":
            return self._parse_do(unit, ll, toks, sched=None)
        if w == "CALL":
            if len(toks) < 2 or toks[1].kind is not TokKind.NAME:
                raise ParseError("CALL needs a subroutine name", ll.line)
            args: Tuple = ()
            if len(toks) > 2:
                ep = ExprParser(toks, 2, ll.line)
                ep.expect_op("(")
                args = tuple(ep.parse_arglist())
            return CallStmt(name=toks[1].text, args=args, line=ll.line)
        if w == "PRINT":
            return self._parse_print(ll)
        if w == "WRITE":
            return self._parse_write(ll)
        if w == "PARAMETER":
            return self._parse_parameter(unit, ll)
        if w == "DATA":
            return self._parse_data(unit, ll)
        if w == "RETURN":
            return ReturnStmt(line=ll.line)
        if w == "STOP":
            return StopStmt(line=ll.line)
        if w == "CONTINUE":
            return ContinueStmt(label=ll.label, line=ll.line)
        if w in ("GOTO", "GO"):
            raise ParseError("GOTO is not supported by this preprocessor "
                             "(use block IF / DO)", ll.line)

        # ---- assignment ---------------------------------------------------
        return self._parse_assign(ll)

    # ------------------------------------------------------ declarations --

    def _parse_declaration(self, unit, ll: LogicalLine) -> None:
        toks = ll.tokens
        if toks[0].is_name("DOUBLE"):
            ftype, start = "DOUBLEPRECISION", 2
        else:
            ftype, start = toks[0].text, 1
        ents = self._parse_dimspec_list(toks, start, ll)
        decl = Declaration(ftype=ftype, entities=ents, line=ll.line)
        if unit is not None:
            unit.decls.append(decl)
        return None

    def _parse_shared_common(self, unit, ll: LogicalLine) -> None:
        toks = ll.tokens
        # SHARED COMMON / NAME / a(10), b
        if (len(toks) < 5 or not toks[1].is_name("COMMON")
                or not toks[2].is_op("/")
                or toks[3].kind is not TokKind.NAME
                or not toks[4].is_op("/")):
            raise ParseError("expected SHARED COMMON /NAME/ list", ll.line)
        ents = self._parse_dimspec_list(toks, 5, ll)
        if unit is not None:
            unit.shared.append(SharedCommonDecl(block=toks[3].text,
                                                entities=ents, line=ll.line))
        return None

    def _parse_dimspec_list(self, toks, start: int,
                            ll: LogicalLine) -> List[DimSpec]:
        ents: List[DimSpec] = []
        i = start
        while i < len(toks):
            t = toks[i]
            if t.kind is not TokKind.NAME:
                raise ParseError(f"expected a name in declaration, found "
                                 f"{t.text!r}", ll.line)
            name = t.text
            i += 1
            dims: Tuple = ()
            if i < len(toks) and toks[i].is_op("("):
                ep = ExprParser(toks, i + 1, ll.line)
                # parse_arglist expects to be positioned after '('
                args = []
                while True:
                    args.append(ep.parse())
                    nxt = ep.next()
                    if nxt.is_op(")"):
                        break
                    if not nxt.is_op(","):
                        raise ParseError("bad dimension list", ll.line)
                dims = tuple(args)
                i = ep.pos
            ents.append(DimSpec(name=name, dims=dims))
            if i < len(toks):
                if not toks[i].is_op(","):
                    raise ParseError(f"expected ',' in declaration, found "
                                     f"{toks[i].text!r}", ll.line)
                i += 1
        if not ents:
            raise ParseError("empty declaration", ll.line)
        return ents

    def _parse_name_list(self, toks, ll: LogicalLine) -> List[str]:
        names = [t.text for t in toks if t.kind is TokKind.NAME]
        if not names:
            raise ParseError("expected a name list", ll.line)
        return names

    # ----------------------------------------------------------- Pisces ----

    def _parse_initiate(self, ll: LogicalLine) -> InitiateStmt:
        toks = ll.tokens
        # ON CLUSTER <expr> INITIATE T(args) | ON ANY/OTHER/SAME INITIATE ...
        i = 1
        placement: Union[str, object]
        if i < len(toks) and toks[i].is_name("CLUSTER"):
            ep = ExprParser(toks, i + 1, ll.line)
            placement = ep.parse()
            i = ep.pos
        elif i < len(toks) and toks[i].is_name("ANY", "OTHER", "SAME"):
            placement = toks[i].text
            i += 1
        else:
            raise ParseError("ON needs CLUSTER <n>, ANY, OTHER or SAME",
                             ll.line)
        if i >= len(toks) or not toks[i].is_name("INITIATE"):
            raise ParseError("expected INITIATE", ll.line)
        i += 1
        if i >= len(toks) or toks[i].kind is not TokKind.NAME:
            raise ParseError("INITIATE needs a tasktype name", ll.line)
        name = toks[i].text
        i += 1
        args: Tuple = ()
        if i < len(toks) and toks[i].is_op("("):
            ep = ExprParser(toks, i + 1, ll.line)
            args = tuple(ep.parse_arglist())
        return InitiateStmt(placement=placement, tasktype=name, args=args,
                            line=ll.line)

    def _parse_send(self, ll: LogicalLine) -> SendStmt:
        toks = ll.tokens
        i = 1
        dest_kind: str
        dest_expr = None
        if toks[i].is_name("PARENT", "SELF", "SENDER", "USER"):
            dest_kind = toks[i].text
            i += 1
        elif toks[i].is_name("TCONTR"):
            ep = ExprParser(toks, i + 1, ll.line)
            dest_expr = ep.parse()
            i = ep.pos
            dest_kind = "TCONTR"
        elif toks[i].is_name("ALL"):
            i += 1
            dest_kind = "ALL"
            if i < len(toks) and toks[i].is_name("CLUSTER"):
                ep = ExprParser(toks, i + 1, ll.line)
                dest_expr = ep.parse()
                i = ep.pos
        else:
            # taskid-valued variable or array element
            ep = ExprParser(toks, i, ll.line)
            dest_expr = ep.parse()
            i = ep.pos
            dest_kind = "VAR"
        if i >= len(toks) or not toks[i].is_name("SEND"):
            raise ParseError("expected SEND after destination", ll.line)
        i += 1
        if i >= len(toks) or toks[i].kind is not TokKind.NAME:
            raise ParseError("SEND needs a message type", ll.line)
        mtype = toks[i].text
        i += 1
        args: Tuple = ()
        if i < len(toks) and toks[i].is_op("("):
            ep = ExprParser(toks, i + 1, ll.line)
            args = tuple(ep.parse_arglist())
        return SendStmt(dest_kind=dest_kind, dest_expr=dest_expr,
                        mtype=mtype, args=args, line=ll.line)

    def _parse_accept(self, unit, ll: LogicalLine) -> AcceptStmt:
        toks = ll.tokens
        stmt = AcceptStmt(total=None, items=[], line=ll.line)
        i = 1
        # single-line: ACCEPT <n> OF T1, T2  |  ACCEPT T1  |  block form
        if i < len(toks):
            if toks[i].is_name("OF"):
                i += 1
            elif not toks[i].is_name("OF"):
                # count expression up to OF, or a bare type list
                j = i
                depth = 0
                of_at = None
                while j < len(toks):
                    if toks[j].is_op("("):
                        depth += 1
                    elif toks[j].is_op(")"):
                        depth -= 1
                    elif depth == 0 and toks[j].is_name("OF"):
                        of_at = j
                        break
                    j += 1
                if of_at is not None:
                    ep = ExprParser(toks[:of_at], i, ll.line)
                    stmt.total = ep.parse()
                    i = of_at + 1
        # remaining tokens on the line: type list
        if i < len(toks):
            names = self._parse_name_list(toks[i:], ll)
            for n in names:
                stmt.items.append(AcceptSpecItem(count=None, mtype=n))
            return stmt
        # Block form: type lines until DELAY or END ACCEPT.
        while True:
            nxt = self.peek_line()
            if nxt is None:
                raise ParseError("unterminated ACCEPT", ll.line)
            words = [t.text for t in nxt.tokens if t.kind is TokKind.NAME]
            if words[:1] == ["DELAY"]:
                self.next_line()
                ep = ExprParser(nxt.tokens, 1, nxt.line)
                stmt.delay = ep.parse()
                if ep.pos < len(nxt.tokens) and \
                        nxt.tokens[ep.pos].is_name("THEN"):
                    stmt.delay_body, _ = self._parse_block(
                        unit, ("END", "ACCEPT"))
                else:
                    _, _ = self._parse_block(unit, ("END", "ACCEPT"))
                    stmt.delay_body = []
                return stmt
            if words[:2] == ["END", "ACCEPT"]:
                self.next_line()
                return stmt
            self.next_line()
            stmt.items.append(self._parse_accept_item(nxt))

    def _parse_accept_item(self, ll: LogicalLine) -> AcceptSpecItem:
        toks = ll.tokens
        # A leading integer count was lexed as a statement label; put it
        # back (labels have no meaning on ACCEPT item lines).
        if ll.label is not None:
            toks = [Token(TokKind.INT, str(ll.label), ll.line, 0)] + toks
        # <count> OF <type> | ALL OF <type> | <type>
        of_at = None
        for j, t in enumerate(toks):
            if t.is_name("OF"):
                of_at = j
                break
        if of_at is None:
            if len(toks) == 1 and toks[0].kind is TokKind.NAME:
                return AcceptSpecItem(count=None, mtype=toks[0].text)
            raise ParseError(f"bad ACCEPT item {ll.text!r}", ll.line)
        if of_at == 1 and toks[0].is_name("ALL"):
            count: Union[str, object] = "ALL"
        else:
            ep = ExprParser(toks[:of_at], 0, ll.line)
            count = ep.parse()
        if of_at + 1 >= len(toks) or toks[of_at + 1].kind is not TokKind.NAME:
            raise ParseError("ACCEPT item needs a message type", ll.line)
        return AcceptSpecItem(count=count, mtype=toks[of_at + 1].text)

    def _parse_parseg(self, unit, ll: LogicalLine) -> ParsegStmt:
        segs: List[List] = []
        current: List = []
        while True:
            nxt = self.peek_line()
            if nxt is None:
                raise ParseError("unterminated PARSEG", ll.line)
            words = [t.text for t in nxt.tokens if t.kind is TokKind.NAME]
            if words[:1] == ["NEXTSEG"]:
                self.next_line()
                segs.append(current)
                current = []
                continue
            if words[:1] == ["ENDSEG"] or words[:2] == ["END", "SEG"]:
                self.next_line()
                segs.append(current)
                return ParsegStmt(segments=segs, line=ll.line)
            stmt = self._parse_statement(unit)
            if stmt is not None:
                current.append(stmt)

    # ---------------------------------------------------------- Fortran ----

    def _parse_if(self, unit, ll: LogicalLine):
        toks = ll.tokens
        ep = ExprParser(toks, 1, ll.line)
        ep.expect_op("(")
        cond = ep.parse()
        ep.expect_op(")")
        if ep.pos < len(toks) and toks[ep.pos].is_name("THEN"):
            conditions = [cond]
            arms: List[List] = []
            while True:
                body, term = self._parse_block(
                    unit, ("ELSEIF",), ("ELSE", "IF"), ("ELSE",),
                    ("ENDIF",), ("END", "IF"))
                arms.append(body)  # belongs to the latest condition
                if term in (("ENDIF",), ("END", "IF")):
                    return IfBlock(conditions=conditions, arms=arms,
                                   else_arm=None, line=ll.line)
                if term in (("ELSEIF",), ("ELSE", "IF")):
                    # Re-parse the condition from the terminator line:
                    # skip the leading ELSE IF / ELSEIF keyword names,
                    # then read the parenthesized condition.
                    tl = self.lines[self.pos - 1]
                    k = 0
                    while k < len(tl.tokens) and \
                            not tl.tokens[k].is_op("("):
                        k += 1
                    ep2 = ExprParser(tl.tokens, k, tl.line)
                    ep2.expect_op("(")
                    conditions.append(ep2.parse())
                    ep2.expect_op(")")
                    continue
                # term == ("ELSE",)
                else_body, _ = self._parse_block(
                    unit, ("ENDIF",), ("END", "IF"))
                return IfBlock(conditions=conditions, arms=arms,
                               else_arm=else_body, line=ll.line)
        # logical IF: IF (cond) <stmt>  -- reparse the tail as a statement
        rest = toks[ep.pos:]
        if not rest:
            raise ParseError("IF needs THEN or a statement", ll.line)
        sub = LogicalLine(label=None, tokens=rest, line=ll.line)
        self.lines.insert(self.pos, sub)
        stmt = self._parse_statement(unit)
        return LogicalIf(condition=cond, stmt=stmt, line=ll.line)

    def _parse_do(self, unit, ll: LogicalLine, toks: List[Token],
                  sched: Optional[str]):
        # toks[0] is DO.  Forms: DO WHILE (cond) | DO [label] v = a, b[, c]
        i = 1
        if i < len(toks) and toks[i].is_name("WHILE"):
            if sched is not None:
                raise ParseError(f"{sched} cannot apply to DO WHILE",
                                 ll.line)
            ep = ExprParser(toks, i + 1, ll.line)
            ep.expect_op("(")
            cond = ep.parse()
            ep.expect_op(")")
            body, _ = self._parse_block(unit, ("END", "DO"), ("ENDDO",))
            return WhileLoop(condition=cond, body=body, line=ll.line)
        label = None
        if i < len(toks) and toks[i].kind is TokKind.INT:
            label = int(toks[i].text)
            i += 1
        if i >= len(toks) or toks[i].kind is not TokKind.NAME:
            raise ParseError("DO needs a loop variable", ll.line)
        var = toks[i].text
        i += 1
        if i >= len(toks) or not toks[i].is_op("="):
            raise ParseError("DO needs '='", ll.line)
        ep = ExprParser(toks, i + 1, ll.line)
        first = ep.parse()
        ep.expect_op(",")
        last = ep.parse()
        step = None
        if ep.peek() is not None and ep.peek().is_op(","):
            ep.next()
            step = ep.parse()
        if label is not None:
            body = self._parse_labelled_block(unit, label)
        else:
            body, _ = self._parse_block(unit, ("END", "DO"), ("ENDDO",))
        return DoLoop(var=var, first=first, last=last, step=step,
                      body=body, sched=sched, label=label, line=ll.line)

    def _parse_write(self, ll: LogicalLine) -> PrintStmt:
        """``WRITE (*, *) list`` -- list-directed terminal output only
        (unit numbers other than * are not supported)."""
        toks = ll.tokens
        ep = ExprParser(toks, 1, ll.line)
        ep.expect_op("(")
        for expected in ("*", ",", "*", ")"):
            t = ep.next()
            if not t.is_op(expected):
                raise ParseError(
                    "only WRITE (*,*) list-directed output is supported",
                    ll.line)
        items: List = []
        if ep.peek() is not None:
            while True:
                items.append(ep.parse())
                if ep.peek() is None:
                    break
                ep.expect_op(",")
        return PrintStmt(items=items, line=ll.line)

    def _parse_parameter(self, unit, ll: LogicalLine):
        """``PARAMETER (NAME = expr, ...)`` -- named constants become
        plain assignments evaluated once at unit entry."""
        toks = ll.tokens
        ep = ExprParser(toks, 1, ll.line)
        ep.expect_op("(")
        assigns: List[Assign] = []
        while True:
            t = ep.next()
            if t.kind is not TokKind.NAME:
                raise ParseError("PARAMETER needs NAME = value", ll.line)
            name = t.text
            ep.expect_op("=")
            value = ep.parse()
            assigns.append(Assign(target=Var(name), value=value,
                                  line=ll.line))
            t = ep.next()
            if t.is_op(")"):
                break
            if not t.is_op(","):
                raise ParseError("expected ',' or ')' in PARAMETER",
                                 ll.line)
        if len(assigns) == 1:
            return assigns[0]
        return MultiStmt(stmts=list(assigns), line=ll.line)

    def _parse_data(self, unit, ll: LogicalLine):
        """``DATA var /value/ [, var2 /value2/ ...]`` -- initializers
        become assignments at the point of declaration."""
        toks = ll.tokens
        i = 1
        assigns: List[Assign] = []
        while i < len(toks):
            if toks[i].kind is not TokKind.NAME:
                raise ParseError("DATA needs var /value/ pairs", ll.line)
            name = toks[i].text
            i += 1
            if i >= len(toks) or not toks[i].is_op("/"):
                raise ParseError("DATA needs /value/ after the name",
                                 ll.line)
            # The value is a (possibly signed) literal -- a full
            # expression parse would eat the closing '/' as division.
            ep = ExprParser(toks, i + 1, ll.line)
            sign = None
            if ep.peek() is not None and ep.peek().is_op("-", "+"):
                sign = ep.next().text
            value = ep.parse_primary()
            if sign == "-":
                value = UnOp("-", value)
            i = ep.pos
            if i >= len(toks) or not toks[i].is_op("/"):
                raise ParseError("unterminated /value/ in DATA", ll.line)
            i += 1
            assigns.append(Assign(target=Var(name), value=value,
                                  line=ll.line))
            if i < len(toks):
                if not toks[i].is_op(","):
                    raise ParseError("expected ',' between DATA items",
                                     ll.line)
                i += 1
        if not assigns:
            raise ParseError("empty DATA statement", ll.line)
        if len(assigns) == 1:
            return assigns[0]
        return MultiStmt(stmts=list(assigns), line=ll.line)

    def _parse_print(self, ll: LogicalLine) -> PrintStmt:
        toks = ll.tokens
        i = 1
        if i < len(toks) and toks[i].is_op("*"):
            i += 1
        if i < len(toks) and toks[i].is_op(","):
            i += 1
        items: List = []
        if i < len(toks):
            ep = ExprParser(toks, i, ll.line)
            while True:
                items.append(ep.parse())
                if ep.peek() is None:
                    break
                ep.expect_op(",")
        return PrintStmt(items=items, line=ll.line)

    def _parse_assign(self, ll: LogicalLine) -> Assign:
        toks = ll.tokens
        ep = ExprParser(toks, 0, ll.line)
        target = ep.parse_primary()
        if not isinstance(target, (Var, ArrayRef)):
            raise ParseError(f"bad assignment target in {ll.text!r}",
                             ll.line)
        t = ep.next()
        if not t.is_op("="):
            raise ParseError(f"cannot parse statement {ll.text!r} "
                             f"(expected '=')", ll.line)
        value = ep.parse()
        if ep.peek() is not None:
            raise ParseError(f"trailing tokens after assignment: "
                             f"{ep.peek().text!r}", ll.line)
        return Assign(target=target, value=value, line=ll.line)

    def _parse_expr(self, toks, start: int, line: int):
        ep = ExprParser(toks, start, line)
        e = ep.parse()
        return e


def parse_source(source: str) -> Program:
    """Parse a complete Pisces Fortran program."""
    return Parser(source).parse_program()
