"""Run-time support for preprocessed Pisces Fortran programs.

The preprocessor (section 10) "converts Pisces Fortran programs into
standard Fortran 77, with embedded calls on the Pisces run-time
library"; here the host language is Python and this module is the shim
the generated code calls: Fortran-semantics arrays (1-based, column
type), DO ranges, intrinsics, and re-exports of the run-time library's
destination/placement constants.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..core.accept import ALL_RECEIVED
from ..core.taskid import (
    ANY, Broadcast, Cluster, OTHER, PARENT, SAME, SELF, SENDER, TContr,
    USER, TaskId,
)

_DTYPES = {
    "INTEGER": "i8",
    "REAL": "f8",
    "DOUBLEPRECISION": "f8",
    "LOGICAL": "i8",
    "CHARACTER": "O",
    "TASKID": "O",
    "WINDOW": "O",
}


def dtype_for(ftype: str) -> str:
    return _DTYPES.get(ftype, "f8")


def zero_for(ftype: str) -> Any:
    if ftype == "INTEGER":
        return 0
    if ftype in ("REAL", "DOUBLEPRECISION"):
        return 0.0
    if ftype == "LOGICAL":
        return False
    if ftype == "CHARACTER":
        return ""
    return None


class FArray:
    """A Fortran array: 1-based indexing over a numpy store.

    ``shared`` arrays wrap storage owned by a SHARED COMMON block and
    are kept by reference when a namespace is copied at FORCESPLIT;
    task-local arrays are copied per force member (each member is a
    replicated copy of the task).
    """

    __slots__ = ("data", "shared")

    def __init__(self, ftype_or_dtype: str, dims: Tuple[int, ...],
                 shared: bool = False):
        dtype = _DTYPES.get(ftype_or_dtype, ftype_or_dtype)
        if dtype == "O":
            self.data = np.empty(dims, dtype=object)
        else:
            self.data = np.zeros(dims, dtype=dtype)
        self.shared = shared

    @classmethod
    def wrap(cls, array: np.ndarray) -> "FArray":
        fa = cls.__new__(cls)
        fa.data = array
        fa.shared = True
        return fa

    def _index(self, idx) -> Tuple[int, ...]:
        if not isinstance(idx, tuple):
            idx = (idx,)
        out = []
        for i in idx:
            out.append(int(i) - 1)
        return tuple(out)

    def __getitem__(self, idx):
        v = self.data[self._index(idx)]
        if isinstance(v, np.generic):
            return v.item()
        return v

    def __setitem__(self, idx, value) -> None:
        self.data[self._index(idx)] = value

    def copy(self) -> "FArray":
        if self.shared:
            return self
        fa = FArray.__new__(FArray)
        fa.data = self.data.copy()
        fa.shared = False
        return fa

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FArray(shape={self.data.shape}, shared={self.shared})"


class Namespace:
    """The local-variable bag of one Fortran program unit execution."""

    def copy(self) -> "Namespace":
        """Per-force-member copy: locals duplicated, shared kept."""
        ns = Namespace()
        for k, v in self.__dict__.items():
            if isinstance(v, FArray):
                ns.__dict__[k] = v.copy()
            elif isinstance(v, np.ndarray):
                ns.__dict__[k] = v          # shared scalar (0-d view)
            else:
                ns.__dict__[k] = v
        return ns


def frange(first, last, step=None) -> range:
    """The index set of ``DO v = first, last [, step]`` (inclusive)."""
    f, l = int(first), int(last)
    s = 1 if step is None else int(step)
    if s == 0:
        raise ValueError("DO step of zero")
    if s > 0:
        return range(f, l + 1, s)
    return range(f, l - 1, s)


def div(a, b):
    """Fortran division: integer operands truncate toward zero."""
    if isinstance(a, int) and isinstance(b, int):
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    return a / b


def truth(v) -> bool:
    return bool(v)


def fmt(*items) -> str:
    """PRINT *-style list-directed output."""
    return " ".join(str(i) for i in items)


# ---------------------------------------------------------- window shims --

def wshrink(w, *bounds):
    """WSHRINK helper: 1-based inclusive lo/hi pairs -> Window.shrink."""
    if len(bounds) % 2 != 0:
        raise ValueError("WSHRINK needs lo/hi pairs")
    region = tuple((int(lo) - 1, int(hi))
                   for lo, hi in zip(bounds[::2], bounds[1::2]))
    return w.shrink(region)


def wread(ctx, farray: FArray, w) -> None:
    """WREAD helper: window contents into a declared Fortran array."""
    data = ctx.window_read(w)
    if data.size != farray.data.size:
        raise ValueError(
            f"WREAD: window has {data.size} elements, array has "
            f"{farray.data.size}")
    farray.data[...] = data.reshape(farray.data.shape)


# ------------------------------------------------------------- intrinsics --

def f_max(*args):
    return max(args)


def f_min(*args):
    return min(args)


def f_mod(a, b):
    if isinstance(a, int) and isinstance(b, int):
        return int(math.fmod(a, b))
    return math.fmod(a, b)


def f_int(x):
    return int(x)


def f_real(x):
    return float(x)


def f_nint(x):
    return int(round(x))


INTRINSICS: Dict[str, Any] = {
    "ABS": abs,
    "MAX": f_max,
    "MIN": f_min,
    "MOD": f_mod,
    "SQRT": math.sqrt,
    "SIN": math.sin,
    "COS": math.cos,
    "TAN": math.tan,
    "EXP": math.exp,
    "LOG": math.log,
    "ATAN": math.atan,
    "INT": f_int,
    "REAL": f_real,
    "FLOAT": f_real,
    "DBLE": f_real,
    "NINT": f_nint,
    "IABS": abs,
    "LEN": len,
}


def intrinsic(name: str):
    return INTRINSICS[name]
