"""AST node definitions for Pisces Fortran.

Expressions are kept as small dataclass trees; statements carry their
source line for error messages.  The grammar implemented is the Fortran
77 subset a scientific code of the era needs, plus every Pisces
extension statement the paper defines (sections 6, 7, 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

# ------------------------------------------------------------ expressions --


@dataclass(frozen=True)
class Num:
    text: str          # canonical numeric literal text


@dataclass(frozen=True)
class Str:
    value: str


@dataclass(frozen=True)
class LogicalConst:
    value: bool


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class ArrayRef:
    """``A(I, J)`` -- also the spelling of a function call; resolved by
    the code generator against declarations and intrinsics."""

    name: str
    args: Tuple["Expr", ...]


@dataclass(frozen=True)
class UnOp:
    op: str            # "-", "+", ".NOT."
    operand: "Expr"


@dataclass(frozen=True)
class BinOp:
    op: str            # + - * / ** // .EQ. .AND. ...
    left: "Expr"
    right: "Expr"


Expr = Union[Num, Str, LogicalConst, Var, ArrayRef, UnOp, BinOp]

# ------------------------------------------------------------ declarations --


@dataclass
class DimSpec:
    """One declared entity: name plus optional array dimensions."""

    name: str
    dims: Tuple[Expr, ...] = ()


@dataclass
class Declaration:
    """INTEGER/REAL/DOUBLEPRECISION/LOGICAL/CHARACTER/TASKID/WINDOW."""

    ftype: str
    entities: List[DimSpec]
    line: int = 0


@dataclass
class SharedCommonDecl:
    """``SHARED COMMON /NAME/ A(100), B`` (section 7a)."""

    block: str
    entities: List[DimSpec]
    line: int = 0


@dataclass
class LockDecl:
    """``LOCK L1, L2`` (section 7b)."""

    names: List[str]
    line: int = 0


@dataclass
class SignalDecl:
    """``SIGNAL T1, T2`` -- message types counted only (section 6)."""

    names: List[str]
    line: int = 0


@dataclass
class HandlerDecl:
    """``HANDLER H1, H2`` -- types processed by handler subroutines."""

    names: List[str]
    line: int = 0


# -------------------------------------------------------------- statements --


@dataclass
class Assign:
    target: Union[Var, ArrayRef]
    value: Expr
    line: int = 0


@dataclass
class IfBlock:
    """IF (...) THEN / ELSE IF / ELSE / END IF."""

    conditions: List[Expr]             # one per THEN/ELSE IF arm
    arms: List[List["Stmt"]]
    else_arm: Optional[List["Stmt"]] = None
    line: int = 0


@dataclass
class LogicalIf:
    """One-line ``IF (cond) stmt``."""

    condition: Expr
    stmt: "Stmt"
    line: int = 0


@dataclass
class DoLoop:
    """DO loop; ``sched`` is None, "PRESCHED" or "SELFSCHED"."""

    var: str
    first: Expr
    last: Expr
    step: Optional[Expr]
    body: List["Stmt"]
    sched: Optional[str] = None
    label: Optional[int] = None
    line: int = 0


@dataclass
class WhileLoop:
    """``DO WHILE (cond)`` ... ``END DO`` (the common F77 extension)."""

    condition: Expr
    body: List["Stmt"]
    line: int = 0


@dataclass
class CallStmt:
    name: str
    args: Tuple[Expr, ...]
    line: int = 0


@dataclass
class PrintStmt:
    items: List[Expr]
    line: int = 0


@dataclass
class ReturnStmt:
    line: int = 0


@dataclass
class StopStmt:
    line: int = 0


@dataclass
class ContinueStmt:
    label: Optional[int] = None
    line: int = 0


@dataclass
class MultiStmt:
    """Several statements produced by one source line (PARAMETER and
    DATA lists expand into per-name assignments)."""

    stmts: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class ComputeStmt:
    """``COMPUTE <expr>`` -- charge virtual work ticks (an extension of
    this reproduction, used to give Fortran programs measurable cost)."""

    ticks: Expr
    line: int = 0


# ------------------------------------------------------ Pisces statements --


@dataclass
class InitiateStmt:
    """``ON <cluster> INITIATE <tasktype>(<args>)``."""

    placement: Union[str, Expr]        # "ANY"/"OTHER"/"SAME" or expr
    tasktype: str
    args: Tuple[Expr, ...]
    line: int = 0


@dataclass
class SendStmt:
    """``TO <dest> SEND <type>(<args>)`` and the broadcast form."""

    dest_kind: str     # PARENT SELF SENDER USER TCONTR VAR ALL
    dest_expr: Optional[Expr]          # for TCONTR/VAR/ALL-CLUSTER
    mtype: str
    args: Tuple[Expr, ...]
    line: int = 0


@dataclass
class AcceptSpecItem:
    """One line of an ACCEPT: count (expr or "ALL") OF type."""

    count: Union[Expr, str, None]      # None in total-count mode
    mtype: str


@dataclass
class AcceptStmt:
    total: Optional[Expr]              # ACCEPT <n> OF ...
    items: List[AcceptSpecItem]
    delay: Optional[Expr] = None
    delay_body: Optional[List["Stmt"]] = None
    line: int = 0


@dataclass
class ForceSplitStmt:
    """``FORCESPLIT``: the rest of the task body runs in every member."""

    rest: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class BarrierStmt:
    body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class CriticalStmt:
    lock: str
    body: List["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class ParsegStmt:
    segments: List[List["Stmt"]] = field(default_factory=list)
    line: int = 0


Stmt = Union[
    Assign, MultiStmt, IfBlock, LogicalIf, DoLoop, WhileLoop, CallStmt, PrintStmt,
    ReturnStmt, StopStmt, ContinueStmt, ComputeStmt, InitiateStmt,
    SendStmt, AcceptStmt, ForceSplitStmt, BarrierStmt, CriticalStmt,
    ParsegStmt,
]

# ------------------------------------------------------------------ units --


@dataclass
class ProgramUnit:
    """A TASK, SUBROUTINE or HANDLER definition."""

    kind: str                          # "TASK" | "SUBROUTINE" | "HANDLER"
    name: str
    params: List[str]
    decls: List[Declaration] = field(default_factory=list)
    shared: List[SharedCommonDecl] = field(default_factory=list)
    locks: List[str] = field(default_factory=list)
    signal_types: List[str] = field(default_factory=list)
    handler_types: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Program:
    """A complete Pisces Fortran program: a set of unit definitions."""

    units: List[ProgramUnit] = field(default_factory=list)

    def tasks(self) -> List[ProgramUnit]:
        return [u for u in self.units if u.kind == "TASK"]

    def unit(self, name: str) -> ProgramUnit:
        for u in self.units:
            if u.name == name:
                return u
        raise KeyError(name)
