"""Concurrency-correctness subsystem: race detection and schedule replay.

Section 7 of the paper leaves SHARED COMMON discipline to the
programmer ("the programmer is responsible" for LOCK/CRITICAL/BARRIER
usage); section 12's trace stream is meant for off-line analysis.  This
package closes the loop with two cooperating halves:

* **Race detection** (:mod:`~repro.correctness.detector`) -- vector
  clocks over every kernel process, happens-before edges from the
  Pisces-level synchronization operations (message send -> accept,
  initiate -> start, barrier generations, lock hand-offs, SELFSCHED
  counter fetches, spawn and wake), locksets as corroborating evidence,
  and extent-overlap conflict tests on SHARED COMMON variables and
  window regions.  Conflicting unordered accesses become structured
  :class:`RaceReport` records.

* **Record/replay** (:mod:`~repro.correctness.recorder`) -- a
  :class:`ScheduleRecorder` captures the dispatcher's decision stream
  into a compact ``.psched`` artifact and a :class:`Schedule` drives
  the engine's ``replay`` dispatcher, re-executing the run
  bit-identically and raising
  :class:`~repro.errors.ReplayDivergence` on the first mismatch.

Both halves are zero-cost when off (one ``is not None`` test per hook
site) and charge no virtual time when on: elapsed ticks are
bit-identical with detection or recording enabled.
"""

from __future__ import annotations

from .detector import RaceDetector, RaceReport
from .hb import HBEdge, HBEdgeLog, iter_hb_edges
from .recorder import Schedule, ScheduleRecorder

__all__ = [
    "HBEdge",
    "HBEdgeLog",
    "RaceDetector",
    "RaceReport",
    "Schedule",
    "ScheduleRecorder",
    "iter_hb_edges",
]
