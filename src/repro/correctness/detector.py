"""Happens-before race detection over the Pisces synchronization ops.

The detector keeps one vector clock per kernel process (pid ->
component) and derives happens-before edges from every ordering
primitive the run-time library offers:

* process spawn (parent -> child) and every in-process wake
  (waker -> wakee: force joins, window waits, explicit wakes);
* message send -> accept: the sender's clock is snapshotted per
  ``Message.seq`` at delivery and joined into whoever accepts it (task
  ACCEPT or a controller pop), which also yields the initiate -> start
  edge through the task controller;
* barrier generations: every arrival joins into the generation clock,
  the body-runner joins the generation clock before the body, and the
  release wakes carry the rest;
* lock hand-offs: a release joins the owner's clock into the lock, an
  acquire joins the lock's clock into the new owner;
* SELFSCHED fetches: the shared counter is an atomic RMW chain, so
  consecutive fetches are ordered through the counter's clock.

Accesses use the *epoch* optimization: an access by ``pid`` is stamped
with ``clock[pid][pid]``; a later access by ``q`` is ordered after it
iff ``clock[q][pid] >= epoch``.  Two accesses to overlapping extents of
the same variable, at least one a write, by different processes, with
no ordering and no common lock, are a race.

SHARED COMMON conflicts are reported as races.  Window extent
conflicts are split: write/write is a race; read/write is reported on
the *warning* channel, because the section-8 data plane serializes each
transfer atomically at the owner -- a racing read sees a consistent
before-or-after snapshot, never torn data, but the outcome is still
schedule-dependent and worth surfacing.

Every hook is free of ``charge``/``preempt``/``block`` calls: detection
never adds virtual time, so elapsed ticks are bit-identical with the
detector on.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, FrozenSet, List, Optional, Tuple, TYPE_CHECKING

from ..errors import RaceError, RaceWarning

if TYPE_CHECKING:  # pragma: no cover
    from ..core.vm import PiscesVM

#: Bounds of one access: ((lo, hi), ...) per dimension; () is a scalar
#: (a 0-d array), which overlaps every other access to the variable.
Bounds = Tuple[Tuple[int, int], ...]

#: Per-variable history cap (entries, not accesses: repeated accesses
#: with identical extents/lockset coalesce).  Evictions are counted --
#: a race against an evicted access can be missed, never invented.
HISTORY_CAP = 256

#: Pisces-level operations remembered per process for race evidence.
OP_STACK_DEPTH = 8

#: Reports kept before the detector stops recording new pairs.
MAX_REPORTS = 200


def extents_overlap(a: Bounds, b: Bounds) -> bool:
    """Half-open interval overlap per dimension; scalars always overlap
    (the same rule as ``repro.core.windows.bounds_overlap``)."""
    return all(max(alo, blo) < min(ahi, bhi)
               for (alo, ahi), (blo, bhi) in zip(a, b))


def _fmt_bounds(bounds: Bounds) -> str:
    if not bounds:
        return "[scalar]"
    return "[" + ", ".join(f"{lo}:{hi}" for lo, hi in bounds) + "]"


@dataclass(frozen=True)
class AccessInfo:
    """One side of a race: who touched what, when, holding which locks."""

    proc: str                      # kernel process name (task / member)
    pid: int
    write: bool
    bounds: Bounds
    ticks: int                     # virtual time of the access
    locks: Tuple[str, ...]         # locks held at the access
    ops: Tuple[str, ...]           # recent Pisces-level ops, oldest first

    def describe(self) -> str:
        kind = "WRITE" if self.write else "READ"
        held = f" holding {{{', '.join(self.locks)}}}" if self.locks else ""
        return f"{kind} {_fmt_bounds(self.bounds)} by {self.proc} at t={self.ticks}{held}"


@dataclass(frozen=True)
class RaceReport:
    """Structured evidence for one detected race (or window warning)."""

    variable: str                  # "BLOCK.var" or "window OWNER/array"
    kind: str                      # "shared_common" | "window"
    severity: str                  # "race" | "warning"
    a: AccessInfo                  # earlier access
    b: AccessInfo                  # later (detecting) access
    hb_note: str                   # why no happens-before edge was found
    detected_at: int               # virtual time of detection

    def describe(self) -> str:
        lines = [f"{self.severity.upper()} on {self.variable} ({self.kind}):",
                 f"  first:  {self.a.describe()}",
                 f"  second: {self.b.describe()}",
                 f"  {self.hb_note}"]
        if self.a.ops:
            lines.append(f"  first ops:  {' -> '.join(self.a.ops)}")
        if self.b.ops:
            lines.append(f"  second ops: {' -> '.join(self.b.ops)}")
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, Any]:
        def side(acc: AccessInfo) -> Dict[str, Any]:
            return {"proc": acc.proc, "pid": acc.pid, "write": acc.write,
                    "bounds": [list(d) for d in acc.bounds],
                    "ticks": acc.ticks, "locks": list(acc.locks),
                    "ops": list(acc.ops)}
        return {"variable": self.variable, "kind": self.kind,
                "severity": self.severity, "first": side(self.a),
                "second": side(self.b), "hb": self.hb_note,
                "detected_at": self.detected_at}


class _Access:
    """One remembered access (the most recent with this signature)."""

    __slots__ = ("pid", "epoch", "write", "bounds", "lockset", "proc",
                 "ticks", "ops")

    def __init__(self, pid: int, epoch: int, write: bool, bounds: Bounds,
                 lockset: FrozenSet[str], proc: str, ticks: int,
                 ops: Tuple[str, ...]):
        self.pid = pid
        self.epoch = epoch
        self.write = write
        self.bounds = bounds
        self.lockset = lockset
        self.proc = proc
        self.ticks = ticks
        self.ops = ops


class RaceDetector:
    """Vector clocks + locksets over one VM's run.

    Installed as the engine's ``hb_hook`` and threaded through the
    run-time library's instrumentation sites; ``None`` everywhere when
    detection is off.  ``mode`` selects the reporting channel:
    ``"record"`` collects (default), ``"warn"`` also emits a
    :class:`~repro.errors.RaceWarning`, ``"raise"`` raises
    :class:`~repro.errors.RaceError` at the detecting access.
    """

    def __init__(self, vm: "PiscesVM", mode: str = "record"):
        if mode not in ("record", "warn", "raise"):
            raise ValueError(f"detector mode {mode!r}: "
                             f"must be record/warn/raise")
        self.vm = vm
        self.mode = mode
        self.enabled = True
        #: Optional typed edge stream (see :mod:`repro.correctness.hb`).
        #: None costs one attribute test per join; attach with
        #: :meth:`record_edges`.
        self.edge_log: Optional[Any] = None
        self._clocks: Dict[int, Dict[int, int]] = {}
        self._msg_clocks: Dict[int, Dict[int, int]] = {}
        #: Sender pid per in-flight message seq (edge stream only).
        self._msg_src: Dict[int, int] = {}
        #: (kind, location key) -> {(pid, write, lockset, bounds): _Access}
        self._history: Dict[tuple, Dict[tuple, _Access]] = {}
        self._held: Dict[int, set] = {}
        self._ops: Dict[int, Deque[str]] = {}
        self._seen_pairs: set = set()
        self.reports: List[RaceReport] = []
        self.warnings: List[RaceReport] = []
        #: Bookkeeping for honesty about coverage.
        self.accesses_checked = 0
        self.history_evictions = 0

    # ----------------------------------------------------------- clocks --

    def _clock(self, pid: int) -> Dict[int, int]:
        c = self._clocks.get(pid)
        if c is None:
            c = self._clocks[pid] = {pid: 1}
        return c

    def _tick(self, pid: int) -> None:
        c = self._clock(pid)
        c[pid] = c.get(pid, 0) + 1

    def _join(self, into: Dict[int, int], snap: Dict[int, int]) -> None:
        for k, v in snap.items():
            if into.get(k, 0) < v:
                into[k] = v

    def _snapshot_and_tick(self, pid: int) -> Dict[int, int]:
        """Export the caller's clock (then advance it, so accesses after
        the export are not ordered by edges created from it)."""
        snap = dict(self._clock(pid))
        self._tick(pid)
        return snap

    def _push_op(self, pid: int, op: str) -> None:
        d = self._ops.get(pid)
        if d is None:
            d = self._ops[pid] = deque(maxlen=OP_STACK_DEPTH)
        d.append(op)

    # -------------------------------------------------------- edge stream --

    def record_edges(self, cap: int = 1_000_000):
        """Attach (or return) the typed happens-before edge log: every
        vector-clock join also appends one :class:`~repro.correctness.hb.HBEdge`.
        Pure bookkeeping -- no virtual time, no scheduling effect."""
        if self.edge_log is None:
            from .hb import HBEdgeLog
            self.edge_log = HBEdgeLog(cap=cap)
        return self.edge_log

    # ------------------------------------------------- engine HB hooks --

    def on_spawn(self, parent, child) -> None:
        """Everything the parent did before spawning happens-before the
        child's first slice."""
        snap = self._snapshot_and_tick(parent.pid)
        self._join(self._clock(child.pid), snap)
        log = self.edge_log
        if log is not None:
            log.append("spawn", parent.pid, child.pid,
                       self.vm.engine.now(), child.name)

    def on_wake(self, waker, wakee) -> None:
        """A wake is a causal edge: the wakee resumes after the waker's
        action (force join, barrier release, lock grant, message)."""
        snap = self._snapshot_and_tick(waker.pid)
        self._join(self._clock(wakee.pid), snap)
        log = self.edge_log
        if log is not None:
            log.append("wake", waker.pid, wakee.pid,
                       self.vm.engine.now(), wakee.blocked_on)

    # ----------------------------------------------------- message edges --

    def on_send(self, msg) -> None:
        """Snapshot the sender's clock at delivery, keyed by message seq."""
        eng = self.vm.engine
        if not eng.in_process():
            return
        p = eng.current()
        self._msg_clocks[msg.seq] = self._snapshot_and_tick(p.pid)
        if self.edge_log is not None:
            self._msg_src[msg.seq] = p.pid
        self._push_op(p.pid, f"SEND {msg.mtype}")

    def on_accept(self, msg) -> None:
        """Join the send-time snapshot into whoever accepted the message
        (a task's ACCEPT or a controller pop -- the latter carries the
        initiate -> start edge through the task controller)."""
        snap = self._msg_clocks.pop(msg.seq, None)
        src = self._msg_src.pop(msg.seq, -1)
        eng = self.vm.engine
        if not eng.in_process():
            return
        p = eng.current()
        if snap is not None:
            self._join(self._clock(p.pid), snap)
            log = self.edge_log
            if log is not None:
                log.append("send-accept", src, p.pid, eng.now(), msg.mtype)
        self._push_op(p.pid, f"ACCEPT {msg.mtype}")

    def forget_message(self, msg) -> None:
        """A message was dropped before any accept (corruption discard)."""
        self._msg_clocks.pop(msg.seq, None)
        self._msg_src.pop(msg.seq, None)

    # ----------------------------------------------------- barrier edges --

    def on_barrier_arrive(self, gen, proc, gen_no: int, member: int) -> None:
        """Every arrival joins its clock into the generation clock: the
        body (and everyone released) is ordered after all arrivals."""
        gc = getattr(gen, "_hb_clock", None)
        if gc is None:
            gc = gen._hb_clock = {}
        self._join(gc, self._snapshot_and_tick(proc.pid))
        log = self.edge_log
        if log is not None:
            log.append("barrier-arrive", proc.pid, -1,
                       self.vm.engine.now(), f"gen={gen_no} member={member}")
        self._push_op(proc.pid, f"BARRIER gen={gen_no} member={member}")

    def on_barrier_body(self, gen, proc) -> None:
        """The body-runner is ordered after every arrival (the generic
        wake edge only carries the last arriver's clock)."""
        gc = getattr(gen, "_hb_clock", None)
        if gc is not None:
            self._join(self._clock(proc.pid), gc)
            log = self.edge_log
            if log is not None:
                log.append("barrier-body", -1, proc.pid,
                           self.vm.engine.now())

    # -------------------------------------------------------- lock edges --

    def on_lock_acquire(self, lock, proc, member: int) -> None:
        lc = getattr(lock, "_hb_clock", None)
        if lc is not None:
            self._join(self._clock(proc.pid), lc)
            log = self.edge_log
            if log is not None:
                log.append("lock", getattr(lock, "_hb_last_releaser", -1),
                           proc.pid, self.vm.engine.now(), lock.name)
        self._held.setdefault(proc.pid, set()).add(lock.name)
        self._push_op(proc.pid, f"LOCK {lock.name}")

    def on_lock_release(self, lock, proc, member: int) -> None:
        lc = getattr(lock, "_hb_clock", None)
        if lc is None:
            lc = lock._hb_clock = {}
        self._join(lc, self._snapshot_and_tick(proc.pid))
        if self.edge_log is not None:
            lock._hb_last_releaser = proc.pid
        self._held.get(proc.pid, set()).discard(lock.name)
        self._push_op(proc.pid, f"UNLOCK {lock.name}")

    # --------------------------------------------------- loop-claim edges --

    def on_selfsched_fetch(self, counter, index: int, member: int) -> None:
        """The shared counter is an atomic RMW chain: fetch i happens-
        before fetch i+1 (only the counter ops themselves -- iteration
        bodies stay unordered, so races between them are still seen)."""
        eng = self.vm.engine
        if not eng.in_process():
            return
        p = eng.current()
        cc = getattr(counter, "_hb_clock", None)
        if cc is not None:
            self._join(self._clock(p.pid), cc)
            log = self.edge_log
            if log is not None:
                log.append("selfsched",
                           getattr(counter, "_hb_last_pid", -1),
                           p.pid, eng.now(), f"i={index}")
        counter._hb_clock = self._snapshot_and_tick(p.pid)
        if self.edge_log is not None:
            counter._hb_last_pid = p.pid
        if index >= 0:
            self._push_op(p.pid, f"SELFSCHED i={index} member={member}")

    def on_presched_claim(self, member: int, total: int, size: int) -> None:
        """PRESCHED is a static partition -- no edge, evidence only."""
        eng = self.vm.engine
        if not eng.in_process():
            return
        p = eng.current()
        self._push_op(
            p.pid, f"PRESCHED member={member} takes {member}::{size} of {total}")

    # ------------------------------------------------------------ access --

    def common_monitor(self, task):
        """The per-task callback wired into tracked SHARED COMMON arrays."""
        def monitor(label: Tuple[str, str], bounds: Bounds,
                    is_write: bool) -> None:
            self.on_common_access(task, label[0], label[1], bounds, is_write)
        return monitor

    def on_common_access(self, task, block: str, var: str, bounds: Bounds,
                         is_write: bool) -> None:
        key = ("C", task.tid, block, var)
        self._record(key, f"{block}.{var}", "shared_common", bounds, is_write)

    def on_window_access(self, w, is_write: bool) -> None:
        key = ("W", w.owner, w.array)
        self._record(key, f"window {w.owner}/{w.array}", "window",
                     tuple(w.bounds), is_write)

    def _record(self, key: tuple, variable: str, kind: str, bounds: Bounds,
                is_write: bool) -> None:
        if not self.enabled:    # paused from the monitor (option 13)
            return
        eng = self.vm.engine
        if not eng.in_process():
            return
        p = eng.current()
        pid = p.pid
        my_clock = self._clock(pid)
        lockset = frozenset(self._held.get(pid, ()))
        self.accesses_checked += 1
        hist = self._history.get(key)
        if hist is None:
            hist = self._history[key] = {}
        for other in hist.values():
            if other.pid == pid:
                continue
            if not (is_write or other.write):
                continue                      # read/read never conflicts
            if my_clock.get(other.pid, 0) >= other.epoch:
                continue                      # happens-before ordered
            if lockset and other.lockset and (lockset & other.lockset):
                continue                      # a common lock serializes
            if not extents_overlap(bounds, other.bounds):
                continue
            self._report(key, variable, kind, other, p, bounds,
                         is_write, lockset)
        sig = (pid, is_write, lockset, bounds)
        if sig not in hist and len(hist) >= HISTORY_CAP:
            hist.pop(next(iter(hist)))
            self.history_evictions += 1
        hist[sig] = _Access(pid, my_clock.get(pid, 0), is_write, bounds,
                            lockset, p.name, eng.now(),
                            tuple(self._ops.get(pid, ())))

    # ------------------------------------------------------------ report --

    def _report(self, key: tuple, variable: str, kind: str, other: _Access,
                proc, bounds: Bounds, is_write: bool,
                lockset: FrozenSet[str]) -> None:
        severity = "race"
        if kind == "window" and not (is_write and other.write):
            # The data plane serializes each transfer atomically at the
            # owner: a racing read sees a consistent snapshot, but the
            # outcome is schedule-dependent -- warn, don't error.
            severity = "warning"
        pair = (key, other.pid, proc.pid, other.write, is_write, severity)
        if pair in self._seen_pairs:
            return
        if len(self.reports) + len(self.warnings) >= MAX_REPORTS:
            return
        self._seen_pairs.add(pair)
        a = AccessInfo(proc=other.proc, pid=other.pid, write=other.write,
                       bounds=other.bounds, ticks=other.ticks,
                       locks=tuple(sorted(other.lockset)), ops=other.ops)
        b = AccessInfo(proc=proc.name, pid=proc.pid, write=is_write,
                       bounds=bounds, ticks=self.vm.engine.now(),
                       locks=tuple(sorted(lockset)),
                       ops=tuple(self._ops.get(proc.pid, ())))
        report = RaceReport(
            variable=variable, kind=kind, severity=severity, a=a, b=b,
            hb_note=(f"no happens-before edge orders pid {other.pid} "
                     f"(epoch {other.epoch}) before pid {proc.pid} "
                     f"(sees component "
                     f"{self._clock(proc.pid).get(other.pid, 0)}) "
                     f"and no common lock is held"),
            detected_at=self.vm.engine.now())
        if severity == "warning":
            self.warnings.append(report)
        else:
            self.reports.append(report)
            self.vm.stats.races_detected += 1
        m = self.vm.metrics
        if m is not None and m.enabled:
            m.counter("races_detected", kind=kind, severity=severity).inc()
        if severity == "race":
            if self.mode == "raise":
                raise RaceError(report)
            if self.mode == "warn":
                import warnings as _warnings
                _warnings.warn(report.describe(), RaceWarning, stacklevel=3)

    # ----------------------------------------------------------- output --

    def report_text(self) -> str:
        """Human-readable summary (monitor option 13, analysis report)."""
        lines = [f"race detection: {self.accesses_checked} accesses "
                 f"checked, {len(self.reports)} race(s), "
                 f"{len(self.warnings)} window warning(s)"]
        if self.history_evictions:
            lines.append(f"  ({self.history_evictions} history evictions: "
                         f"coverage of long runs is windowed)")
        for r in self.reports + self.warnings:
            lines.append("")
            lines.append(r.describe())
        return "\n".join(lines)

    def export_jsonl(self, path) -> int:
        """Write every report (races then warnings) as JSON lines;
        returns the record count."""
        records = self.reports + self.warnings
        with open(path, "w", encoding="utf-8") as f:
            for r in records:
                f.write(json.dumps(r.as_dict(), default=str) + "\n")
        return len(records)
