"""The happens-before edge stream, reusable outside race detection.

The :class:`~repro.correctness.detector.RaceDetector` derives a
happens-before edge at every ordering primitive (spawn, wake,
send->accept, barrier generations, lock hand-offs, SELFSCHED chains).
Until this module those edges existed only implicitly, as vector-clock
joins; profiling and analysis want the *stream* itself.  Attaching an
:class:`HBEdgeLog` to a detector (``detector.record_edges()``) makes it
emit one typed :class:`HBEdge` record per join, in derivation order --
a deterministic sequence for a deterministic run, iterable any number
of times.

Consumers: the causal-profile report (edge counts per kind), tests
asserting the edge stream is dispatcher-independent, and any future
tool that wants the HB DAG without re-deriving it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Union

#: Edge kinds, in the detector's derivation vocabulary.
EDGE_KINDS = ("spawn", "wake", "send-accept", "barrier-arrive",
              "barrier-body", "lock", "selfsched")


@dataclass(frozen=True)
class HBEdge:
    """One happens-before edge: what ``src`` did before ``at`` is
    ordered before everything ``dst`` does after.  Barrier arrivals
    flow into the generation clock (``dst=-1``); the body edge flows
    out of it (``src=-1``); an unknown endpoint is also ``-1``."""

    kind: str
    src: int            # kernel pid, or -1
    dst: int            # kernel pid, or -1
    at: int             # virtual tick of the join
    detail: str = ""


class HBEdgeLog:
    """Append-only edge record with a bound.

    The cap keeps a pathological run from holding every edge forever;
    evictions never happen (append past the cap counts ``dropped``
    instead), so the retained prefix is always exact.
    """

    def __init__(self, cap: int = 1_000_000):
        self.cap = cap
        self.edges: List[HBEdge] = []
        self.dropped = 0

    def append(self, kind: str, src: int, dst: int, at: int,
               detail: str = "") -> None:
        if len(self.edges) >= self.cap:
            self.dropped += 1
            return
        self.edges.append(HBEdge(kind, src, dst, at, detail))

    def __iter__(self) -> Iterator[HBEdge]:
        return iter(self.edges)

    def __len__(self) -> int:
        return len(self.edges)

    def counts_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for e in self.edges:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def describe(self) -> str:
        parts = [f"{k}={v}" for k, v in sorted(self.counts_by_kind().items())]
        tail = f" (+{self.dropped} dropped)" if self.dropped else ""
        return f"hb edges: {len(self.edges)} [{', '.join(parts)}]{tail}"


def iter_hb_edges(source: Union[HBEdgeLog, Iterable[HBEdge], object],
                  ) -> Iterator[HBEdge]:
    """Iterate the HB edge stream of an :class:`HBEdgeLog`, a detector
    with one attached, or any iterable of edges."""
    if hasattr(source, "edge_log"):
        log = source.edge_log
        if log is None:
            raise ValueError(
                "detector has no edge log: call record_edges() before "
                "the run to capture the stream")
        source = log
    if source is None:
        return iter(())
    return iter(source)
